"""Pattern-parallel combinational fault simulation (PPSFP).

For full-scan work every length-1 scan test is a *combinational* test on
the pseudo-combinational circuit whose inputs are the primary inputs
plus the flip-flop outputs (pseudo primary inputs) and whose outputs are
the primary outputs plus the flip-flop data nets (pseudo primary
outputs, observed by the scan-out).

This simulator packs up to 128 test patterns into the bits of one word
pair per net: one fault-free evaluation serves all patterns, then each
target fault is injected and evaluated once against the whole block.
It is the workhorse of combinational test-set generation
(:mod:`repro.atpg.comb_set`) and of Phase 3 top-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import values as V
from .counters import SimCounters
from .faults import FaultSet
from .logicsim import CompiledCircuit

DEFAULT_BLOCK = 128

#: A combinational pattern: (flip-flop state vector, primary input vector).
Pattern = Tuple[V.Vector, V.Vector]


class CombPatternSim:
    """PPSFP simulator bound to one circuit and fault set.

    ``scan_positions`` selects partial scan: pattern state vectors
    cover only those flip-flops (the rest are X) and only their
    captured values are observable.  ``None`` means full scan.

    ``counters`` aggregates instrumentation (pass a shared
    :class:`~repro.sim.counters.SimCounters` to pool with a
    :class:`~repro.sim.fault_sim.FaultSimulator`); the per-fault
    faulty evaluations land in ``comb_passes``.
    """

    def __init__(self, circuit: CompiledCircuit, faults: FaultSet,
                 block: int = DEFAULT_BLOCK,
                 scan_positions: Optional[Sequence[int]] = None,
                 counters: Optional[SimCounters] = None) -> None:
        self.circuit = circuit
        self.faults = faults
        self.block = block
        self.counters = counters if counters is not None else SimCounters()
        self._untestable: frozenset = frozenset()
        if scan_positions is None:
            self.scan_positions: Optional[List[int]] = None
            self._state_ids = list(circuit.ff_ids)
            self._observed_ppo = list(circuit.ff_d_ids)
            self._observed_ff = set(range(len(circuit.ff_ids)))
        else:
            self.scan_positions = sorted(scan_positions)
            self._state_ids = [circuit.ff_ids[p]
                               for p in self.scan_positions]
            self._observed_ppo = [circuit.ff_d_ids[p]
                                  for p in self.scan_positions]
            self._observed_ff = set(self.scan_positions)
        net = circuit.netlist
        ids = net.net_ids
        ff_pos = {name: i for i, name in enumerate(net.flip_flops)}
        self._source_ids = set(circuit.pi_ids) | set(circuit.ff_ids)
        # Injection spec per fault, as in FaultSimulator but full-mask.
        self._spec: List[Tuple] = []
        for fault in faults:
            if fault.pin is None:
                self._spec.append(("stem", ids[fault.net], fault.stuck))
            else:
                gate_name, pin = fault.pin
                gate = net.gates[gate_name]
                if gate.gtype == "DFF":
                    self._spec.append(
                        ("ff", ff_pos[gate_name], fault.stuck,
                         ids[gate.fanins[0]]))
                else:
                    self._spec.append(
                        ("branch", ids[gate_name], pin, fault.stuck))

    # ------------------------------------------------------------------
    def set_untestable(self, indices: Optional[Sequence[int]]) -> None:
        """Exclude proven-untestable faults from every future block.

        Mirrors :meth:`~repro.sim.fault_sim.FaultSimulator.
        set_untestable`: sound because a proven-untestable fault is in
        no detection set, so no returned block result changes.  (The
        ``untestable_dropped`` counter is bumped only by the
        sequential simulator -- the two usually share one
        :class:`~repro.sim.counters.SimCounters`.)
        """
        if not indices:
            self._untestable = frozenset()
            return
        self._untestable = self.faults.untestable_reps(set(indices))

    # ------------------------------------------------------------------
    def _load_sources(self, patterns: Sequence[Pattern]
                      ) -> Tuple[List[int], List[int], int]:
        """Pack the block of patterns into per-net source words."""
        mask = (1 << len(patterns)) - 1
        zero = [0] * self.circuit.n_nets
        one = [0] * self.circuit.n_nets
        for p, (state, pi) in enumerate(patterns):
            bit = 1 << p
            for nid, val in zip(self._state_ids, state):
                if val == V.ZERO:
                    zero[nid] |= bit
                elif val == V.ONE:
                    one[nid] |= bit
            for nid, val in zip(self.circuit.pi_ids, pi):
                if val == V.ZERO:
                    zero[nid] |= bit
                elif val == V.ONE:
                    one[nid] |= bit
        return zero, one, mask

    def good_block(self, patterns: Sequence[Pattern]
                   ) -> Tuple[List[int], List[int], int]:
        """Fault-free evaluation of a pattern block.

        Returns ``(zero, one, mask)`` per-net word arrays (all nets
        evaluated), reusable across the per-fault passes.
        """
        zero, one, mask = self._load_sources(patterns)
        self.circuit.eval_frame(zero, one, mask)
        return zero, one, mask

    # ------------------------------------------------------------------
    def _faulty_observe(self, spec: Tuple, zero: List[int], one: List[int],
                        mask: int) -> Tuple[List[int], List[int],
                                            Optional[Tuple[int, int, int]]]:
        """Evaluate the faulty circuit for the whole block.

        Returns ``(fzero, fone, ff_override)`` where ``ff_override`` is
        ``(ff_pos, z, o)`` for DFF data-pin faults (the captured value of
        that one flip-flop differs from the data net's value).
        """
        kind = spec[0]
        stems: Dict[int, Tuple[int, int]] = {}
        branch: Dict[int, List[Tuple[int, int, int]]] = {}
        ff_override = None
        fzero = list(zero)
        fone = list(one)
        if kind == "stem":
            _, nid, stuck = spec
            stems[nid] = (0, mask) if stuck else (mask, 0)
            if nid in self._source_ids:
                fzero[nid] = mask if not stuck else 0
                fone[nid] = mask if stuck else 0
        elif kind == "branch":
            _, out_id, pin, stuck = spec
            branch[out_id] = [(pin, mask if stuck == 0 else 0,
                               mask if stuck == 1 else 0)]
        else:  # DFF data-pin branch fault: only the captured bit differs
            _, ff_pos, stuck, _d_nid = spec
            z = mask if stuck == 0 else 0
            o = mask if stuck == 1 else 0
            return list(zero), list(one), (ff_pos, z, o)
        self.circuit.eval_frame(fzero, fone, mask, stems, branch)
        return fzero, fone, ff_override

    def detect_block(
        self,
        patterns: Sequence[Pattern],
        target: Optional[Sequence[int]] = None,
        good: Optional[Tuple[List[int], List[int], int]] = None,
    ) -> Dict[int, int]:
        """Which patterns detect which target faults.

        Returns ``{fault_index: pattern_bitmask}`` for every target
        fault detected by at least one pattern in the block (bit ``p``
        set means pattern ``p`` detects it).
        """
        if len(patterns) > self.block:
            raise ValueError(
                f"block of {len(patterns)} exceeds width {self.block}")
        if target is None:
            target = range(len(self.faults))
        sim_target, expand = self.faults.collapse_target(
            target, self._untestable)
        if good is None:
            good = self.good_block(patterns)
        gzero, gone, mask = good
        observe = list(self.circuit.po_ids) + list(self._observed_ppo)
        result: Dict[int, int] = {}
        for fid in sim_target:
            spec = self._spec[fid]
            self.counters.comb_passes += 1
            fzero, fone, ff_override = self._faulty_observe(
                spec, gzero, gone, mask)
            caught = 0
            if ff_override is not None:
                ff_pos, z, o = ff_override
                if ff_pos not in self._observed_ff:
                    continue  # capture lands in an unscanned flip-flop
                nid = self.circuit.ff_d_ids[ff_pos]
                # Good captured value vs forced faulty value.
                caught = (gone[nid] & z) | (gzero[nid] & o)
            else:
                for nid in observe:
                    # Binary good/faulty differences only.
                    caught |= (gone[nid] & fzero[nid]) | \
                              (gzero[nid] & fone[nid])
            caught &= mask
            if caught:
                result[fid] = caught
        if expand is not None:
            # Re-inflate representative hits to the requested members:
            # class members share every per-pattern detection exactly.
            result = {m: pmask for rep, pmask in result.items()
                      for m in expand[rep]}
        return result

    def detect_single(self, pattern: Pattern,
                      target: Optional[Sequence[int]] = None) -> Set[int]:
        """Faults detected by one combinational pattern."""
        hits = self.detect_block([pattern], target)
        return set(hits)

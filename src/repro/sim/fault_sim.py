"""Bit-parallel parallel-fault sequential fault simulation.

The simulator packs faulty machines plus the fault-free machine
(always bit 0) into one pair of Python big-ints per net.  One pass
over a sequence costs ``frames x gates x words`` big-int operations
regardless of how many faults share a word, so the dominant cost is
the *number of words*, not their width: Python integers are
arbitrary-precision, and one 4096-bit AND is far cheaper than 32
separate 128-bit evaluation passes.

Packing policy (``width=``):

* ``"auto"`` (default) -- **wide-word fusion**: every active fault of
  a pass is packed into a single word pair per net, falling back to
  balanced chunks of at most :data:`FUSED_CAP` machines for huge
  fault sets (beyond a few thousand machine bits the per-digit cost
  of big-int arithmetic starts to win over the per-pass interpreter
  overhead; :func:`benchmark_packing` measures the crossover for a
  concrete circuit).  The cap honors the ``REPRO_FUSED_CAP``
  environment variable, read at :class:`FaultSimulator`
  *construction* (not at module import -- each simulator snapshots
  the value, so tests and benchmarks can override it per instance;
  an explicit ``fused_cap=`` argument beats the environment).
* an integer ``N`` -- classic fixed-width chunking with ``N - 1``
  faulty machines per word (the pre-fusion engine; ``N = 128`` is the
  historical default, kept as :data:`DEFAULT_WIDTH`).

Execution backend (``CompiledCircuit(engine=...)``): the packed words
are evaluated either as Python big-ints (engines ``"generic"`` /
``"codegen"``) or as ``uint64`` arrays driven by the
:mod:`repro.sim.npsim` backend (engine ``"numpy"``, optional
dependency).  ``engine="auto"`` routes each :meth:`FaultSimulator.
detect` / :meth:`FaultSimulator.run_with_records` pass to the array
backend when its compiled C kernel is available and the pass packs
at least :data:`NUMPY_AUTO_MIN_MACHINES` machines, and stays on the
fused big-int path otherwise (:func:`benchmark_engines` measures the
crossover for a concrete circuit).  Backends are result-identical:
per-machine logic values do not depend on how words are stored, and
the cross-backend equivalence suite plus the ``REPRO_SANITIZE``
shadow checks enforce it.

Fault dropping: :meth:`FaultSimulator.detect` retires
already-detected machines *mid-pass* (``early_exit=True``) by
repacking the survivors into a narrower word, and can report
detections into a shared
:class:`~repro.sim.scoreboard.FaultScoreboard` so later phases build
smaller injection words.  Both mechanisms are pure accelerations:
per-machine logic values are independent of packing, so detection
sets are identical under every width policy (enforced by the
equivalence test suite).

Instrumentation: every simulator bumps a
:class:`~repro.sim.counters.SimCounters` (frames, word evaluations,
machine bits, drops, repacks) -- see ``benchmarks/emit_bench.py``.

Three entry points cover all the needs of the compaction procedures:

* :meth:`FaultSimulator.detect` -- which target faults does a test
  ``(SI, T)`` (or a scan-less sequence) detect?  Supports early exit and
  in-pass retirement, used heavily by vector omission and combining.
* :meth:`FaultSimulator.run_with_records` -- a single full pass that
  records, per fault, the first frame with a primary-output difference
  and, per frame, which faults would be caught by a scan-out at that
  frame.  This turns the paper's Phase-1 Step 3 scan over all candidate
  scan-out times into one simulation plus a cheap post-pass (the result
  is identical to simulating every candidate, by construction).
* :meth:`FaultSimulator.detect_candidates` -- the *transposed* packing
  mode: candidate scan-in states occupy the lanes (one lane per
  candidate, per-lane initial flip-flop state) and each fault is
  injected across all lanes at once, turning the ``|C|`` sequence
  passes of Phase-1 Step 2 into ``ceil(F / groups-per-word)`` passes
  with per-lane detection words.  See DESIGN.md section 9.

Detection semantics (see DESIGN.md section 4): a binary good/faulty
difference at a primary output in any functional frame, or -- when a
scan-out is performed -- a binary difference in the flip-flop state
captured by the final frame.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from . import values as V
from ..analysis import sanitizer
from .counters import SimCounters
from .faults import Fault, FaultSet
from .logicsim import CompiledCircuit
from .scoreboard import FaultScoreboard

#: Historical fixed chunk width (127 faulty machines + the good bit).
DEFAULT_WIDTH = 128

#: Machine-bit cap per fused word under ``width="auto"``.  Beyond this
#: the per-digit cost of big-int ops outweighs the saved passes, so
#: auto mode falls back to balanced chunks of at most this many
#: machines.  Override with the ``REPRO_FUSED_CAP`` environment
#: variable (read at :class:`FaultSimulator` construction, so tests
#: and benchmarks can override it per simulator); measure a specific
#: circuit with :func:`benchmark_packing`.
FUSED_CAP = 4096


def _resolve_fused_cap() -> int:
    """The effective fused cap: ``REPRO_FUSED_CAP`` or the default."""
    return int(os.environ.get("REPRO_FUSED_CAP", FUSED_CAP))


#: Minimum machines (faulty + good) a pass must pack before
#: ``engine="auto"`` routes it through the numpy array backend.  Small
#: passes lose: the C kernel call plus plan-array construction cost a
#: few hundred microseconds, which only amortizes once the big-int
#: loop would evaluate a wide-ish word over enough gates.  Override
#: with the ``REPRO_NP_AUTO_MIN`` environment variable (read at
#: :class:`FaultSimulator` construction, like ``REPRO_FUSED_CAP``);
#: measure a concrete circuit with :func:`benchmark_engines`.
NUMPY_AUTO_MIN_MACHINES = 64


def _resolve_np_auto_min() -> int:
    """The effective auto threshold: ``REPRO_NP_AUTO_MIN`` or default."""
    return int(os.environ.get("REPRO_NP_AUTO_MIN",
                              NUMPY_AUTO_MIN_MACHINES))

#: In-pass retirement fires only when a word still has at least this
#: many machines (repacking tiny words saves nothing) ...
_REPACK_MIN_MACHINES = 64
#: ... at least half of them are already caught, and at least this many
#: frames remain to amortize the bit-gather cost of the repack.
_REPACK_MIN_FRAMES_LEFT = 8
#: Lane-transposed passes repack only words carrying at least this many
#: fault groups (mirrors ``_REPACK_MIN_MACHINES`` for candidate lanes).
_REPACK_MIN_GROUPS = 8

#: Under ``REPRO_SANITIZE`` each simulator cross-checks its first few
#: ``detect`` passes against a freshly packed shadow engine (fused vs
#: chunked agreement) ...
_SANITIZE_SPOT_BUDGET = 3
#: ... but only for passes small enough that the doubled work stays
#: negligible.
_SANITIZE_SPOT_TARGET_CAP = 256

WidthPolicy = Union[int, str]


@dataclass
class _Chunk:
    """Injection data for one word of packed faulty machines."""

    indices: List[int]                 # global fault index of bit w+1
    mask: int                          # all machine bits incl. good bit 0
    stem0: Dict[int, int] = field(default_factory=dict)
    stem1: Dict[int, int] = field(default_factory=dict)
    stems: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    branch: Dict[int, List[Tuple[int, int, int]]] = field(
        default_factory=dict)
    ff_branch: List[Tuple[int, int, int]] = field(default_factory=list)
    src_stem_ids: List[int] = field(default_factory=list)

    def bit_of(self, position: int) -> int:
        """Machine bit for the fault at local position ``position``."""
        return 1 << (position + 1)


@dataclass
class _LaneChunk:
    """Injection data for one word of *lane-transposed* faulty machines.

    The word is laid out as ``n_groups`` blocks of ``n_lanes`` bits:
    block ``g`` carries fault ``indices[g]`` simulated simultaneously
    in every candidate lane (lane ``k`` of every block starts from
    candidate ``k``'s scan-in state).  There is no good-machine bit --
    the fault-free reference comes from a separate good pass over the
    same lanes.  ``stems``/``branch``/``ff_branch`` use the same mask
    format as :class:`_Chunk`, with each fault's masks covering its
    whole lane block.
    """

    indices: List[int]                 # fault id of lane block g
    n_lanes: int
    mask: int                          # all n_groups * n_lanes bits
    stems: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    branch: Dict[int, List[Tuple[int, int, int]]] = field(
        default_factory=dict)
    ff_branch: List[Tuple[int, int, int]] = field(default_factory=list)
    src_stem_ids: List[int] = field(default_factory=list)

    @property
    def n_groups(self) -> int:
        return len(self.indices)

    @property
    def replication(self) -> int:
        """Multiplier replicating an ``n_lanes``-bit word into every
        lane block.  The shifted copies occupy disjoint bit ranges, so
        ``word * replication`` is an exact concatenation (no carries).
        """
        block = 1 << self.n_lanes
        return (block ** self.n_groups - 1) // (block - 1)


def _gather_blocks(word: int, keep_groups: Sequence[int],
                   n_lanes: int) -> int:
    """Concatenate the ``n_lanes``-bit blocks of ``word`` selected by
    ``keep_groups`` (in order) into a narrower word."""
    lane_mask = (1 << n_lanes) - 1
    out = 0
    for new_g, g in enumerate(keep_groups):
        out |= ((word >> (g * n_lanes)) & lane_mask) << (new_g * n_lanes)
    return out


def _pack_trial_pi_lanes(
    np: Any,
    full_trials: Sequence[Tuple[V.Vector, Sequence[V.Vector]]],
    max_frames: int, n_pi: int,
) -> List[List[Tuple[int, int]]]:
    """Vectorised trial PI packing: ``pi_words[f][p]`` lane words.

    Equivalent to per-position :func:`~repro.sim.values.pack_lanes`
    over the trials (lane ``k`` carries trial ``k``'s vector value
    while active, X past its own end), but built from one uint8 value
    cube and two weighted reductions per 64-lane block -- the
    per-frame/per-PI Python packing loop is the top cost of a batched
    trial pass on circuits with more than a handful of inputs.
    """
    n_lanes = len(full_trials)
    vals = np.full((max_frames, n_pi, n_lanes), V.X, dtype=np.uint8)
    for k, (_, vecs) in enumerate(full_trials):
        if vecs:
            arr = np.asarray(vecs, dtype=np.uint8)
            vals[:arr.shape[0], :, k] = arr
    pi_z = [[0] * n_pi for _ in range(max_frames)]
    pi_o = [[0] * n_pi for _ in range(max_frames)]
    for base in range(0, n_lanes, 64):
        sub = vals[:, :, base:base + 64]
        weights = np.left_shift(
            np.uint64(1), np.arange(sub.shape[2], dtype=np.uint64))
        zw = ((sub == V.ZERO) * weights).sum(axis=2).tolist()
        ow = ((sub == V.ONE) * weights).sum(axis=2).tolist()
        for f in range(max_frames):
            zrow, orow, tz, to = zw[f], ow[f], pi_z[f], pi_o[f]
            for p in range(n_pi):
                tz[p] |= zrow[p] << base
                to[p] |= orow[p] << base
    return [list(zip(pi_z[f], pi_o[f])) for f in range(max_frames)]


@dataclass
class SimRecords:
    """Per-frame detection records from :meth:`FaultSimulator.run_with_records`.

    Attributes
    ----------
    n_frames:
        Number of simulated frames.
    po_first:
        For each detected-at-PO fault index, the first frame with a
        binary primary-output difference.
    scan_diff:
        ``scan_diff[frame]`` is the set of fault indices whose captured
        flip-flop state differs from the fault-free state after that
        frame (i.e. a scan-out at ``frame`` detects them).
    """

    n_frames: int
    po_first: Dict[int, int]
    scan_diff: List[Set[int]]

    def detected_with_scanout_at(self, frame: int) -> Set[int]:
        """Faults detected by the test truncated to ``frame`` + scan-out."""
        detected = {f for f, first in self.po_first.items() if first <= frame}
        detected |= self.scan_diff[frame]
        return detected

    def earliest_safe_scanout(self, required: Set[int]) -> Tuple[int, Set[int]]:
        """Smallest frame ``i`` whose truncated test detects ``required``.

        Mirrors the paper's Step 3: scan candidates ``i = 0, 1, ...`` and
        keep the first one that loses no fault of ``required``; at least
        ``n_frames - 1`` always qualifies when ``required`` equals the
        full-sequence detection set.

        Returns ``(i, detected_at_i)``.

        Raises
        ------
        ValueError
            If the records cover no frames (there is no candidate
            scan-out time unit at all), or if not even the full
            sequence detects ``required``.
        """
        if self.n_frames == 0:
            raise ValueError(
                "cannot select a scan-out time unit: the recorded test "
                "has no frames")
        pending = set(required)
        po_by_frame: List[Set[int]] = [set() for _ in range(self.n_frames)]
        for fid, first in self.po_first.items():
            if fid in pending:
                po_by_frame[first].add(fid)
        po_so_far: Set[int] = set()
        missing: Set[int] = pending
        for i in range(self.n_frames):
            po_so_far |= po_by_frame[i]
            missing = pending - po_so_far - self.scan_diff[i]
            if not missing:
                return i, self.detected_with_scanout_at(i)
        raise ValueError(
            f"{len(missing)} required faults not detected by the full test")


class FaultSimulator:
    """Parallel-fault simulator bound to one circuit and one fault set.

    ``width`` selects the packing policy (see the module docstring):
    ``"auto"`` fuses each pass's faults into one wide word (capped at
    :data:`FUSED_CAP` machines), an int gives fixed-width chunking.

    ``scan_positions`` turns the simulator into a *partial-scan* model:
    scan-in vectors cover (and scan-outs observe) only the flip-flops
    at those positions; the rest power up unknown and are never
    directly observed.  ``None`` means full scan.

    ``counters`` is the :class:`~repro.sim.counters.SimCounters` the
    inner loops bump; pass a shared instance to aggregate across
    simulators (one is created when omitted).
    """

    def __init__(self, circuit: CompiledCircuit, faults: FaultSet,
                 width: WidthPolicy = "auto",
                 scan_positions: Optional[Sequence[int]] = None,
                 counters: Optional[SimCounters] = None,
                 fused_cap: Optional[int] = None) -> None:
        if fused_cap is None:
            fused_cap = _resolve_fused_cap()
        if width == "auto":
            if fused_cap < 2:
                raise ValueError("fused_cap must allow at least one "
                                 "faulty machine")
        elif isinstance(width, int):
            if width < 2:
                raise ValueError(
                    "width must allow at least one faulty machine")
        else:
            raise ValueError(f"unknown width policy {width!r}; "
                             f"use an int >= 2 or 'auto'")
        self.circuit = circuit
        self.faults = faults
        self.width = width
        self.fused_cap = fused_cap
        self.np_auto_min = _resolve_np_auto_min()
        #: Sanitizer shadows set this to pin the big-int path, so a
        #: cross-check of an array-backend pass is cross-*backend* as
        #: well as cross-packing.
        self._force_bigint = False
        self.counters = counters if counters is not None else SimCounters()
        if scan_positions is None:
            self.scan_positions: Optional[List[int]] = None
            self.n_state_vars = len(circuit.ff_ids)
        else:
            self.scan_positions = sorted(scan_positions)
            if self.scan_positions and (
                    self.scan_positions[0] < 0 or
                    self.scan_positions[-1] >= len(circuit.ff_ids)):
                raise ValueError("scan position out of range")
            self.n_state_vars = len(self.scan_positions)
        net = circuit.netlist
        ids = net.net_ids
        self._source_ids = set(circuit.pi_ids) | set(circuit.ff_ids)
        self._ff_pos = {name: i for i, name in enumerate(net.flip_flops)}
        self._sanitize_spots_left = _SANITIZE_SPOT_BUDGET
        self._sanitize_shadow = False
        #: Optional fault-ordering hint for multi-chunk packing (set
        #: via :meth:`set_adi_order`); ``None`` keeps the default
        #: sorted-by-index grouping.
        self._adi_order: Optional[Dict[int, int]] = None
        #: Representative indices of proven-untestable classes (set
        #: via :meth:`set_untestable`); excluded from every pass.
        self._untestable: frozenset = frozenset()
        # Precompute per-fault injection spec:
        #   ("stem", net_id) | ("branch", out_net_id, pin) | ("ff", ff_pos)
        self._spec: List[Tuple[Any, ...]] = []
        for fault in faults:
            if fault.pin is None:
                self._spec.append(("stem", ids[fault.net]))
            else:
                gate_name, pin = fault.pin
                gate = net.gates[gate_name]
                if gate.gtype == "DFF":
                    self._spec.append(("ff", self._ff_pos[gate_name]))
                else:
                    self._spec.append(("branch", ids[gate_name], pin))

    # ------------------------------------------------------------------
    def _array_backend_for(self, n_machines: int) -> Optional[Any]:
        """The array backend to run a pass chunk with, or ``None``.

        ``engine="numpy"`` always routes to the backend (C kernel or
        pure-numpy fallback).  ``engine="auto"`` routes only when the
        kernel compiled and the chunk packs at least
        ``np_auto_min`` machines -- otherwise the fused big-int path
        is faster.  Big-int engines (and sanitizer shadows) get
        ``None``.
        """
        if self._force_bigint:
            return None
        engine = self.circuit.engine
        if engine == "numpy":
            return self.circuit.array_backend
        if engine == "auto":
            backend = self.circuit.array_backend
            if (backend is None or not backend.kernel_available or
                    n_machines + 1 < self.np_auto_min):
                return None
            return backend
        return None

    # ------------------------------------------------------------------
    def set_adi_order(self, scores: Optional[Dict[int, int]]) -> None:
        """Install (or clear) an Accidental-Detection-Index packing
        order.

        When set, multi-chunk packings group faults by *descending*
        ADI instead of by index, so the frequently-accidentally-
        detected (easy) faults share words and saturate those words
        early, while the hard low-ADI faults concentrate in the last
        words.  This is a pure acceleration: per-machine logic values
        are independent of packing, so detection sets are unchanged
        (the equivalence suite enforces it); only word/frame counters
        move.  Pass ``None`` to restore the default order -- callers
        that share a simulator across runs must clear it when done.
        """
        self._adi_order = scores

    # ------------------------------------------------------------------
    def set_untestable(self, indices: Optional[Sequence[int]]) -> None:
        """Exclude proven-untestable faults from every future pass.

        ``indices`` are fault indices whose untestability the static
        analyzer (:mod:`repro.analysis.faultspace`) *proved*.  A
        proven-untestable fault appears in no detection set, ever, so
        dropping its machines from every word changes no reported
        result -- only the machine-bit counters.  The untestability
        closure covers whole equivalence classes, so the exclusion is
        tracked per class representative.  Pass ``None`` (or an empty
        sequence) to clear.
        """
        if not indices:
            self._untestable = frozenset()
            return
        self._untestable = self.faults.untestable_reps(set(indices))
        self.counters.untestable_dropped += len(set(indices))

    def _prepare_target(
        self, target: Sequence[int],
    ) -> Tuple[Sequence[int], Optional[Dict[int, List[int]]]]:
        """Representative translation of a pass target.

        Returns ``(sim_target, expand)`` per
        :meth:`~repro.sim.faults.FaultSet.collapse_target`: the class
        representatives actually simulated and the map re-inflating
        their detections to the requested members (``None`` when no
        translation happened).
        """
        return self.faults.collapse_target(target, self._untestable)

    @staticmethod
    def _expand_detected(detected: Set[int],
                         expand: Dict[int, List[int]]) -> Set[int]:
        """Re-inflate a representative-level detection set to the
        requested class members (byte-identical: members of one class
        share every detection set exactly)."""
        out: Set[int] = set()
        for rep in detected:
            out.update(expand[rep])
        return out

    # ------------------------------------------------------------------
    def resolve_width(self, n_targets: int) -> int:
        """The word width a pass over ``n_targets`` faults will use.

        ``"auto"`` fuses everything into one word up to
        ``fused_cap`` machines; beyond that, balanced chunks (all
        within one machine of each other) no wider than the cap --
        e.g. 9000 faults over a 4096 cap become three ~3000-machine
        words rather than two full ones and a 808-machine remainder.
        """
        if self.width != "auto":
            return self.width
        if n_targets <= 0:
            return 2
        cap = self.fused_cap
        if n_targets + 1 <= cap:
            return n_targets + 1
        n_chunks = -(-n_targets // (cap - 1))     # ceil division
        return -(-n_targets // n_chunks) + 1

    def _build_chunks(self, indices: Sequence[int],
                      width: Optional[int] = None) -> List[_Chunk]:
        ordered = sorted(indices)
        if width is None:
            width = self.resolve_width(len(ordered))
        chunks: List[_Chunk] = []
        per = width - 1
        # Spread the faults evenly over ceil(n/per) chunks instead of
        # filling chunks to `per` and leaving a short remainder: sizes
        # end up within one machine of each other.
        n_chunks = max(1, -(-len(ordered) // per)) if ordered else 0
        adi = self._adi_order
        if adi is not None and n_chunks > 1:
            # ADI packing: group easy (high-ADI) faults together so
            # their words saturate and break early, and concentrate
            # the hard faults in the trailing words.  A single-chunk
            # packing is order-invariant, so the reorder only fires
            # (and only counts) when it can matter.
            order = adi
            ordered.sort(key=lambda fid: (-order.get(fid, 0), fid))
            self.counters.adi_orderings += 1
        groups: List[List[int]] = []
        start = 0
        for k in range(n_chunks):
            size = len(ordered) // n_chunks + \
                (1 if k < len(ordered) % n_chunks else 0)
            groups.append(sorted(ordered[start:start + size]))
            start += size
        for group in groups:
            chunk = _Chunk(indices=group, mask=(1 << (len(group) + 1)) - 1)
            for pos, fid in enumerate(group):
                bit = chunk.bit_of(pos)
                spec = self._spec[fid]
                stuck = self.faults[fid].stuck
                if spec[0] == "stem":
                    target = chunk.stem1 if stuck else chunk.stem0
                    target[spec[1]] = target.get(spec[1], 0) | bit
                elif spec[0] == "branch":
                    m0 = bit if stuck == 0 else 0
                    m1 = bit if stuck == 1 else 0
                    chunk.branch.setdefault(spec[1], []).append(
                        (spec[2], m0, m1))
                else:  # ff data-pin branch fault
                    m0 = bit if stuck == 0 else 0
                    m1 = bit if stuck == 1 else 0
                    chunk.ff_branch.append((spec[1], m0, m1))
            chunk.stems = {
                nid: (chunk.stem0.get(nid, 0), chunk.stem1.get(nid, 0))
                for nid in set(chunk.stem0) | set(chunk.stem1)}
            chunk.src_stem_ids = [
                nid for nid in chunk.stems if nid in self._source_ids]
            chunks.append(chunk)
        return chunks

    @staticmethod
    def _apply_stem(chunk: _Chunk, zero: List[int], one: List[int],
                    nid: int) -> None:
        m0 = chunk.stem0.get(nid, 0)
        m1 = chunk.stem1.get(nid, 0)
        keep = chunk.mask & ~(m0 | m1)
        zero[nid] = (zero[nid] & keep) | m0
        one[nid] = (one[nid] & keep) | m1

    def _init_words(self, chunk: _Chunk, init_state: V.Vector
                    ) -> Tuple[List[int], List[int]]:
        n = self.circuit.n_nets
        zero = [0] * n
        one = [0] * n
        for nid, val in zip(self.circuit.ff_ids, init_state):
            zero[nid], one[nid] = V.pack_scalar(val, chunk.mask)
        return zero, one

    def _load_frame(self, chunk: _Chunk, zero: List[int], one: List[int],
                    vector: V.Vector) -> None:
        for nid, val in zip(self.circuit.pi_ids, vector):
            zero[nid], one[nid] = V.pack_scalar(val, chunk.mask)
        for nid in chunk.src_stem_ids:
            self._apply_stem(chunk, zero, one, nid)

    def _next_state_words(self, chunk: _Chunk, zero: List[int],
                          one: List[int]) -> Tuple[List[int], List[int]]:
        ns_zero = [zero[nid] for nid in self.circuit.ff_d_ids]
        ns_one = [one[nid] for nid in self.circuit.ff_d_ids]
        for pos, m0, m1 in chunk.ff_branch:
            keep = chunk.mask & ~(m0 | m1)
            ns_zero[pos] = (ns_zero[pos] & keep) | m0
            ns_one[pos] = (ns_one[pos] & keep) | m1
        return ns_zero, ns_one

    @staticmethod
    def _diff_word(zero: int, one: int) -> int:
        """Machines whose binary value differs from the good (bit 0) value."""
        if one & 1:
            return zero
        if zero & 1:
            return one
        return 0

    # ------------------------------------------------------------------
    @staticmethod
    def _gather_bits(word: int, positions: Sequence[int]) -> int:
        """Compress ``word`` to the machine bits at ``positions`` (in
        order): bit ``positions[i]`` of ``word`` becomes bit ``i``."""
        out = 0
        for i, p in enumerate(positions):
            out |= ((word >> p) & 1) << i
        return out

    def _repack(self, chunk: _Chunk, caught: int,
                ns_zero: List[int], ns_one: List[int]
                ) -> Tuple[_Chunk, List[int], List[int]]:
        """In-pass retirement: rebuild the pass state without the
        machines in ``caught``.

        Returns ``(new_chunk, zero, one)`` where the word arrays hold
        the surviving machines' flip-flop state (gathered from the
        next-state words) and every other net is zero -- sources are
        reloaded and gate outputs recomputed on the next frame, so no
        stale wide bits can leak into the narrower pass.
        """
        keep_positions = [0]       # the good machine always survives
        remaining: List[int] = []
        for pos, fid in enumerate(chunk.indices):
            if not caught & chunk.bit_of(pos):
                keep_positions.append(pos + 1)
                remaining.append(fid)
        new_chunk = self._build_chunks(remaining,
                                       width=len(remaining) + 1)[0]
        if sanitizer.enabled():
            sanitizer.check_chunk(new_chunk, "FaultSimulator.detect repack")
        n = self.circuit.n_nets
        zero = [0] * n
        one = [0] * n
        for ff_pos, nid in enumerate(self.circuit.ff_ids):
            zero[nid] = self._gather_bits(ns_zero[ff_pos], keep_positions)
            one[nid] = self._gather_bits(ns_one[ff_pos], keep_positions)
        return new_chunk, zero, one

    # ------------------------------------------------------------------
    def _check_vectors(self, vectors: Sequence[V.Vector]) -> None:
        n_pi = len(self.circuit.pi_ids)
        for i, vector in enumerate(vectors):
            if len(vector) != n_pi:
                raise ValueError(
                    f"vector {i} has width {len(vector)}, expected "
                    f"{n_pi} primary inputs")

    def embed_state(self, state: Optional[V.Vector]) -> V.Vector:
        """Expand a scan-width state vector to full flip-flop width.

        Under full scan this is the identity (modulo the all-X default
        for ``None``); under partial scan the scanned values land at
        their positions and every other flip-flop is X.
        """
        n_ff = len(self.circuit.ff_ids)
        if state is None:
            return V.all_x(n_ff)
        if self.scan_positions is None:
            if len(state) != n_ff:
                raise ValueError(
                    f"state width {len(state)} != {n_ff} flip-flops")
            return tuple(state)
        if len(state) != len(self.scan_positions):
            raise ValueError(
                f"state width {len(state)} != "
                f"{len(self.scan_positions)} scanned flip-flops")
        full = [V.X] * n_ff
        for pos, val in zip(self.scan_positions, state):
            full[pos] = val
        return tuple(full)

    def detect(
        self,
        vectors: Sequence[V.Vector],
        init_state: Optional[V.Vector] = None,
        target: Optional[Sequence[int]] = None,
        scan_out: bool = True,
        observe_po: bool = True,
        early_exit: bool = True,
        scan_observe: Optional[Sequence[int]] = None,
        retire_to: Optional[FaultScoreboard] = None,
    ) -> Set[int]:
        """Fault indices (within ``target``) detected by the test.

        Parameters
        ----------
        vectors:
            The primary-input sequence ``T`` (binary or 3-valued).
        init_state:
            The scan-in vector ``SI``; ``None`` simulates without scan
            from the all-X state (Phase-1 Step 1).
        target:
            Fault indices to simulate; defaults to the whole fault set.
        scan_out:
            When true, the flip-flop state captured by the last frame is
            observed (the trailing scan-out operation).
        observe_po:
            When false, primary outputs are ignored (useful in tests).
        early_exit:
            Stop as soon as every target fault is detected, and retire
            already-caught machines mid-pass by repacking the survivors
            into a narrower word (in-pass fault dropping; the returned
            set is unaffected).
        scan_observe:
            Flip-flop positions readable by the scan-out; ``None``
            means all (full scan).  A partial-scan chain observes only
            its scanned flip-flops.
        retire_to:
            Optional shared scoreboard; every detected fault is
            retired into it (the caller asserts this test is part of
            the committed test set).
        """
        if target is None:
            target = range(len(self.faults))
        self._check_vectors(vectors)
        init_state = self.embed_state(init_state)
        if scan_observe is None:
            scan_observe = self.scan_positions
        sim_target, expand = self._prepare_target(target)
        chunks = self._build_chunks(sim_target)
        if sanitizer.enabled():
            if retire_to is not None:
                sanitizer.check_fresh_targets(retire_to, target,
                                              "FaultSimulator.detect")
            for chunk in chunks:
                sanitizer.check_chunk(chunk, "FaultSimulator.detect")
        counters = self.counters
        counters.detect_passes += 1
        detected: Set[int] = set()
        last = len(vectors) - 1
        longest = 0
        for chunk in chunks:
            backend = self._array_backend_for(len(chunk.indices))
            if backend is not None:
                longest = max(longest, backend.run_detect_chunk(
                    self, chunk, vectors, init_state, scan_out,
                    observe_po, early_exit, scan_observe, detected))
                continue
            zero, one = self._init_words(chunk, init_state)
            caught = 0  # machine bits already detected in this chunk
            frame = 0
            frames_done = 0
            while frame <= last:
                vector = vectors[frame]
                self._load_frame(chunk, zero, one, vector)
                self.circuit.eval_frame(zero, one, chunk.mask,
                                        chunk.stems, chunk.branch)
                counters.note_words(1, len(chunk.indices))
                frames_done += 1
                ns_zero, ns_one = self._next_state_words(chunk, zero, one)
                if observe_po:
                    for nid in self.circuit.po_ids:
                        caught |= self._diff_word(zero[nid], one[nid])
                if scan_out and frame == last:
                    if scan_observe is None:
                        for z, o in zip(ns_zero, ns_one):
                            caught |= self._diff_word(z, o)
                    else:
                        for pos in scan_observe:
                            caught |= self._diff_word(ns_zero[pos],
                                                      ns_one[pos])
                caught &= ~1
                if caught == chunk.mask & ~1:
                    # Saturated: every machine of this chunk is caught,
                    # so no further frame (or the scan-out) can change
                    # the result -- sound whatever ``early_exit`` says.
                    break
                if (early_exit and caught and
                        len(chunk.indices) >= _REPACK_MIN_MACHINES and
                        last - frame >= _REPACK_MIN_FRAMES_LEFT and
                        2 * bin(caught).count("1") >= len(chunk.indices)):
                    # In-pass retirement: bank the caught faults and
                    # carry on with a word half (or less) the size.
                    n_dropped = 0
                    for pos, fid in enumerate(chunk.indices):
                        if caught & chunk.bit_of(pos):
                            detected.add(fid)
                            n_dropped += 1
                    chunk, zero, one = self._repack(chunk, caught,
                                                    ns_zero, ns_one)
                    counters.repacks += 1
                    counters.faults_dropped += n_dropped
                    caught = 0
                    frame += 1
                    continue
                for nid, z, o in zip(self.circuit.ff_ids, ns_zero, ns_one):
                    zero[nid], one[nid] = z, o
                frame += 1
            longest = max(longest, frames_done)
            for pos, fid in enumerate(chunk.indices):
                if caught & chunk.bit_of(pos):
                    detected.add(fid)
        counters.frames += longest
        if (sanitizer.enabled() and not self._sanitize_shadow and
                self._sanitize_spots_left > 0 and vectors):
            # Shadow at representative level: reps are fixed points of
            # the translation, so the shadow's own re-translation is
            # the identity and the two rep-level sets must agree.
            self._sanitize_agreement(vectors, init_state,
                                     sorted(sim_target), scan_out,
                                     observe_po, scan_observe, detected)
        if expand is not None:
            detected = self._expand_detected(detected, expand)
        if retire_to is not None:
            retire_to.retire(detected)
        return detected

    def _sanitize_agreement(
        self, vectors: Sequence[V.Vector], full_state: V.Vector,
        target_list: List[int], scan_out: bool, observe_po: bool,
        scan_observe: Optional[Sequence[int]], detected: Set[int],
    ) -> None:
        """Spot-check one finished ``detect`` pass against a shadow
        simulator using the *opposite* packing policy (fused vs
        chunked), with early exit and retirement off.  The shadow
        always runs the big-int path (``_force_bigint``), so when the
        primary pass went through the numpy array backend this is a
        cross-backend check as well as a cross-packing one.  Budgeted
        per simulator and capped in target size; see the sanitizer
        module.
        """
        if not 0 < len(target_list) <= _SANITIZE_SPOT_TARGET_CAP:
            return
        self._sanitize_spots_left -= 1
        if self.width == "auto":
            # Force genuine chunking: split the targets over >= 2 words.
            shadow_width: WidthPolicy = max(2, len(target_list) // 2 + 1)
        else:
            shadow_width = "auto"
        shadow = FaultSimulator(self.circuit, self.faults,
                                width=shadow_width,
                                counters=SimCounters())
        shadow._sanitize_shadow = True
        shadow._force_bigint = True
        other = shadow.detect(vectors, init_state=full_state,
                              target=target_list, scan_out=scan_out,
                              observe_po=observe_po, early_exit=False,
                              scan_observe=scan_observe)
        fused, chunked = ((set(detected), other)
                          if self.width == "auto"
                          else (other, set(detected)))
        sanitizer.check_agreement(
            fused, chunked,
            f"FaultSimulator.detect ({len(target_list)} targets, "
            f"width={self.width!r} vs {shadow_width!r})")

    # ------------------------------------------------------------------
    def run_with_records(
        self,
        vectors: Sequence[V.Vector],
        init_state: Optional[V.Vector] = None,
        target: Optional[Sequence[int]] = None,
        scan_observe: Optional[Sequence[int]] = None,
    ) -> SimRecords:
        """Full-sequence pass recording PO-first-detect and scan-out diffs.

        One simulation of ``(init_state, vectors)`` that yields enough
        information to evaluate *every* truncated test
        ``(init_state, vectors[:i+1])`` exactly (paper Phase-1 Step 3).
        """
        if target is None:
            target = range(len(self.faults))
        self._check_vectors(vectors)
        init_state = self.embed_state(init_state)
        if scan_observe is None:
            scan_observe = self.scan_positions
        sim_target, expand = self._prepare_target(target)
        chunks = self._build_chunks(sim_target)
        counters = self.counters
        counters.record_passes += 1
        n_frames = len(vectors)
        counters.frames += n_frames
        po_first: Dict[int, int] = {}
        scan_diff: List[Set[int]] = [set() for _ in range(n_frames)]
        for chunk in chunks:
            backend = self._array_backend_for(len(chunk.indices))
            if backend is not None:
                backend.run_records_chunk(self, chunk, vectors,
                                          init_state, scan_observe,
                                          po_first, scan_diff)
                continue
            zero, one = self._init_words(chunk, init_state)
            po_seen = 0
            for frame, vector in enumerate(vectors):
                self._load_frame(chunk, zero, one, vector)
                self.circuit.eval_frame(zero, one, chunk.mask,
                                        chunk.stems, chunk.branch)
                counters.note_words(1, len(chunk.indices))
                ns_zero, ns_one = self._next_state_words(chunk, zero, one)
                po_now = 0
                for nid in self.circuit.po_ids:
                    po_now |= self._diff_word(zero[nid], one[nid])
                po_new = po_now & ~po_seen & ~1
                if po_new:
                    for pos, fid in enumerate(chunk.indices):
                        if po_new & chunk.bit_of(pos):
                            po_first[fid] = frame
                    po_seen |= po_new
                sdiff = 0
                if scan_observe is None:
                    for z, o in zip(ns_zero, ns_one):
                        sdiff |= self._diff_word(z, o)
                else:
                    for pos in scan_observe:
                        sdiff |= self._diff_word(ns_zero[pos],
                                                 ns_one[pos])
                sdiff &= ~1
                if sdiff:
                    frame_set = scan_diff[frame]
                    for pos, fid in enumerate(chunk.indices):
                        if sdiff & chunk.bit_of(pos):
                            frame_set.add(fid)
                for nid, z, o in zip(self.circuit.ff_ids, ns_zero, ns_one):
                    zero[nid], one[nid] = z, o
        if expand is not None:
            # Members share the representative's per-frame behavior
            # exactly, so each record entry re-inflates verbatim.
            po_first = {m: first for rep, first in po_first.items()
                        for m in expand[rep]}
            scan_diff = [self._expand_detected(s, expand)
                         for s in scan_diff]
        return SimRecords(n_frames, po_first, scan_diff)

    # ------------------------------------------------------------------
    # Candidate-parallel (lane-transposed) simulation
    # ------------------------------------------------------------------

    def _lane_groups_per_word(self, n_lanes: int) -> int:
        """Fault groups per lane-transposed word: the packing cap
        (fused cap under ``"auto"``, the chunk width otherwise) divided
        by the lanes each group occupies, never below one group."""
        cap = self.fused_cap if self.width == "auto" else self.width
        return max(1, cap // n_lanes)

    def _build_lane_chunks(self, indices: Sequence[int], n_lanes: int,
                           groups_per_word: Optional[int] = None
                           ) -> List[_LaneChunk]:
        """Balanced lane-transposed chunks over sorted ``indices``."""
        ordered = sorted(indices)
        if groups_per_word is None:
            groups_per_word = self._lane_groups_per_word(n_lanes)
        n_chunks = max(1, -(-len(ordered) // groups_per_word)) \
            if ordered else 0
        adi = self._adi_order
        if adi is not None and n_chunks > 1:
            # Same ADI packing as _build_chunks: high-ADI lane blocks
            # share words so those words saturate early.
            order = adi
            ordered.sort(key=lambda fid: (-order.get(fid, 0), fid))
            self.counters.adi_orderings += 1
        lane_mask = (1 << n_lanes) - 1
        chunks: List[_LaneChunk] = []
        start = 0
        for k in range(n_chunks):
            size = len(ordered) // n_chunks + \
                (1 if k < len(ordered) % n_chunks else 0)
            group = sorted(ordered[start:start + size])
            start += size
            chunk = _LaneChunk(indices=group, n_lanes=n_lanes,
                               mask=(1 << (len(group) * n_lanes)) - 1)
            stem0: Dict[int, int] = {}
            stem1: Dict[int, int] = {}
            for g, fid in enumerate(group):
                block = lane_mask << (g * n_lanes)
                spec = self._spec[fid]
                stuck = self.faults[fid].stuck
                if spec[0] == "stem":
                    target = stem1 if stuck else stem0
                    target[spec[1]] = target.get(spec[1], 0) | block
                elif spec[0] == "branch":
                    m0 = block if stuck == 0 else 0
                    m1 = block if stuck == 1 else 0
                    chunk.branch.setdefault(spec[1], []).append(
                        (spec[2], m0, m1))
                else:  # ff data-pin branch fault
                    m0 = block if stuck == 0 else 0
                    m1 = block if stuck == 1 else 0
                    chunk.ff_branch.append((spec[1], m0, m1))
            chunk.stems = {
                nid: (stem0.get(nid, 0), stem1.get(nid, 0))
                for nid in set(stem0) | set(stem1)}
            chunk.src_stem_ids = [
                nid for nid in chunk.stems if nid in self._source_ids]
            chunks.append(chunk)
        return chunks

    def _good_candidate_pass(
        self, vectors: Sequence[V.Vector],
        full_states: Sequence[V.Vector],
        observe_po: bool, scan_out: bool,
        scan_observe: Optional[Sequence[int]],
    ) -> Tuple[List[List[Tuple[int, int]]],
               Optional[List[Tuple[int, int]]]]:
        """One fault-free pass with candidate ``k`` in lane ``k``.

        Returns ``(po_frames, final_state)``: the per-frame primary-
        output lane words (empty inner lists when ``observe_po`` is
        false) and the flip-flop lane words captured by the last frame
        at the observed positions (None without ``scan_out``).
        """
        circuit = self.circuit
        n_lanes = len(full_states)
        lane_mask = (1 << n_lanes) - 1
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for ff_pos, nid in enumerate(circuit.ff_ids):
            zero[nid], one[nid] = V.pack_lanes(
                [s[ff_pos] for s in full_states])
        po_frames: List[List[Tuple[int, int]]] = []
        final_state: Optional[List[Tuple[int, int]]] = None
        last = len(vectors) - 1
        for frame, vector in enumerate(vectors):
            for nid, val in zip(circuit.pi_ids, vector):
                zero[nid], one[nid] = V.pack_scalar(val, lane_mask)
            circuit.eval_frame(zero, one, lane_mask)
            self.counters.note_words(1, n_lanes)
            po_frames.append([(zero[nid], one[nid])
                              for nid in circuit.po_ids]
                             if observe_po else [])
            ns = [(zero[nid], one[nid]) for nid in circuit.ff_d_ids]
            if scan_out and frame == last:
                if scan_observe is None:
                    final_state = ns
                else:
                    final_state = [ns[pos] for pos in scan_observe]
            for nid, (z, o) in zip(circuit.ff_ids, ns):
                zero[nid], one[nid] = z, o
        return po_frames, final_state

    def detect_candidates(
        self,
        vectors: Sequence[V.Vector],
        init_states: Sequence[V.Vector],
        target: Optional[Sequence[int]] = None,
        scan_out: bool = True,
        observe_po: bool = True,
        scan_observe: Optional[Sequence[int]] = None,
    ) -> List[Set[int]]:
        """Per-candidate detection sets of ``(SI_k, vectors)``, all at
        once -- the transposed packing mode behind Phase-1 scan-in
        selection.

        Instead of one full-sequence :meth:`detect` pass per candidate
        scan-in state (faults in the lanes, ``|C|`` passes), the
        *candidates* occupy the lanes: one fault-free pass simulates
        every candidate's good machine simultaneously (gates evaluate
        bitwise, so lanes never interact), then the target faults are
        packed ``groups x lanes`` into wide words and each fault is
        injected across all candidate lanes in one pass.  Per-lane
        detection is the usual binary good/faulty difference, compared
        lane-by-lane against the recorded good pass.  A fault caught
        in every lane retires mid-pass (its lane block repacks away);
        it contributes to every candidate equally, so retirement can
        never change the per-candidate counts this method reports.

        Returns one detected-fault-index set per candidate, exactly
        equal to ``[detect(vectors, s, target, early_exit=False) for s
        in init_states]`` (the equivalence suite enforces this bit for
        bit).
        """
        self._check_vectors(vectors)
        full_states = [self.embed_state(s) for s in init_states]
        if scan_observe is None:
            scan_observe = self.scan_positions
        n_lanes = len(full_states)
        detected: List[Set[int]] = [set() for _ in range(n_lanes)]
        if n_lanes == 0:
            return detected
        if target is None:
            target = range(len(self.faults))
        sim_target, expand = self._prepare_target(target)
        target_list = sorted(sim_target)
        counters = self.counters
        counters.candidate_passes += 1
        if not vectors or not target_list:
            return detected
        good_po, good_scan = self._good_candidate_pass(
            vectors, full_states, observe_po, scan_out, scan_observe)
        counters.frames += len(vectors)
        init_words = [V.pack_lanes([s[ff_pos] for s in full_states])
                      for ff_pos in range(len(self.circuit.ff_ids))]
        lane_chunks = self._build_lane_chunks(target_list, n_lanes)
        if sanitizer.enabled():
            for chunk in lane_chunks:
                sanitizer.check_lane_chunk(
                    chunk, "FaultSimulator.detect_candidates")
        # Lazily-built trial-form inputs for the array backend: every
        # lane shares the PI sequence, is active on every frame, and
        # (with scan_out) ends on the last frame.
        trial_form: Optional[Tuple[List[List[Tuple[int, int]]],
                                   List[int], List[int],
                                   List[Optional[List[Tuple[int, int]]]],
                                   List[int]]] = None
        longest = 0
        for chunk in lane_chunks:
            backend = self._array_backend_for(
                chunk.n_groups * chunk.n_lanes)
            if backend is not None and backend.kernel_available:
                if trial_form is None:
                    lane_mask = (1 << n_lanes) - 1
                    pi_words = [
                        [V.pack_scalar(val, lane_mask) for val in vec]
                        for vec in vectors]
                    acts = [lane_mask] * len(vectors)
                    ends = [0] * len(vectors)
                    scan_frames: List[
                        Optional[List[Tuple[int, int]]]] = \
                        [None] * len(vectors)
                    if scan_out and good_scan is not None:
                        ends[-1] = lane_mask
                        scan_frames[-1] = list(good_scan)
                    slot_pos = list(
                        range(len(self.circuit.ff_ids))
                        if scan_observe is None else scan_observe)
                    trial_form = (pi_words, acts, ends, scan_frames,
                                  slot_pos)
                pi_words, acts, ends, scan_frames, slot_pos = trial_form
                caught, frames_done = backend.run_lane_chunk(
                    self, chunk, len(vectors), pi_words, acts, ends,
                    init_words, good_po, scan_frames, slot_pos,
                    observe_po)
                longest = max(longest, frames_done)
                lane_mask = (1 << n_lanes) - 1
                for g, fid in enumerate(chunk.indices):
                    lanes = (caught >> (g * n_lanes)) & lane_mask
                    k = 0
                    while lanes:
                        if lanes & 1:
                            detected[k].add(fid)
                        lanes >>= 1
                        k += 1
                continue
            longest = max(longest, self._run_lane_chunk(
                chunk, vectors, init_words, good_po, good_scan,
                observe_po, scan_out, scan_observe, detected))
        counters.frames += longest
        if expand is not None:
            detected = [self._expand_detected(lane, expand)
                        for lane in detected]
        return detected

    def _run_lane_chunk(
        self, chunk: _LaneChunk, vectors: Sequence[V.Vector],
        init_words: Sequence[Tuple[int, int]],
        good_po: List[List[Tuple[int, int]]],
        good_scan: Optional[List[Tuple[int, int]]],
        observe_po: bool, scan_out: bool,
        scan_observe: Optional[Sequence[int]],
        detected: List[Set[int]],
    ) -> int:
        """One faulty pass over a lane-transposed chunk.

        Accumulates per-lane detections into ``detected`` and returns
        the number of frames actually simulated.
        """
        circuit = self.circuit
        counters = self.counters
        n_lanes = chunk.n_lanes
        lane_mask = (1 << n_lanes) - 1
        rep = chunk.replication
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for (z, o), nid in zip(init_words, circuit.ff_ids):
            zero[nid], one[nid] = z * rep, o * rep
        caught = 0
        frame = 0
        frames_done = 0
        last = len(vectors) - 1
        while frame <= last:
            full_mask = chunk.mask
            for nid, val in zip(circuit.pi_ids, vectors[frame]):
                zero[nid], one[nid] = V.pack_scalar(val, full_mask)
            for nid in chunk.src_stem_ids:
                m0, m1 = chunk.stems[nid]
                keep = full_mask & ~(m0 | m1)
                zero[nid] = (zero[nid] & keep) | m0
                one[nid] = (one[nid] & keep) | m1
            circuit.eval_frame(zero, one, full_mask, chunk.stems,
                               chunk.branch)
            counters.note_words(1, chunk.n_groups * n_lanes)
            frames_done += 1
            ns_zero = [zero[nid] for nid in circuit.ff_d_ids]
            ns_one = [one[nid] for nid in circuit.ff_d_ids]
            for pos, m0, m1 in chunk.ff_branch:
                keep = full_mask & ~(m0 | m1)
                ns_zero[pos] = (ns_zero[pos] & keep) | m0
                ns_one[pos] = (ns_one[pos] & keep) | m1
            if observe_po:
                frame_po = good_po[frame]
                for po_i, nid in enumerate(circuit.po_ids):
                    gz, go = frame_po[po_i]
                    # Lane detected <=> good binary b, faulty binary ~b.
                    caught |= ((gz * rep) & one[nid]) | \
                              ((go * rep) & zero[nid])
            if scan_out and frame == last:
                positions = (range(len(ns_zero)) if scan_observe is None
                             else scan_observe)
                for slot, pos in enumerate(positions):
                    gz, go = good_scan[slot]
                    caught |= ((gz * rep) & ns_one[pos]) | \
                              ((go * rep) & ns_zero[pos])
            if caught == chunk.mask:
                # Every fault caught in every lane: no later frame nor
                # the scan-out can change any per-lane set.
                break
            if (chunk.n_groups >= _REPACK_MIN_GROUPS and
                    last - frame >= _REPACK_MIN_FRAMES_LEFT and caught):
                saturated = [
                    g for g in range(chunk.n_groups)
                    if (caught >> (g * n_lanes)) & lane_mask == lane_mask]
                if 2 * len(saturated) >= chunk.n_groups:
                    # Retire faults detected in every lane: they add
                    # one to every candidate count, so dropping their
                    # lane blocks cannot change the argmax inputs.
                    for g in saturated:
                        fid = chunk.indices[g]
                        for lane_set in detected:
                            lane_set.add(fid)
                    sat_set = set(saturated)
                    keep_groups = [g for g in range(chunk.n_groups)
                                   if g not in sat_set]
                    remaining = [chunk.indices[g] for g in keep_groups]
                    new_chunk = self._build_lane_chunks(
                        remaining, n_lanes,
                        groups_per_word=len(remaining))[0]
                    if sanitizer.enabled():
                        sanitizer.check_lane_chunk(
                            new_chunk,
                            "FaultSimulator.detect_candidates repack")
                    gathered_z = [0] * circuit.n_nets
                    gathered_o = [0] * circuit.n_nets
                    for ff_pos, nid in enumerate(circuit.ff_ids):
                        gathered_z[nid] = _gather_blocks(
                            ns_zero[ff_pos], keep_groups, n_lanes)
                        gathered_o[nid] = _gather_blocks(
                            ns_one[ff_pos], keep_groups, n_lanes)
                    # Partially-caught lanes of surviving groups stay
                    # caught across the repack.
                    caught = _gather_blocks(caught, keep_groups, n_lanes)
                    zero, one = gathered_z, gathered_o
                    chunk = new_chunk
                    rep = chunk.replication
                    counters.repacks += 1
                    counters.faults_dropped += len(saturated)
                    frame += 1
                    continue
            for nid, z, o in zip(circuit.ff_ids, ns_zero, ns_one):
                zero[nid], one[nid] = z, o
            frame += 1
        for g, fid in enumerate(chunk.indices):
            lanes = (caught >> (g * n_lanes)) & lane_mask
            k = 0
            while lanes:
                if lanes & 1:
                    detected[k].add(fid)
                lanes >>= 1
                k += 1
        return frames_done

    # ------------------------------------------------------------------
    # Trial-parallel (lane-batched independent tests) simulation
    # ------------------------------------------------------------------

    def detect_trials(
        self,
        trials: Sequence[Tuple[Optional[V.Vector], Sequence[V.Vector]]],
        target: Optional[Sequence[int]] = None,
        scan_out: bool = True,
        observe_po: bool = True,
        scan_observe: Optional[Sequence[int]] = None,
    ) -> List[Set[int]]:
        """Per-trial detection sets of *independent* tests, all at once.

        Each trial is a ``(scan_in, vectors)`` pair -- its own scan-in
        state *and* its own PI sequence, unlike
        :meth:`detect_candidates` where every lane shares one
        sequence.  Trials occupy the lanes of lane-transposed words
        (one good pass simulates every trial's fault-free machine
        simultaneously, then each target fault is injected across all
        trial lanes), with two per-frame lane masks handling unequal
        lengths: lanes past their own last frame receive X inputs,
        stop being observed at primary outputs, and take their
        scan-out diff exactly at their own last frame.

        Returns one detected-fault-index set per trial, exactly equal
        to ``[detect(list(v), s, target=target, scan_out=scan_out,
        observe_po=observe_po, early_exit=False,
        scan_observe=scan_observe) for (s, v) in trials]`` (the
        equivalence suite enforces this bit for bit).  This is the
        engine behind Phase-4 merge-trial prefetching and the batched
        transfer-sequence checks; passes route through the array
        backend's lane kernel under ``engine="numpy"`` / ``"auto"``.
        """
        trial_list = list(trials)
        n_lanes = len(trial_list)
        results: List[Set[int]] = [set() for _ in range(n_lanes)]
        if n_lanes == 0:
            return results
        full_trials: List[Tuple[V.Vector, List[V.Vector]]] = []
        for state, vectors in trial_list:
            self._check_vectors(vectors)
            full_trials.append((self.embed_state(state), list(vectors)))
        if scan_observe is None:
            scan_observe = self.scan_positions
        if target is None:
            target = range(len(self.faults))
        sim_target, expand = self._prepare_target(target)
        target_list = sorted(sim_target)
        counters = self.counters
        counters.trial_passes += 1
        counters.trial_lanes += n_lanes
        max_frames = max(len(v) for _, v in full_trials)
        if max_frames == 0 or not target_list:
            return results
        pi_words, acts, ends, good_po, good_scan = \
            self._good_trial_pass(full_trials, max_frames, observe_po,
                                  scan_out, scan_observe)
        counters.frames += max_frames
        init_words = [V.pack_lanes([s[ff_pos] for s, _ in full_trials])
                      for ff_pos in range(len(self.circuit.ff_ids))]
        slot_pos: List[int] = []
        if scan_out:
            slot_pos = list(range(len(self.circuit.ff_ids))
                            if scan_observe is None else scan_observe)
        chunks = self._build_lane_chunks(target_list, n_lanes)
        if sanitizer.enabled():
            for chunk in chunks:
                sanitizer.check_lane_chunk(
                    chunk, "FaultSimulator.detect_trials")
        lane_mask = (1 << n_lanes) - 1
        longest = 0
        for chunk in chunks:
            backend = self._array_backend_for(
                chunk.n_groups * chunk.n_lanes)
            if backend is not None and backend.kernel_available:
                caught, frames_done = backend.run_lane_chunk(
                    self, chunk, max_frames, pi_words, acts, ends,
                    init_words, good_po, good_scan, slot_pos,
                    observe_po)
            else:
                caught, frames_done = self._run_trial_chunk(
                    chunk, max_frames, pi_words, acts, ends,
                    init_words, good_po, good_scan, slot_pos,
                    observe_po)
            longest = max(longest, frames_done)
            for g, fid in enumerate(chunk.indices):
                lanes = (caught >> (g * n_lanes)) & lane_mask
                k = 0
                while lanes:
                    if lanes & 1:
                        results[k].add(fid)
                    lanes >>= 1
                    k += 1
        counters.frames += longest
        if expand is not None:
            results = [self._expand_detected(lane, expand)
                       for lane in results]
        return results

    def _good_trial_pass(
        self, full_trials: Sequence[Tuple[V.Vector, Sequence[V.Vector]]],
        max_frames: int, observe_po: bool, scan_out: bool,
        scan_observe: Optional[Sequence[int]],
    ) -> Tuple[List[List[Tuple[int, int]]], List[int], List[int],
               List[List[Tuple[int, int]]],
               List[Optional[List[Tuple[int, int]]]]]:
        """One fault-free pass with trial ``k`` in lane ``k``.

        Returns ``(pi_words, acts, ends, po_frames, scan_frames)``:

        * ``pi_words[f][p]`` -- the lane word pair of PI ``p`` at
          frame ``f`` (trial ``k``'s own vector value while active,
          X once past its end);
        * ``acts[f]`` / ``ends[f]`` -- lane masks of the trials still
          active at frame ``f`` / whose *last* frame is ``f``;
        * ``po_frames[f]`` -- per-PO good lane words (empty lists
          when ``observe_po`` is false);
        * ``scan_frames[f]`` -- per-observed-slot good lane words of
          the state captured by frame ``f`` when some trial ends
          there (``None`` otherwise, and everywhere without
          ``scan_out``).
        """
        circuit = self.circuit
        n_lanes = len(full_trials)
        lane_mask = (1 << n_lanes) - 1
        acts: List[int] = []
        ends: List[int] = []
        for f in range(max_frames):
            a = 0
            e = 0
            for k, (_, vecs) in enumerate(full_trials):
                if f < len(vecs):
                    a |= 1 << k
                    if f == len(vecs) - 1:
                        e |= 1 << k
            acts.append(a)
            ends.append(e)
        backend = self._array_backend_for(n_lanes)
        n_pi = len(circuit.pi_ids)
        pi_words: List[List[Tuple[int, int]]]
        if backend is not None:
            pi_words = _pack_trial_pi_lanes(backend.np, full_trials,
                                            max_frames, n_pi)
        else:
            pi_words = []
            for f in range(max_frames):
                pi_words.append([
                    V.pack_lanes([vecs[f][p] if f < len(vecs) else V.X
                                  for _, vecs in full_trials])
                    for p in range(n_pi)])
        slot_positions = (range(len(circuit.ff_ids))
                          if scan_observe is None else scan_observe)
        init_words = [V.pack_lanes([s[ff_pos] for s, _ in full_trials])
                      for ff_pos in range(len(circuit.ff_ids))]
        if backend is not None and backend.kernel_available:
            # The per-frame Python loop below dominates batched trial
            # passes; one kernel call computes the same good values.
            po_frames, scan_frames = backend.run_good_lane_pass(
                self, n_lanes, max_frames, pi_words, ends,
                init_words, observe_po, list(slot_positions),
                scan_out)
            return pi_words, acts, ends, po_frames, scan_frames
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for nid, (z, o) in zip(circuit.ff_ids, init_words):
            zero[nid], one[nid] = z, o
        po_frames: List[List[Tuple[int, int]]] = []
        scan_frames: List[Optional[List[Tuple[int, int]]]] = []
        for frame in range(max_frames):
            for (pz, po_), nid in zip(pi_words[frame], circuit.pi_ids):
                zero[nid], one[nid] = pz, po_
            circuit.eval_frame(zero, one, lane_mask)
            self.counters.note_words(1, n_lanes)
            po_frames.append([(zero[nid], one[nid])
                              for nid in circuit.po_ids]
                             if observe_po else [])
            ns = [(zero[nid], one[nid]) for nid in circuit.ff_d_ids]
            if scan_out and ends[frame]:
                scan_frames.append([ns[pos] for pos in slot_positions])
            else:
                scan_frames.append(None)
            for nid, (z, o) in zip(circuit.ff_ids, ns):
                zero[nid], one[nid] = z, o
        return pi_words, acts, ends, po_frames, scan_frames

    def _run_trial_chunk(
        self, chunk: _LaneChunk, n_frames: int,
        pi_words: Sequence[Sequence[Tuple[int, int]]],
        acts: Sequence[int], ends: Sequence[int],
        init_words: Sequence[Tuple[int, int]],
        good_po: Sequence[Sequence[Tuple[int, int]]],
        good_scan: Sequence[Optional[Sequence[Tuple[int, int]]]],
        slot_pos: Sequence[int], observe_po: bool,
    ) -> Tuple[int, int]:
        """One faulty big-int pass over a trial-lane chunk.

        Mirrors :meth:`_run_lane_chunk` with per-lane PI words and
        the ``acts`` / ``ends`` gating (no in-pass repack: trial
        batches are short and bounded at 64 lanes).  Returns
        ``(caught, frames_done)``.
        """
        circuit = self.circuit
        counters = self.counters
        n_lanes = chunk.n_lanes
        rep = chunk.replication
        full_mask = chunk.mask
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for (z, o), nid in zip(init_words, circuit.ff_ids):
            zero[nid], one[nid] = z * rep, o * rep
        caught = 0
        frames_done = 0
        for frame in range(n_frames):
            for (pz, po_), nid in zip(pi_words[frame], circuit.pi_ids):
                zero[nid], one[nid] = pz * rep, po_ * rep
            for nid in chunk.src_stem_ids:
                m0, m1 = chunk.stems[nid]
                keep = full_mask & ~(m0 | m1)
                zero[nid] = (zero[nid] & keep) | m0
                one[nid] = (one[nid] & keep) | m1
            circuit.eval_frame(zero, one, full_mask, chunk.stems,
                               chunk.branch)
            counters.note_words(1, chunk.n_groups * n_lanes)
            frames_done += 1
            ns_zero = [zero[nid] for nid in circuit.ff_d_ids]
            ns_one = [one[nid] for nid in circuit.ff_d_ids]
            for pos, m0, m1 in chunk.ff_branch:
                keep = full_mask & ~(m0 | m1)
                ns_zero[pos] = (ns_zero[pos] & keep) | m0
                ns_one[pos] = (ns_one[pos] & keep) | m1
            if observe_po and acts[frame]:
                act_rep = acts[frame] * rep
                frame_po = good_po[frame]
                for po_i, nid in enumerate(circuit.po_ids):
                    gz, go = frame_po[po_i]
                    caught |= act_rep & (((gz * rep) & one[nid]) |
                                         ((go * rep) & zero[nid]))
            frame_scan = good_scan[frame]
            if frame_scan is not None:
                end_rep = ends[frame] * rep
                for slot_i, pos in enumerate(slot_pos):
                    gz, go = frame_scan[slot_i]
                    caught |= end_rep & (((gz * rep) & ns_one[pos]) |
                                         ((go * rep) & ns_zero[pos]))
            if caught == full_mask:
                # Every fault caught in every trial lane: no later
                # frame can change any per-trial set.
                break
            for nid, z, o in zip(circuit.ff_ids, ns_zero, ns_one):
                zero[nid], one[nid] = z, o
        return caught, frames_done

    # ------------------------------------------------------------------
    def incremental(self, init_state: Optional[V.Vector] = None,
                    target: Optional[Sequence[int]] = None
                    ) -> "IncrementalFaultSim":
        """An :class:`IncrementalFaultSim` positioned at frame 0."""
        return IncrementalFaultSim(self, init_state, target)

    # ------------------------------------------------------------------
    def detect_faults(self, vectors, init_state=None,
                      target_faults: Optional[Sequence[Fault]] = None,
                      **kwargs) -> Set[Fault]:
        """Like :meth:`detect` but takes and returns :class:`Fault` objects."""
        target = (None if target_faults is None
                  else self.faults.indices(target_faults))
        detected = self.detect(vectors, init_state, target, **kwargs)
        return {self.faults[i] for i in detected}


def benchmark_packing(
    circuit: CompiledCircuit,
    faults: FaultSet,
    frames: int = 8,
    chunk_width: int = DEFAULT_WIDTH,
    seed: int = 0,
) -> Tuple[str, float, float]:
    """Measure fused vs chunked packing on a concrete circuit.

    Runs one short random-sequence pass over the whole fault set under
    each policy and returns ``(winner, fused_seconds, chunked_seconds)``
    where ``winner`` is ``"auto"`` or ``chunk_width``-as-int semantics
    (``"chunked"``).  This is the measurement behind the ``"auto"``
    heuristics: on every circuit we have benchmarked, fusion wins until
    word widths reach several thousand bits (:data:`FUSED_CAP`), which
    is why ``"auto"`` simply fuses below the cap.  Use this helper when
    validating the cap for an unusual circuit; ``emit_bench.py``
    records its verdict in ``BENCH_engine.json``.
    """
    import random as _random
    rng = _random.Random(seed)
    vectors = [V.random_binary_vector(len(circuit.pi_ids), rng)
               for _ in range(frames)]
    init = V.random_binary_vector(len(circuit.ff_ids), rng)
    timings = []
    for policy in ("auto", chunk_width):
        sim = FaultSimulator(circuit, faults, width=policy)
        start = time.perf_counter()
        sim.detect(vectors, init, early_exit=False)
        timings.append(time.perf_counter() - start)
    fused_s, chunked_s = timings
    return ("auto" if fused_s <= chunked_s else "chunked",
            fused_s, chunked_s)


def benchmark_engines(
    circuit: CompiledCircuit,
    faults: FaultSet,
    frames: int = 8,
    seed: int = 0,
) -> Tuple[str, float, Optional[float]]:
    """Measure the fused big-int engine vs the numpy backend.

    The backend-selection counterpart of :func:`benchmark_packing`:
    one short random-sequence ``detect`` pass over the whole fault
    set per engine, on fresh ``CompiledCircuit`` instances over the
    same netlist.  Returns ``(winner, bigint_seconds,
    numpy_seconds)`` where ``winner`` is ``"numpy"`` or ``"codegen"``
    and ``numpy_seconds`` is ``None`` when numpy is unavailable (the
    big-int engine wins by default).  This is the measurement behind
    :data:`NUMPY_AUTO_MIN_MACHINES`; ``emit_bench.py
    --engine-matrix`` records per-engine timings in the benchmark
    artifact.
    """
    import random as _random
    from .npsim import numpy_available
    rng = _random.Random(seed)
    vectors = [V.random_binary_vector(len(circuit.pi_ids), rng)
               for _ in range(frames)]
    init = V.random_binary_vector(len(circuit.ff_ids), rng)

    def _time(engine: str) -> float:
        compiled = CompiledCircuit(circuit.netlist, engine=engine)
        sim = FaultSimulator(compiled, faults, width="auto")
        start = time.perf_counter()
        sim.detect(vectors, init, early_exit=False)
        return time.perf_counter() - start

    bigint_s = _time("codegen")
    if not numpy_available():
        return "codegen", bigint_s, None
    numpy_s = _time("numpy")
    return (("numpy" if numpy_s <= bigint_s else "codegen"),
            bigint_s, numpy_s)


@dataclass
class StepPreview:
    """What one candidate vector would achieve (no state change)."""

    new_po_detections: int
    scan_diff_faults: int


class IncrementalFaultSim:
    """Frame-at-a-time fault simulation with lookahead.

    Used by the sequential sequence generator: carries the good and
    faulty machine state words across frames so a candidate next vector
    can be evaluated (:meth:`preview`) or committed (:meth:`apply`) in
    one combinational evaluation per word.

    Detection here is PO-only (the no-scan setting of the paper's
    ``T0`` generation); :meth:`scan_diff_count` exposes how many
    undetected faults a scan-out *would* catch right now.
    """

    def __init__(self, parent: FaultSimulator,
                 init_state: Optional[V.Vector] = None,
                 target: Optional[Sequence[int]] = None) -> None:
        self.parent = parent
        circuit = parent.circuit
        init_state = parent.embed_state(init_state)
        if target is None:
            target = range(len(parent.faults))
        sim_target, expand = parent._prepare_target(target)
        self._expand = expand
        self.chunks = parent._build_chunks(sim_target)
        self._words = [parent._init_words(c, init_state)
                       for c in self.chunks]
        self._caught = [0] * len(self.chunks)
        self.detected: Set[int] = set()
        self.n_frames = 0

    def _bit_weight(self, chunk: _Chunk, word: int) -> int:
        """Faults a machine-bit word stands for: a plain popcount
        without class translation, otherwise each representative bit
        weighted by its requested-member count (so previews match the
        uncollapsed arm's counts exactly)."""
        if self._expand is None:
            return bin(word).count("1")
        total = 0
        for pos, fid in enumerate(chunk.indices):
            if word & chunk.bit_of(pos):
                total += len(self._expand[fid])
        return total

    # ------------------------------------------------------------------
    def _eval_chunk(self, chunk: _Chunk, zero: List[int], one: List[int],
                    vector: V.Vector) -> Tuple[int, int, List[int],
                                               List[int]]:
        """Evaluate one frame for one chunk; returns
        ``(po_diff, scan_diff, ns_zero, ns_one)``."""
        parent = self.parent
        parent._load_frame(chunk, zero, one, vector)
        parent.circuit.eval_frame(zero, one, chunk.mask, chunk.stems,
                                  chunk.branch)
        parent.counters.note_words(1, len(chunk.indices))
        ns_zero, ns_one = parent._next_state_words(chunk, zero, one)
        po_diff = 0
        for nid in parent.circuit.po_ids:
            po_diff |= parent._diff_word(zero[nid], one[nid])
        scan_diff = 0
        for z, o in zip(ns_zero, ns_one):
            scan_diff |= parent._diff_word(z, o)
        return po_diff & ~1, scan_diff & ~1, ns_zero, ns_one

    def preview(self, vector: V.Vector) -> StepPreview:
        """Evaluate a candidate next vector without committing it."""
        new_po = 0
        sdiff_total = 0
        for ci, chunk in enumerate(self.chunks):
            zero, one = self._words[ci]
            zc, oc = list(zero), list(one)
            po_diff, scan_diff, _, _ = self._eval_chunk(chunk, zc, oc,
                                                        vector)
            fresh = po_diff & ~self._caught[ci]
            new_po += self._bit_weight(chunk, fresh)
            sdiff_total += self._bit_weight(
                chunk, scan_diff & ~self._caught[ci])
        return StepPreview(new_po, sdiff_total)

    def apply(self, vector: V.Vector) -> Set[int]:
        """Commit a vector; returns the newly PO-detected fault indices."""
        newly: Set[int] = set()
        for ci, chunk in enumerate(self.chunks):
            zero, one = self._words[ci]
            po_diff, _, ns_zero, ns_one = self._eval_chunk(chunk, zero,
                                                           one, vector)
            fresh = po_diff & ~self._caught[ci]
            if fresh:
                for pos, fid in enumerate(chunk.indices):
                    if fresh & chunk.bit_of(pos):
                        if self._expand is None:
                            newly.add(fid)
                        else:
                            newly.update(self._expand[fid])
                self._caught[ci] |= fresh
            for nid, z, o in zip(self.parent.circuit.ff_ids, ns_zero,
                                 ns_one):
                zero[nid], one[nid] = z, o
        self.detected |= newly
        self.n_frames += 1
        self.parent.counters.frames += 1
        return newly

    def good_state(self) -> V.Vector:
        """The fault-free machine's current flip-flop state."""
        circuit = self.parent.circuit
        if not self.chunks:
            return V.all_x(len(circuit.ff_ids))
        zero, one = self._words[0]
        return tuple(V.word_scalar(zero[nid], one[nid])
                     for nid in circuit.ff_ids)

    def scan_diff_count(self) -> int:
        """Undetected faults a scan-out right now would catch."""
        total = 0
        for ci, chunk in enumerate(self.chunks):
            zero, one = self._words[ci]
            sdiff = 0
            for nid in self.parent.circuit.ff_ids:
                sdiff |= self.parent._diff_word(zero[nid], one[nid])
            total += self._bit_weight(chunk,
                                      sdiff & ~1 & ~self._caught[ci])
        return total

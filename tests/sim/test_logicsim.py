"""Tests for the 3-valued levelized logic simulator."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import synth
from repro.circuits.netlist import Netlist
from repro.sim import values as V
from repro.sim.logicsim import (CompiledCircuit, simulate_comb,
                                simulate_sequence)


def single_gate(gtype, arity):
    net = Netlist(f"{gtype}{arity}")
    for i in range(arity):
        net.add_input(f"i{i}")
    net.add_dff("q", "o")  # a dummy FF so the circuit is sequential
    net.add_gate("o", gtype, [f"i{i}" for i in range(arity)])
    net.add_output("o")
    return CompiledCircuit(net.compile())


def eval_gate(gtype, inputs):
    cc = single_gate(gtype, len(inputs))
    po, _ = simulate_comb(cc, tuple(inputs), (V.X,))
    return po[0]


def ref_gate(gtype, inputs):
    """Reference 3-valued gate semantics via exhaustive X expansion."""
    xs = [i for i, v in enumerate(inputs) if v == V.X]
    results = set()
    for combo in itertools.product([0, 1], repeat=len(xs)):
        vals = list(inputs)
        for idx, bit in zip(xs, combo):
            vals[idx] = bit
        results.add(_binary_gate(gtype, vals))
    return results.pop() if len(results) == 1 else V.X


def _binary_gate(gtype, vals):
    if gtype == "AND":
        return int(all(vals))
    if gtype == "NAND":
        return int(not all(vals))
    if gtype == "OR":
        return int(any(vals))
    if gtype == "NOR":
        return int(not any(vals))
    if gtype == "XOR":
        return sum(vals) % 2
    if gtype == "XNOR":
        return 1 - sum(vals) % 2
    if gtype == "NOT":
        return 1 - vals[0]
    if gtype == "BUF":
        return vals[0]
    raise AssertionError(gtype)


class TestGateSemantics:
    @pytest.mark.parametrize("gtype", ["AND", "NAND", "OR", "NOR",
                                       "XOR", "XNOR"])
    def test_exhaustive_ternary_2in(self, gtype):
        for a in (V.ZERO, V.ONE, V.X):
            for b in (V.ZERO, V.ONE, V.X):
                assert eval_gate(gtype, [a, b]) == \
                    ref_gate(gtype, [a, b]), (gtype, a, b)

    @pytest.mark.parametrize("gtype", ["AND", "NAND", "OR", "NOR",
                                       "XOR", "XNOR"])
    def test_exhaustive_ternary_3in(self, gtype):
        for combo in itertools.product((V.ZERO, V.ONE, V.X), repeat=3):
            assert eval_gate(gtype, list(combo)) == \
                ref_gate(gtype, list(combo)), (gtype, combo)

    @pytest.mark.parametrize("gtype", ["NOT", "BUF"])
    def test_unary(self, gtype):
        for a in (V.ZERO, V.ONE, V.X):
            assert eval_gate(gtype, [a]) == ref_gate(gtype, [a])

    def test_consts(self):
        net = Netlist()
        net.add_input("a")
        net.add_dff("q", "c0")
        net.add_const("c0", 0)
        net.add_const("c1", 1)
        net.add_gate("o", "OR", ["c0", "c1"])
        net.add_output("o")
        cc = CompiledCircuit(net.compile())
        po, _ = simulate_comb(cc, (V.X,), (V.X,))
        assert po[0] == V.ONE


class TestSequence:
    def test_errors(self, s27):
        cc = CompiledCircuit(s27)
        with pytest.raises(ValueError, match="empty"):
            simulate_sequence(cc, [])
        with pytest.raises(ValueError, match="state width"):
            simulate_sequence(cc, [V.vec("0000")], V.vec("00"))
        with pytest.raises(ValueError, match="vector width"):
            simulate_sequence(cc, [V.vec("00")], V.vec("000"))

    def test_state_frames_track_captures(self, s27):
        cc = CompiledCircuit(s27)
        res = simulate_sequence(cc, [V.vec("0000")] * 3, V.vec("000"))
        assert len(res.state_frames) == 3
        assert res.final_state == res.state_frames[-1]

    def test_all_x_initial_state_default(self, s27):
        cc = CompiledCircuit(s27)
        res = simulate_sequence(cc, [V.vec("0000")])
        assert len(res.po_frames) == 1

    def test_known_s27_behaviour(self, s27):
        """G17 = NOT(G11); with state 000 and input G0=1, G11 stays 0
        in frame 1 => G17 = 1 (hand-computed)."""
        cc = CompiledCircuit(s27)
        res = simulate_sequence(cc, [V.vec("1000")], V.vec("000"))
        # G14=NOT(1)=0; G11=NOR(G5=0, G9); G12=NOR(0, G7=0)=1;
        # G8=AND(0, G6=0)=0; G15=OR(1,0)=1; G16=OR(0,0)=0;
        # G9=NAND(0,1)=1; G11=NOR(0,1)=0; G17=NOT(0)=1.
        assert res.po_frames[0][0] == V.ONE


class TestMonotonicity:
    """Refining X inputs must never flip a binary result -- the
    foundation for the paper's 'F0 is detected under any scan-in
    state' claim."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), data=st.data())
    def test_ternary_monotone_under_refinement(self, seed, data):
        net = synth.generate("mono", 3, 2, 3, 20, seed=seed % 50)
        cc = CompiledCircuit(net)
        rng = random.Random(seed)
        vec_x = tuple(data.draw(st.sampled_from(
            [V.ZERO, V.ONE, V.X])) for _ in range(3))
        state_x = tuple(data.draw(st.sampled_from(
            [V.ZERO, V.ONE, V.X])) for _ in range(3))
        po_x, ns_x = simulate_comb(cc, vec_x, state_x)
        # Refine all Xs randomly.
        vec_b = V.fill_x(vec_x, rng)
        state_b = V.fill_x(state_x, rng)
        po_b, ns_b = simulate_comb(cc, vec_b, state_b)
        for x, b in zip(po_x + ns_x, po_b + ns_b):
            if x != V.X:
                assert x == b

"""Collapsed-representative simulation is byte-identical to full.

The acceptance property of the static fault-space analyzer: a
rep-aware :class:`FaultSet` (``uncollapsed(collapse=True)``) makes the
simulators run one representative per equivalence class and re-inflate
the detections to the members.  Against the really-uncollapsed set
(``collapse=False``) every reported quantity -- detection sets,
per-test detections, records, coverage -- must match exactly, on
random synthetic circuits, across every engine, with and without the
untestable-fault exclusion.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.faultspace import analyze_faultspace
from repro.atpg import random_gen
from repro.circuits import synth
from repro.circuits.netlist import Netlist
from repro.sim import values as V
from repro.sim.comb_sim import CombPatternSim
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet, fault_classes
from repro.sim.logicsim import CompiledCircuit

_N_PI = 4

_CACHE = {}


def circuits_for(seed):
    """Random circuit + one CompiledCircuit per engine, cached."""
    if seed not in _CACHE:
        net = synth.generate("collapse", _N_PI, 3, 5, 35, seed=seed)
        engines = [CompiledCircuit(net, engine="codegen"),
                   CompiledCircuit(net.copy(), engine="generic")]
        try:
            from repro.sim.npsim import numpy_available
            if numpy_available():
                engines.append(CompiledCircuit(net.copy(),
                                               engine="numpy"))
        except ImportError:  # pragma: no cover - numpy present in CI
            pass
        collapsed = FaultSet.uncollapsed(net, collapse=True)
        plain = FaultSet.uncollapsed(net, collapse=False)
        report = analyze_faultspace(net)
        untestable = report.untestable_indices(plain.faults)
        _CACHE[seed] = (engines, collapsed, plain, untestable)
    return _CACHE[seed]


circuit_seeds = st.integers(0, 11)


def _vectors(data, rng, n):
    out = []
    for _ in range(n):
        if data.draw(st.booleans()):
            out.append(V.random_binary_vector(_N_PI, rng))
        else:
            out.append(tuple(rng.choice((V.ZERO, V.ONE, V.X))
                             for _ in range(_N_PI)))
    return out


class TestCollapsedDetectIdentical:
    @settings(max_examples=40, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_detect_sets_identical(self, seed, data):
        """Same fault universe, same test: the rep-aware set and the
        plain set report the same detections on every engine."""
        engines, collapsed, plain, untestable = circuits_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 8)))
        init = (V.random_binary_vector(len(engines[0].ff_ids), rng)
                if data.draw(st.booleans()) else None)
        scan_out = data.draw(st.booleans())
        early_exit = data.draw(st.booleans())
        drop = data.draw(st.booleans())

        reference = FaultSimulator(engines[0], plain).detect(
            vectors, init, scan_out=scan_out, early_exit=False)
        for circuit in engines:
            sim = FaultSimulator(circuit, collapsed)
            if drop:
                sim.set_untestable(sorted(untestable))
            got = sim.detect(vectors, init, scan_out=scan_out,
                             early_exit=early_exit)
            assert got == reference

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_subset_targets_identical(self, seed, data):
        """Partial targets (mid-class members included) re-inflate to
        exactly the requested indices, never to whole classes."""
        engines, collapsed, plain, _ = circuits_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n = len(plain)
        target = sorted(rng.sample(range(n),
                                   data.draw(st.integers(1, n))))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(len(engines[0].ff_ids), rng)

        reference = FaultSimulator(engines[0], plain).detect(
            vectors, init, target=target, early_exit=False)
        got = FaultSimulator(engines[0], collapsed).detect(
            vectors, init, target=target, early_exit=False)
        assert got == reference
        assert got <= set(target)

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_records_identical(self, seed, data):
        """Per-frame truncated-test detections match through the
        records path (Phase 2's data source)."""
        engines, collapsed, plain, _ = circuits_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(len(engines[0].ff_ids), rng)

        ref = FaultSimulator(engines[0], plain)\
            .run_with_records(vectors, init)
        alt = FaultSimulator(engines[0], collapsed)\
            .run_with_records(vectors, init)
        for frame in range(len(vectors)):
            assert (ref.detected_with_scanout_at(frame)
                    == alt.detected_with_scanout_at(frame))

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_comb_patterns_identical(self, seed, data):
        """The PPSFP combinational simulator agrees per pattern (the
        Phase-1/3/4 data source), with fewer per-fault passes."""
        engines, collapsed, plain, untestable = circuits_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n_ff = len(engines[0].ff_ids)
        patterns = [(V.random_binary_vector(_N_PI, rng),
                     V.random_binary_vector(n_ff, rng))
                    for _ in range(data.draw(st.integers(1, 5)))]

        ref_sim = CombPatternSim(engines[0], plain)
        col_sim = CombPatternSim(engines[0], collapsed)
        if data.draw(st.booleans()):
            col_sim.set_untestable(sorted(untestable))
        ref = ref_sim.detect_block(patterns)
        got = col_sim.detect_block(patterns)
        assert got == ref
        if collapsed.has_classes:
            assert (col_sim.counters.comb_passes
                    < ref_sim.counters.comb_passes)


class TestUntestableExclusion:
    def test_untestable_faults_never_detected(self):
        """Brute force: no random test detects a proven-untestable
        fault, so dropping them is visibly sound."""
        net = synth.generate("unt", 4, 3, 4, 30, seed=7)
        plain = FaultSet.uncollapsed(net, collapse=False)
        report = analyze_faultspace(net)
        untestable = report.untestable_indices(plain.faults)
        cc = CompiledCircuit(net)
        sim = FaultSimulator(cc, plain)
        detected = set()
        for seed in range(5):
            vectors = random_gen.random_sequence(cc, 20, seed=seed)
            init = random_gen.random_state(cc, seed=seed + 100)
            detected |= sim.detect(vectors, init, early_exit=False)
        assert not detected & untestable

    def test_counter_moves_once(self):
        net = synth.generate("unt2", 3, 2, 3, 20, seed=1)
        fs = FaultSet.uncollapsed(net)
        cc = CompiledCircuit(net)
        sim = FaultSimulator(cc, fs)
        comb = CombPatternSim(cc, fs, counters=sim.counters)
        sim.set_untestable([0, 1])
        comb.set_untestable([0, 1])
        # Shared counters: only the sequential sim bumps the counter.
        assert sim.counters.untestable_dropped == 2


class TestPoStemRegression:
    """A fanout-free stem that is also a primary output must keep its
    faults distinct from the downstream gate-output faults.

    Regression: the old rules united ``n1/0`` with ``n2/0`` below even
    though ``n1`` is a PO (directly observable) while the AND output
    ``n2`` feeds only a DFF -- their detection sets differ, and
    Phase 2 (which simulates members directly) exposed the mismatch.
    """

    @staticmethod
    def _po_stem_netlist():
        net = Netlist("postem")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("n1", "AND", ["a", "b"])
        net.add_gate("n2", "AND", ["n1", "b"])
        net.add_dff("q", "n2")
        net.add_output("n1")
        return net.compile()

    def test_po_stem_not_united(self):
        net = self._po_stem_netlist()
        classes = fault_classes(net)
        for members in classes.values():
            in_class = {f.net for f in members if f.pin is None}
            assert not ({"n1", "n2"} <= in_class), members

    def test_po_branch_still_equivalent(self):
        """Branch lines of an observed stem stay equivalent -- a
        branch fault never reaches the PO directly."""
        net = Netlist("pobranch")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("n1", "AND", ["a", "b"])
        net.add_gate("n2", "AND", ["n1", "b"])
        net.add_gate("n3", "NOT", ["n1"])
        net.add_dff("q", "n2")
        net.add_dff("q2", "n3")
        net.add_output("n1")
        net.compile()
        from repro.sim.faults import Fault
        classes = fault_classes(net)
        cls_of = {f: members for members in classes.values()
                  for f in members}
        # The n1->n2.0 branch s-a-0 collapses into n2's output s-a-0.
        assert Fault("n2", None, 0) in cls_of[Fault("n1", ("n2", 0), 0)]

    def test_collapse_still_merges_interior_stems(self):
        """The exclusion is surgical: unobserved fanout-free stems
        keep collapsing (the s27 count is unchanged)."""
        from repro.circuits import library
        from repro.sim.faults import collapse
        assert len(collapse(library.s27())) == 32

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 19), data=st.data())
    def test_member_direct_simulation_matches(self, seed, data):
        """Simulating any single member directly equals simulating its
        representative -- the exact property Phase 2 relies on."""
        engines, collapsed, plain, _ = circuits_for(seed % 12)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(len(engines[0].ff_ids), rng)
        sim = FaultSimulator(engines[0], plain)
        classes = {}
        for i, rep in enumerate(collapsed.rep_of):
            classes.setdefault(rep, []).append(i)
        multi = [m for m in classes.values() if len(m) > 1]
        if not multi:  # pragma: no cover - seed-dependent
            pytest.skip("no multi-member class in this circuit")
        members = multi[data.draw(st.integers(0, len(multi) - 1))]
        per_member = [
            bool(sim.detect(vectors, init, target=[m],
                            early_exit=False))
            for m in members]
        assert len(set(per_member)) == 1, (
            f"class {members} members disagree: {per_member}")

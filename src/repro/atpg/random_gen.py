"""Random input-sequence and pattern generation.

The paper's Table 5 arm uses "a random input sequence of length 1000"
as the initial sequence ``T0``.  :func:`random_sequence` reproduces
exactly that; the helpers below are shared by other generators.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..sim import values as V
from ..sim.logicsim import CompiledCircuit


def random_sequence(circuit: CompiledCircuit, length: int,
                    seed: int = 0) -> List[V.Vector]:
    """A fully-specified random primary-input sequence.

    Deterministic for a given seed; the paper uses ``length=1000``.
    """
    if length < 1:
        raise ValueError("sequence length must be positive")
    rng = random.Random(seed)
    n_pi = len(circuit.pi_ids)
    return [V.random_binary_vector(n_pi, rng) for _ in range(length)]


def weighted_sequence(circuit: CompiledCircuit, length: int,
                      one_probability: float = 0.5,
                      seed: int = 0) -> List[V.Vector]:
    """A random sequence with biased bit probabilities.

    Useful for circuits with deep AND/OR cones where uniform vectors
    rarely reach interesting states.
    """
    if not 0.0 <= one_probability <= 1.0:
        raise ValueError("one_probability must be within [0, 1]")
    rng = random.Random(seed)
    n_pi = len(circuit.pi_ids)
    return [tuple(V.ONE if rng.random() < one_probability else V.ZERO
                  for _ in range(n_pi))
            for _ in range(length)]


def random_state(circuit: CompiledCircuit, seed: int = 0,
                 rng: Optional[random.Random] = None) -> V.Vector:
    """A random fully-specified flip-flop state vector."""
    rng = rng or random.Random(seed)
    return V.random_binary_vector(len(circuit.ff_ids), rng)

"""Tests for the on-chip test-clock cost model."""

import json
import random

import pytest

from repro.core.scan_test import ScanTest, ScanTestSet
from repro.delay.clocking import (ClockPlan, ClockSpec, DelayReport,
                                  SetDelaySummary, measure_delay,
                                  plan_set, plan_test, summarize_set)
from repro.delay.transition import TransitionSim
from repro.sim import values as V
from repro.sim.logicsim import CompiledCircuit


def _test(n_sv, length, rng=None):
    rng = rng or random.Random(0)
    return ScanTest(V.random_binary_vector(n_sv, rng),
                    tuple(V.random_binary_vector(2, rng)
                          for _ in range(length)))


class TestClockSpec:
    def test_defaults(self):
        spec = ClockSpec()
        assert (spec.scheme, spec.shift_divisor, spec.sync_cycles) == \
            ("loc", 4, 2)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown clock scheme"):
            ClockSpec(scheme="los")
        with pytest.raises(ValueError, match="shift_divisor"):
            ClockSpec(shift_divisor=0)
        with pytest.raises(ValueError, match="sync_cycles"):
            ClockSpec(sync_cycles=-1)

    def test_json_round_trip(self):
        spec = ClockSpec(shift_divisor=8, sync_cycles=3)
        data = json.loads(json.dumps(spec.as_dict()))
        assert ClockSpec.from_dict(data) == spec
        assert ClockSpec.from_dict({}) == ClockSpec()


class TestClockPlan:
    def test_hand_computed_plan(self):
        """A length-5 test on a 3-FF circuit: 3 shifts (overlap
        convention), 5 functional cycles of which 4 are at-speed
        pairs, two mode switches."""
        plan = plan_test(_test(3, 5), 3)
        assert plan.length == 5
        assert plan.shift_cycles == 3
        assert plan.functional_cycles == 5
        assert plan.at_speed_cycles == 4
        assert plan.sync_switches == 2
        assert plan.paper_cycles == 8

    def test_length_one_has_no_at_speed_cycles(self):
        plan = plan_test(_test(3, 1), 3)
        assert plan.at_speed_cycles == 0
        assert plan.functional_cycles == 1

    def test_hand_computed_tester_cycles(self):
        """shift * divisor + functional + switches * sync:
        3*4 + 5 + 2*2 = 21."""
        plan = plan_test(_test(3, 5), 3)
        assert plan.tester_cycles(ClockSpec()) == 21
        fast_shift = ClockSpec(shift_divisor=1, sync_cycles=0)
        assert plan.tester_cycles(fast_shift) == plan.paper_cycles

    def test_json_round_trip(self):
        plan = plan_test(_test(2, 4), 2)
        data = json.loads(json.dumps(plan.as_dict()))
        assert ClockPlan.from_dict(data) == plan


class TestSummarize:
    def test_paper_model_preserved(self):
        """The summary's total_cycles is exactly the paper's N_cyc
        (ScanTestSet.clock_cycles) and at_speed_cycles is exactly
        at_speed_pairs -- Beck adjustments only enter tester_cycles."""
        rng = random.Random(1)
        ts = ScanTestSet(2, [_test(2, 3, rng), _test(2, 1, rng)])
        summary = summarize_set(ts, ClockSpec(), faults=10, detected=4)
        assert summary.total_cycles == ts.clock_cycles() == 10
        assert summary.at_speed_cycles == ts.at_speed_pairs() == 2
        assert summary.tests == 2
        assert summary.coverage == 40.0

    def test_hand_computed_tester_cycles(self):
        """Two tests (lengths 3 and 1) on 2 FFs under the default
        spec: (2*4 + 3 + 4) + (2*4 + 1 + 4) = 28."""
        rng = random.Random(1)
        ts = ScanTestSet(2, [_test(2, 3, rng), _test(2, 1, rng)])
        summary = summarize_set(ts, ClockSpec(), faults=10, detected=4)
        assert summary.tester_cycles == 28

    def test_at_speed_fraction(self):
        rng = random.Random(2)
        ts = ScanTestSet(2, [_test(2, 3, rng), _test(2, 1, rng)])
        summary = summarize_set(ts, ClockSpec(), faults=1, detected=0)
        assert summary.at_speed_fraction == 2 / 10
        assert SetDelaySummary().at_speed_fraction == 0.0

    def test_empty_set(self):
        summary = summarize_set(ScanTestSet(3, []), ClockSpec(),
                                faults=0, detected=0)
        assert summary.total_cycles == 0
        assert summary.tester_cycles == 0
        assert summary.coverage == 0.0

    def test_plan_set_order(self):
        rng = random.Random(3)
        ts = ScanTestSet(2, [_test(2, n, rng) for n in (4, 1, 2)])
        assert [p.length for p in plan_set(ts)] == [4, 1, 2]

    def test_json_round_trip(self):
        summary = SetDelaySummary(tests=3, faults=20, detected=11,
                                  coverage=55.0, total_cycles=40,
                                  at_speed_cycles=9, tester_cycles=90)
        data = json.loads(json.dumps(summary.as_dict()))
        assert SetDelaySummary.from_dict(data) == summary


class TestDelayReport:
    def test_json_round_trip(self):
        report = DelayReport(
            spec=ClockSpec(shift_divisor=2),
            engine="packed",
            sets={"proposed": SetDelaySummary(tests=1, faults=4,
                                              detected=2, coverage=50.0,
                                              total_cycles=7,
                                              at_speed_cycles=2,
                                              tester_cycles=15)})
        data = json.loads(json.dumps(report.as_dict()))
        back = DelayReport.from_dict(data)
        assert back == report
        assert DelayReport.from_dict({}) == DelayReport()

    def test_measure_delay_invariants(self, s27):
        """measure_delay shares one fault list across sets, records
        the resolved route, and keeps the paper-model identities."""
        rng = random.Random(4)
        sets = {
            "long": ScanTestSet(3, [ScanTest(
                V.random_binary_vector(3, rng),
                tuple(V.random_binary_vector(4, rng)
                      for _ in range(8)))]),
            "single": ScanTestSet(3, [ScanTest(
                V.random_binary_vector(3, rng),
                (V.random_binary_vector(4, rng),))]),
        }
        tsim = TransitionSim(CompiledCircuit(s27))
        report = measure_delay(tsim, sets)
        assert report.engine == tsim.route
        assert set(report.sets) == {"long", "single"}
        for name, ts in sets.items():
            summary = report.sets[name]
            assert summary.faults == len(tsim.faults)
            assert summary.total_cycles == ts.clock_cycles()
            assert summary.at_speed_cycles == ts.at_speed_pairs()
        # A single-vector set buys zero at-speed cycles -- the paper's
        # argument against [4]-style compaction, in one assertion.
        assert report.sets["single"].at_speed_cycles == 0
        assert report.sets["single"].detected == 0
        assert report.sets["long"].at_speed_cycles > 0

"""Seeded synthetic sequential benchmark generator.

The original ISCAS-89 / ITC-99 netlists are not redistributed here, so
the paper suite is built from seeded random circuits with matching
interface sizes (PI / PO / FF counts) and comparable gate counts.  The
generator is deterministic for a given parameter set, so every run of
the experiments sees identical circuits.

Structure: the circuit is a forest of *cones*, one per flip-flop
next-state function and one per primary output, the way synthesized RTL
looks.  Each cone is a random tree of gates over the primary inputs and
flip-flop outputs, with a bounded amount of cross-cone sharing (taps
into internal nets of earlier cones).  Trees are inherently testable,
so -- like real benchmarks and unlike uniform random netlists -- only a
small fraction of faults is combinationally redundant.

Construction guarantees:

* no combinational cycles (cross-cone taps only reach *earlier*,
  completed cones);
* every primary input and every flip-flop output drives something;
* every flip-flop next-state function is real logic, and the flip-flop
  outputs feed back into the cones (a genuine state machine).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from .netlist import Netlist

#: Relative weights of generated gate types (XOR-rich trees stay
#: testable and propagate fault effects well, as real datapaths do).
_TYPE_WEIGHTS = [
    ("NAND", 20), ("NOR", 14), ("AND", 16), ("OR", 14),
    ("NOT", 10), ("XOR", 14), ("XNOR", 6), ("BUF", 2),
]


def _pick_type(rng: random.Random) -> str:
    total = sum(w for _, w in _TYPE_WEIGHTS)
    roll = rng.randrange(total)
    for gtype, weight in _TYPE_WEIGHTS:
        roll -= weight
        if roll < 0:
            return gtype
    raise AssertionError("unreachable")


class _ConeBuilder:
    """Builds one gate tree, drawing leaves from sources and taps."""

    def __init__(self, net: Netlist, rng: random.Random,
                 sources: List[str], taps: List[str], share_p: float,
                 max_fanin: int, next_gate_id: int) -> None:
        self.net = net
        self.rng = rng
        self.sources = sources
        self.taps = taps
        self.share_p = share_p
        self.max_fanin = max_fanin
        self.gate_id = next_gate_id
        self.internal: List[str] = []
        self.used_leaves: set = set()

    def build(self, budget: int) -> str:
        """Build a tree of roughly ``budget`` gates; returns the root."""
        return self._node(max(1, budget))

    def _node(self, budget: int, already: Optional[List[str]] = None) -> str:
        rng = self.rng
        if budget <= 0:
            return self._leaf(already or [])
        gtype = _pick_type(rng)
        if gtype in ("NOT", "BUF"):
            arity = 1
        else:
            arity = rng.randint(2, self.max_fanin)
        shares = self._split(budget - 1, arity)
        fanins: List[str] = []
        for share in shares:
            if share <= 0 and rng.random() < 0.8:
                fanins.append(self._leaf(fanins))
            else:
                fanins.append(self._node(share, fanins))
        # A unary gate over a leaf it already... (not possible: one pin).
        name = f"g{self.gate_id}"
        self.gate_id += 1
        self.net.add_gate(name, gtype, fanins)
        self.internal.append(name)
        return name

    def _split(self, budget: int, parts: int) -> List[int]:
        """Randomly split ``budget`` into ``parts`` non-negative shares."""
        if parts == 1:
            return [budget]
        cuts = sorted(self.rng.randint(0, budget) for _ in range(parts - 1))
        shares = []
        prev = 0
        for cut in cuts:
            shares.append(cut - prev)
            prev = cut
        shares.append(budget - prev)
        return shares

    def _leaf(self, already: List[str]) -> str:
        """Pick a leaf, preferring sources not yet used in this cone.

        Mostly-distinct leaves keep each cone close to a fanout-free
        tree, whose faults are all testable; repeats (and with them a
        small, realistic amount of redundancy) appear only once the
        source pool is exhausted.
        """
        rng = self.rng
        candidate = self.sources[0]
        for attempt in range(12):
            if self.taps and rng.random() < self.share_p:
                candidate = rng.choice(self.taps)
            else:
                candidate = rng.choice(self.sources)
            if candidate in already:
                continue
            if candidate not in self.used_leaves or attempt >= 8:
                break
        if candidate in already:
            # The random retries ran out; fall back to any free source
            # so a gate never ends up with a repeated fanin.
            pool = [s for s in self.sources + self.taps
                    if s not in already]
            if pool:
                candidate = pool[rng.randrange(len(pool))]
        self.used_leaves.add(candidate)
        return candidate


def generate(
    name: str,
    n_pi: int,
    n_po: int,
    n_ff: int,
    n_gates: int,
    seed: int = 0,
    max_fanin: int = 3,
    share_p: float = 0.15,
) -> Netlist:
    """Generate a compiled random sequential circuit.

    Parameters
    ----------
    name:
        Netlist name.
    n_pi, n_po, n_ff, n_gates:
        Interface and size targets.  ``n_gates`` counts combinational
        gates only; the result lands within a few gates of the target.
    seed:
        RNG seed; same parameters + seed give an identical circuit.
    max_fanin:
        Maximum fanin of variadic gates (at least 2).
    share_p:
        Probability that a tree leaf taps an internal net of an earlier
        cone instead of a source -- controls reconvergence (and with it
        the redundant-fault fraction).

    Raises
    ------
    ValueError
        If the size parameters cannot form a valid circuit.
    """
    if n_pi < 1 or n_po < 1 or n_ff < 1:
        raise ValueError("need at least one PI, PO and FF")
    n_cones = n_po + n_ff
    if n_gates < max(2 * n_cones, 4):
        raise ValueError("n_gates too small for the requested interface")
    if max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")
    if not 0.0 <= share_p <= 1.0:
        raise ValueError("share_p must be within [0, 1]")

    rng = random.Random(seed)
    net = Netlist(name)
    for i in range(n_pi):
        net.add_input(f"pi{i}")
    sources = [f"pi{i}" for i in range(n_pi)] + \
              [f"ff{i}" for i in range(n_ff)]

    # Two gates per flip-flop are reserved for the synchronizing wrapper
    # (see _add_sync_wrapper); the rest is split across the cones.
    tree_gates = max(n_cones, n_gates - 2 * n_ff)
    base = tree_gates // n_cones
    extra = tree_gates - base * n_cones
    budgets = [base + (1 if c < extra else 0) for c in range(n_cones)]
    rng.shuffle(budgets)

    taps: List[str] = []
    roots: List[str] = []
    gate_id = 0
    for budget in budgets:
        builder = _ConeBuilder(net, rng, sources, taps, share_p,
                               max_fanin, gate_id)
        roots.append(builder.build(budget))
        gate_id = builder.gate_id
        taps.extend(builder.internal)
        if len(taps) > 64:
            taps[:] = taps[-64:]

    ff_roots, po_roots = roots[:n_ff], roots[n_ff:]
    for i, root in enumerate(ff_roots):
        d_net = _add_sync_wrapper(net, rng, root, i, n_pi, gate_id)
        gate_id += 2
        net.add_dff(f"ff{i}", d_net)
    for root in _distinct_outputs(net, rng, po_roots):
        net.add_output(root)

    _wire_unused_sources(net, rng, sources)
    return net.compile()


def _add_sync_wrapper(net: Netlist, rng: random.Random, root: str,
                      ff_index: int, n_pi: int, gate_id: int) -> str:
    """Make flip-flop ``ff_index`` initializable from the primary inputs.

    Real benchmark circuits are initializable (synchronizing sequences
    exist), otherwise a no-scan test sequence starting from the all-X
    power-up state could detect almost nothing.  The wrapper forces the
    next-state value to a constant under one combination of two primary
    inputs (probability 1/4 per random vector), and passes the cone's
    value through otherwise::

        force-0:  d = AND(root, OR(pi_a, pi_b))
        force-1:  d = OR(root, AND(pi_a, pi_b))

    Returns the name of the wrapped next-state net.
    """
    inner = f"g{gate_id}"
    outer = f"g{gate_id + 1}"
    force_zero = rng.random() < 0.5
    if n_pi >= 2:
        a, b = rng.sample(range(n_pi), 2)
        pins = [f"pi{a}", f"pi{b}"]
        net.add_gate(inner, "OR" if force_zero else "AND", pins)
    else:
        net.add_gate(inner, "BUF", ["pi0"])
    if force_zero:
        net.add_gate(outer, "AND", [root, inner])
    else:
        net.add_gate(outer, "OR", [root, inner])
    return outer


def _distinct_outputs(net: Netlist, rng: random.Random,
                      po_roots: List[str]) -> List[str]:
    """Replace duplicate PO roots (tiny cones can collapse to a shared
    leaf) with distinct internal nets."""
    seen = set()
    out = []
    comb = [g.name for g in net.gates.values()
            if g.gtype not in ("INPUT", "DFF")]
    for root in po_roots:
        if root in seen:
            spare = [g for g in comb if g not in seen]
            root = rng.choice(spare) if spare else root
        seen.add(root)
        out.append(root)
    return out


def _wire_unused_sources(net: Netlist, rng: random.Random,
                         sources: List[str]) -> None:
    """Rewire random gate pins so every PI and FF output is used.

    A pin is rewired only when its current driver keeps at least one
    other reader (or is a primary output), so the rewiring never leaves
    a dangling internal net behind.
    """
    uses: Dict[str, int] = {}
    for gate in net.gates.values():
        for fanin in gate.fanins:
            uses[fanin] = uses.get(fanin, 0) + 1
    outputs = set(net.outputs)
    unused = [s for s in sources if s not in uses]
    comb = [g for g in net.gates.values()
            if g.gtype not in ("INPUT", "DFF") and len(g.fanins) >= 2]
    rng.shuffle(comb)
    for src in unused:
        for gate in comb:
            if src in gate.fanins:
                continue
            safe = [i for i, old in enumerate(gate.fanins)
                    if uses.get(old, 0) > 1 or old in outputs]
            if not safe:
                continue
            pin = safe[rng.randrange(len(safe))]
            old = gate.fanins[pin]
            uses[old] -= 1
            uses[src] = uses.get(src, 0) + 1
            gate.fanins[pin] = src
            break


def paper_like(
    paper_name: str,
    n_pi: int,
    n_po: int,
    n_ff: int,
    n_gates: int,
    seed: Optional[int] = None,
) -> Netlist:
    """A synthetic stand-in for a named paper benchmark circuit.

    The seed defaults to a stable hash of the paper name so each
    stand-in is reproducible and distinct.
    """
    if seed is None:
        seed = sum(ord(c) * (i + 1) for i, c in enumerate(paper_name)) % 10007
    return generate(f"syn-{paper_name}", n_pi, n_po, n_ff, n_gates,
                    seed=seed)

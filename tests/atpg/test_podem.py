"""Tests for the PODEM combinational ATPG engine."""

import itertools
import random

import pytest

from repro.atpg.podem import ABORTED, Podem, REDUNDANT, TESTABLE
from repro.circuits import synth
from repro.circuits.netlist import Netlist
from repro.sim import values as V
from repro.sim.comb_sim import CombPatternSim
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit


def exhaustive_detectable(circuit, faults):
    """Ground truth by trying every input/state combination."""
    csim = CombPatternSim(circuit, faults)
    n_ff = len(circuit.ff_ids)
    n_pi = len(circuit.pi_ids)
    assert n_ff + n_pi <= 10, "too large for exhaustive check"
    patterns = [(bits[:n_ff], bits[n_ff:])
                for bits in itertools.product((0, 1), repeat=n_ff + n_pi)]
    detectable = set()
    for start in range(0, len(patterns), 128):
        hits = csim.detect_block(patterns[start:start + 128])
        detectable |= set(hits)
    return detectable


class TestS27:
    def test_all_faults_testable_and_verified(self, s27_bench):
        wb = s27_bench
        podem = Podem(wb.circuit, wb.faults)
        csim = CombPatternSim(wb.circuit, wb.faults)
        rng = random.Random(0)
        for i in range(len(wb.faults)):
            result = podem.generate(i)
            assert result.status == TESTABLE, str(wb.faults[i])
            state, pi = result.pattern
            filled = (V.fill_x(state, rng), V.fill_x(pi, rng))
            assert i in csim.detect_single(filled, [i]), str(wb.faults[i])


class TestSoundnessAndCompleteness:
    @pytest.mark.parametrize("seed", [5, 13, 21])
    def test_matches_exhaustive_truth(self, seed):
        net = synth.generate("px", 4, 3, 4, 28, seed=seed)
        circuit = CompiledCircuit(net)
        faults = FaultSet.collapsed(net)
        truth = exhaustive_detectable(circuit, faults)
        podem = Podem(circuit, faults, backtrack_limit=5000)
        for i in range(len(faults)):
            result = podem.generate(i)
            if result.status == TESTABLE:
                assert i in truth, f"false TESTABLE for {faults[i]}"
            elif result.status == REDUNDANT:
                assert i not in truth, f"false REDUNDANT for {faults[i]}"
            # ABORTED makes no claim.


class TestMechanics:
    def test_aborts_respect_limit(self, small_bench):
        wb = small_bench
        podem = Podem(wb.circuit, wb.faults, backtrack_limit=0)
        statuses = {podem.generate(i).status
                    for i in range(len(wb.faults))}
        assert statuses <= {TESTABLE, REDUNDANT, ABORTED}

    def test_redundant_on_constant_feed(self):
        net = Netlist()
        net.add_input("a")
        net.add_dff("q", "o")
        net.add_const("c1", 1)
        net.add_gate("o", "OR", ["a", "c1"])  # o is constant 1
        net.add_output("o")
        net.compile()
        circuit = CompiledCircuit(net)
        faults = FaultSet(FaultSet.uncollapsed(net).faults)
        podem = Podem(circuit, faults)
        idx = faults.index[
            [f for f in faults if f.net == "o" and f.stuck == 1][0]]
        assert podem.generate(idx).status == REDUNDANT

    def test_controllability_finite_for_reachable(self, s27_bench):
        wb = s27_bench
        podem = Podem(wb.circuit, wb.faults)
        for nid in range(wb.circuit.n_nets):
            assert podem._cc0[nid] < 10 ** 9
            assert podem._cc1[nid] < 10 ** 9

    def test_pattern_may_contain_x(self, s27_bench):
        """PODEM leaves unassigned inputs at X (useful for merging)."""
        wb = s27_bench
        podem = Podem(wb.circuit, wb.faults)
        saw_x = False
        for i in range(len(wb.faults)):
            result = podem.generate(i)
            if result.status == TESTABLE:
                state, pi = result.pattern
                if V.X in state + pi:
                    saw_x = True
                    break
        assert saw_x

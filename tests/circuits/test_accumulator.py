"""Behavioural tests for the accumulator datapath circuit."""

import random

import pytest

from repro.circuits.library import accumulator
from repro.sim import values as V
from repro.sim.logicsim import CompiledCircuit, simulate_sequence

HOLD, LOAD, ADD, AND = (0, 0), (0, 1), (1, 0), (1, 1)


def step(net, cc, acc, op, data, n):
    """One instruction; returns (new_acc, po_frame)."""
    vector = tuple(op) + tuple(data)
    state = tuple(acc)
    res = simulate_sequence(cc, [vector], state)
    return list(res.final_state[:n]), res.po_frames[0]


@pytest.fixture(scope="module")
def accu():
    net = accumulator(4)
    return net, CompiledCircuit(net)


def bits(value, n=4):
    return [(value >> i) & 1 for i in range(n)]


def val(bit_list):
    return sum(b << i for i, b in enumerate(bit_list))


class TestInstructions:
    def test_load(self, accu):
        net, cc = accu
        acc, _ = step(net, cc, bits(0), LOAD, bits(11), 4)
        assert val(acc) == 11

    def test_hold(self, accu):
        net, cc = accu
        acc, _ = step(net, cc, bits(9), HOLD, bits(6), 4)
        assert val(acc) == 9

    def test_add(self, accu):
        net, cc = accu
        acc, _ = step(net, cc, bits(5), ADD, bits(9), 4)
        assert val(acc) == 14

    def test_add_wraps_with_carry(self, accu):
        net, cc = accu
        acc, po = step(net, cc, bits(12), ADD, bits(7), 4)
        assert val(acc) == (12 + 7) % 16
        cout = net.outputs.index("cout")
        assert po[cout] == V.ONE

    def test_and(self, accu):
        net, cc = accu
        acc, _ = step(net, cc, bits(0b1100), AND, bits(0b1010), 4)
        assert val(acc) == 0b1000

    def test_zero_flag(self, accu):
        net, cc = accu
        _, po = step(net, cc, bits(0), HOLD, bits(3), 4)
        zero = net.outputs.index("zero")
        assert po[zero] == V.ONE

    def test_exhaustive_add_against_python(self, accu):
        net, cc = accu
        rng = random.Random(0)
        for _ in range(50):
            a, d = rng.randrange(16), rng.randrange(16)
            acc, po = step(net, cc, bits(a), ADD, bits(d), 4)
            assert val(acc) == (a + d) % 16, (a, d)
            cout = net.outputs.index("cout")
            assert (po[cout] == V.ONE) == (a + d >= 16), (a, d)

    def test_program(self, accu):
        """LOAD 5; ADD 3; AND 0b1110 -> 8."""
        net, cc = accu
        acc = bits(0)
        for op, data in [(LOAD, 5), (ADD, 3), (AND, 0b1110)]:
            acc, _ = step(net, cc, acc, op, bits(data), 4)
        assert val(acc) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            accumulator(1)

    def test_full_flow(self, accu):
        """The accumulator survives the whole compaction pipeline."""
        from repro import api
        net, cc = accu
        result = api.compact_tests(net, seed=1, t0_length=80)
        assert len(result.final_detected) > 0.9 * 100  # most faults

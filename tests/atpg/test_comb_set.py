"""Tests for combinational test-set generation and compaction."""

import pytest

from repro.atpg import comb_set
from repro.sim.comb_sim import CombPatternSim


class TestGenerate:
    def test_complete_accounting(self, s27_bench, s27_comb):
        wb, result = s27_bench, s27_comb
        universe = set(range(len(wb.faults)))
        assert result.detected | result.redundant | result.aborted == \
            universe
        assert not result.detected & result.redundant
        assert not result.detected & result.aborted

    def test_s27_fully_testable(self, s27_comb):
        assert not s27_comb.redundant
        assert not s27_comb.aborted

    def test_set_actually_detects_claimed(self, s27_bench, s27_comb):
        wb, result = s27_bench, s27_comb
        csim = CombPatternSim(wb.circuit, wb.faults)
        covered = set()
        for test in result.tests:
            covered |= csim.detect_single(test.as_pattern(),
                                          sorted(result.detected))
        assert covered == result.detected

    def test_deterministic(self, s27_bench):
        wb = s27_bench
        a = comb_set.generate(wb.circuit, wb.faults, seed=42)
        b = comb_set.generate(wb.circuit, wb.faults, seed=42)
        assert [(t.state, t.pi) for t in a.tests] == \
            [(t.state, t.pi) for t in b.tests]

    def test_tests_fully_specified(self, s27_comb):
        from repro.sim import values as V
        for test in s27_comb.tests:
            assert V.is_binary(test.state)
            assert V.is_binary(test.pi)

    def test_detectable_property(self, mid_comb):
        assert mid_comb.detectable == mid_comb.detected | mid_comb.aborted


class TestRandomSelected:
    def test_every_kept_pattern_useful(self, s27_bench):
        wb = s27_bench
        result = comb_set.random_selected(wb.circuit, wb.faults, seed=3)
        csim = CombPatternSim(wb.circuit, wb.faults)
        # Simulating in order with fault dropping, every test must
        # contribute at least one first detection.
        remaining = set(result.detected)
        for test in result.tests:
            hits = csim.detect_single(test.as_pattern(),
                                      sorted(remaining))
            assert hits, "useless pattern kept"
            remaining -= hits
        assert not remaining

    def test_stale_stop(self, s27_bench):
        wb = s27_bench
        result = comb_set.random_selected(wb.circuit, wb.faults, seed=3,
                                          max_patterns=64, block=16)
        assert len(result.tests) <= 64


class TestCompaction:
    def test_preserves_coverage(self, s27_bench, s27_comb):
        wb, result = s27_bench, s27_comb
        compacted = comb_set.compact_tests(
            wb.circuit, wb.faults, result.tests, result.detected)
        csim = CombPatternSim(wb.circuit, wb.faults)
        covered = set()
        for test in compacted:
            covered |= csim.detect_single(test.as_pattern(),
                                          sorted(result.detected))
        assert covered >= result.detected
        assert len(compacted) <= len(result.tests)

    def test_empty_requirements(self, s27_bench, s27_comb):
        wb = s27_bench
        compacted = comb_set.compact_tests(
            wb.circuit, wb.faults, s27_comb.tests, set())
        assert compacted == []

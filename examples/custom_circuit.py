#!/usr/bin/env python3
"""Scenario: bring your own circuit through the full DFT flow.

Models the workflow of a user with their own design: write (or load)
an ISCAS-style ``.bench`` netlist, validate it, inspect the fault
universe, generate tests, and export the compacted scan test program.

Run with::

    python examples/custom_circuit.py
"""

from repro import api
from repro.circuits import bench, validate
from repro.sim import values as V
from repro.sim.faults import FaultSet

# A small bus-arbiter-style design: two request inputs, a priority
# toggle, a 2-bit grant register with hold logic.
ARBITER = """
# toy round-robin arbiter
INPUT(req0)
INPUT(req1)
INPUT(rst)
OUTPUT(grant0)
OUTPUT(grant1)
OUTPUT(busy)

pri    = DFF(pri_n)
g0     = DFF(g0_n)
g1     = DFF(g1_n)

nrst   = NOT(rst)
any    = OR(req0, req1)
busy   = AND(any, nrst)

# priority flips whenever a grant is given
gave   = OR(g0_n, g1_n)
pri_t  = XOR(pri, gave)
pri_n  = AND(pri_t, nrst)

# grant0 wins ties when pri=0, grant1 when pri=1
npri   = NOT(pri)
only0  = AND(req0, npri)
nreq1  = NOT(req1)
solo0  = AND(req0, nreq1)
w0     = OR(only0, solo0)
g0_n   = AND(w0, nrst)

nreq0  = NOT(req0)
only1  = AND(req1, pri)
solo1  = AND(req1, nreq0)
w1     = OR(only1, solo1)
g1_raw = AND(w1, nrst)
ng0    = NOT(g0_n)
g1_n   = AND(g1_raw, ng0)

grant0 = BUF(g0)
grant1 = BUF(g1)
"""


def main() -> None:
    # 1. Parse and validate.
    netlist = bench.loads(ARBITER, name="arbiter")
    issues = validate.check(netlist)
    print(f"circuit: {netlist!r}")
    for issue in issues:
        print(f"  {issue}")

    # 2. Inspect the fault universe.
    faults = FaultSet.collapsed(netlist)
    print(f"collapsed stuck-at faults: {len(faults)}")

    # 3. Full flow: C generation, the proposed procedure, phase 4.
    wb = api.Workbench.for_netlist(netlist)
    comb = api.generate_comb_set(netlist, seed=7, workbench=wb)
    print(f"combinational test set: {len(comb.tests)} tests, "
          f"{len(comb.redundant)} provably redundant faults")

    result = api.compact_tests(netlist, seed=7, comb_tests=comb.tests,
                               workbench=wb)
    final = result.compacted_set or result.test_set
    print(f"\nfinal scan test program "
          f"({final.clock_cycles()} clock cycles):")
    for i, test in enumerate(final):
        so = test.expected_scan_out(wb.circuit)
        print(f"  test {i}: scan-in {V.vec_str(test.scan_in)}  "
              f"{test.length:3d} at-speed vectors  "
              f"expect scan-out {V.vec_str(so)}")

    # 4. Export the circuit back to .bench for the next tool.
    text = bench.dumps(netlist)
    print(f"\n(.bench export is {len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()

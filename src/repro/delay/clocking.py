"""On-chip test-clock cost model for at-speed scan testing.

The paper's cost model (Section 2) counts *clock cycles*:
``N_cyc = (k+1) * N_SV + sum_j L(T_j)`` -- every cycle is worth the
same.  On silicon they are not: the scan shift clock is typically a
divided-down (slow, low-power) clock while launch/capture pairs must
run at the full functional rate, usually from an on-chip clock
generator (Beck et al., "Logic Design for On-Chip Test Clock
Generation -- Impact on Delay Test Quality", arXiv:0710.4763).  This
module prices every scan test under that regime:

* **shift cycles** run on the slow scan clock -- ``N_SV`` shifts per
  scan operation, each costing ``shift_divisor`` functional-clock
  periods on the tester;
* **at-speed cycles** are the consecutive functional pairs
  (``L(T) - 1`` per test) that exercise delay defects -- the quantity
  a transition-fault test set is buying;
* the first functional cycle of a test follows the scan-to-functional
  switch and is *not* an at-speed launch (frame 0 is never a launch
  frame, matching :mod:`repro.delay.transition`);
* every switch between shift and functional mode costs ``sync_cycles``
  dead cycles for the on-chip generator to resynchronize (two
  switches per test under launch-on-capture).

The paper-model total is preserved exactly: a
:class:`DelayReport`'s per-set ``total_cycles`` equals
:meth:`repro.core.scan_test.ScanTestSet.clock_cycles` and its
``at_speed_cycles`` equals
:meth:`~repro.core.scan_test.ScanTestSet.at_speed_pairs` -- the Beck
adjustments only enter the separate ``tester_cycles`` figure.  All
dataclasses round-trip through plain dicts (JSON-friendly) so reports
survive the experiment harness's checkpoint store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.scan_test import ScanTest, ScanTestSet

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .transition import TransitionSim

#: Launch/capture schemes the cost model knows how to price.
CLOCK_SCHEMES = ("loc",)


@dataclass(frozen=True)
class ClockSpec:
    """Knobs of the on-chip test-clock generator.

    Attributes
    ----------
    scheme:
        Launch/capture scheme; only launch-on-capture (``"loc"``) is
        modeled -- the functional sequence itself provides the launch
        transitions, which is exactly the paper's setting.
    shift_divisor:
        Scan shift clock period as a multiple of the functional clock
        period (shift runs slow to bound power and chain timing).
    sync_cycles:
        Dead functional-clock cycles per shift<->functional mode
        switch while the on-chip generator resynchronizes.
    """

    scheme: str = "loc"
    shift_divisor: int = 4
    sync_cycles: int = 2

    def __post_init__(self) -> None:
        if self.scheme not in CLOCK_SCHEMES:
            raise ValueError(f"unknown clock scheme {self.scheme!r}; "
                             f"use one of {CLOCK_SCHEMES}")
        if self.shift_divisor < 1:
            raise ValueError("shift_divisor must be >= 1")
        if self.sync_cycles < 0:
            raise ValueError("sync_cycles must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "shift_divisor": self.shift_divisor,
            "sync_cycles": self.sync_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClockSpec":
        return cls(
            scheme=str(data.get("scheme", "loc")),
            shift_divisor=int(data.get("shift_divisor", 4)),  # type: ignore[arg-type]
            sync_cycles=int(data.get("sync_cycles", 2)),  # type: ignore[arg-type]
        )


@dataclass
class ClockPlan:
    """Cycle accounting for applying one scan test.

    ``shift_cycles`` is the test's scan operation under the paper's
    overlap convention (scan-in of this test overlaps scan-out of the
    previous one, so each test owns exactly ``N_SV`` shifts; the
    final scan-out is the set-level extra).  ``functional_cycles`` is
    ``L(T)``; ``at_speed_cycles`` is ``L(T) - 1`` -- the consecutive
    functional pairs applied at speed.
    """

    length: int
    shift_cycles: int
    functional_cycles: int
    at_speed_cycles: int
    sync_switches: int

    @property
    def paper_cycles(self) -> int:
        """This test's share of the paper's ``N_cyc``."""
        return self.shift_cycles + self.functional_cycles

    def tester_cycles(self, spec: ClockSpec) -> int:
        """Functional-clock periods on the tester under ``spec``."""
        return (self.shift_cycles * spec.shift_divisor
                + self.functional_cycles
                + self.sync_switches * spec.sync_cycles)

    def as_dict(self) -> Dict[str, int]:
        return {
            "length": self.length,
            "shift_cycles": self.shift_cycles,
            "functional_cycles": self.functional_cycles,
            "at_speed_cycles": self.at_speed_cycles,
            "sync_switches": self.sync_switches,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ClockPlan":
        return cls(
            length=int(data.get("length", 0)),
            shift_cycles=int(data.get("shift_cycles", 0)),
            functional_cycles=int(data.get("functional_cycles", 0)),
            at_speed_cycles=int(data.get("at_speed_cycles", 0)),
            sync_switches=int(data.get("sync_switches", 0)),
        )


def plan_test(test: ScanTest, n_state_vars: int) -> ClockPlan:
    """The :class:`ClockPlan` for one scan test.

    Two mode switches per test under launch-on-capture: shift ->
    functional before the sequence, functional -> shift after it.
    """
    return ClockPlan(
        length=test.length,
        shift_cycles=n_state_vars,
        functional_cycles=test.length,
        at_speed_cycles=test.length - 1,
        sync_switches=2,
    )


def plan_set(test_set: ScanTestSet) -> List[ClockPlan]:
    """Per-test clock plans for a whole set, in application order."""
    return [plan_test(t, test_set.n_state_vars) for t in test_set]


@dataclass
class SetDelaySummary:
    """TDF coverage + clock cost of one test set (JSON-friendly).

    ``total_cycles`` is the paper's ``N_cyc`` for the set (equal to
    :meth:`~repro.core.scan_test.ScanTestSet.clock_cycles`);
    ``at_speed_cycles`` equals
    :meth:`~repro.core.scan_test.ScanTestSet.at_speed_pairs`;
    ``tester_cycles`` is the Beck-model figure with slow shifts and
    resync overhead priced in.
    """

    tests: int = 0
    faults: int = 0
    detected: int = 0
    coverage: float = 0.0
    total_cycles: int = 0
    at_speed_cycles: int = 0
    tester_cycles: int = 0

    @property
    def at_speed_fraction(self) -> float:
        """Share of the paper-model cycles applied at speed."""
        if not self.total_cycles:
            return 0.0
        return self.at_speed_cycles / self.total_cycles

    def as_dict(self) -> Dict[str, float]:
        return {
            "tests": self.tests,
            "faults": self.faults,
            "detected": self.detected,
            "coverage": round(self.coverage, 2),
            "total_cycles": self.total_cycles,
            "at_speed_cycles": self.at_speed_cycles,
            "tester_cycles": self.tester_cycles,
            "at_speed_fraction": round(self.at_speed_fraction, 4),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SetDelaySummary":
        return cls(
            tests=int(data.get("tests", 0)),
            faults=int(data.get("faults", 0)),
            detected=int(data.get("detected", 0)),
            coverage=float(data.get("coverage", 0.0)),
            total_cycles=int(data.get("total_cycles", 0)),
            at_speed_cycles=int(data.get("at_speed_cycles", 0)),
            tester_cycles=int(data.get("tester_cycles", 0)),
        )


def summarize_set(test_set: ScanTestSet, spec: ClockSpec,
                  faults: int, detected: int) -> SetDelaySummary:
    """Fold per-test plans and a TDF detection count into a summary."""
    plans = plan_set(test_set)
    total = sum(p.paper_cycles for p in plans)
    if plans:
        total += test_set.n_state_vars  # final scan-out, paper model
    coverage = 100.0 * detected / faults if faults else 0.0
    return SetDelaySummary(
        tests=len(plans),
        faults=faults,
        detected=detected,
        coverage=coverage,
        total_cycles=total,
        at_speed_cycles=sum(p.at_speed_cycles for p in plans),
        tester_cycles=sum(p.tester_cycles(spec) for p in plans),
    )


@dataclass
class DelayReport:
    """At-speed quality report attached to a circuit run.

    ``sets`` maps a test-set label (e.g. ``"seqgen"``, ``"random"``,
    ``"baseline4"``) to its :class:`SetDelaySummary`; ``spec`` records
    the clock-generator knobs and ``engine`` which TDF simulation
    route produced the coverage numbers.
    """

    spec: ClockSpec = field(default_factory=ClockSpec)
    engine: str = "scalar"
    sets: Dict[str, SetDelaySummary] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.as_dict(),
            "engine": self.engine,
            "sets": {name: summary.as_dict()
                     for name, summary in sorted(self.sets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DelayReport":
        sets_raw = data.get("sets", {}) or {}
        return cls(
            spec=ClockSpec.from_dict(data.get("spec", {}) or {}),  # type: ignore[arg-type]
            engine=str(data.get("engine", "scalar")),
            sets={name: SetDelaySummary.from_dict(summary)
                  for name, summary in sets_raw.items()},  # type: ignore[union-attr]
        )


def measure_delay(tsim: "TransitionSim",
                  sets: Dict[str, ScanTestSet],
                  spec: Optional[ClockSpec] = None) -> DelayReport:
    """TDF coverage + clock cost for several labeled test sets.

    One :class:`~repro.delay.transition.TransitionSim` serves every
    set, so the fault list (and its length, the coverage denominator)
    is shared and the per-circuit packing plans are reused.
    """
    if spec is None:
        spec = ClockSpec()
    report = DelayReport(spec=spec, engine=tsim.route)
    n_faults = len(tsim.faults)
    for name, test_set in sets.items():
        detected = len(tsim.detect_test_set(test_set))
        report.sets[name] = summarize_set(test_set, spec,
                                          n_faults, detected)
    return report

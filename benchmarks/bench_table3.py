"""Benchmark: regenerate the paper's Table 3 (clock cycles).

Expected shape (the paper's headline result):

* compaction helps every method: ``[4] comp <= [4] init`` and
  ``prop comp <= prop init``;
* the proposed initial sets beat the [4] initial sets overall, and the
  totals of the proposed method beat the totals of [4];
* the dynamic [2,3] baseline trails static compaction.
"""

from repro.experiments import tables


def test_table3(benchmark, suite_runs):
    table = benchmark(tables.table3, suite_runs)
    print()
    print(table.render())
    for row in table.rows[:-1]:
        circuit, dyn, b4i, b4c, pi, pc, ri, rc = row
        assert b4c <= b4i, circuit
        assert pc <= pi, circuit
        assert rc <= ri, circuit
    total = table.rows[-1]
    _, dyn_t, b4i_t, b4c_t, pi_t, pc_t, ri_t, rc_t = total
    # Paper Section 4: "both the initial and the final test sets of the
    # method proposed here require overall a lower number of clock
    # cycles than those of [4]".
    assert pi_t < b4i_t
    assert pc_t < b4c_t
    # Dynamic compaction trails the compacted static sets overall.
    assert dyn_t >= b4c_t

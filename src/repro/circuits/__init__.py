"""Circuit substrate: netlist model, bench I/O, libraries, generators."""

from .netlist import Gate, Netlist, NetlistError
from .bench import load, loads, dump, dumps, BenchFormatError
from . import library, suite, synth, validate

__all__ = [
    "Gate", "Netlist", "NetlistError",
    "load", "loads", "dump", "dumps", "BenchFormatError",
    "library", "suite", "synth", "validate",
]

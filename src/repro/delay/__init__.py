"""Delay-defect (transition fault) analysis of scan test sets.

Two halves: :mod:`~repro.delay.transition` scores transition-fault
coverage (with a wide-word C-kernel route and a scalar reference),
and :mod:`~repro.delay.clocking` prices test application under an
on-chip test-clock generator (slow scan shifts, at-speed
launch/capture pairs, resync overhead).  Together they put a number
on the paper's headline claim: long functional sequences buy at-speed
quality per clock cycle.
"""

from .clocking import (ClockPlan, ClockSpec, DelayReport,
                       SetDelaySummary, measure_delay, plan_set,
                       plan_test, summarize_set)
from .transition import (TransitionFault, TransitionSim,
                         all_transition_faults)

__all__ = [
    "ClockPlan", "ClockSpec", "DelayReport", "SetDelaySummary",
    "TransitionFault", "TransitionSim", "all_transition_faults",
    "measure_delay", "plan_set", "plan_test", "summarize_set",
]

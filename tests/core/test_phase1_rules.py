"""Tests for the Step-3 scan-out rule variants (paper Section 3.1)."""

import pytest

from repro.atpg import random_gen
from repro.core import phase1
from repro.sim import values as V


def setup_case(wb, length, seed):
    t0 = random_gen.random_sequence(wb.circuit, length, seed=seed)
    scan_in = random_gen.random_state(wb.circuit, seed=seed + 1)
    f_si = wb.sim.detect(t0, scan_in, early_exit=False)
    return t0, tuple(scan_in), f_si


class TestMaxCoverageRule:
    def test_detects_at_least_earliest(self, s27_bench):
        wb = s27_bench
        t0, scan_in, f_si = setup_case(wb, 30, 21)
        u0, det0 = phase1.select_scan_out(wb.sim, scan_in, t0, f_si,
                                          rule="earliest")
        u1, det1 = phase1.select_scan_out(wb.sim, scan_in, t0, f_si,
                                          rule="max_coverage")
        assert len(det1) >= len(det0)
        assert f_si <= det0
        assert f_si <= det1

    def test_max_coverage_is_actually_maximal(self, s27_bench):
        wb = s27_bench
        t0, scan_in, f_si = setup_case(wb, 25, 22)
        u1, det1 = phase1.select_scan_out(wb.sim, scan_in, t0, f_si,
                                          rule="max_coverage")
        # Check against every candidate by direct truncation sims.
        best = 0
        for i in range(len(t0)):
            det = wb.sim.detect(t0[:i + 1], scan_in, early_exit=False)
            if f_si <= det:
                best = max(best, len(det))
        assert len(det1) == best

    def test_earliest_is_never_later(self, s27_bench):
        wb = s27_bench
        t0, scan_in, f_si = setup_case(wb, 25, 23)
        u0, _ = phase1.select_scan_out(wb.sim, scan_in, t0, f_si,
                                       rule="earliest")
        u1, _ = phase1.select_scan_out(wb.sim, scan_in, t0, f_si,
                                       rule="max_coverage")
        assert u0 <= u1 or u0 == u1 or u0 < len(t0)

    def test_unknown_rule_rejected(self, s27_bench):
        wb = s27_bench
        t0, scan_in, f_si = setup_case(wb, 10, 24)
        with pytest.raises(ValueError, match="unknown scan-out rule"):
            phase1.select_scan_out(wb.sim, scan_in, t0, f_si,
                                   rule="latest")

    def test_rule_threads_through_run_phase1(self, s27_bench, s27_comb):
        wb = s27_bench
        t0 = random_gen.random_sequence(wb.circuit, 20, seed=25)
        flags = [False] * len(s27_comb.tests)
        r0 = phase1.run_phase1(wb.sim, t0, s27_comb.tests, flags,
                               scan_out_rule="earliest")
        r1 = phase1.run_phase1(wb.sim, t0, s27_comb.tests, flags,
                               scan_out_rule="max_coverage")
        assert r0.chosen_index == r1.chosen_index  # Step 2 unchanged
        assert len(r1.f_so) >= len(r0.f_so)

"""Behavioural tests for the built-in circuit library.

These check *function*, not just structure: the counter counts, the
pattern detector detects, the traffic FSM walks its cycle.
"""

import pytest

from repro.circuits import library
from repro.sim import values as V
from repro.sim.logicsim import CompiledCircuit, simulate_sequence


def run(net, vectors, init):
    return simulate_sequence(CompiledCircuit(net), vectors, init)


class TestS27:
    def test_interface(self, s27):
        assert s27.num_inputs == 4
        assert s27.num_outputs == 1
        assert s27.num_ffs == 3
        assert s27.num_gates == 10

    def test_known_fault_count(self, s27):
        from repro.sim.faults import collapse
        assert len(collapse(s27)) == 32  # the classic s27 number


class TestCounter:
    def test_counts_with_enable(self):
        net = library.counter(3)
        # 5 enabled cycles from 000: ends at 101.
        res = run(net, [(V.ONE,)] * 5, (V.ZERO,) * 3)
        q = res.final_state[:3]
        assert q == (V.ONE, V.ZERO, V.ONE)  # q0, q1, q2 -> 5 = 0b101

    def test_holds_without_enable(self):
        net = library.counter(3)
        res = run(net, [(V.ZERO,)] * 4, (V.ONE, V.ZERO, V.ONE))
        assert res.final_state[:3] == (V.ONE, V.ZERO, V.ONE)

    def test_carry_at_maximum(self):
        net = library.counter(2)
        cc = CompiledCircuit(net)
        carry = net.outputs.index("carry")
        res = simulate_sequence(cc, [(V.ONE,)], (V.ONE, V.ONE))
        assert res.po_frames[0][carry] == V.ONE

    def test_parity_output(self):
        net = library.counter(2)
        cc = CompiledCircuit(net)
        parity = net.outputs.index("parity")
        res = simulate_sequence(cc, [(V.ZERO,)], (V.ONE, V.ZERO))
        assert res.po_frames[0][parity] == V.ONE

    def test_wraps_around(self):
        net = library.counter(2)
        res = run(net, [(V.ONE,)] * 4, (V.ZERO, V.ZERO))
        assert res.final_state[:2] == (V.ZERO, V.ZERO)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            library.counter(0)


class TestLfsr:
    def test_load_path(self):
        net = library.lfsr(4, taps=(0, 3))
        # load=1: serial bit enters r0; others shift.
        res = run(net, [(V.ONE, V.ONE)], (V.ZERO,) * 4)
        assert res.final_state[0] == V.ONE

    def test_shift_chain(self):
        net = library.lfsr(4, taps=(0, 3))
        res = run(net, [(V.ONE, V.ONE), (V.ONE, V.ZERO)],
                  (V.ZERO,) * 4)
        # First cycle loads 1 into r0; second shifts it into r1.
        assert res.final_state[1] == V.ONE

    def test_feedback_is_xor_of_taps(self):
        net = library.lfsr(3, taps=(0, 2))
        cc = CompiledCircuit(net)
        fb = net.outputs.index("fb")
        res = simulate_sequence(cc, [(V.ZERO, V.ZERO)],
                                (V.ONE, V.ZERO, V.ZERO))
        assert res.po_frames[0][fb] == V.ONE  # r0 ^ r2 = 1 ^ 0

    def test_rejects_bad_taps(self):
        with pytest.raises(ValueError):
            library.lfsr(3, taps=(0, 7))


class TestTrafficLight:
    def lamp(self, net, res, frame, name):
        return res.po_frames[frame][net.outputs.index(name)]

    def test_walks_the_cycle(self):
        net = library.traffic_light()
        cc = CompiledCircuit(net)
        # advance every cycle from GREEN (00).
        res = simulate_sequence(cc, [(V.ONE, V.ZERO)] * 4,
                                (V.ZERO, V.ZERO))
        # Lamps reflect the state *during* each frame.
        assert self.lamp(net, res, 0, "green") == V.ONE
        states = [f[:2] for f in res.state_frames]
        # s0,s1 pairs: 01, 10, 11, 00
        assert states == [(V.ONE, V.ZERO), (V.ZERO, V.ONE),
                          (V.ONE, V.ONE), (V.ZERO, V.ZERO)]

    def test_hold_freezes(self):
        net = library.traffic_light()
        res = run(net, [(V.ONE, V.ONE)] * 3, (V.ONE, V.ZERO))
        assert res.final_state[:2] == (V.ONE, V.ZERO)


class TestPatternDetector:
    def feed(self, net, bits, n):
        vectors = [(V.ONE,) if b == "1" else (V.ZERO,) for b in bits]
        cc = CompiledCircuit(net)
        res = simulate_sequence(cc, vectors, (V.ZERO,) * n)
        match = net.outputs.index("match")
        return [f[match] for f in res.po_frames]

    def test_detects_pattern(self):
        net = library.pattern_detector("1011")
        outs = self.feed(net, "01011", 4)
        # Pattern complete after the 5th bit arrives; match is
        # combinational on the shift register, so it fires the frame
        # after the last bit is captured -- check the final state
        # instead: h0..h3 = 1,1,0,1 (newest first).
        res = run(net, [(V.ZERO,), (V.ONE,), (V.ZERO,), (V.ONE,),
                        (V.ONE,)], (V.ZERO,) * 4)
        assert res.final_state[:4] == (V.ONE, V.ONE, V.ZERO, V.ONE)

    def test_overlapping_occurrences(self):
        net = library.pattern_detector("11")
        outs = self.feed(net, "0111", 2)
        # After bits 2 and 3 the register holds 11: match at frames 3+
        assert outs[3] == V.ONE

    def test_no_false_match(self):
        net = library.pattern_detector("101")
        outs = self.feed(net, "111", 3)
        assert V.ONE not in outs

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            library.pattern_detector("10x1")


class TestGrayCounter:
    def test_gray_sequence_single_bit_changes(self):
        net = library.gray_counter(3)
        res = run(net, [(V.ONE,)] * 7, (V.ZERO,) * 3)
        cc = CompiledCircuit(net)
        res = simulate_sequence(cc, [(V.ONE,)] * 7, (V.ZERO,) * 3)
        codes = []
        for frame in res.po_frames:
            codes.append(tuple(frame))
        for a, b in zip(codes, codes[1:]):
            flips = sum(1 for x, y in zip(a, b) if x != y)
            assert flips == 1, f"{a} -> {b} changes {flips} bits"


class TestRegistry:
    def test_all_builtins_compile(self):
        for name in library.BUILTINS:
            net = library.by_name(name)
            assert net.is_compiled()
            assert net.num_gates > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown builtin"):
            library.by_name("s9999")

"""Registry of don't-care (X) fill strategies.

The actual fills live in :func:`repro.sim.values.fill_x` (the sim
layer owns vector semantics and every ATPG call site already imports
it); this module is the power subsystem's front door: the canonical
strategy list, validation for CLI/harness inputs, and a delegating
helper.

Strategy semantics (DESIGN.md section 11):

``random``
    Independent uniform bits per X -- the historical behavior and the
    default everywhere; with it, the whole pipeline is byte-identical
    to the plain reproduction.
``fill0`` / ``fill1``
    Constant fills.  They minimize transitions *within* the filled
    runs but can create transitions at run boundaries.
``adjacent``
    Each X copies the nearest preceding specified value (repeat-last
    fill), the classic minimum-transition fill for shift power: a run
    of X between two specified values contributes at most one
    transition.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..sim import values as V

#: Canonical strategy names, in CLI display order.
FILL_STRATEGIES = V.FILL_STRATEGIES


def validate_strategy(strategy: str) -> str:
    """Return ``strategy`` unchanged, or raise ``ValueError``."""
    if strategy not in FILL_STRATEGIES:
        raise ValueError(f"unknown X-fill strategy {strategy!r}; "
                         f"use one of {FILL_STRATEGIES}")
    return strategy


def fill(vector: Iterable[int], rng: random.Random,
         strategy: str = "random") -> V.Vector:
    """Fill X positions of ``vector`` per ``strategy`` (validated).

    Delegates to :func:`repro.sim.values.fill_x`; see its docstring
    for the determinism and rng-consumption contract.
    """
    return V.fill_x(vector, rng, strategy=validate_strategy(strategy))

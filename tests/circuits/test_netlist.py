"""Unit tests for the netlist data model."""

import pytest

from repro.circuits.netlist import Gate, Netlist, NetlistError


def build_toy():
    net = Netlist("toy")
    net.add_input("a")
    net.add_input("b")
    net.add_dff("q", "d")
    net.add_gate("n1", "AND", ["a", "b"])
    net.add_gate("d", "XOR", ["n1", "q"])
    net.add_output("d")
    return net


class TestConstruction:
    def test_counts(self):
        net = build_toy().compile()
        assert net.num_inputs == 2
        assert net.num_outputs == 1
        assert net.num_ffs == 1
        assert net.num_gates == 2
        assert net.num_nets == 5

    def test_inputs_order_preserved(self):
        net = build_toy().compile()
        assert net.inputs == ["a", "b"]
        assert net.flip_flops == ["q"]

    def test_double_drive_rejected(self):
        net = build_toy()
        with pytest.raises(NetlistError, match="driven twice"):
            net.add_gate("n1", "OR", ["a", "b"])

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(NetlistError, match="unknown gate type"):
            Gate("x", "MUX", ["a", "b"])

    def test_dff_arity_enforced(self):
        with pytest.raises(NetlistError, match="exactly one fanin"):
            Gate("q", "DFF", ["a", "b"])

    def test_unary_arity_enforced(self):
        with pytest.raises(NetlistError, match="must have one fanin"):
            Gate("n", "NOT", ["a", "b"])

    def test_variadic_needs_fanin(self):
        with pytest.raises(NetlistError, match="at least one fanin"):
            Gate("n", "AND", [])

    def test_input_has_no_fanins(self):
        with pytest.raises(NetlistError, match="no fanins"):
            Gate("a", "INPUT", ["b"])

    def test_const_values(self):
        net = Netlist()
        net.add_const("zero", 0)
        net.add_const("one", 1)
        net.add_gate("o", "OR", ["zero", "one"])
        net.add_output("o")
        net.compile()
        assert net.gates["zero"].gtype == "CONST0"
        assert net.gates["one"].gtype == "CONST1"

    def test_const_bad_value(self):
        net = Netlist()
        with pytest.raises(NetlistError, match="0 or 1"):
            net.add_const("c", 2)

    def test_duplicate_output_idempotent(self):
        net = build_toy()
        net.add_output("d")
        assert net.outputs == ["d"]


class TestCompile:
    def test_undriven_net_rejected(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "NOT", ["missing"])
        net.add_output("n")
        with pytest.raises(NetlistError, match="never driven"):
            net.compile()

    def test_undriven_output_rejected(self):
        net = Netlist()
        net.add_input("a")
        net.add_output("ghost")
        with pytest.raises(NetlistError, match="never driven"):
            net.compile()

    def test_combinational_cycle_rejected(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("x", "AND", ["a", "y"])
        net.add_gate("y", "OR", ["x", "a"])
        net.add_output("y")
        with pytest.raises(NetlistError, match="cycle"):
            net.compile()

    def test_feedback_through_dff_is_legal(self):
        net = Netlist()
        net.add_input("a")
        net.add_dff("q", "d")
        net.add_gate("d", "XOR", ["a", "q"])
        net.add_output("d")
        net.compile()  # must not raise
        assert net.is_compiled()

    def test_topological_order_property(self):
        net = build_toy().compile()
        position = {n: i for i, n in enumerate(net.order)}
        for gname in net.order:
            for fin in net.gates[gname].fanins:
                if net.gates[fin].gtype in ("INPUT", "DFF"):
                    continue
                assert position[fin] < position[gname]

    def test_levels(self):
        net = build_toy().compile()
        assert net.levels["a"] == 0
        assert net.levels["q"] == 0
        assert net.levels["n1"] == 1
        assert net.levels["d"] == 2

    def test_net_ids_dense(self):
        net = build_toy().compile()
        assert sorted(net.net_ids.values()) == list(range(net.num_nets))

    def test_mutation_invalidates_compile(self):
        net = build_toy().compile()
        net.add_input("c")
        assert not net.is_compiled()


class TestUtilities:
    def test_copy_is_independent(self):
        net = build_toy().compile()
        dup = net.copy()
        dup.add_input("c")
        assert "c" not in net.gates
        assert dup.outputs == net.outputs

    def test_stats(self):
        stats = build_toy().compile().stats()
        assert stats == {"inputs": 2, "outputs": 1, "ffs": 1,
                         "gates": 2, "nets": 5}

    def test_transitive_fanin_stops_at_ffs(self):
        net = build_toy().compile()
        cone = net.transitive_fanin(["d"])
        assert set(cone) == {"a", "b", "d", "n1", "q"}

    def test_transitive_fanin_through_ffs(self):
        net = build_toy().compile()
        cone = net.transitive_fanin(["q"], stop_at_ffs=False)
        # q's data is d, whose cone includes everything.
        assert set(cone) == {"a", "b", "d", "n1", "q"}

    def test_fanout_map(self):
        net = build_toy().compile()
        assert net.fanout["a"] == ["n1"]
        assert set(net.fanout["n1"]) == {"d"}
        assert net.fanout["d"] == ["q"]

"""Tests for Phase 2: vector omission."""

import random

import pytest

from repro.atpg import random_gen
from repro.core.omission import omit_vectors
from repro.core.scan_test import ScanTest
from repro.sim import values as V


def is_subsequence(short, long):
    it = iter(long)
    return all(any(x == y for y in it) for x in short)


def make_case(wb, length, seed):
    t0 = random_gen.random_sequence(wb.circuit, length, seed=seed)
    scan_in = random_gen.random_state(wb.circuit, seed=seed + 1)
    test = ScanTest(tuple(scan_in), tuple(t0))
    required = wb.sim.detect(t0, scan_in, early_exit=False)
    return test, required


class TestContract:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_detection_preserved(self, s27_bench, seed):
        wb = s27_bench
        test, required = make_case(wb, 40, seed)
        result = omit_vectors(wb.sim, test, required)
        # Independent full re-simulation of the shortened test.
        check = wb.sim.detect(list(result.test.vectors),
                              result.test.scan_in, early_exit=False)
        assert required <= check
        assert required <= result.detected

    def test_result_is_subsequence(self, s27_bench):
        wb = s27_bench
        test, required = make_case(wb, 30, 3)
        result = omit_vectors(wb.sim, test, required)
        assert is_subsequence(result.test.vectors, test.vectors)
        assert result.test.scan_in == test.scan_in

    def test_never_longer(self, s27_bench):
        wb = s27_bench
        test, required = make_case(wb, 35, 4)
        result = omit_vectors(wb.sim, test, required)
        assert result.test.length <= test.length
        assert result.omitted == test.length - result.test.length

    def test_random_tail_is_trimmed(self, s27_bench):
        """A test padded with vectors after everything is detected
        should lose (most of) the padding."""
        wb = s27_bench
        test, required = make_case(wb, 20, 5)
        padded = ScanTest(test.scan_in, test.vectors + test.vectors)
        padded_required = wb.sim.detect(list(padded.vectors),
                                        padded.scan_in,
                                        early_exit=False)
        result = omit_vectors(wb.sim, padded, padded_required)
        assert result.test.length < padded.length

    def test_input_must_detect_required(self, s27_bench):
        wb = s27_bench
        test, _ = make_case(wb, 10, 6)
        everything = set(range(len(wb.faults)))
        with pytest.raises(ValueError, match="misses"):
            omit_vectors(wb.sim, test, everything)

    def test_single_vector_kept(self, s27_bench):
        wb = s27_bench
        test = ScanTest(V.vec("000"), (V.vec("1111"),))
        required = wb.sim.detect([V.vec("1111")], V.vec("000"),
                                 early_exit=False)
        result = omit_vectors(wb.sim, test, required)
        assert result.test.length == 1

    def test_detected_matches_resimulation(self, s27_bench):
        wb = s27_bench
        test, required = make_case(wb, 25, 7)
        result = omit_vectors(wb.sim, test, required)
        direct = wb.sim.detect(list(result.test.vectors),
                               result.test.scan_in,
                               target=sorted(required),
                               early_exit=False)
        assert result.detected == direct


class TestKnobs:
    def test_single_pass(self, s27_bench):
        wb = s27_bench
        test, required = make_case(wb, 30, 8)
        one = omit_vectors(wb.sim, test, required, passes=1)
        two = omit_vectors(wb.sim, test, required, passes=2)
        assert two.test.length <= one.test.length

    def test_block_size_one(self, s27_bench):
        wb = s27_bench
        test, required = make_case(wb, 20, 9)
        result = omit_vectors(wb.sim, test, required, initial_block=1)
        check = wb.sim.detect(list(result.test.vectors),
                              result.test.scan_in, early_exit=False)
        assert required <= check

    def test_synthetic_circuit(self, mid_bench):
        wb = mid_bench
        test, required = make_case(wb, 50, 10)
        result = omit_vectors(wb.sim, test, required)
        check = wb.sim.detect(list(result.test.vectors),
                              result.test.scan_in, early_exit=False)
        assert required <= check

"""Experiment harness: suite runners and paper-table regeneration.

Two execution layers:

* :mod:`~repro.experiments.runner` -- simple serial in-process runs;
* :mod:`~repro.experiments.harness` -- resilient campaigns with worker
  isolation, per-job timeouts, stall detection, retries and
  checkpoint-resume with phase-boundary salvage.

Supporting modules:

* :mod:`~repro.experiments.salvage` -- the self-verifying run store
  (CRC-enveloped JSONL, quarantine-and-repair loading, phase-boundary
  salvage state, :func:`doctor`);
* :mod:`~repro.experiments.supervision` -- in-worker heartbeats, phase
  hooks and scoped chaos directives.
"""

from .harness import (HarnessConfig, JobRecord, JobSpec, RunStore,
                      SuiteOutcome, run_jobs, run_suite_resilient)
from .reporting import (Table, atomic_write_text, dump_json,
                        engine_counters_table, render_all,
                        run_from_dict, run_to_dict)
from .runner import (ArmResult, CircuitRun, resolve_profiles, run_circuit,
                     run_circuit_by_name, run_suite)
from .salvage import (CorruptLine, DoctorReport, PartialRun, SalvageStore,
                      decode_line, doctor, encode_line, load_jsonl)
from .supervision import (ChaosDirective, ChaosError, ProgressReporter,
                          WorkerHooks, chaos_from_env, parse_chaos)
from .tables import (all_tables, paper_comparison, table1, table2, table3,
                     table4, table5, table_atspeed_coverage, table_power)

__all__ = [
    "Table", "atomic_write_text", "dump_json", "engine_counters_table",
    "render_all", "run_to_dict", "run_from_dict",
    "ArmResult", "CircuitRun", "resolve_profiles", "run_circuit",
    "run_circuit_by_name", "run_suite",
    "HarnessConfig", "JobRecord", "JobSpec", "RunStore", "SuiteOutcome",
    "run_jobs", "run_suite_resilient",
    "CorruptLine", "DoctorReport", "PartialRun", "SalvageStore",
    "decode_line", "doctor", "encode_line", "load_jsonl",
    "ChaosDirective", "ChaosError", "ProgressReporter", "WorkerHooks",
    "chaos_from_env", "parse_chaos",
    "all_tables", "paper_comparison", "table1", "table2", "table3",
    "table4", "table5", "table_atspeed_coverage", "table_power",
]

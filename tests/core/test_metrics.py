"""Tests for the metrics helpers (Tables 3/4 arithmetic)."""

import pytest

from repro.core.metrics import (AtSpeedStats, Coverage, at_speed_stats,
                                clock_cycles, coverage)
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.sim import values as V


def ts(lengths, n_sv=5):
    return ScanTestSet(n_sv, [
        ScanTest((V.ZERO,) * n_sv, tuple((V.ONE,) for _ in range(n)))
        for n in lengths])


class TestAtSpeedStats:
    def test_basic(self):
        stats = at_speed_stats(ts([1, 3, 8]))
        assert stats.average == 4.0
        assert stats.minimum == 1
        assert stats.maximum == 8
        assert stats.range_str == "1-8"
        assert stats.tests == 3
        assert stats.pairs == 0 + 2 + 7

    def test_rounding(self):
        stats = at_speed_stats(ts([1, 2, 2]))
        assert stats.average == pytest.approx(1.67, abs=0.01)

    def test_single_long_test(self):
        stats = at_speed_stats(ts([68]))
        assert stats.range_str == "68-68"
        assert stats.pairs == 67


class TestClockCycles:
    def test_matches_test_set_method(self):
        set_ = ts([2, 5], n_sv=7)
        assert clock_cycles(set_) == set_.clock_cycles() == \
            3 * 7 + 7


class TestCoverage:
    def test_percentages(self):
        cov = coverage({1, 2, 3}, total=10, detectable={1, 2, 3, 4})
        assert cov.percent_total == 30.0
        assert cov.percent_detectable == 75.0
        assert not cov.complete()

    def test_complete_against_detectable(self):
        cov = coverage({1, 2}, total=10, detectable={1, 2})
        assert cov.complete()
        assert cov.percent_detectable == 100.0

    def test_no_detectable_falls_back_to_total(self):
        cov = coverage({1}, total=4)
        assert cov.percent_detectable == 25.0
        assert not cov.complete()

    def test_empty_totals(self):
        cov = Coverage(detected=0, total=0)
        assert cov.percent_total == 0.0
        assert cov.complete()

"""The static fault-space analyzer: classes, dominance, proofs."""

import json

from repro.analysis.faultspace import (RULE_BLOCKED, RULE_CONSTANT,
                                       RULE_UNOBSERVABLE,
                                       FaultSpaceReport,
                                       analyze_faultspace)
from repro.circuits import synth
from repro.circuits.netlist import Netlist
from repro.sim.faults import Fault, all_faults


def report_for(net):
    return analyze_faultspace(net)


class TestClasses:
    def test_classes_partition_universe(self, s27):
        r = report_for(s27)
        members = [f for cls in r.classes for f in cls]
        assert sorted(members) == sorted(all_faults(s27))
        assert r.n_universe == len(members)
        assert r.n_classes == 32  # the standard s27 collapsed count

    def test_representative_is_minimum(self, s27):
        r = report_for(s27)
        for members in r.classes:
            assert members[0] == min(members)
        assert r.representatives() == [m[0] for m in r.classes]

    def test_collapse_ratio(self, s27):
        r = report_for(s27)
        assert 0 < r.collapse_ratio < 1
        empty = FaultSpaceReport(circuit="none", n_universe=0,
                                 classes=[], dominance=[],
                                 scoap=r.scoap)
        assert empty.collapse_ratio == 1.0


class TestDominance:
    def test_and_dominance_direction(self):
        net = Netlist("d")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", "AND", ["a", "b"])
        net.add_dff("q", "g")
        net.add_output("g")
        net.compile()
        r = report_for(net)
        # Output s-a-1 is dominated by... no: (dominator, dominated)
        # = (g/1, a/1): every test of a s-a-1 detects g s-a-1.
        assert (Fault("g", None, 1), Fault("a", None, 1)) in r.dominance

    def test_xor_has_no_edges(self):
        net = Netlist("x")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("g", "XOR", ["a", "b"])
        net.add_output("g")
        net.compile()
        assert report_for(net).dominance == []

    def test_dominance_counts(self, s27):
        r = report_for(s27)
        counts = r.dominance_counts()
        assert sum(counts.values()) == len(r.dominance)
        assert all(v > 0 for v in counts.values())


class TestUntestableProofs:
    def test_constant_line(self):
        net = Netlist("c")
        net.add_input("a")
        net.add_gate("k", "CONST1", [])
        net.add_gate("g", "AND", ["a", "k"])
        net.add_output("g")
        net.compile()
        r = report_for(net)
        rules = {p.fault: p.rule for p in r.proofs}
        assert rules[Fault("k", None, 1)] == RULE_CONSTANT
        assert Fault("k", None, 1) in r.untestable
        # s-a-0 on a CONST1 line is excitable, not proven here.
        assert rules.get(Fault("k", None, 0)) != RULE_CONSTANT

    def test_unobservable_cone(self):
        net = Netlist("dead")
        net.add_input("a")
        net.add_gate("g", "NOT", ["a"])
        net.add_gate("dead", "NOT", ["g"])
        net.add_output("g")
        net.compile()
        r = report_for(net)
        rules = {p.fault: p.rule for p in r.proofs}
        assert rules[Fault("dead", None, 0)] == RULE_UNOBSERVABLE
        assert rules[Fault("dead", None, 1)] == RULE_UNOBSERVABLE

    def test_const_blocked_path(self):
        # g2 = AND(x, k) with k constant 0: x's effect cannot pass g2,
        # and g2 is its only reader -> blocked, not merely dead-cone.
        net = Netlist("blk")
        net.add_input("a")
        net.add_gate("k", "CONST0", [])
        net.add_gate("x", "NOT", ["a"])
        net.add_gate("g2", "AND", ["x", "k"])
        net.add_output("g2")
        net.compile()
        r = report_for(net)
        rules = {p.fault: p.rule for p in r.proofs}
        assert rules[Fault("x", None, 0)] == RULE_BLOCKED
        assert rules[Fault("x", None, 1)] == RULE_BLOCKED

    def test_closure_covers_whole_classes(self, s27):
        r = report_for(s27)
        for members in r.classes:
            hit = r.untestable & set(members)
            assert not hit or len(hit) == len(members)

    def test_clean_circuit_has_no_proofs(self, s27):
        r = report_for(s27)
        assert r.proofs == []
        assert r.n_untestable == 0


class TestReportPlumbing:
    def test_json_round_trip(self, s27):
        r = report_for(s27)
        payload = json.dumps(r.to_dict())
        back = FaultSpaceReport.from_dict(json.loads(payload))
        assert back.circuit == r.circuit
        assert back.classes == r.classes
        assert back.dominance == r.dominance
        assert back.untestable == r.untestable
        assert back.scoap == r.scoap
        assert back.verify() == []

    def test_verify_clean(self, s27):
        assert report_for(s27).verify() == []

    def test_verify_catches_broken_closure(self, s27):
        r = report_for(s27)
        big = next(m for m in r.classes if len(m) > 1)
        r.untestable = {big[0]}  # one member, not the class
        assert any("not closed" in p for p in r.verify())

    def test_verify_catches_overlap_and_gap(self, s27):
        r = report_for(s27)
        r.classes = r.classes[:-1] + [r.classes[0]]
        problems = r.verify()
        assert any("overlaps" in p for p in problems)
        assert any("cover" in p for p in problems)

    def test_render_mentions_the_numbers(self, s27):
        r = report_for(s27)
        text = r.render()
        assert str(r.n_universe) in text
        assert str(r.n_classes) in text
        assert "untestable" in text

    def test_helper_maps(self, s27):
        r = report_for(s27)
        universe = all_faults(s27)
        assert r.untestable_indices(universe) == set()
        dmap = r.difficulty_map(universe)
        assert set(dmap) == set(range(len(universe)))

    def test_synth_reports_verify(self):
        for seed in range(4):
            net = synth.generate("fsv", 4, 3, 5, 40, seed=seed)
            r = report_for(net)
            assert r.verify() == [], r.verify()

"""Engine equivalence: fused, chunked and codegen must agree exactly.

The wide-word fusion, the in-pass repack and the codegen backend are
pure packing/evaluation strategies -- none of them may change a single
detection.  These properties drive random circuits, widths, scan
configurations and X-laden vectors through every engine combination
and require byte-identical detection sets.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import random_gen
from repro.circuits import synth
from repro.core.combine import _detections
from repro.core.scan_test import ScanTest
from repro.sim import fault_sim as fault_sim_mod
from repro.sim import values as V
from repro.sim.counters import SimCounters
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit
from repro.sim.scoreboard import FaultScoreboard

_N_PI = 4

_CACHE = {}


def circuit_for(seed):
    """Small random sequential circuit, cached across examples."""
    if seed not in _CACHE:
        net = synth.generate("equiv", _N_PI, 3, 5, 30, seed=seed)
        cc_codegen = CompiledCircuit(net, engine="codegen")
        cc_generic = CompiledCircuit(net.copy(), engine="generic")
        fs = FaultSet.collapsed(net)
        _CACHE[seed] = (cc_codegen, cc_generic, fs)
    return _CACHE[seed]


circuit_seeds = st.integers(0, 14)
widths = st.sampled_from([2, 5, 128, "auto"])


def _vectors(data, rng, n):
    """A sequence that mixes binary and X-laden vectors."""
    out = []
    for _ in range(n):
        if data.draw(st.booleans()):
            out.append(V.random_binary_vector(_N_PI, rng))
        else:
            out.append(tuple(rng.choice((V.ZERO, V.ONE, V.X))
                             for _ in range(_N_PI)))
    return out


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seed=circuit_seeds, width=widths, data=st.data())
    def test_detect_sets_identical(self, seed, width, data):
        """Every (engine, width) pair agrees with the reference
        (codegen, fused) detection set on the same test."""
        cc_codegen, cc_generic, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n = data.draw(st.integers(1, 10))
        vectors = _vectors(data, rng, n)
        init = (V.random_binary_vector(len(cc_codegen.ff_ids), rng)
                if data.draw(st.booleans()) else None)
        scan_out = data.draw(st.booleans())
        early_exit = data.draw(st.booleans())

        reference = FaultSimulator(cc_codegen, fs, width="auto").detect(
            vectors, init, scan_out=scan_out, early_exit=False)
        for circuit in (cc_codegen, cc_generic):
            sim = FaultSimulator(circuit, fs, width=width)
            got = sim.detect(vectors, init, scan_out=scan_out,
                             early_exit=early_exit)
            assert got == reference

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, width=widths, data=st.data())
    def test_partial_scan_observation(self, seed, width, data):
        """Agreement holds when scan-out observes a subset of FFs."""
        cc_codegen, cc_generic, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n_ff = len(cc_codegen.ff_ids)
        observe = sorted(rng.sample(range(n_ff),
                                    data.draw(st.integers(0, n_ff))))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(n_ff, rng)

        reference = FaultSimulator(cc_codegen, fs, width="auto").detect(
            vectors, init, scan_observe=observe, early_exit=False)
        got = FaultSimulator(cc_generic, fs, width=width).detect(
            vectors, init, scan_observe=observe, early_exit=False)
        assert got == reference

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, width=widths, data=st.data())
    def test_records_identical(self, seed, width, data):
        """run_with_records yields the same truncated-test detections
        whatever the packing policy or engine."""
        cc_codegen, cc_generic, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(len(cc_codegen.ff_ids), rng)

        ref = FaultSimulator(cc_codegen, fs, width="auto")\
            .run_with_records(vectors, init)
        alt = FaultSimulator(cc_generic, fs, width=width)\
            .run_with_records(vectors, init)
        for frame in range(len(vectors)):
            assert (ref.detected_with_scanout_at(frame)
                    == alt.detected_with_scanout_at(frame))


class TestRepack:
    def test_repack_preserves_detections(self, monkeypatch):
        """Forcing aggressive in-pass retirement changes counters,
        never the detection set."""
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_MACHINES", 2)
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_FRAMES_LEFT", 1)
        net = synth.generate("repack", 5, 4, 8, 80, seed=3)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        vectors = random_gen.random_sequence(cc, 30, seed=1)
        init = random_gen.random_state(cc, seed=2)

        plain = FaultSimulator(cc, fs, width="auto").detect(
            vectors, init, early_exit=False)
        repacking = FaultSimulator(cc, fs, width="auto")
        got = repacking.detect(vectors, init, early_exit=True)
        # early_exit/repack are pure shortcuts: the set is unchanged.
        assert got == plain
        assert repacking.counters.repacks > 0
        assert repacking.counters.faults_dropped > 0

    def test_repack_detects_same_on_hard_targets(self, monkeypatch):
        """When early_exit cannot trigger the all-caught break (some
        fault is never detected), the repacking pass must still find
        exactly the full detection set."""
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_MACHINES", 2)
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_FRAMES_LEFT", 1)
        net = synth.generate("repack2", 4, 3, 6, 50, seed=9)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        vectors = random_gen.random_sequence(cc, 25, seed=4)
        init = random_gen.random_state(cc, seed=5)

        plain = FaultSimulator(cc, fs, width="auto").detect(
            vectors, init, early_exit=False)
        if len(plain) == len(fs):  # pragma: no cover - seed-dependent
            pytest.skip("every fault detected: early exit would fire")
        repacking = FaultSimulator(cc, fs, width="auto")
        got = repacking.detect(vectors, init, early_exit=True)
        assert got == plain
        assert repacking.counters.repacks > 0


class TestWidthPolicy:
    def test_auto_fuses_below_cap(self):
        net = synth.generate("wp", 3, 2, 4, 20, seed=0)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs, width="auto")
        assert sim.resolve_width(50) == 51
        assert len(sim._build_chunks(range(50))) == 1

    def test_auto_balances_above_cap(self):
        net = synth.generate("wp", 3, 2, 4, 20, seed=0)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs, width="auto", fused_cap=101)
        # 250 targets over a 101-machine cap -> 3 balanced chunks.
        assert sim.resolve_width(250) == 85  # ceil(250/3) + good machine
        # And over the real fault list: chunks within one of each other.
        small = FaultSimulator(cc, fs, width="auto",
                               fused_cap=len(fs) // 2)
        chunks = small._build_chunks(range(len(fs)))
        sizes = [len(c.indices) for c in chunks]
        assert len(sizes) >= 2
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(fs)

    def test_bad_width_rejected(self):
        net = synth.generate("wp", 3, 2, 4, 20, seed=0)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        with pytest.raises(ValueError):
            FaultSimulator(cc, fs, width=1)
        with pytest.raises(ValueError):
            FaultSimulator(cc, fs, width="wide")


class TestScoreboard:
    def test_retire_and_query(self):
        counters = SimCounters()
        board = FaultScoreboard(10, counters=counters)
        assert board.retire([1, 3, 5]) == 3
        assert board.retire([3, 5, 7]) == 1  # only 7 is new
        assert board.n_retired == 4
        assert board.is_retired(3)
        assert not board.is_retired(0)
        assert board.retired_within({0, 1, 2, 3}) == {1, 3}
        assert board.active({0, 1, 2, 3}) == [0, 2]
        assert counters.faults_dropped == 4

    def test_out_of_range_rejected(self):
        board = FaultScoreboard(4)
        with pytest.raises(ValueError):
            board.retire([4])
        with pytest.raises(ValueError):
            FaultScoreboard(-1)

    def test_disabled_scoreboard_is_inert(self):
        counters = SimCounters()
        board = FaultScoreboard(10, counters=counters, enabled=False)
        assert board.retire([1, 2, 3]) == 0
        assert board.n_retired == 0
        assert board.active({1, 2, 3}) == [1, 2, 3]
        assert counters.faults_dropped == 0

    def test_disabled_scoreboard_ablation_identical_results(self):
        """The full pipeline with cross-phase dropping off must produce
        the exact result of the dropping run (the ablation claim)."""
        from repro.atpg import comb_set as comb_set_mod
        from repro.core import proposed
        from repro.sim.comb_sim import CombPatternSim

        net = synth.generate("abl", 4, 3, 5, 40, seed=3)
        results = []
        for enabled in (True, False):
            cc = CompiledCircuit(net.copy())
            fs = FaultSet.collapsed(net)
            sim = FaultSimulator(cc, fs)
            comb_sim = CombPatternSim(cc, fs)
            comb = comb_set_mod.generate(cc, fs, seed=1)
            t0 = random_gen.random_sequence(cc, 60, seed=1)
            board = FaultScoreboard(len(fs), counters=sim.counters,
                                    enabled=enabled)
            res = proposed.run(sim, comb_sim, t0, comb.tests,
                               scoreboard=board)
            results.append((res, sim.counters.faults_dropped))
        (with_drop, n_dropped), (without, n_plain) = results
        assert n_dropped > 0 and n_plain == 0
        assert with_drop.final_detected == without.final_detected
        assert with_drop.seq_detected == without.seq_detected
        assert with_drop.added_tests == without.added_tests
        assert len(with_drop.test_set) == len(without.test_set)


class TestCounters:
    def test_note_words_and_density(self):
        c = SimCounters()
        c.note_words(4, 100)
        c.note_words(1, 20)
        assert c.words == 5
        assert c.machines == 420
        assert c.machines_per_word == 84.0

    def test_dict_round_trip(self):
        c = SimCounters(frames=7, words=3, machines=30,
                        faults_dropped=2, repacks=1, detect_passes=4)
        d = c.as_dict()
        assert d["machines_per_word"] == 10.0
        back = SimCounters.from_dict(d)
        assert back == c

    def test_from_dict_legacy_checkpoint(self):
        """Checkpoints written before newer counter fields existed lack
        their keys: missing fields default, derived and unknown keys
        are ignored, present timer fields stay float."""
        legacy = {"frames": 9, "words": 4, "machines": 40,
                  "machines_per_word": 10.0,    # derived, not a field
                  "retired_total": 3}           # a key we never had
        back = SimCounters.from_dict(legacy)
        assert back.frames == 9 and back.words == 4
        assert back.faults_dropped == 0         # missing -> default
        assert back.phase1_s == 0.0
        assert back.machines_per_word == 10.0   # re-derived, not stored
        half = SimCounters.from_dict({"frames": 1, "phase3_s": 0.25})
        assert half.phase3_s == 0.25 and isinstance(half.phase3_s, float)

    def test_phase_timer_accumulates(self):
        c = SimCounters()
        with c.phase_timer("phase2"):
            pass
        first = c.phase2_s
        assert first >= 0.0
        with c.phase_timer("phase2"):
            sum(range(1000))
        assert c.phase2_s >= first  # accumulates, never resets
        assert c.phase1_s == 0.0
        with pytest.raises(ValueError, match="phase"):
            with c.phase_timer("phase9"):
                pass

    def test_timer_fields_stay_float_through_dict(self):
        c = SimCounters(frames=2, words=1, machines=4)
        with c.phase_timer("phase1"):
            pass
        back = SimCounters.from_dict(c.as_dict())
        assert isinstance(back.phase1_s, float)
        assert isinstance(back.frames, int)
        c.reset()
        assert c.phase1_s == 0.0 and c.frames == 0

    def test_counting_during_detect(self):
        net = synth.generate("cnt", 3, 2, 4, 20, seed=1)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs, width="auto")
        vectors = random_gen.random_sequence(cc, 10, seed=0)
        sim.detect(vectors, None, early_exit=False)
        assert sim.counters.detect_passes == 1
        assert sim.counters.frames == 10
        assert sim.counters.words == 10  # fused: one word per frame
        assert sim.counters.machines == 10 * len(fs)


class TestCombineCache:
    def test_cached_tests_not_resimulated(self):
        net = synth.generate("cache", 4, 3, 5, 30, seed=2)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs, width="auto")
        rng = random.Random(0)
        tests = [ScanTest(V.random_binary_vector(5, rng),
                          (V.random_binary_vector(4, rng),))
                 for _ in range(3)]
        target = list(range(len(fs)))
        cache = {}
        first = _detections(sim, tests, target, cache)
        passes = sim.counters.detect_passes
        second = _detections(sim, tests, target, cache)
        assert sim.counters.detect_passes == passes  # all cache hits
        assert first == second

    def test_superset_cache_entry_intersected(self):
        net = synth.generate("cache", 4, 3, 5, 30, seed=2)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs, width="auto")
        rng = random.Random(1)
        test = ScanTest(V.random_binary_vector(5, rng),
                        (V.random_binary_vector(4, rng),))
        full = sim.detect(list(test.vectors), test.scan_in,
                          early_exit=False)
        sub = sorted(full)[: max(1, len(full) // 2)]
        cache = {test: full}
        out = _detections(sim, [test], sub, cache)
        assert out == [set(sub) & full]


class TestScanoutRegression:
    def test_zero_frame_records_raise_value_error(self):
        """Regression: earliest_safe_scanout on an empty recording
        raised NameError (unbound 'missing') instead of ValueError."""
        net = synth.generate("reg", 3, 2, 4, 20, seed=0)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs)
        records = sim.run_with_records([], init_state=None)
        with pytest.raises(ValueError, match="no frames"):
            records.earliest_safe_scanout({0})


# ----------------------------------------------------------------------
# numpy array backend (optional dependency: repro[fast])
# ----------------------------------------------------------------------

try:
    from repro.sim.npsim import (ArrayBackend, kernel_unavailable_reason,
                                 numpy_available)
    _HAS_NUMPY = numpy_available()
    _HAS_KERNEL = _HAS_NUMPY and kernel_unavailable_reason() is None
except ImportError:  # pragma: no cover - numpy present in CI
    _HAS_NUMPY = _HAS_KERNEL = False

needs_numpy = pytest.mark.skipif(not _HAS_NUMPY,
                                 reason="numpy not installed")

_NP_CACHE = {}


def numpy_circuits_for(seed):
    """One ``engine="numpy"`` circuit per executor path: the C kernel
    (when a compiler is present) and the pure-numpy fallback."""
    if seed not in _NP_CACHE:
        net = synth.generate("equiv", _N_PI, 3, 5, 30, seed=seed)
        out = []
        if _HAS_KERNEL:
            out.append(CompiledCircuit(net.copy(), engine="numpy"))
        cc_py = CompiledCircuit(net.copy(), engine="numpy")
        cc_py._array_backend = ArrayBackend(cc_py, use_kernel=False)
        out.append(cc_py)
        _NP_CACHE[seed] = out
    return _NP_CACHE[seed]


@needs_numpy
class TestNumpyBackendEquivalence:
    """``--engine numpy`` must be byte-identical to the big-int
    engines under both executors (C kernel and pure-numpy fallback),
    including X-laden stimuli, partial scan and early exit."""

    @settings(max_examples=40, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_detect_sets_identical(self, seed, data):
        cc_codegen, _, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 10)))
        init = (V.random_binary_vector(len(cc_codegen.ff_ids), rng)
                if data.draw(st.booleans()) else None)
        scan_out = data.draw(st.booleans())
        early_exit = data.draw(st.booleans())

        reference = FaultSimulator(cc_codegen, fs, width="auto").detect(
            vectors, init, scan_out=scan_out, early_exit=False)
        for cc_np in numpy_circuits_for(seed):
            sim = FaultSimulator(cc_np, fs, width="auto")
            got = sim.detect(vectors, init, scan_out=scan_out,
                             early_exit=early_exit)
            assert got == reference
            assert sim.counters.np_passes > 0

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_partial_scan_observation(self, seed, data):
        cc_codegen, _, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n_ff = len(cc_codegen.ff_ids)
        observe = sorted(rng.sample(range(n_ff),
                                    data.draw(st.integers(0, n_ff))))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(n_ff, rng)

        reference = FaultSimulator(cc_codegen, fs, width="auto").detect(
            vectors, init, scan_observe=observe, early_exit=False)
        for cc_np in numpy_circuits_for(seed):
            got = FaultSimulator(cc_np, fs, width="auto").detect(
                vectors, init, scan_observe=observe, early_exit=False)
            assert got == reference

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_records_identical(self, seed, data):
        cc_codegen, _, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 6)))
        init = V.random_binary_vector(len(cc_codegen.ff_ids), rng)

        ref = FaultSimulator(cc_codegen, fs, width="auto")\
            .run_with_records(vectors, init)
        for cc_np in numpy_circuits_for(seed):
            alt = FaultSimulator(cc_np, fs, width="auto")\
                .run_with_records(vectors, init)
            for frame in range(len(vectors)):
                assert (ref.detected_with_scanout_at(frame)
                        == alt.detected_with_scanout_at(frame))

    @settings(max_examples=15, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_omission_identical(self, seed, data):
        """Phase-2 suffix trials route through the kernel; the
        shortened test, its detections and the trial-by-trial search
        path must match the big-int engine exactly."""
        from repro.core.omission import omit_vectors
        from repro.core.scan_test import ScanTest
        cc_codegen, _, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(4, 12)))
        init = V.random_binary_vector(len(cc_codegen.ff_ids), rng)
        required = set(FaultSimulator(cc_codegen, fs, width="auto")
                       .detect(vectors, init, early_exit=False))
        test = ScanTest(tuple(init), tuple(tuple(v) for v in vectors))
        ref_sim = FaultSimulator(cc_codegen, fs, width="auto")
        ref = omit_vectors(ref_sim, test, set(required))
        for cc_np in numpy_circuits_for(seed):
            sim = FaultSimulator(cc_np, fs, width="auto")
            got = omit_vectors(sim, test, set(required))
            assert got.test == ref.test
            assert got.detected == ref.detected
            assert got.trials == ref.trials
            assert (sim.counters.frames, sim.counters.words) == \
                (ref_sim.counters.frames, ref_sim.counters.words)


@needs_numpy
class TestNumpyRepack:
    def test_forced_repacks_identical(self, monkeypatch):
        """Aggressive in-pass retirement repacks inside the kernel's
        pass loop (and the fallback's); sets, repack counts and word
        accounting stay exactly the big-int engine's."""
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_MACHINES", 2)
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_FRAMES_LEFT", 1)
        net = synth.generate("repack", 5, 4, 8, 80, seed=3)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        vectors = random_gen.random_sequence(cc, 30, seed=1)
        init = random_gen.random_state(cc, seed=2)

        ref_sim = FaultSimulator(cc, fs, width="auto")
        reference = ref_sim.detect(vectors, init, early_exit=True)
        assert ref_sim.counters.repacks > 0

        for use_kernel in ([True, False] if _HAS_KERNEL else [False]):
            cc_np = CompiledCircuit(net.copy(), engine="numpy")
            cc_np._array_backend = ArrayBackend(cc_np,
                                                use_kernel=use_kernel)
            sim = FaultSimulator(cc_np, fs, width="auto")
            got = sim.detect(vectors, init, early_exit=True)
            assert got == reference
            c, r = sim.counters, ref_sim.counters
            assert (c.repacks, c.faults_dropped) == \
                (r.repacks, r.faults_dropped)
            assert (c.frames, c.words, c.machines) == \
                (r.frames, r.words, r.machines)
            assert c.np_passes > 0


@needs_numpy
class TestEngineSelection:
    def test_auto_threshold_routes_by_machine_count(self):
        """engine="auto" uses the array backend only for chunks at or
        above the probe threshold (and only when the kernel loaded);
        engine="numpy" always uses it."""
        net = synth.generate("autoeq", 4, 3, 5, 40, seed=1)
        fs = FaultSet.collapsed(net)
        cc = CompiledCircuit(net, engine="auto")
        sim = FaultSimulator(cc, fs, width="auto")
        if not _HAS_KERNEL:
            assert sim._array_backend_for(10 ** 6) is None
            return
        assert sim._array_backend_for(sim.np_auto_min - 2) is None
        assert sim._array_backend_for(sim.np_auto_min) is not None
        sim._force_bigint = True
        assert sim._array_backend_for(10 ** 6) is None

    def test_auto_env_override(self, monkeypatch):
        if not _HAS_KERNEL:
            pytest.skip("no C kernel: auto never routes to numpy")
        monkeypatch.setenv("REPRO_NP_AUTO_MIN", "3")
        net = synth.generate("autoeq2", 4, 3, 5, 40, seed=1)
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(CompiledCircuit(net, engine="auto"), fs)
        assert sim.np_auto_min == 3
        assert sim._array_backend_for(2) is not None

    def test_auto_agrees_with_codegen(self):
        net = synth.generate("autoeq3", 4, 3, 6, 50, seed=2)
        fs = FaultSet.collapsed(net)
        vectors = random_gen.random_sequence(
            CompiledCircuit(net), 12, seed=3)
        init = random_gen.random_state(CompiledCircuit(net), seed=4)
        ref = FaultSimulator(CompiledCircuit(net, engine="codegen"),
                             fs, width="auto").detect(
            vectors, init, early_exit=False)
        got = FaultSimulator(CompiledCircuit(net, engine="auto"),
                             fs, width="auto").detect(
            vectors, init, early_exit=False)
        assert got == ref

    def test_missing_numpy_raises_actionable_error(self, monkeypatch):
        """CompiledCircuit(engine="numpy") surfaces MissingNumpyError
        eagerly at construction when numpy cannot be imported."""
        from repro.sim import logicsim, npsim

        def _raise():
            raise npsim.MissingNumpyError("install repro[fast]")

        monkeypatch.setattr(npsim, "require_numpy", _raise)
        net = synth.generate("noeq", 3, 2, 3, 15, seed=0)
        with pytest.raises(npsim.MissingNumpyError,
                           match=r"repro\[fast\]"):
            logicsim.CompiledCircuit(net, engine="numpy")

    def test_sanitizer_shadow_is_cross_backend(self, monkeypatch):
        """With the sanitizer armed, a numpy-engine detect is spot
        checked against a big-int shadow with the opposite packing --
        and the shadow really is big-int (_force_bigint)."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        net = synth.generate("sancb", 4, 3, 5, 40, seed=6)
        fs = FaultSet.collapsed(net)
        cc = CompiledCircuit(net, engine="numpy")
        sim = FaultSimulator(cc, fs, width="auto")
        vectors = random_gen.random_sequence(cc, 6, seed=1)
        init = random_gen.random_state(cc, seed=2)
        sim.detect(vectors, init, early_exit=False)
        assert sim.counters.np_passes > 0
        assert sim._sanitize_spots_left < fault_sim_mod.\
            _SANITIZE_SPOT_BUDGET

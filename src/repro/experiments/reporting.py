"""Plain-text table rendering and JSON (de)serialization for results.

The renderers aim for the paper's look: fixed-width columns, one row
per circuit, a ``total`` row where the paper prints one.

The second half of the module turns :class:`~repro.experiments.runner.
CircuitRun` (and everything it embeds) into plain JSON-able dicts and
back.  Vectors are stored as compact ``"01x"`` strings; fault sets as
sorted index lists.  The round trip is exact, which is what lets the
resilient harness checkpoint completed runs and resume a campaign.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core.combine import CombineResult, CombineStats
from ..core.dynamic import DynamicResult
from ..core.proposed import IterationLog, ProposedResult
from ..core.scan_test import ScanTest, ScanTestSet
from ..delay.clocking import DelayReport
from ..power.activity import PowerReport
from ..sim import values as V


class Table:
    """A titled grid of rows used by every experiment report."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Any]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}")
        self.rows.append(list(cells))

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [self.headers] + [[_fmt(c) for c in row]
                                  for row in self.rows]
        widths = [max(len(str(row[i])) for row in cells)
                  for i in range(len(self.headers))]
        lines = [self.title]
        lines.append("  ".join(str(h).ljust(w)
                               for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"title": self.title, "headers": self.headers,
                "rows": self.rows}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically, creating parent dirs.

    The content lands in a sibling temp file first and is moved into
    place with :func:`os.replace`, so a mid-write interrupt can never
    leave a truncated artifact under the final name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


def dump_json(tables: Sequence[Table], path: Union[str, Path]) -> None:
    """Write a list of tables as JSON (for regression tracking)."""
    payload = [t.to_dict() for t in tables]
    atomic_write_text(path, json.dumps(payload, indent=2))


def render_all(tables: Sequence[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(t.render() for t in tables)


# ----------------------------------------------------------------------
# CircuitRun (de)serialization
# ----------------------------------------------------------------------

def _vec_to_json(vector: V.Vector) -> str:
    return V.vec_str(vector)


def _vec_from_json(text: str) -> V.Vector:
    return V.vec(text)


def scan_test_to_dict(test: ScanTest) -> Dict[str, Any]:
    return {"si": _vec_to_json(test.scan_in),
            "vectors": [_vec_to_json(v) for v in test.vectors]}


def scan_test_from_dict(data: Dict[str, Any]) -> ScanTest:
    return ScanTest(_vec_from_json(data["si"]),
                    tuple(_vec_from_json(v) for v in data["vectors"]))


def test_set_to_dict(test_set: ScanTestSet) -> Dict[str, Any]:
    return {"n_sv": test_set.n_state_vars,
            "tests": [scan_test_to_dict(t) for t in test_set.tests]}


def test_set_from_dict(data: Dict[str, Any]) -> ScanTestSet:
    return ScanTestSet(data["n_sv"],
                       [scan_test_from_dict(t) for t in data["tests"]])


def _faults_to_json(faults) -> List[int]:
    return sorted(faults)


def proposed_to_dict(result: ProposedResult) -> Dict[str, Any]:
    return {
        "tau_seq": scan_test_to_dict(result.tau_seq),
        "test_set": test_set_to_dict(result.test_set),
        "compacted_set": (test_set_to_dict(result.compacted_set)
                          if result.compacted_set is not None else None),
        "t0_length": result.t0_length,
        "t0_detected": _faults_to_json(result.t0_detected),
        "seq_detected": _faults_to_json(result.seq_detected),
        "final_detected": _faults_to_json(result.final_detected),
        "added_tests": result.added_tests,
        "uncovered": _faults_to_json(result.uncovered),
        "iterations": [dataclasses.asdict(i) for i in result.iterations],
        "combine_stats": (dataclasses.asdict(result.combine_stats)
                          if result.combine_stats is not None else None),
    }


def proposed_from_dict(data: Dict[str, Any]) -> ProposedResult:
    compacted = data.get("compacted_set")
    stats = data.get("combine_stats")
    return ProposedResult(
        tau_seq=scan_test_from_dict(data["tau_seq"]),
        test_set=test_set_from_dict(data["test_set"]),
        compacted_set=(test_set_from_dict(compacted)
                       if compacted is not None else None),
        t0_length=data["t0_length"],
        t0_detected=set(data["t0_detected"]),
        seq_detected=set(data["seq_detected"]),
        final_detected=set(data["final_detected"]),
        added_tests=data["added_tests"],
        uncovered=set(data["uncovered"]),
        iterations=[IterationLog(**i) for i in data["iterations"]],
        combine_stats=CombineStats(**stats) if stats is not None else None,
    )


def combine_result_to_dict(result: CombineResult) -> Dict[str, Any]:
    return {"test_set": test_set_to_dict(result.test_set),
            "detected": _faults_to_json(result.detected),
            "stats": dataclasses.asdict(result.stats)}


def combine_result_from_dict(data: Dict[str, Any]) -> CombineResult:
    return CombineResult(test_set_from_dict(data["test_set"]),
                         set(data["detected"]),
                         CombineStats(**data["stats"]))


def dynamic_result_to_dict(result: DynamicResult) -> Dict[str, Any]:
    return {"test_set": test_set_to_dict(result.test_set),
            "detected": _faults_to_json(result.detected),
            "uncovered": _faults_to_json(result.uncovered)}


def dynamic_result_from_dict(data: Dict[str, Any]) -> DynamicResult:
    return DynamicResult(test_set_from_dict(data["test_set"]),
                         set(data["detected"]),
                         set(data["uncovered"]))


def arm_to_dict(arm: "ArmResult") -> Dict[str, Any]:
    return {"t0_source": arm.t0_source,
            "t0_length": arm.t0_length,
            "result": proposed_to_dict(arm.result),
            "seconds": arm.seconds}


def arm_from_dict(data: Dict[str, Any]) -> "ArmResult":
    from .runner import ArmResult
    return ArmResult(t0_source=data["t0_source"],
                     t0_length=data["t0_length"],
                     result=proposed_from_dict(data["result"]),
                     seconds=data["seconds"])


def run_to_dict(run: "CircuitRun") -> Dict[str, Any]:
    """Serialize a :class:`CircuitRun` (profile stored by name)."""
    return {
        "circuit": run.profile.name,
        "n_ffs": run.n_ffs,
        "n_gates": run.n_gates,
        "n_faults": run.n_faults,
        "n_detectable": run.n_detectable,
        "n_untestable": run.n_untestable,
        "comb_tests": run.comb_tests,
        "arms": {source: arm_to_dict(arm)
                 for source, arm in run.arms.items()},
        "baseline4": (combine_result_to_dict(run.baseline4)
                      if run.baseline4 is not None else None),
        "dynamic": (dynamic_result_to_dict(run.dynamic)
                    if run.dynamic is not None else None),
        "transition": dict(run.transition),
        "seconds": run.seconds,
        "counters": dict(run.counters),
        "diagnostics": [dict(d) for d in run.diagnostics],
        "power": (run.power.as_dict()
                  if run.power is not None else None),
        "delay": (run.delay.as_dict()
                  if run.delay is not None else None),
        "knobs": dict(run.knobs),
    }


def run_from_dict(data: Dict[str, Any]) -> "CircuitRun":
    """Rebuild a :class:`CircuitRun` from :func:`run_to_dict` output.

    The profile is resolved by name from the suite registry; a name
    that is no longer registered gets a stub profile (its ``build``
    raises), which is enough for every table renderer.
    """
    from ..circuits import suite as suite_mod
    from .runner import CircuitRun
    name = data["circuit"]
    try:
        profile = suite_mod.profile(name)
    except KeyError:
        def _unavailable() -> Any:
            raise RuntimeError(
                f"circuit {name!r} was restored from a checkpoint and "
                f"is not in the suite registry; it cannot be rebuilt")
        profile = suite_mod.CircuitProfile(name, _unavailable)
    baseline4 = data.get("baseline4")
    dynamic = data.get("dynamic")
    return CircuitRun(
        profile=profile,
        n_ffs=data["n_ffs"],
        n_gates=data["n_gates"],
        n_faults=data["n_faults"],
        n_detectable=data["n_detectable"],
        comb_tests=data["comb_tests"],
        arms={source: arm_from_dict(arm)
              for source, arm in data["arms"].items()},
        baseline4=(combine_result_from_dict(baseline4)
                   if baseline4 is not None else None),
        dynamic=(dynamic_result_from_dict(dynamic)
                 if dynamic is not None else None),
        transition=dict(data.get("transition", {})),
        seconds=data.get("seconds", 0.0),
        counters=dict(data.get("counters", {})),
        diagnostics=[dict(d) for d in data.get("diagnostics", [])],
        power=(PowerReport.from_dict(data["power"])
               if data.get("power") is not None else None),
        delay=(DelayReport.from_dict(data["delay"])
               if data.get("delay") is not None else None),
        knobs=dict(data.get("knobs", {})),
        n_untestable=int(data.get("n_untestable", 0)),
    )


def engine_counters_table(runs: Sequence["CircuitRun"]) -> Table:
    """One row of engine instrumentation per circuit.

    Columns come from :class:`repro.sim.counters.SimCounters`:
    logical frames simulated, word evaluations, average faulty
    machines packed per word, faults dropped by the cross-phase
    scoreboard, in-pass repacks, the per-phase wall-clock timers
    (``p1_s`` .. ``p4_s``), the power engine's words and wall clock
    (``pw_words`` / ``pw_s``), the transition-fault engine's passes,
    words and wall clock (``tdf_passes`` / ``tdf_words`` / ``tdf_s``),
    the numpy backend's pass count (``np``), and the trial-batch trio
    (``trials`` lane-batched trial passes, ``lanes`` trials carried,
    ``adi`` ADI ordering decisions) -- plus the engine knob the run
    executed under (``eng``, from :attr:`CircuitRun.knobs`).  Runs
    restored from old checkpoints render as ``-`` for whichever
    counters or knobs they lack.
    """
    table = Table("Engine counters",
                  ["circuit", "eng", "frames", "words", "mach/word",
                   "dropped", "repacks", "np", "trials", "lanes",
                   "adi", "p1_s", "p2_s", "p3_s", "p4_s", "pw_words",
                   "pw_s", "tdf_passes", "tdf_words", "tdf_s",
                   "seconds"])
    for run in runs:
        c = run.counters
        engine = run.knobs.get("engine")
        if c:
            table.add_row(run.name, engine, c.get("frames"),
                          c.get("words"), c.get("machines_per_word"),
                          c.get("faults_dropped"), c.get("repacks"),
                          c.get("np_passes"),
                          c.get("trial_passes"), c.get("trial_lanes"),
                          c.get("adi_orderings"),
                          c.get("phase1_s"), c.get("phase2_s"),
                          c.get("phase3_s"), c.get("phase4_s"),
                          c.get("power_words"), c.get("power_s"),
                          c.get("tdf_passes"), c.get("tdf_words"),
                          c.get("tdf_s"),
                          run.seconds)
        else:
            table.add_row(run.name, engine, None, None, None, None,
                          None, None, None, None, None, None, None,
                          None, None, None, None, None, None, None,
                          run.seconds)
    return table

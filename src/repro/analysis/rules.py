"""Structural lint rules over netlists and raw ``.bench`` text.

The passes split by what they can run on:

* **Pre-compile rules** work on a bare :class:`Netlist` whose
  ``compile()`` would *raise* -- undriven nets and combinational cycles
  (found via Tarjan's SCC algorithm, iteratively, so deep netlists do
  not hit the recursion limit).  These are exactly the crashes the
  harness pre-flight wants to turn into ``SKIPPED(lint: ...)`` rows.
* **Post-compile rules** need fanout/topo data: dangling nets, unused
  inputs, duplicate fanins, unobservable flip-flops (reusing
  :mod:`repro.circuits.validate`), dead logic cones, and input-isolated
  flip-flops.
* **Raw-text rules** catch what a :class:`Netlist` cannot even
  represent: multi-driver nets (``Netlist._add`` raises on the second
  driver) and floating gate inputs (gate arity is enforced at
  construction).  :func:`lint_bench_text` parses the ``.bench`` source
  itself.

Entry points: :func:`lint_netlist` (optionally chaining into the
X-initializability analysis) and :func:`lint_bench_text` /
:func:`lint_bench_path`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..circuits import bench as bench_mod
from ..circuits import validate as validate_mod
from ..circuits.netlist import (ALL_TYPES, SOURCE_TYPES, Netlist,
                                NetlistError)
from .diagnostics import ERROR, WARNING, Diagnostic, LintReport
from .xinit import analyze_xinit


def lint_netlist(net: Netlist, *, xinit: bool = True,
                 xinit_state_budget: Optional[int] = None) -> LintReport:
    """Run every applicable rule pass; never raises on a broken netlist.

    Error-severity structural findings stop the analysis early (the
    deeper passes assume a compilable circuit).  ``xinit=False`` skips
    the reachability analysis, which is the only non-linear-time pass
    -- the harness pre-flight uses that mode.
    """
    report = LintReport(circuit=net.name)
    report.extend(_rule_undriven(net))
    if not report.errors:
        report.extend(_rule_comb_cycle(net))
    if report.errors:
        return report

    work = net if net.is_compiled() else net.copy()
    try:
        if not work.is_compiled():
            work.compile()
    except NetlistError as exc:  # arity/driver errors the rules missed
        report.add(Diagnostic(rule="struct.compile-error", severity=ERROR,
                              message=str(exc)))
        return report

    for issue in validate_mod.check(work):
        report.add(Diagnostic(rule=f"struct.{issue.code}",
                              severity=issue.severity,
                              message=issue.message))
    report.extend(_rule_dead_cone(work))
    report.extend(_rule_isolated_ff(work))

    if xinit and not report.errors:
        kwargs = ({}
                  if xinit_state_budget is None
                  else {"state_budget": xinit_state_budget})
        report.extend(analyze_xinit(work, **kwargs).to_diagnostics())
    return report


def lint_bench_text(text: str, name: str = "bench") -> LintReport:
    """Lint raw ``.bench`` source, then the netlist it describes.

    The raw pass reports what the netlist layer rejects at construction
    time (multi-driver nets, floating gate inputs, unknown gate types,
    syntax errors); when the text is representable, the parsed netlist
    goes through :func:`lint_netlist`.
    """
    report = LintReport(circuit=name)
    drivers: Dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = bench_mod._DECL_RE.match(line)
        if decl:
            kind, signal = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                if signal in drivers:
                    report.add(Diagnostic(
                        rule="bench.multi-driver", severity=ERROR,
                        nets=(signal,),
                        message=f"line {lineno}: net {signal!r} already "
                                f"driven at line {drivers[signal]}"))
                else:
                    drivers[signal] = lineno
            continue
        gate = bench_mod._GATE_RE.match(line)
        if gate is None:
            report.add(Diagnostic(
                rule="bench.syntax", severity=ERROR,
                message=f"line {lineno}: cannot parse {line!r}"))
            continue
        out, gtype, args = gate.group(1), gate.group(2).upper(), gate.group(3)
        gtype = bench_mod._TYPE_ALIASES.get(gtype, gtype)
        fanins = [a for a in (s.strip() for s in args.split(",")) if a]
        if gtype not in ALL_TYPES:
            report.add(Diagnostic(
                rule="bench.unknown-type", severity=ERROR, nets=(out,),
                message=f"line {lineno}: unknown gate type {gtype!r}"))
            continue
        if not fanins and gtype not in ("CONST0", "CONST1"):
            report.add(Diagnostic(
                rule="bench.floating-input", severity=ERROR, nets=(out,),
                message=f"line {lineno}: gate {out!r} ({gtype}) has no "
                        f"inputs"))
        if out in drivers:
            report.add(Diagnostic(
                rule="bench.multi-driver", severity=ERROR, nets=(out,),
                message=f"line {lineno}: net {out!r} already driven at "
                        f"line {drivers[out]}"))
        else:
            drivers[out] = lineno
    if report.errors:
        return report
    try:
        net = bench_mod.loads(text, name=name, compile=False)
    except (bench_mod.BenchFormatError, NetlistError) as exc:
        report.add(Diagnostic(rule="bench.syntax", severity=ERROR,
                              message=str(exc)))
        return report
    deep = lint_netlist(net)
    report.extend(deep.diagnostics)
    return report


def lint_bench_path(path: Union[str, "object"]) -> LintReport:
    """Lint a ``.bench`` file (circuit named after the file stem)."""
    from pathlib import Path
    p = Path(str(path))
    return lint_bench_text(p.read_text(), name=p.stem)


# ----------------------------------------------------------------------
# pre-compile rules
# ----------------------------------------------------------------------

def _rule_undriven(net: Netlist) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for gate in net.gates.values():
        for fin in gate.fanins:
            if fin not in net.gates:
                out.append(Diagnostic(
                    rule="struct.undriven-net", severity=ERROR,
                    nets=(fin,),
                    message=f"net {fin!r} used by {gate.name!r} is "
                            f"never driven"))
    for po in net.outputs:
        if po not in net.gates:
            out.append(Diagnostic(
                rule="struct.undriven-net", severity=ERROR, nets=(po,),
                message=f"primary output {po!r} is never driven"))
    return out


def _rule_comb_cycle(net: Netlist) -> List[Diagnostic]:
    """Combinational cycles via iterative Tarjan SCC.

    The graph has one node per non-source gate and an edge from each
    combinational fanin to its reader; DFF data pins are cut points
    (sequential feedback is legal), so every SCC of size > 1 -- or a
    self-loop -- is a genuine combinational cycle.
    """
    comb = {g.name for g in net.gates.values()
            if g.gtype not in SOURCE_TYPES}
    succs: Dict[str, List[str]] = {n: [] for n in comb}
    for gate in net.gates.values():
        if gate.name not in comb:
            continue
        for fin in gate.fanins:
            if fin in comb:
                succs[fin].append(gate.name)

    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for root in comb:
        if root in index:
            continue
        # Iterative Tarjan: (node, iterator position) frames.
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succs[node]
            while pos < len(children):
                child = children[pos]
                pos += 1
                if child not in index:
                    work[-1] = (node, pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    out: List[Diagnostic] = []
    for scc in sccs:
        cyclic = (len(scc) > 1 or
                  scc[0] in net.gates[scc[0]].fanins)
        if cyclic:
            members = tuple(sorted(scc))
            out.append(Diagnostic(
                rule="struct.comb-cycle", severity=ERROR, nets=members,
                message=f"combinational cycle through "
                        f"{len(members)} net(s): "
                        f"{', '.join(members[:8])}"
                        f"{', ...' if len(members) > 8 else ''}"))
    return out


# ----------------------------------------------------------------------
# post-compile rules
# ----------------------------------------------------------------------

def _rule_dead_cone(net: Netlist) -> List[Diagnostic]:
    """Combinational gates that transitively feed no PO and no flip-flop
    data pin.  The directly dangling root is already reported by
    ``struct.dangling-net``; this flags the logic buried behind it."""
    seeds = list(net.outputs)
    seeds.extend(net.gates[q].fanins[0] for q in net.flip_flops)
    live = set(net.transitive_fanin(seeds, stop_at_ffs=True)) if seeds \
        else set()
    po = set(net.outputs)
    out: List[Diagnostic] = []
    for name in net.comb_gates:
        if name in live or name in po:
            continue
        if not net.fanout[name]:
            continue  # dangling-net already covers the root
        out.append(Diagnostic(
            rule="struct.dead-cone", severity=WARNING, nets=(name,),
            message=f"gate {name!r} feeds only dead logic (no path to "
                    f"a primary output or flip-flop)"))
    return out


def _rule_isolated_ff(net: Netlist) -> List[Diagnostic]:
    """Flip-flops whose sequential input cone contains no primary
    input: their state evolves independently of every test vector, so
    nothing an ATPG does can control them (scan aside)."""
    pis = set(net.inputs)
    out: List[Diagnostic] = []
    for ff in net.flip_flops:
        d = net.gates[ff].fanins[0]
        cone = net.transitive_fanin([d], stop_at_ffs=False)
        if not pis.intersection(cone):
            out.append(Diagnostic(
                rule="struct.input-isolated-ff", severity=WARNING,
                nets=(ff,),
                message=f"flip-flop {ff!r} has no primary input in its "
                        f"sequential cone; its state cannot be "
                        f"controlled from the circuit inputs"))
    return out

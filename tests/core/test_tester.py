"""Tests for cycle-accurate tester program generation and execution."""

import pytest

from repro import api
from repro.core import tester
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.sim import values as V


def small_set(wb, seed=3):
    from repro.atpg import random_gen
    tests = []
    for i in range(3):
        si = random_gen.random_state(wb.circuit, seed=seed + i)
        vectors = tuple(random_gen.random_sequence(
            wb.circuit, 2 + i, seed=seed + 10 + i))
        tests.append(ScanTest(tuple(si), vectors))
    return ScanTestSet(len(wb.circuit.ff_ids), tests)


class TestSchedule:
    def test_length_equals_cost_model(self, s27_bench):
        """The program length IS the paper's N_cyc, by construction."""
        wb = s27_bench
        ts = small_set(wb)
        program = tester.schedule(ts, wb.circuit)
        assert len(program) == ts.clock_cycles()

    def test_cycle_breakdown(self, s27_bench):
        wb = s27_bench
        ts = small_set(wb)
        program = tester.schedule(ts, wb.circuit)
        assert program.n_shift_cycles == (len(ts) + 1) * 3
        assert program.n_functional_cycles == ts.total_vectors()

    def test_empty_set_rejected(self, s27_bench):
        with pytest.raises(ValueError, match="empty"):
            tester.schedule(ScanTestSet(3), s27_bench.circuit)

    def test_width_mismatch_rejected(self, s27_bench, mid_bench):
        ts = small_set(s27_bench)
        with pytest.raises(ValueError, match="width"):
            tester.schedule(ts, mid_bench.circuit)

    def test_first_scanin_has_masked_output(self, s27_bench):
        wb = s27_bench
        program = tester.schedule(small_set(wb), wb.circuit)
        for cycle in program.cycles[:3]:
            assert cycle.kind == tester.SHIFT
            assert cycle.expected_scan_out_bit == V.X


class TestExecute:
    def test_fault_free_program_passes(self, s27_bench):
        """Closing the loop: the program's expected responses must be
        exactly what the circuit produces."""
        wb = s27_bench
        ts = small_set(wb)
        program = tester.schedule(ts, wb.circuit)
        result = tester.execute(program, wb.circuit)
        assert result.passed, (result.scan_mismatches,
                               result.po_mismatches)
        assert result.cycles_run == len(program)

    def test_compacted_set_passes_end_to_end(self, s27_bench, s27_comb):
        """The full pipeline output survives cycle-accurate replay."""
        wb = s27_bench
        res = api.compact_tests(wb.netlist, seed=1, t0_length=30,
                                comb_tests=s27_comb.tests, workbench=wb)
        final = res.compacted_set or res.test_set
        program = tester.schedule(final, wb.circuit)
        assert len(program) == final.clock_cycles()
        assert tester.execute(program, wb.circuit).passed

    def test_corrupted_expectation_caught(self, s27_bench):
        wb = s27_bench
        ts = small_set(wb)
        program = tester.schedule(ts, wb.circuit)
        # Flip one expected scan-out bit (the final scan-out is fully
        # specified).
        idx = len(program.cycles) - 1
        old = program.cycles[idx]
        flipped = 1 - old.expected_scan_out_bit \
            if old.expected_scan_out_bit in (0, 1) else 1
        program.cycles[idx] = tester.TesterCycle(
            tester.SHIFT, scan_in_bit=old.scan_in_bit,
            expected_scan_out_bit=flipped)
        result = tester.execute(program, wb.circuit)
        assert not result.passed

    def test_mid_circuit_roundtrip(self, mid_bench):
        wb = mid_bench
        ts = small_set(wb, seed=9)
        program = tester.schedule(ts, wb.circuit)
        assert tester.execute(program, wb.circuit).passed

#!/usr/bin/env python3
"""Scenario: regenerate the paper's tables on a chosen circuit set.

The same machinery the benchmarks use, exposed as a script: runs both
arms of the proposed procedure plus both baselines and prints Tables
1-5 and the at-speed extension table.

Run with::

    python examples/paper_tables.py              # two small circuits
    python examples/paper_tables.py b01 b06 s298 # your selection
"""

import sys

from repro.circuits import suite
from repro.experiments import all_tables, render_all, run_suite


def main() -> None:
    names = sys.argv[1:] or ["s27", "b02"]
    profiles = [suite.profile(name) for name in names]
    print(f"running circuits: {', '.join(names)} "
          f"(this fault-simulates everything twice; be patient)\n")
    runs = run_suite(profiles, seed=1, with_transition=True,
                     verbose=True)
    print()
    print(render_all(all_tables(runs, with_transition=True)))


if __name__ == "__main__":
    main()

"""Static X-initializability (synchronizability) analysis.

Decides, without running a single test vector through the fault
simulator, whether a circuit can be driven out of the all-X reset state
-- and when it cannot, *which* flip-flops are stuck at X and why.

Semantics
---------
The analysis works in the standard ternary (0/1/X) abstraction, the
same one the logic simulator uses.  A circuit is *synchronizable* when
some input sequence applied from the all-X state reaches an all-binary
state.  All-binary states are absorbing under binary inputs (a binary
state plus binary inputs produces a binary next state), so reaching one
is exactly what "the test set initializes the circuit" means; a passing
random-initialization run is a constructive witness of reachability.
Conversely, a proof that no all-binary state is reachable guarantees
that *every* vector sequence leaves at least one flip-flop at X --
which is what makes the ``xinit.not-synchronizable`` diagnostic safe to
use as an xfail predicate for initialization tests.

Two cooperating engines:

1. A **greedy constructive search** builds a synchronizing sequence one
   frame at a time: per frame it assembles a single input vector by
   walking the flip-flops (already-binary ones first, then by cone
   size) and enumerating assignments to each next-state cone's still
   free inputs, keeping any partial assignment that forces the cone to
   a binary value.  Ternary evaluation is monotone under refinement, so
   a cone that is binary under a partial assignment stays binary (with
   the same value) however the remaining inputs are filled.  When the
   search finds an all-binary state, the sequence is returned as the
   witness.  This resolves most practical circuits in milliseconds but
   is incomplete (per-FF myopia).
2. An **exact ternary reachability search** (BFS over ternary states
   under all binary input vectors) settles the circuits the greedy
   pass gives up on, provided the input count and the reachable state
   set fit a budget.  Restricting to binary inputs is sound: X inputs
   only lose information, so they can never help reach a binary state.
   The BFS either finds an all-binary state (synchronizable, witness
   reconstructed from the parent chain), exhausts the reachable set
   (proof of non-synchronizability), or hits the budget (unknown).

Per-FF witness
--------------
On the non-synchronizable path the analysis answers "*which* flip-flops
are stuck" with a sustainability fixed point over ternary value sets.
``I``, the *persistently initializable* set, is the least fixed point
of: ``f`` joins ``I`` when its next-state cone evaluates may-binary (no
resolution of the remaining X flip-flops can leave it at X) for **more
than half** of the assignments to its cone inputs, with ``I``
flip-flops carrying the value set {0, 1} and every other flip-flop held
at {X}.  The majority threshold is the sustainability criterion: under
unconstrained binary inputs a below-majority flip-flop loses its value
more often than it reacquires one, so its binary episodes are transient
PI-forced coincidences, while an above-majority flip-flop's value
survives typical input changes and can seed the initialization of
others (hence the fixed-point iteration).

The flagged set is the complement of ``I``.  Each flagged flip-flop
gets a witness drawn from the exhaustive BFS bookkeeping:
``never-binary`` (its next-state function was X on every reachable
transition) or ``transient-only`` (it does take binary values --
example vector recorded when the value is input-forced from the all-X
state -- but below the sustainment majority, so they decay back to X).

On the ROADMAP's seed-4941 generator circuit this reports
{0, 2, 3, 4} -- a superset of the {0, 2, 4} observed by endpoint
sampling, with ff3 the borderline case sampling happened to miss.  The
per-FF refinement only runs *after* the reachability proof, which is
what keeps it sound: a circuit that does settle under simulation has a
reachable all-binary state, so it can never be flagged, regardless of
how the majority vote would have gone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from ..sim import values as V
from .diagnostics import INFO, WARNING, Diagnostic

#: Greedy search: max free cone inputs to enumerate jointly (2**cap
#: evaluations worst case per flip-flop per frame).
DEFAULT_ENUM_CAP = 10
#: Exact search: only attempted when the circuit has at most this many
#: primary inputs (the BFS branches over all 2**n_pi binary vectors).
DEFAULT_PI_CAP = 8
#: Exact search: give up after exploring this many ternary states.
DEFAULT_STATE_BUDGET = 20000

_ZERO, _ONE, _X = V.ZERO, V.ONE, V.X

State = Tuple[int, ...]


def _eval_gate(gtype: str, vals: Sequence[int]) -> int:
    """Ternary evaluation of one gate (0 dominates AND, 1 dominates OR,
    XOR/XNOR are X-strict)."""
    if gtype == "NOT":
        v = vals[0]
        return _X if v == _X else 1 - v
    if gtype == "BUF":
        return vals[0]
    if gtype in ("AND", "NAND"):
        if any(v == _ZERO for v in vals):
            out = _ZERO
        elif any(v == _X for v in vals):
            out = _X
        else:
            out = _ONE
        if gtype == "NAND" and out != _X:
            out = 1 - out
        return out
    if gtype in ("OR", "NOR"):
        if any(v == _ONE for v in vals):
            out = _ONE
        elif any(v == _X for v in vals):
            out = _X
        else:
            out = _ZERO
        if gtype == "NOR" and out != _X:
            out = 1 - out
        return out
    if gtype in ("XOR", "XNOR"):
        if any(v == _X for v in vals):
            return _X
        out = 0
        for v in vals:
            out ^= v
        if gtype == "XNOR":
            out = 1 - out
        return out
    if gtype == "CONST0":
        return _ZERO
    if gtype == "CONST1":
        return _ONE
    raise ValueError(f"cannot evaluate gate type {gtype!r}")


@dataclass
class _Cone:
    """Next-state cone of one flip-flop: its data net, the primary-input
    indices it depends on, the flip-flop indices it reads, and its gates
    in topological order."""

    dnet: str
    pi_idx: Tuple[int, ...]
    ff_idx: Tuple[int, ...]
    gates: Tuple[Tuple[str, str, Tuple[str, ...]], ...]  # (name, type, fanins)


class _TernaryEval:
    """Frame-level ternary evaluator over a compiled netlist."""

    def __init__(self, net: Netlist) -> None:
        if not net.is_compiled():
            net = net.copy().compile()
        self.net = net
        self.pis: List[str] = net.inputs
        self.ffs: List[str] = net.flip_flops
        self.dnets: List[str] = [net.gates[q].fanins[0] for q in self.ffs]
        self.order: List[Tuple[str, str, Tuple[str, ...]]] = [
            (g.name, g.gtype, tuple(g.fanins))
            for g in (net.gates[n] for n in net.order)]
        self.cones: List[_Cone] = [self._cone(d) for d in self.dnets]

    def _cone(self, dnet: str) -> _Cone:
        cone_nets = set(self.net.transitive_fanin([dnet], stop_at_ffs=True))
        pi_pos = {name: i for i, name in enumerate(self.pis)}
        ff_pos = {name: i for i, name in enumerate(self.ffs)}
        return _Cone(
            dnet=dnet,
            pi_idx=tuple(pi_pos[n] for n in self.pis if n in cone_nets),
            ff_idx=tuple(ff_pos[n] for n in self.ffs if n in cone_nets),
            gates=tuple(g for g in self.order if g[0] in cone_nets))

    def next_state(self, state: State, vector: Sequence[int]) -> State:
        values: Dict[str, int] = {}
        for i, pi in enumerate(self.pis):
            values[pi] = vector[i]
        for i, ff in enumerate(self.ffs):
            values[ff] = state[i]
        for name, gtype, fanins in self.order:
            values[name] = _eval_gate(gtype, [values[f] for f in fanins])
        return tuple(values[d] for d in self.dnets)

    def eval_cone(self, cone: _Cone, state: State,
                  pi_assign: Dict[int, int]) -> int:
        """Value of one cone under a *partial* input assignment
        (unassigned inputs are X)."""
        values: Dict[str, int] = {}
        for p in cone.pi_idx:
            values[self.pis[p]] = pi_assign.get(p, _X)
        for f in cone.ff_idx:
            values[self.ffs[f]] = state[f]
        for name, gtype, fanins in cone.gates:
            values[name] = _eval_gate(gtype, [values[f] for f in fanins])
        return values[cone.dnet]

    def eval_cone_sets(self, cone: _Cone, pi_assign: Dict[int, int],
                       ff_sets: Dict[int, Tuple[int, ...]]
                       ) -> Tuple[int, ...]:
        """Value *set* of one cone: inputs fixed binary, each flip-flop
        carrying a set of possible values, propagated gate by gate (the
        set of outputs over every combination of fanin members)."""
        values: Dict[str, Tuple[int, ...]] = {}
        for p in cone.pi_idx:
            values[self.pis[p]] = (pi_assign[p],)
        for f in cone.ff_idx:
            values[self.ffs[f]] = ff_sets[f]
        for name, gtype, fanins in cone.gates:
            out = {_eval_gate(gtype, combo)
                   for combo in product(*(values[f] for f in fanins))}
            values[name] = tuple(sorted(out))
        return values[cone.dnet]


@dataclass
class XInitResult:
    """Outcome of :func:`analyze_xinit`.

    ``status`` is ``"synchronizable"`` (with ``witness``, the input
    sequence that reaches an all-binary state), ``"not-synchronizable"``
    (with the flagged flip-flop classification), or ``"unknown"`` (both
    engines exhausted their budgets without a proof either way).
    """

    status: str
    method: str = ""
    ff_names: Tuple[str, ...] = ()
    states_explored: int = 0
    witness: Optional[List[V.Vector]] = None
    flagged: Tuple[int, ...] = ()
    never_binary: Tuple[int, ...] = ()
    persistent: Tuple[int, ...] = ()
    may_binary: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    forced_examples: Dict[int, Tuple[V.Vector, int]] = field(
        default_factory=dict)

    @property
    def flagged_names(self) -> Tuple[str, ...]:
        return tuple(self.ff_names[f] for f in self.flagged)

    def ff_witness(self, f: int) -> str:
        """One-line explanation for a flagged flip-flop index."""
        name = self.ff_names[f]
        if f in self.never_binary:
            return (f"{name}: next-state function is X on every "
                    f"reachable transition")
        nbin, total = self.may_binary.get(f, (0, 0))
        vote = (f"binary for only {nbin}/{total} input assignments "
                f"(below the sustainment majority)"
                if total else "below the sustainment majority")
        vec, val = self.forced_examples.get(f, ((), _X))
        forced = (f"; e.g. inputs {V.vec_str(vec)} transiently force "
                  f"{val}" if vec else "")
        return (f"{name}: next-state cone is {vote} even with every "
                f"initializable flip-flop binary{forced}; its values "
                f"decay to X when the inputs change")

    def to_diagnostics(self) -> List[Diagnostic]:
        if self.status == "synchronizable":
            return []
        if self.status == "unknown":
            return [Diagnostic(
                rule="xinit.unresolved", severity=INFO,
                message=("initializability analysis inconclusive "
                         "(search budget exhausted after "
                         f"{self.states_explored} states)"),
                data={"states_explored": self.states_explored})]
        witness = {f: self.ff_witness(f) for f in self.flagged}
        names = ", ".join(self.flagged_names)
        return [Diagnostic(
            rule="xinit.not-synchronizable", severity=WARNING,
            message=(f"no input sequence can initialize this circuit "
                     f"from all-X (exhaustive over "
                     f"{self.states_explored} reachable ternary "
                     f"states); stuck flip-flops: {names}"),
            nets=self.flagged_names,
            data={"states_explored": self.states_explored,
                  "flagged": list(self.flagged),
                  "never_binary": list(self.never_binary),
                  "persistent": list(self.persistent),
                  "may_binary": {self.ff_names[f]: list(c)
                                 for f, c in self.may_binary.items()},
                  "ff_witness": {self.ff_names[f]: witness[f]
                                 for f in self.flagged}})]


def _greedy_witness(ev: _TernaryEval, max_frames: int,
                    enum_cap: int) -> Optional[List[V.Vector]]:
    """Constructive synchronizing-sequence search; None when stuck."""
    n = len(ev.ffs)
    n_pis = len(ev.pis)
    state: State = (_X,) * n
    seq: List[V.Vector] = []
    best_unknown = n
    stall = 0
    for _ in range(max_frames):
        assign: Dict[int, int] = {}
        # Keep already-binary FFs binary first (they are the invested
        # progress), then attack X FFs, small cones first.
        for f in sorted(range(n),
                        key=lambda f: (state[f] == _X,
                                       len(ev.cones[f].pi_idx))):
            cone = ev.cones[f]
            free = [p for p in cone.pi_idx if p not in assign]
            if len(free) > enum_cap:
                continue
            if ev.eval_cone(cone, state, assign) != _X:
                continue
            for bits in product((0, 1), repeat=len(free)):
                trial = dict(assign)
                trial.update(zip(free, bits))
                if ev.eval_cone(cone, state, trial) != _X:
                    assign = trial
                    break
        vector = tuple(assign.get(p, 0) for p in range(n_pis))
        state = ev.next_state(state, vector)
        seq.append(vector)
        unknown = sum(1 for v in state if v == _X)
        if unknown == 0:
            return seq
        if unknown >= best_unknown:
            stall += 1
            if stall > n + 4:
                return None
        else:
            stall = 0
            best_unknown = unknown
    return None


def _persistence_lfp(ev: _TernaryEval
                     ) -> Tuple[Tuple[int, ...],
                                Dict[int, Tuple[int, int]]]:
    """Least fixed point of the sustainability vote (module docstring):
    a flip-flop joins the persistently-initializable set ``I`` when its
    next-state cone is may-binary for more than half of its cone-input
    assignments, with ``I`` flip-flops at {0, 1} and the rest at {X}.

    Returns ``I`` and, for each flip-flop outside it, the final losing
    vote ``(n_binary, n_assignments)``.
    """
    n = len(ev.ffs)
    init: set = set()
    counts: Dict[int, Tuple[int, int]] = {}
    changed = True
    while changed:
        changed = False
        for f in range(n):
            if f in init:
                continue
            cone = ev.cones[f]
            ff_sets = {g: ((_ZERO, _ONE) if g in init else (_X,))
                       for g in cone.ff_idx}
            total = 1 << len(cone.pi_idx)
            nbin = 0
            for bits in product((0, 1), repeat=len(cone.pi_idx)):
                assign = dict(zip(cone.pi_idx, bits))
                if _X not in ev.eval_cone_sets(cone, assign, ff_sets):
                    nbin += 1
            counts[f] = (nbin, total)
            if 2 * nbin > total:
                init.add(f)
                changed = True
    return (tuple(sorted(init)),
            {f: counts[f] for f in range(n) if f not in init})


def _exact_search(ev: _TernaryEval, state_budget: int) -> XInitResult:
    """Exhaustive ternary BFS from all-X under all binary vectors."""
    n = len(ev.ffs)
    ff_names = tuple(ev.ffs)
    vectors = [tuple(bits) for bits in product((0, 1), repeat=len(ev.pis))]
    start: State = (_X,) * n
    seen = {start}
    parent: Dict[State, Optional[Tuple[State, V.Vector]]] = {start: None}
    frontier = deque([start])
    allx_next: Dict[V.Vector, State] = {}
    ever_binary = [False] * n
    state_derived = [False] * n
    forced_examples: Dict[int, Tuple[V.Vector, int]] = {}

    def _witness(end: State) -> List[V.Vector]:
        seq: List[V.Vector] = []
        cur: State = end
        while True:
            link = parent[cur]
            if link is None:
                return seq[::-1]
            cur, vec = link
            seq.append(vec)

    while frontier:
        s = frontier.popleft()
        for vec in vectors:
            ns = ev.next_state(s, vec)
            ax = allx_next.get(vec)
            if ax is None:
                ax = ns if s == start else ev.next_state(start, vec)
                allx_next[vec] = ax
            for f, v in enumerate(ns):
                if v == _X:
                    continue
                ever_binary[f] = True
                if ax[f] == _X:
                    state_derived[f] = True
                elif f not in forced_examples:
                    forced_examples[f] = (vec, ax[f])
            if ns in seen:
                continue
            seen.add(ns)
            parent[ns] = (s, vec)
            if all(v != _X for v in ns):
                return XInitResult(status="synchronizable", method="exact",
                                   ff_names=ff_names,
                                   states_explored=len(seen),
                                   witness=_witness(ns))
            if len(seen) > state_budget:
                return XInitResult(status="unknown", method="exact",
                                   ff_names=ff_names,
                                   states_explored=len(seen))
            frontier.append(ns)

    never = tuple(f for f in range(n) if not ever_binary[f])
    persistent, may_binary = _persistence_lfp(ev)
    flagged = tuple(f for f in range(n) if f not in persistent)
    if not flagged:
        # Degenerate: every FF wins the sustainability vote yet no
        # all-binary state is reachable (a joint conflict).  Fall back
        # to the BFS bookkeeping so the diagnostic still names FFs.
        flagged = tuple(sorted(set(never) |
                               {f for f in range(n)
                                if ever_binary[f] and not state_derived[f]}))
    return XInitResult(status="not-synchronizable", method="exact",
                       ff_names=ff_names, states_explored=len(seen),
                       flagged=flagged, never_binary=never,
                       persistent=persistent, may_binary=may_binary,
                       forced_examples={f: forced_examples[f]
                                        for f in flagged
                                        if f in forced_examples})


def analyze_xinit(net: Netlist, *,
                  enum_cap: int = DEFAULT_ENUM_CAP,
                  pi_cap: int = DEFAULT_PI_CAP,
                  state_budget: int = DEFAULT_STATE_BUDGET,
                  max_frames: Optional[int] = None) -> XInitResult:
    """Run the two-stage analysis; see the module docstring."""
    ev = _TernaryEval(net)
    n = len(ev.ffs)
    if n == 0:
        return XInitResult(status="synchronizable", method="trivial",
                           witness=[])
    if max_frames is None:
        max_frames = 4 * n + 8
    seq = _greedy_witness(ev, max_frames, enum_cap)
    if seq is not None:
        return XInitResult(status="synchronizable", method="greedy",
                           ff_names=tuple(ev.ffs), witness=seq)
    if len(ev.pis) <= pi_cap:
        return _exact_search(ev, state_budget)
    return XInitResult(status="unknown", method="greedy",
                       ff_names=tuple(ev.ffs))

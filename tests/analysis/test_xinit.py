"""Tests for the X-initializability (synchronizability) analysis."""

from repro.analysis import analyze_xinit
from repro.circuits import library, synth
from repro.circuits.netlist import Netlist
from repro.sim import values as V
from repro.sim.logicsim import CompiledCircuit, simulate_sequence


class TestSynchronizable:
    def test_s27_with_verified_witness(self):
        net = library.s27()
        res = analyze_xinit(net)
        assert res.status == "synchronizable"
        assert res.witness is not None
        assert res.to_diagnostics() == []
        # The witness must actually work: simulating it from all-X
        # ends in an all-binary state.
        out = simulate_sequence(CompiledCircuit(net), res.witness)
        assert all(v in (V.ZERO, V.ONE) for v in out.final_state)

    def test_no_ffs_is_trivially_synchronizable(self):
        net = Netlist("comb")
        net.add_input("a")
        net.add_gate("g1", "NOT", ["a"])
        net.add_output("g1")
        res = analyze_xinit(net.compile())
        assert res.status == "synchronizable"
        assert res.method == "trivial"

    def test_suite_circuits_synchronizable(self):
        # A representative sample (full sweep runs in CI's lint job).
        for name in ("b01", "b02", "s27"):
            from repro.circuits.suite import profile
            res = analyze_xinit(profile(name).build())
            assert res.status == "synchronizable", name


def _xor_trap() -> Netlist:
    """One FF with d = XOR(q, pi): X-strict, so q never leaves X."""
    net = Netlist("trap")
    net.add_input("a")
    net.add_gate("d", "XOR", ["q", "a"])
    net.add_dff("q", "d")
    net.add_gate("o", "BUF", ["d"])
    net.add_output("o")
    return net.compile()


class TestNotSynchronizable:
    def test_xor_trap_never_binary(self):
        res = analyze_xinit(_xor_trap())
        assert res.status == "not-synchronizable"
        assert res.method == "exact"
        assert res.flagged == (0,)
        assert res.never_binary == (0,)
        assert "X on every reachable transition" in res.ff_witness(0)

    def test_diagnostics_carry_witness_data(self):
        diags = analyze_xinit(_xor_trap()).to_diagnostics()
        assert len(diags) == 1
        d = diags[0]
        assert d.rule == "xinit.not-synchronizable"
        assert d.severity == "warning"
        assert d.data["flagged"] == [0]
        assert "q" in d.data["ff_witness"]

    def test_seed_4941_flags_transient_ffs_statically(self):
        """The acceptance case: 4 PI / 3 PO / 5 FF / 40 gates, seed
        4941.  The analyzer must report FFs {0, 2, 4} among the
        never-leaving-X set purely statically (exact ternary search +
        the sustainability fixed point -- no random simulation)."""
        net = synth.generate("synth-4941", 4, 3, 5, 40, seed=4941)
        res = analyze_xinit(net)
        assert res.status == "not-synchronizable"
        assert {0, 2, 4} <= set(res.flagged)
        assert res.states_explored > 0
        # The sustainability fixed point explains the transient FFs:
        # every flagged FF that *can* go binary has a below-majority
        # vote count and a human-readable witness.
        for f in res.flagged:
            if f in res.never_binary:
                continue
            nbin, total = res.may_binary[f]
            assert 2 * nbin <= total
            assert "decay to X" in res.ff_witness(f)
        # Non-flagged FFs are exactly the persistently initializable.
        assert set(res.persistent) == \
            set(range(len(res.ff_names))) - set(res.flagged)


class TestUnknown:
    def test_pi_cap_gives_unknown(self):
        res = analyze_xinit(_xor_trap(), pi_cap=0)
        assert res.status == "unknown"
        diags = res.to_diagnostics()
        assert diags[0].rule == "xinit.unresolved"
        assert diags[0].severity == "info"

"""Cycle-accurate tester programs for scan test sets.

The paper's cost model, ``N_cyc = (k+1) N_SV + sum L(T_j)``, assumes a
single scan chain whose scan clock equals the functional clock, with
the scan-out of each test overlapped with the scan-in of the next.
This module makes that schedule concrete: :func:`schedule` flattens a
:class:`~repro.core.scan_test.ScanTestSet` into per-cycle tester
operations, and :func:`execute` runs the program against a circuit
with the scan chain modelled explicitly, checking every expected
scan-out bit and primary-output value.

Besides being the exportable artefact a tester would consume, this is
an end-to-end validation: the program length equals
``ScanTestSet.clock_cycles()`` *by construction*, and executing it
verifies all expected responses against the levelized simulator.

Scan chain convention: the chain follows the netlist's flip-flop
declaration order; bit 0 of a scan vector sits in the first flip-flop.
During a shift cycle each flip-flop loads its predecessor, the first
flip-flop loads the scan-in pin, and the last flip-flop drives the
scan-out pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim import values as V
from ..sim.logicsim import CompiledCircuit, simulate_sequence
from .scan_test import ScanTest, ScanTestSet

SHIFT = "shift"
FUNCTIONAL = "functional"


@dataclass(frozen=True)
class TesterCycle:
    """One tester clock cycle.

    Attributes
    ----------
    kind:
        ``SHIFT`` (scan enable asserted) or ``FUNCTIONAL``.
    scan_in_bit:
        Bit driven on the scan-in pin during a shift cycle (may be X
        when no next test exists -- the final scan-out).
    expected_scan_out_bit:
        Expected value on the scan-out pin during a shift cycle (X
        during the very first scan-in, when the chain holds garbage).
    pi_vector:
        Primary-input vector applied during a functional cycle.
    expected_po:
        Expected primary-output response during a functional cycle
        (sampled from the fault-free machine).
    """

    kind: str
    scan_in_bit: int = V.X
    expected_scan_out_bit: int = V.X
    pi_vector: Optional[V.Vector] = None
    expected_po: Optional[V.Vector] = None


@dataclass
class TesterProgram:
    """A flattened scan test program."""

    n_state_vars: int
    cycles: List[TesterCycle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def n_shift_cycles(self) -> int:
        return sum(1 for c in self.cycles if c.kind == SHIFT)

    @property
    def n_functional_cycles(self) -> int:
        return sum(1 for c in self.cycles if c.kind == FUNCTIONAL)


def _shift_in_bits(scan_in: V.Vector) -> List[int]:
    """Scan-in pin values, first shifted bit first.

    After ``N`` shifts, the bit fed at cycle ``t`` sits in flip-flop
    ``N - 1 - t`` (it keeps moving down the chain), so the vector is
    fed last-flip-flop-first.
    """
    return list(reversed(scan_in))


def _shift_out_bits(scan_out: V.Vector) -> List[int]:
    """Scan-out pin values, first observed bit first.

    The last flip-flop appears first; after ``t`` shifts the pin shows
    what started ``t`` positions up the chain.
    """
    return list(reversed(scan_out))


def schedule(test_set: ScanTestSet,
             circuit: CompiledCircuit) -> TesterProgram:
    """Flatten a test set into a cycle-accurate tester program.

    The fault-free machine supplies every expected response (scan-out
    vectors and primary-output samples).  The resulting program length
    always equals ``test_set.clock_cycles()``.

    Raises
    ------
    ValueError
        If the test set is empty or its width disagrees with the
        circuit.
    """
    n_sv = test_set.n_state_vars
    if len(test_set) == 0:
        raise ValueError("cannot schedule an empty test set")
    if n_sv != len(circuit.ff_ids):
        raise ValueError(
            f"test set width {n_sv} != circuit {len(circuit.ff_ids)}")

    program = TesterProgram(n_state_vars=n_sv)
    previous_out: Optional[V.Vector] = None
    for test in test_set:
        in_bits = _shift_in_bits(test.scan_in)
        out_bits = (_shift_out_bits(previous_out)
                    if previous_out is not None else [V.X] * n_sv)
        for t in range(n_sv):
            program.cycles.append(TesterCycle(
                SHIFT, scan_in_bit=in_bits[t],
                expected_scan_out_bit=out_bits[t]))
        response = simulate_sequence(circuit, list(test.vectors),
                                     test.scan_in)
        for vector, po in zip(test.vectors, response.po_frames):
            program.cycles.append(TesterCycle(
                FUNCTIONAL, pi_vector=tuple(vector),
                expected_po=tuple(po)))
        previous_out = response.final_state
    out_bits = _shift_out_bits(previous_out)
    for t in range(n_sv):
        program.cycles.append(TesterCycle(
            SHIFT, expected_scan_out_bit=out_bits[t]))
    return program


@dataclass
class ExecutionResult:
    """Outcome of :func:`execute`."""

    cycles_run: int
    scan_mismatches: List[int] = field(default_factory=list)
    po_mismatches: List[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.scan_mismatches and not self.po_mismatches


def execute(program: TesterProgram,
            circuit: CompiledCircuit) -> ExecutionResult:
    """Run a tester program against the fault-free circuit.

    The scan chain is modelled explicitly (a shift register threaded
    through the flip-flops); every expected scan-out bit and
    primary-output sample is compared.  An X expectation matches
    anything (tester mask).
    """
    n_sv = program.n_state_vars
    state: List[int] = [V.X] * n_sv
    result = ExecutionResult(cycles_run=0)
    zero = [0] * circuit.n_nets
    one = [0] * circuit.n_nets

    for index, cycle in enumerate(program.cycles):
        if cycle.kind == SHIFT:
            observed = state[-1]
            expected = cycle.expected_scan_out_bit
            if expected != V.X and observed != expected:
                result.scan_mismatches.append(index)
            state = [cycle.scan_in_bit] + state[:-1]
        else:
            for nid, val in zip(circuit.ff_ids, state):
                zero[nid], one[nid] = V.pack_scalar(val, 1)
            for nid, val in zip(circuit.pi_ids, cycle.pi_vector):
                zero[nid], one[nid] = V.pack_scalar(val, 1)
            circuit.eval_frame(zero, one, 1)
            po = tuple(V.word_scalar(zero[nid], one[nid])
                       for nid in circuit.po_ids)
            if cycle.expected_po is not None:
                for got, want in zip(po, cycle.expected_po):
                    if want != V.X and got != want:
                        result.po_mismatches.append(index)
                        break
            state = [V.word_scalar(zero[nid], one[nid])
                     for nid in circuit.ff_d_ids]
        result.cycles_run += 1
    return result

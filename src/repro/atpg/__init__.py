"""Test generation: PODEM, combinational sets, sequences."""

from .podem import Podem, PodemResult, TESTABLE, REDUNDANT, ABORTED
from .comb_set import CombTest, CombSetResult, generate, random_selected
from .random_gen import random_sequence, weighted_sequence, random_state
from .seqgen import SeqGenResult, generate_sequence

__all__ = [
    "Podem", "PodemResult", "TESTABLE", "REDUNDANT", "ABORTED",
    "CombTest", "CombSetResult", "generate", "random_selected",
    "random_sequence", "weighted_sequence", "random_state",
    "SeqGenResult", "generate_sequence",
]

"""Shared benchmark fixtures.

The full experiment suite is run once per pytest session and shared by
every ``bench_table*`` file; each bench then times its table assembly
and prints the regenerated rows (compare them against the paper's
tables -- see EXPERIMENTS.md for the recorded side-by-side).

Set ``REPRO_BENCH_FULL=1`` to run all reproduced circuits instead of
the quick subset (slower by an order of magnitude).
"""

from __future__ import annotations

import os

import pytest

from repro.circuits import suite as suite_mod
from repro.experiments import run_suite


def pytest_addoption(parser):
    parser.addoption("--repro-full", action="store_true", default=False,
                     help="run the full circuit suite in benches")


@pytest.fixture(scope="session")
def suite_runs(request):
    """All per-circuit experiment results (computed once)."""
    full = (request.config.getoption("--repro-full")
            or os.environ.get("REPRO_BENCH_FULL") == "1")
    profiles = suite_mod.suite(quick=not full)
    return run_suite(profiles, seed=1, with_transition=True,
                     verbose=True)

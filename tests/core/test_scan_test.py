"""Tests for scan test datatypes and the cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.scan_test import ScanTest, ScanTestSet, single_vector_test
from repro.sim import values as V


def make_test(n_ff, lengths_pi, length):
    return ScanTest((V.ZERO,) * n_ff,
                    tuple((V.ONE,) * lengths_pi for _ in range(length)))


class TestScanTest:
    def test_needs_vectors(self):
        with pytest.raises(ValueError, match="at least one vector"):
            ScanTest((V.ZERO,), ())

    def test_length(self):
        assert make_test(3, 4, 5).length == 5

    def test_combined_with(self):
        a = make_test(3, 4, 2)
        b = ScanTest((V.ONE,) * 3, ((V.ZERO,) * 4,))
        c = a.combined_with(b)
        assert c.scan_in == a.scan_in       # SI_j dropped
        assert c.length == 3                # sequences concatenated
        assert c.vectors[:2] == a.vectors

    def test_expected_scan_out(self, s27_bench):
        test = ScanTest(V.vec("000"), (V.vec("0000"), V.vec("1111")))
        so = test.expected_scan_out(s27_bench.circuit)
        assert len(so) == 3

    def test_hashable(self):
        assert make_test(2, 2, 1) == make_test(2, 2, 1)
        assert hash(make_test(2, 2, 1)) == hash(make_test(2, 2, 1))


class TestCostModel:
    def test_paper_formula(self):
        """N_cyc = (k+1) N_SV + sum L(T_j) -- paper Section 2."""
        ts = ScanTestSet(10, [make_test(10, 2, 3), make_test(10, 2, 7)])
        assert ts.clock_cycles() == (2 + 1) * 10 + (3 + 7)

    def test_empty_set_costs_nothing(self):
        assert ScanTestSet(10).clock_cycles() == 0

    def test_single_test(self):
        ts = ScanTestSet(4, [make_test(4, 1, 6)])
        assert ts.clock_cycles() == 2 * 4 + 6

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=10),
           st.integers(1, 100))
    def test_combining_always_saves_nsv(self, lengths, n_sv):
        """Combining two tests removes exactly one scan operation."""
        tests = [make_test(n_sv, 1, length) for length in lengths]
        ts = ScanTestSet(n_sv, tests)
        if len(tests) >= 2:
            combined = tests[0].combined_with(tests[1])
            ts2 = ScanTestSet(n_sv, [combined] + tests[2:])
            assert ts.clock_cycles() - ts2.clock_cycles() == n_sv

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="scan-in width"):
            ScanTestSet(3, [make_test(2, 1, 1)])

    def test_add_checks_width(self):
        ts = ScanTestSet(3)
        with pytest.raises(ValueError):
            ts.add(make_test(2, 1, 1))


class TestStats:
    def test_average_and_range(self):
        ts = ScanTestSet(4, [make_test(4, 1, 1), make_test(4, 1, 9)])
        assert ts.average_length() == 5.0
        assert ts.length_range() == (1, 9)

    def test_empty_stats(self):
        ts = ScanTestSet(4)
        assert ts.average_length() == 0.0
        assert ts.length_range() == (0, 0)

    def test_at_speed_pairs(self):
        """sum(L-1): length-1 tests contribute no at-speed pairs."""
        ts = ScanTestSet(4, [make_test(4, 1, 1), make_test(4, 1, 9)])
        assert ts.at_speed_pairs() == 0 + 8

    def test_replaced(self):
        tests = [make_test(4, 1, i + 1) for i in range(3)]
        ts = ScanTestSet(4, tests)
        combined = tests[0].combined_with(tests[2])
        ts2 = ts.replaced(0, 2, combined)
        assert len(ts2) == 2
        assert ts2[0] == combined

    def test_copy_independent(self):
        ts = ScanTestSet(4, [make_test(4, 1, 1)])
        dup = ts.copy()
        dup.add(make_test(4, 1, 2))
        assert len(ts) == 1

    def test_single_vector_test(self):
        t = single_vector_test((V.ZERO, V.ONE), (V.ONE,))
        assert t.length == 1
        assert t.scan_in == (V.ZERO, V.ONE)

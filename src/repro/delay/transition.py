"""Transition (delay) fault simulation for scan tests.

The paper's motivation for long primary-input sequences is at-speed
testing: consecutive functional cycles are launch/capture opportunities
for delay defects [5], [6].  This module quantifies that claim with the
standard transition-fault model under launch-on-capture conditions:

* a *slow-to-rise* fault on net ``n`` is *launched* at frame ``t >= 1``
  when the fault-free value of ``n`` rises from 0 (frame ``t-1``) to 1
  (frame ``t``); the late transition behaves as a stuck-at-0 on ``n``
  during frame ``t``;
* the resulting error is *detected* if it reaches a primary output at
  frame ``t`` or -- after being captured into flip-flops -- reaches a
  primary output of any later frame or the final scanned-out state
  (the error propagates through the fault-free circuit from frame
  ``t+1`` on);
* *slow-to-fall* symmetrically.

Frame 0 is never a launch frame: the transition from the scan-shift
state to the first capture is not applied at functional speed.  A
scan test with a length-1 sequence therefore detects **zero**
transition faults -- which is exactly why the [4]-style single-vector
test sets fare poorly here and the paper's long-sequence sets shine.

The simulator packs all launches of a frame into bit-parallel words
and carries them through the remaining frames together, with early
exit once a word's faults are all detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuits.netlist import Netlist
from ..core.scan_test import ScanTest, ScanTestSet
from ..sim import values as V
from ..sim.logicsim import CompiledCircuit


@dataclass(frozen=True)
class TransitionFault:
    """A transition fault on a stem.

    ``rising`` selects slow-to-rise (detected via a 0 -> 1 launch and a
    stuck-at-0 capture); otherwise slow-to-fall.
    """

    net: str
    rising: bool

    def __str__(self) -> str:
        return f"{self.net}/{'STR' if self.rising else 'STF'}"


def all_transition_faults(netlist: Netlist) -> List[TransitionFault]:
    """Both transition faults on every net, sorted for reproducibility."""
    if not netlist.is_compiled():
        netlist.compile()
    faults = []
    for net in sorted(netlist.gates):
        faults.append(TransitionFault(net, True))
        faults.append(TransitionFault(net, False))
    return faults


class TransitionSim:
    """Transition-fault simulator bound to one circuit."""

    def __init__(self, circuit: CompiledCircuit,
                 faults: Optional[Sequence[TransitionFault]] = None,
                 width: int = 128) -> None:
        self.circuit = circuit
        self.faults: List[TransitionFault] = list(
            faults if faults is not None
            else all_transition_faults(circuit.netlist))
        self.index: Dict[TransitionFault, int] = {
            f: i for i, f in enumerate(self.faults)}
        self.width = width
        ids = circuit.netlist.net_ids
        self._nid: List[int] = [ids[f.net] for f in self.faults]

    # ------------------------------------------------------------------
    def detect_test(self, test: ScanTest,
                    target: Optional[Set[int]] = None) -> Set[int]:
        """Transition-fault indices detected by one scan test."""
        circuit = self.circuit
        if target is None:
            target = set(range(len(self.faults)))
        remaining = set(target)
        detected: Set[int] = set()
        if test.length < 2 or not remaining:
            return detected

        # Good-machine pass recording every net value per frame.
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for nid, val in zip(circuit.ff_ids, test.scan_in):
            zero[nid], one[nid] = V.pack_scalar(val, 1)
        frames: List[Tuple[List[int], List[int]]] = []
        states: List[V.Vector] = []
        for vector in test.vectors:
            for nid, val in zip(circuit.pi_ids, vector):
                zero[nid], one[nid] = V.pack_scalar(val, 1)
            circuit.eval_frame(zero, one, 1)
            frames.append((list(zero), list(one)))
            captured = tuple(
                V.word_scalar(zero[nid], one[nid])
                for nid in circuit.ff_d_ids)
            states.append(captured)
            for nid, val in zip(circuit.ff_ids, captured):
                zero[nid], one[nid] = V.pack_scalar(val, 1)

        last = test.length - 1
        for t in range(1, test.length):
            prev_zero, prev_one = frames[t - 1]
            cur_zero, cur_one = frames[t]
            launched: List[int] = []
            for fid in remaining:
                nid = self._nid[fid]
                if self.faults[fid].rising:
                    if prev_zero[nid] & 1 and cur_one[nid] & 1:
                        launched.append(fid)
                else:
                    if prev_one[nid] & 1 and cur_zero[nid] & 1:
                        launched.append(fid)
            if not launched:
                continue
            caught = self._capture_and_propagate(test, states, frames,
                                                 t, sorted(launched))
            detected |= caught
            remaining -= caught
            if not remaining:
                break
        return detected

    def _capture_and_propagate(self, test: ScanTest,
                               states: Sequence[V.Vector],
                               frames: Sequence,
                               launch: int,
                               launched: Sequence[int]) -> Set[int]:
        """Bit-parallel check for one launch frame.

        Frame ``launch`` is evaluated with the late-transition values
        forced (stuck-at-old); the resulting error state then runs
        through the remaining frames fault-free, observed at primary
        outputs each frame and at the final captured state.
        """
        circuit = self.circuit
        detected: Set[int] = set()
        last = test.length - 1
        per = self.width - 1
        for start in range(0, len(launched), per):
            group = launched[start:start + per]
            mask = (1 << (len(group) + 1)) - 1
            stems: Dict[int, Tuple[int, int]] = {}
            for pos, fid in enumerate(group):
                bit = 1 << (pos + 1)
                nid = self._nid[fid]
                # Slow-to-rise: value stays at old 0 -> stuck-at-0 now.
                m0, m1 = (bit, 0) if self.faults[fid].rising else (0, bit)
                old0, old1 = stems.get(nid, (0, 0))
                stems[nid] = (old0 | m0, old1 | m1)
            zero = [0] * circuit.n_nets
            one = [0] * circuit.n_nets
            state = (test.scan_in if launch == 0
                     else states[launch - 1])
            for nid, val in zip(circuit.ff_ids, state):
                zero[nid], one[nid] = V.pack_scalar(val, mask)
            caught = 0
            for t in range(launch, test.length):
                for nid, val in zip(circuit.pi_ids, test.vectors[t]):
                    zero[nid], one[nid] = V.pack_scalar(val, mask)
                if t == launch:
                    for nid, (m0, m1) in stems.items():
                        keep = mask & ~(m0 | m1)
                        zero[nid] = (zero[nid] & keep) | m0
                        one[nid] = (one[nid] & keep) | m1
                    circuit.eval_frame(zero, one, mask, stems)
                else:
                    circuit.eval_frame(zero, one, mask)
                for nid in circuit.po_ids:
                    caught |= _diff(zero[nid], one[nid])
                if t == last:
                    for nid in circuit.ff_d_ids:
                        caught |= _diff(zero[nid], one[nid])
                caught &= ~1
                if caught == mask & ~1:
                    break
                captured = [(zero[nid], one[nid])
                            for nid in circuit.ff_d_ids]
                for nid, (z, o) in zip(circuit.ff_ids, captured):
                    zero[nid], one[nid] = z, o
            for pos, fid in enumerate(group):
                if caught & (1 << (pos + 1)):
                    detected.add(fid)
        return detected

    # ------------------------------------------------------------------
    def detect_test_set(self, test_set: ScanTestSet) -> Set[int]:
        """Union of transition faults detected across a test set."""
        remaining = set(range(len(self.faults)))
        detected: Set[int] = set()
        for test in test_set:
            if not remaining:
                break
            caught = self.detect_test(test, remaining)
            detected |= caught
            remaining -= caught
        return detected

    def coverage_percent(self, test_set: ScanTestSet) -> float:
        """Transition-fault coverage of a test set, in percent."""
        if not self.faults:
            return 0.0
        return 100.0 * len(self.detect_test_set(test_set)) / \
            len(self.faults)


def _diff(zero: int, one: int) -> int:
    """Machines whose binary value differs from the good bit-0 value."""
    if one & 1:
        return zero
    if zero & 1:
        return one
    return 0

"""Equivalence tests: code-generated engine vs the generic interpreter.

The two engines must produce bit-identical results for every
evaluation mode the simulators use -- plain good-machine runs, stem
injection, branch injection, multi-machine words.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import library, synth
from repro.sim import values as V
from repro.sim.codegen import generate_source
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit, simulate_sequence


def random_injections(circuit, rng, mask):
    """Random stems/branch dicts shaped like real fault chunks."""
    stems = {}
    branch = {}
    for _ in range(rng.randint(0, 4)):
        nid = rng.randrange(circuit.n_nets)
        m0 = rng.getrandbits(8) & mask
        m1 = rng.getrandbits(8) & mask & ~m0
        stems[nid] = (m0, m1)
    gate_outs = [out for _, out, fins in circuit.ops if fins]
    for _ in range(rng.randint(0, 3)):
        out = rng.choice(gate_outs)
        op, _, fins = next(o for o in circuit.ops if o[1] == out)
        pin = rng.randrange(len(fins))
        m0 = rng.getrandbits(8) & mask
        m1 = rng.getrandbits(8) & mask & ~m0
        branch.setdefault(out, []).append((pin, m0, m1))
    return stems, branch


def load_words(circuit, rng, mask):
    zero = [0] * circuit.n_nets
    one = [0] * circuit.n_nets
    for nid in list(circuit.pi_ids) + list(circuit.ff_ids):
        z = rng.getrandbits(9) & mask
        o = rng.getrandbits(9) & mask & ~z
        zero[nid], one[nid] = z, o
    return zero, one


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_random_frames_identical(self, seed):
        rng = random.Random(seed)
        net = synth.generate("cg", 4, 3, 4, 30, seed=seed % 40)
        generic = CompiledCircuit(net, engine="generic")
        fast = CompiledCircuit(net.copy(), engine="codegen")
        mask = (1 << rng.randint(1, 9)) - 1
        stems, branch = random_injections(generic, rng, mask)
        z1, o1 = load_words(generic, rng, mask)
        z2, o2 = list(z1), list(o1)
        generic.eval_frame(z1, o1, mask, stems, branch)
        fast.eval_frame(z2, o2, mask, stems, branch)
        assert z1 == z2
        assert o1 == o2

    def test_fault_sim_results_identical(self, s27):
        rng = random.Random(7)
        vectors = [V.random_binary_vector(4, rng) for _ in range(25)]
        init = V.vec("010")
        results = []
        for engine in ("generic", "codegen"):
            cc = CompiledCircuit(s27.copy(), engine=engine)
            fs = FaultSet.collapsed(cc.netlist)
            sim = FaultSimulator(cc, fs)
            results.append(sim.detect(vectors, init, early_exit=False))
        assert results[0] == results[1]

    def test_good_machine_identical(self):
        net = library.counter(4)
        rng = random.Random(1)
        vectors = [(rng.randint(0, 1),) for _ in range(20)]
        a = simulate_sequence(CompiledCircuit(net, engine="generic"),
                              vectors, (V.ZERO,) * 4)
        b = simulate_sequence(CompiledCircuit(net.copy(),
                                              engine="codegen"),
                              vectors, (V.ZERO,) * 4)
        assert a.po_frames == b.po_frames
        assert a.state_frames == b.state_frames


class TestMechanics:
    def test_source_is_valid_python(self, s27):
        cc = CompiledCircuit(s27, engine="generic")
        source = generate_source(cc)
        compile(source, "<test>", "exec")
        assert "def eval_frame" in source

    def test_unknown_engine_rejected(self, s27):
        with pytest.raises(ValueError, match="unknown engine"):
            CompiledCircuit(s27, engine="turbo")

    def test_default_is_codegen(self, s27):
        cc = CompiledCircuit(s27)
        assert cc.engine == "codegen"
        # Instance attribute shadows the class method.
        assert "eval_frame" in cc.__dict__

    def test_speedup_exists(self):
        """The whole point: the fast engine should not be slower."""
        import time
        net = synth.generate("perf", 5, 5, 10, 120, seed=9)
        rng = random.Random(2)
        vectors = [V.random_binary_vector(5, rng) for _ in range(120)]
        timings = {}
        for engine in ("generic", "codegen"):
            cc = CompiledCircuit(net.copy(), engine=engine)
            fs = FaultSet.collapsed(cc.netlist)
            sim = FaultSimulator(cc, fs)
            start = time.perf_counter()
            sim.detect(vectors, V.random_binary_vector(10, rng),
                       early_exit=False)
            timings[engine] = time.perf_counter() - start
        # Allow noise, but codegen must not be significantly slower.
        assert timings["codegen"] <= timings["generic"] * 1.15


class TestCodeCache:
    """The source-text code cache serves both evaluator flavors."""

    def _flavors(self, net):
        import repro.sim.codegen as codegen
        cc = CompiledCircuit(net, engine="codegen")
        bigint_src = generate_source(cc)
        numpy_src = codegen.generate_numpy_source(cc)
        return codegen, cc, bigint_src, numpy_src

    def test_flavors_cache_independently(self):
        """One netlist yields two distinct cache slots -- the big-int
        and numpy sources differ, so neither evicts or shadows the
        other."""
        pytest.importorskip("numpy")
        import repro.sim.codegen as codegen
        net = synth.generate("cache2f", 4, 3, 4, 30, seed=11)
        codegen_mod, cc, bigint_src, numpy_src = self._flavors(net)
        assert bigint_src != numpy_src
        from repro.sim.codegen import (build_evaluator,
                                       build_numpy_evaluator)
        build_evaluator(cc)
        build_numpy_evaluator(cc)
        assert bigint_src in codegen_mod._CODE_CACHE
        assert numpy_src in codegen_mod._CODE_CACHE

    def test_repeated_builds_hit_cache(self):
        """Rebuilding a CompiledCircuit over the same netlist reuses
        the compiled code object instead of recompiling."""
        import repro.sim.codegen as codegen
        net = synth.generate("cachehit", 4, 3, 4, 30, seed=12)
        CompiledCircuit(net, engine="codegen")
        source = generate_source(CompiledCircuit(net, engine="generic"))
        cached = codegen._CODE_CACHE.get(source)
        assert cached is not None
        CompiledCircuit(net.copy(), engine="codegen")
        assert codegen._CODE_CACHE[source] is cached

    def test_numpy_repeated_builds_hit_cache(self):
        pytest.importorskip("numpy")
        import repro.sim.codegen as codegen
        from repro.sim.codegen import build_numpy_evaluator
        net = synth.generate("cachehitnp", 4, 3, 4, 30, seed=13)
        cc = CompiledCircuit(net, engine="codegen")
        build_numpy_evaluator(cc)
        source = codegen.generate_numpy_source(cc)
        cached = codegen._CODE_CACHE[source]
        build_numpy_evaluator(CompiledCircuit(net.copy(),
                                              engine="codegen"))
        assert codegen._CODE_CACHE[source] is cached

    def test_numpy_flavor_matches_bigint_flavor(self):
        """Both flavors of the emitted evaluator compute the same
        frame on the same injections (arrays converted at the edge)."""
        np = pytest.importorskip("numpy")
        from repro.sim.codegen import build_numpy_evaluator
        from repro.sim.values import array_to_word, word_to_array
        rng = random.Random(21)
        net = synth.generate("cgnp", 4, 3, 4, 30, seed=21)
        cc = CompiledCircuit(net, engine="codegen")
        np_eval = build_numpy_evaluator(cc)
        mask = (1 << 7) - 1
        stems, branch = random_injections(cc, rng, mask)
        z1, o1 = load_words(cc, rng, mask)
        za = np.vstack([word_to_array(w, 1) for w in z1])
        oa = np.vstack([word_to_array(w, 1) for w in o1])
        cc.eval_frame(z1, o1, mask, stems, branch)
        np_eval(za, oa, word_to_array(mask, 1),
                {nid: (word_to_array(m0, 1), word_to_array(m1, 1))
                 for nid, (m0, m1) in stems.items()},
                {out: [(pin, word_to_array(m0, 1), word_to_array(m1, 1))
                       for pin, m0, m1 in entries]
                 for out, entries in branch.items()})
        assert [array_to_word(r) for r in za] == z1
        assert [array_to_word(r) for r in oa] == o1

"""Transition (delay) fault simulation for scan tests.

The paper's motivation for long primary-input sequences is at-speed
testing: consecutive functional cycles are launch/capture opportunities
for delay defects [5], [6].  This module quantifies that claim with the
standard transition-fault model under launch-on-capture conditions:

* a *slow-to-rise* fault on net ``n`` is *launched* at frame ``t >= 1``
  when the fault-free value of ``n`` rises from 0 (frame ``t-1``) to 1
  (frame ``t``); the late transition behaves as a stuck-at-0 on ``n``
  during frame ``t``;
* the resulting error is *detected* if it reaches a primary output at
  frame ``t`` or -- after being captured into flip-flops -- reaches a
  primary output of any later frame or the final scanned-out state
  (the error propagates through the fault-free circuit from frame
  ``t+1`` on);
* *slow-to-fall* symmetrically.

Frame 0 is never a launch frame: the transition from the scan-shift
state to the first capture is not applied at functional speed.  A
scan test with a length-1 sequence therefore detects **zero**
transition faults -- which is exactly why the [4]-style single-vector
test sets fare poorly here and the paper's long-sequence sets shine.

Simulation routes
-----------------
The simulator packs all launches of a frame into bit-parallel words
and carries them through the remaining frames together, with early
exit once a word's faults are all detected.  Two routes execute that
plan:

* **scalar** (the reference): per-net Python big-int words, at most
  ``width - 1`` faults per word, one interpreted ``eval_frame`` call
  per frame per word -- exactly the semantics of the stuck-at engine's
  big-int path.
* **packed** (the fast path): every launch of a frame goes into one
  multi-word ``uint64`` array chunk executed by the C pass kernel of
  :mod:`repro.sim.npsim` -- one kernel call for the launch frame
  (injection stems force the late value, scan-out only if it is also
  the last frame) and one for the fault-free propagation suffix
  (stem-free plan, primary outputs observed every frame, final state
  scanned out).  The kernel writes the captured next state back into
  the shared arrays between calls, so the two segments compose into
  the exact scalar pass.

Detection is independent of how launches are grouped into words
(every fault's machine evolves in its own bit-lane and the saturation
break only fires once *all* lanes are caught), so the two routes are
byte-identical; ``tests/delay/test_transition.py`` proves it with a
hypothesis equivalence suite and -- under ``REPRO_SANITIZE=1`` -- the
packed route spot-checks its first few captures against a scalar
recomputation, reporting ``delay-agreement`` violations through
:mod:`repro.analysis.sanitizer`.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis import sanitizer
from ..circuits.netlist import Netlist
from ..core.scan_test import ScanTest, ScanTestSet
from ..sim import values as V
from ..sim.counters import SimCounters
from ..sim.logicsim import CompiledCircuit

#: Packed launch-group captures cross-checked against the scalar route
#: per simulator when the sanitizer is armed.
_SANITIZE_SPOT_BUDGET = 3

#: Simulation routes accepted by :class:`TransitionSim`.
ROUTES = ("auto", "packed", "scalar")


@dataclass(frozen=True)
class TransitionFault:
    """A transition fault on a stem.

    ``rising`` selects slow-to-rise (detected via a 0 -> 1 launch and a
    stuck-at-0 capture); otherwise slow-to-fall.
    """

    net: str
    rising: bool

    def __str__(self) -> str:
        return f"{self.net}/{'STR' if self.rising else 'STF'}"


def all_transition_faults(netlist: Netlist) -> List[TransitionFault]:
    """Both transition faults on every net, sorted for reproducibility."""
    if not netlist.is_compiled():
        netlist.compile()
    faults = []
    for net in sorted(netlist.gates):
        faults.append(TransitionFault(net, True))
        faults.append(TransitionFault(net, False))
    return faults


@dataclass
class _TdfChunk:
    """Duck-typed injection chunk for the wide-word TDF capture.

    Carries the same ``indices`` / ``mask`` / ``stems`` / ``branch`` /
    ``ff_branch`` / ``src_stem_ids`` fields a
    :class:`repro.sim.fault_sim._Chunk` does, which is all
    :class:`repro.sim.npsim._ChunkPlan` consumes.  TDF injection only
    ever uses whole-stem forcing (the late transition pins the net's
    old value for one frame), so the branch tables stay empty.
    """

    indices: List[int]
    mask: int
    stems: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    branch: Dict[int, List[Tuple[int, int, int]]] = field(
        default_factory=dict)
    ff_branch: List[Tuple[int, int, int]] = field(default_factory=list)
    src_stem_ids: List[int] = field(default_factory=list)


class TransitionSim:
    """Transition-fault simulator bound to one circuit.

    ``route`` selects the execution path: ``"scalar"`` forces the
    big-int reference, ``"packed"`` demands the numpy + C-kernel path
    (raising when it is unavailable), and ``"auto"`` -- the default --
    takes the packed path when it can and falls back to scalar
    otherwise.  The resolved choice is exposed as :attr:`route`.
    Pass the workbench's shared
    :class:`~repro.sim.counters.SimCounters` to surface
    ``tdf_passes`` / ``tdf_words`` / ``tdf_s`` in the engine counters
    table.
    """

    def __init__(self, circuit: CompiledCircuit,
                 faults: Optional[Sequence[TransitionFault]] = None,
                 width: int = 128,
                 counters: Optional[SimCounters] = None,
                 route: str = "auto") -> None:
        self.circuit = circuit
        self.faults: List[TransitionFault] = list(
            faults if faults is not None
            else all_transition_faults(circuit.netlist))
        self.index: Dict[TransitionFault, int] = {
            f: i for i, f in enumerate(self.faults)}
        self.width = width
        self.counters = counters if counters is not None \
            else SimCounters()
        ids = circuit.netlist.net_ids
        self._nid: List[int] = [ids[f.net] for f in self.faults]
        self._src_ids = frozenset(circuit.pi_ids) | \
            frozenset(circuit.ff_ids)
        if route not in ROUTES:
            raise ValueError(f"unknown TDF route {route!r}; "
                             f"use one of {ROUTES}")
        self._backend = self._resolve_backend(route)
        self.route = "packed" if self._backend is not None else "scalar"
        self._plain_plans: "OrderedDict[int, Any]" = OrderedDict()
        self._stem_site_buf: Optional[Any] = None
        self._stem_dirty: List[int] = []
        self._sanitize_spots_left = _SANITIZE_SPOT_BUDGET

    #: Stem-free propagation plans retained, keyed by launch-group
    #: size (they are a pure function of the word width).
    _PLAIN_PLAN_CACHE_SIZE = 8

    def _resolve_backend(self, route: str) -> Optional[Any]:
        """The :class:`~repro.sim.npsim.ArrayBackend` to run packed
        captures on, or ``None`` for the scalar route.

        Reuses the circuit's registry backend when the circuit was
        compiled for ``numpy`` / ``auto``; otherwise builds one for
        TDF work alone (cached on the circuit -- the kernel plan
        arrays are circuit-wide) so ``--delay`` is fast under the
        default big-int engines too.
        """
        if route == "scalar":
            return None
        from ..sim import npsim
        backend = self.circuit.array_backend
        if backend is None and npsim.numpy_available():
            backend = getattr(self.circuit, "_tdf_array_backend", None)
            if backend is None:
                backend = npsim.ArrayBackend(self.circuit)
                self.circuit._tdf_array_backend = backend  # type: ignore[attr-defined]
        if backend is not None and backend.kernel_available:
            return backend
        if route == "packed":
            if backend is None:
                raise RuntimeError(
                    "the packed TDF route requires numpy; install the "
                    "optional extra with `pip install repro[fast]` or "
                    "use route='scalar'")
            raise RuntimeError(
                "the packed TDF route requires the compiled C pass "
                f"kernel: {npsim.kernel_unavailable_reason()}")
        return None

    # ------------------------------------------------------------------
    def detect_test(self, test: ScanTest,
                    target: Optional[Set[int]] = None) -> Set[int]:
        """Transition-fault indices detected by one scan test."""
        with self.counters.phase_timer("tdf"):
            return self._detect_test(test, target)

    def _detect_test(self, test: ScanTest,
                     target: Optional[Set[int]]) -> Set[int]:
        circuit = self.circuit
        if target is None:
            target = set(range(len(self.faults)))
        remaining = set(target)
        detected: Set[int] = set()
        if test.length < 2 or not remaining:
            return detected

        # Good-machine pass recording every net value per frame.
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for nid, val in zip(circuit.ff_ids, test.scan_in):
            zero[nid], one[nid] = V.pack_scalar(val, 1)
        frames: List[Tuple[List[int], List[int]]] = []
        states: List[V.Vector] = []
        for vector in test.vectors:
            for nid, val in zip(circuit.pi_ids, vector):
                zero[nid], one[nid] = V.pack_scalar(val, 1)
            circuit.eval_frame(zero, one, 1)
            frames.append((list(zero), list(one)))
            captured = tuple(
                V.word_scalar(zero[nid], one[nid])
                for nid in circuit.ff_d_ids)
            states.append(captured)
            for nid, val in zip(circuit.ff_ids, captured):
                zero[nid], one[nid] = V.pack_scalar(val, 1)

        packed = self._backend is not None
        vec_arr = self._backend._vec_array(test.vectors) if packed \
            else None
        for t in range(1, test.length):
            prev_zero, prev_one = frames[t - 1]
            cur_zero, cur_one = frames[t]
            launched: List[int] = []
            for fid in remaining:
                nid = self._nid[fid]
                if self.faults[fid].rising:
                    if prev_zero[nid] & 1 and cur_one[nid] & 1:
                        launched.append(fid)
                else:
                    if prev_one[nid] & 1 and cur_zero[nid] & 1:
                        launched.append(fid)
            if not launched:
                continue
            if packed:
                caught = self._capture_packed(test, states, frames,
                                              t, sorted(launched),
                                              vec_arr)
            else:
                caught = self._capture_and_propagate(
                    test, states, frames, t, sorted(launched))
            detected |= caught
            remaining -= caught
            if not remaining:
                break
        return detected

    def _capture_and_propagate(self, test: ScanTest,
                               states: Sequence[V.Vector],
                               frames: Sequence,
                               launch: int,
                               launched: Sequence[int],
                               count: bool = True) -> Set[int]:
        """Bit-parallel check for one launch frame (scalar route).

        Frame ``launch`` is evaluated with the late-transition values
        forced (stuck-at-old); the resulting error state then runs
        through the remaining frames fault-free, observed at primary
        outputs each frame and at the final captured state.
        ``count=False`` suppresses the counter bumps (the sanitizer's
        shadow recomputation must not distort the measurements).
        """
        circuit = self.circuit
        detected: Set[int] = set()
        last = test.length - 1
        per = self.width - 1
        for start in range(0, len(launched), per):
            group = launched[start:start + per]
            mask = (1 << (len(group) + 1)) - 1
            stems: Dict[int, Tuple[int, int]] = {}
            for pos, fid in enumerate(group):
                bit = 1 << (pos + 1)
                nid = self._nid[fid]
                # Slow-to-rise: value stays at old 0 -> stuck-at-0 now.
                m0, m1 = (bit, 0) if self.faults[fid].rising else (0, bit)
                old0, old1 = stems.get(nid, (0, 0))
                stems[nid] = (old0 | m0, old1 | m1)
            zero = [0] * circuit.n_nets
            one = [0] * circuit.n_nets
            state = (test.scan_in if launch == 0
                     else states[launch - 1])
            for nid, val in zip(circuit.ff_ids, state):
                zero[nid], one[nid] = V.pack_scalar(val, mask)
            if count:
                self.counters.tdf_passes += 1
            frames_run = 0
            caught = 0
            for t in range(launch, test.length):
                for nid, val in zip(circuit.pi_ids, test.vectors[t]):
                    zero[nid], one[nid] = V.pack_scalar(val, mask)
                if t == launch:
                    for nid, (m0, m1) in stems.items():
                        keep = mask & ~(m0 | m1)
                        zero[nid] = (zero[nid] & keep) | m0
                        one[nid] = (one[nid] & keep) | m1
                    circuit.eval_frame(zero, one, mask, stems)
                else:
                    circuit.eval_frame(zero, one, mask)
                frames_run += 1
                for nid in circuit.po_ids:
                    caught |= _diff(zero[nid], one[nid])
                if t == last:
                    for nid in circuit.ff_d_ids:
                        caught |= _diff(zero[nid], one[nid])
                caught &= ~1
                if caught == mask & ~1:
                    break
                captured = [(zero[nid], one[nid])
                            for nid in circuit.ff_d_ids]
                for nid, (z, o) in zip(circuit.ff_ids, captured):
                    zero[nid], one[nid] = z, o
            if count:
                self.counters.tdf_words += frames_run
            for pos, fid in enumerate(group):
                if caught & (1 << (pos + 1)):
                    detected.add(fid)
        return detected

    # ------------------------------------------------------------------
    def _capture_packed(self, test: ScanTest,
                        states: Sequence[V.Vector],
                        frames: Sequence,
                        launch: int,
                        launched: Sequence[int],
                        vec_arr: Any) -> Set[int]:
        """Kernel check for one launch frame (packed route).

        All launches go into one multi-word chunk: segment one runs
        just the launch frame with the late values forced through the
        injection-stem plan, segment two propagates fault-free through
        the remaining frames on the same arrays (the kernel's
        next-state write-back carries the error state across the
        boundary).  Saturation in segment one means every lane is
        already caught and the suffix is skipped.
        """
        from ..sim import npsim
        backend = self._backend
        np = backend.np
        circuit = self.circuit
        last = test.length - 1
        group = list(launched)
        site_of: Dict[int, int] = {}
        bits0: List[List[int]] = []   # slow-to-rise: stuck-at-0 bits
        bits1: List[List[int]] = []   # slow-to-fall: stuck-at-1 bits
        for pos, fid in enumerate(group):
            nid = self._nid[fid]
            i = site_of.setdefault(nid, len(bits0))
            if i == len(bits0):
                bits0.append([])
                bits1.append([])
            (bits0 if self.faults[fid].rising else bits1)[i].append(
                pos + 1)
        plan = self._stem_plan(len(group), site_of, bits0, bits1)
        # launch >= 1 always: frame 0 is never a launch frame.
        zero, one = backend._init_state(plan, states[launch - 1])
        W = plan.n_words
        caught_arr = np.zeros(W, dtype=np.uint64)
        ns_zero = np.zeros((max(1, len(circuit.ff_ids)), W),
                           dtype=np.uint64)
        ns_one = np.zeros_like(ns_zero)
        counters = self.counters
        counters.np_passes += 1
        counters.tdf_passes += 1
        status, _, frames_run = backend._kernel_segment(
            plan, zero, one, vec_arr, launch, launch, True,
            launch == last, None, False, None, None,
            ns_zero, ns_one, caught_arr)
        if launch < last and status != npsim._STATUS_SATURATED:
            plain = self._plain_plan(len(group))
            _, _, more = backend._kernel_segment(
                plain, zero, one, vec_arr, launch + 1, last, True,
                True, None, False, None, None, ns_zero, ns_one,
                caught_arr)
            frames_run += more
        counters.tdf_words += frames_run
        caught = V.array_to_word(caught_arr) & ~1
        detected = {fid for pos, fid in enumerate(group)
                    if caught & (1 << (pos + 1))}
        if sanitizer.enabled() and self._sanitize_spots_left > 0:
            self._sanitize_spots_left -= 1
            self._spot_check(test, states, frames, launch, group,
                             detected)
        return detected

    def _plain_plan(self, n_group: int) -> Any:
        """The stem-free propagation plan for a launch group of
        ``n_group`` faults (LRU-cached: it depends only on the word
        width, which depends only on the group size)."""
        plan = self._plain_plans.get(n_group)
        if plan is None:
            from ..sim import npsim
            chunk = _TdfChunk(indices=list(range(n_group)),
                              mask=(1 << (n_group + 1)) - 1)
            plan = npsim._ChunkPlan(self._backend, chunk)
            self._plain_plans[n_group] = plan
            if len(self._plain_plans) > self._PLAIN_PLAN_CACHE_SIZE:
                self._plain_plans.popitem(last=False)
        else:
            self._plain_plans.move_to_end(n_group)
        return plan

    def _stem_plan(self, n_group: int, site_of: Dict[int, int],
                   bits0: Sequence[Sequence[int]],
                   bits1: Sequence[Sequence[int]]) -> Any:
        """The launch-frame plan for one group: the cached stem-free
        template shallow-copied with only the stem arrays patched.

        A full :class:`~repro.sim.npsim._ChunkPlan` rebuild per launch
        frame is the packed route's hot spot (per-net site tables and
        big-int row conversions each time); everything except the
        stems is a pure function of the group size, and the stem rows
        are set bit-by-bit straight into ``uint64`` words (``bits0`` /
        ``bits1`` hold the stuck-at-0 / stuck-at-1 machine-bit
        positions per stem site).  Only valid on the kernel path: the
        copy's ``chunk`` still reports empty stems, which only the
        pure-numpy fallback evaluator consults.  The per-net site
        table is a single reused buffer -- entries dirtied by the
        previous launch frame are cleared here, so the plan returned
        by the last call stays valid until the next one.
        """
        np = self._backend.np
        plan = copy.copy(self._plain_plan(n_group))
        plan._kptrs = None   # the template's casts point at its arrays
        site = self._stem_site_buf
        if site is None or len(site) != self.circuit.n_nets:
            site = np.full(self.circuit.n_nets, -1, dtype=np.int32)
            self._stem_site_buf = site
        for nid in self._stem_dirty:
            site[nid] = -1
        self._stem_dirty = list(site_of)
        W = plan.n_words
        n_sites = len(bits0)
        f0 = np.zeros((max(1, n_sites), W), dtype=np.uint64)
        f1 = np.zeros_like(f0)
        for i in range(n_sites):
            for b in bits0[i]:
                f0[i, b >> 6] |= np.uint64(1 << (b & 63))
            for b in bits1[i]:
                f1[i, b >> 6] |= np.uint64(1 << (b & 63))
        for nid, i in site_of.items():
            site[nid] = i
        plan.stem_site = site
        plan.st_f0 = f0
        plan.st_f1 = f1
        plan.st_keep = plan.mask[None, :] & ~(f0 | f1)
        src = [nid for nid in site_of if nid in self._src_ids]
        plan.src_stem_ids = np.asarray(src, dtype=np.int32)
        plan.src_stem_site = np.asarray(
            [site_of[nid] for nid in src], dtype=np.int32)
        return plan

    def _spot_check(self, test: ScanTest,
                    states: Sequence[V.Vector],
                    frames: Sequence, launch: int,
                    group: Sequence[int],
                    detected: Set[int]) -> None:
        """Scalar shadow recomputation of one packed capture."""
        scalar = self._capture_and_propagate(test, states, frames,
                                             launch, group,
                                             count=False)
        if scalar != detected:
            sanitizer.report_violation(
                "delay-agreement",
                f"packed/scalar TDF mismatch at launch frame "
                f"{launch}: packed {sorted(detected)}, scalar "
                f"{sorted(scalar)}")

    # ------------------------------------------------------------------
    def detect_test_set(self, test_set: ScanTestSet) -> Set[int]:
        """Union of transition faults detected across a test set."""
        remaining = set(range(len(self.faults)))
        detected: Set[int] = set()
        for test in test_set:
            if not remaining:
                break
            caught = self.detect_test(test, remaining)
            detected |= caught
            remaining -= caught
        return detected

    def coverage_percent(self, test_set: ScanTestSet) -> float:
        """Transition-fault coverage of a test set, in percent."""
        if not self.faults:
            return 0.0
        return 100.0 * len(self.detect_test_set(test_set)) / \
            len(self.faults)


def _diff(zero: int, one: int) -> int:
    """Machines whose binary value differs from the good bit-0 value."""
    if one & 1:
        return zero
    if zero & 1:
        return one
    return 0

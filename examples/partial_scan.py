#!/usr/bin/env python3
"""Scenario: full scan versus partial scan trade-off.

The paper notes its procedure "can be extended to the case of
partial-scan circuits"; this example runs that extension.  A
cycle-cutting heuristic picks the scanned flip-flops (breaking every
flip-flop dependency cycle), then the four-phase procedure runs under
the reduced controllability/observability, and the resulting test
application time and coverage are compared against full scan.

Shorter scan chains make every scan operation cheaper -- the question
is how much coverage and how many extra vectors that costs.

Run with::

    python examples/partial_scan.py
"""

from repro.circuits import synth
from repro.core.partial import (PartialScanPlan, compact_partial,
                                workbench_for)


def report(label, plan, result):
    final = result.compacted_set or result.test_set
    wb = workbench_for(plan)
    detectable = len(wb.faults) - 0  # denominator: all faults
    print(f"{label:>12}: chain={plan.n_scanned:2d} FFs  "
          f"tests={len(final):3d}  cycles={final.clock_cycles():5d}  "
          f"detected={len(result.final_detected):4d}/{detectable}  "
          f"L(T_seq)={result.seq_length}")


def main() -> None:
    netlist = synth.generate("partial-demo", 4, 5, 12, 100, seed=23)
    print(f"circuit: {netlist!r}\n")

    full_plan = PartialScanPlan.full(netlist)
    cut_plan = PartialScanPlan.by_cycle_cutting(netlist)
    cut_extra = PartialScanPlan.by_cycle_cutting(netlist, extra=3)

    print(f"cycle-cutting scan selection: "
          f"{cut_plan.scanned_ffs} of {netlist.num_ffs} flip-flops\n")

    for label, plan in (("full scan", full_plan),
                        ("cut", cut_plan),
                        ("cut+3", cut_extra)):
        result = compact_partial(plan, seed=1, t0_length=150)
        report(label, plan, result)

    print("\nshorter chains cut the per-scan cost ((k+1) * chain "
          "length) but lose coverage\non faults that need unscanned "
          "state to be controlled or observed.")


if __name__ == "__main__":
    main()

"""High-level convenience API.

These wrappers bundle the common setup (compile the circuit, collapse
the fault list, build the simulators, generate the combinational set)
so a downstream user can go from a netlist to a compacted scan test set
in one call.  Power users compose the pieces from :mod:`repro.core`,
:mod:`repro.sim` and :mod:`repro.atpg` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from .analysis.diagnostics import Diagnostic
from .analysis.faultspace import FaultSpaceReport
from .atpg import comb_set as comb_set_mod
from .atpg import random_gen, seqgen
from .atpg.comb_set import CombSetResult, CombTest
from .circuits.netlist import Netlist
from .core.combine import CombineResult, static_compact
from .core.dynamic import DynamicResult, dynamic_compact
from .core.phase1 import DEFAULT_CANDIDATE_SCAN
from .core.proposed import (PhaseObserver, ProposedResult,
                            run as run_proposed)
from .core.scan_test import ScanTestSet, single_vector_test
from .delay.clocking import ClockSpec, DelayReport
from .delay.clocking import measure_delay as _measure_delay_sets
from .delay.transition import TransitionSim
from .sim import values as V
from .sim.comb_sim import CombPatternSim
from .sim.counters import SimCounters
from .sim.fault_sim import FaultSimulator, WidthPolicy
from .sim.faults import FaultSet
from .sim.logicsim import CompiledCircuit


@dataclass
class Workbench:
    """Compiled circuit + fault set + simulators, built once."""

    netlist: Netlist
    circuit: CompiledCircuit
    faults: FaultSet
    sim: FaultSimulator
    comb_sim: CombPatternSim
    #: Structural lint findings for the netlist (populated when the
    #: workbench is built with ``lint=True``); see :mod:`repro.analysis`.
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: The static fault-space report (populated unless the workbench
    #: was built with ``static_analysis=False``); see
    #: :mod:`repro.analysis.faultspace`.
    faultspace: Optional[FaultSpaceReport] = None

    @property
    def counters(self) -> SimCounters:
        """The simulators' shared instrumentation counters."""
        return self.sim.counters

    @property
    def n_untestable(self) -> int:
        """Proven-untestable faults in this workbench's target set."""
        if self.faultspace is None:
            return 0
        return len(self.faultspace.untestable_indices(self.faults))

    def scoap_difficulty(self) -> Dict[int, int]:
        """Fault index -> SCOAP difficulty over the target set.

        Empty when the workbench was built without static analysis
        (callers treat the empty map as "no ordering hint").
        """
        if self.faultspace is None:
            return {}
        return self.faultspace.difficulty_map(self.faults)

    @classmethod
    def for_netlist(cls, netlist: Netlist, engine: str = "codegen",
                    width: WidthPolicy = "auto",
                    lint: bool = False,
                    static_analysis: bool = True) -> "Workbench":
        """Build the standard toolchain for one circuit.

        Parameters
        ----------
        netlist:
            The circuit.
        engine:
            Evaluation backend: ``"codegen"`` (compiled per-circuit
            source, the default), ``"interp"``/``"generic"`` (the
            table-driven interpreter; ``"interp"`` is the CLI spelling
            of ``"generic"``), ``"numpy"`` (the uint64-array backend
            of :mod:`repro.sim.npsim`; requires the optional numpy
            dependency and raises an actionable error without it), or
            ``"auto"`` (numpy for large passes when available, fused
            big-int otherwise).  All backends produce byte-identical
            results.
        width:
            Fault-packing policy for the sequential simulator:
            ``"auto"`` (fuse every target into one wide word, chunk
            only past the fused cap) or an explicit machines-per-word
            integer.  See :class:`repro.sim.fault_sim.FaultSimulator`.
        lint:
            Run the structural netlist lint first and carry its
            findings in :attr:`diagnostics`.  Only the cheap
            structural rules run (no X-initializability analysis);
            use :func:`repro.analysis.lint_netlist` directly for the
            full pass.
        static_analysis:
            Run the static fault-space pass
            (:func:`repro.analysis.faultspace.analyze_faultspace`),
            carry the report in :attr:`faultspace`, and exclude the
            proven-untestable faults from both simulators.  Provably
            result-identical -- a proven-untestable fault appears in
            no detection set, so only the machine-bit counters move.
            ``False`` skips the pass (the benchmark baseline arm).
        """
        if engine == "interp":
            engine = "generic"
        diagnostics: List[Diagnostic] = []
        if lint:
            from .analysis.rules import lint_netlist
            diagnostics = list(lint_netlist(netlist, xinit=False).diagnostics)
        circuit = CompiledCircuit(netlist, engine=engine)
        faults = FaultSet.collapsed(netlist)
        counters = SimCounters()
        sim = FaultSimulator(circuit, faults, width=width,
                             counters=counters)
        comb_sim = CombPatternSim(circuit, faults, counters=counters)
        faultspace: Optional[FaultSpaceReport] = None
        if static_analysis:
            from .analysis.faultspace import analyze_faultspace
            faultspace = analyze_faultspace(netlist)
            untestable = faultspace.untestable_indices(faults)
            if untestable:
                sim.set_untestable(sorted(untestable))
                comb_sim.set_untestable(sorted(untestable))
        return cls(
            netlist=netlist,
            circuit=circuit,
            faults=faults,
            sim=sim,
            comb_sim=comb_sim,
            diagnostics=diagnostics,
            faultspace=faultspace,
        )


def generate_comb_set(netlist: Netlist, seed: int = 0,
                      workbench: Optional[Workbench] = None,
                      **kwargs) -> CombSetResult:
    """Generate the combinational test set ``C`` for a circuit.

    Keyword arguments are forwarded to
    :func:`repro.atpg.comb_set.generate`.
    """
    wb = workbench or Workbench.for_netlist(netlist)
    return comb_set_mod.generate(wb.circuit, wb.faults, seed=seed, **kwargs)


def compact_tests(
    netlist: Netlist,
    seed: int = 0,
    t0_source: str = "seqgen",
    t0_length: int = 500,
    t0: Optional[Sequence[V.Vector]] = None,
    comb_tests: Optional[Sequence[CombTest]] = None,
    run_phase4: bool = True,
    workbench: Optional[Workbench] = None,
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
    observer: Optional[PhaseObserver] = None,
    resume: Optional[Dict[str, Any]] = None,
    trial_batch: int = 64,
    adi: bool = False,
    adi_scores: Optional[Dict[int, int]] = None,
    scoap: bool = False,
) -> ProposedResult:
    """Run the paper's proposed procedure on a circuit.

    Parameters
    ----------
    netlist:
        The full-scan circuit.
    seed:
        Master seed for all randomized stages.
    t0_source:
        ``"seqgen"`` (sequential-ATPG-like generator, the [10]/[12]
        arm) or ``"random"`` (the Table-5 arm).  Ignored when ``t0``
        is given.
    t0_length:
        Length budget for the initial sequence.
    t0:
        An explicit initial sequence (overrides ``t0_source``).
    comb_tests:
        An explicit combinational test set; generated when omitted.
    run_phase4:
        Apply the [4] static compaction at the end.
    candidate_scan:
        Phase-1 Step-2 engine mode, ``"lanes"`` or ``"scalar"``; see
        :func:`repro.core.proposed.run`.
    x_fill:
        Don't-care fill strategy for the ATPG stages (see
        :func:`repro.sim.values.fill_x`); ``"random"`` (the default)
        keeps every output byte-identical to the plain reproduction.
        Ignored for the parts the caller supplies explicitly
        (``t0=``, ``comb_tests=``).
    power_budget:
        Optional peak shift-WTM cap.  When set, Phase 4 refuses
        merges over the budget and Phase 3 breaks ties toward
        lower-power tests (see :mod:`repro.power.constrain`); fault
        coverage is never sacrificed.
    observer, resume:
        Phase-boundary hooks and salvaged resume state, forwarded to
        :func:`repro.core.proposed.run`.  When ``resume`` names a
        completed Phase 2 (or later), ``T0`` generation is skipped
        entirely -- the salvaged state already embodies it.
    trial_batch:
        Lane budget for batched trial simulation (Phase-3 candidate
        blocks, Phase-4 merge-trial prefetching); results are
        byte-identical for every value, ``1`` forces the scalar
        loops.  See :func:`repro.core.proposed.run`.
    adi:
        Enable Accidental-Detection-Index guidance: the random phase
        of combinational test generation doubles as the ADI census
        (arXiv:0710.4637) and its scores order Phase-1/3 choices and
        fused-word packing.  Off (the default) keeps every output
        byte-identical.  When this call generates the combinational
        set itself the census comes for free; with an explicit
        ``comb_tests=`` pass the matching ``adi_scores`` (e.g.
        ``CombSetResult.adi``) alongside, else ADI degrades to the
        all-zero map (orderings fall back to their plain tie-breaks).
    adi_scores:
        Explicit fault index -> accidental-detection count map; only
        consulted when ``adi`` is set and overrides the census of a
        locally generated set.
    scoap:
        Enable SCOAP testability guidance: the workbench's static
        fault-space report supplies a per-fault difficulty map
        (:meth:`Workbench.scoap_difficulty`) that breaks Phase-1 and
        Phase-3 ordering ties toward statically-hard faults and, when
        ADI is off, orders fused-word packing.  Off (the default)
        keeps every output byte-identical.  Requires a workbench with
        static analysis (the default); degrades to a no-op without
        one.

    Raises
    ------
    ValueError
        On an unknown ``t0_source`` or X-fill strategy.
    """
    wb = workbench or Workbench.for_netlist(netlist)
    resume_phase = int(resume["phase"]) if resume else 0
    if comb_tests is None:
        comb_result = generate_comb_set(netlist, seed=seed,
                                        workbench=wb,
                                        x_fill=x_fill)
        comb_tests = comb_result.tests
        if adi and adi_scores is None:
            adi_scores = comb_result.adi
    if t0 is None:
        if resume_phase >= 2:
            t0 = ()
        elif t0_source == "seqgen":
            hints = [t.pi for t in comb_tests]
            t0 = seqgen.generate_sequence(
                wb.circuit, wb.faults, max_length=t0_length, seed=seed,
                hints=hints, targeted=True, x_fill=x_fill).sequence
        elif t0_source == "random":
            t0 = random_gen.random_sequence(wb.circuit, t0_length,
                                            seed=seed)
        else:
            raise ValueError(
                f"unknown t0_source {t0_source!r}; "
                f"use 'seqgen', 'random' or pass t0=")
    merge_filter = None
    power_key = None
    if power_budget is not None:
        from .power import constrain
        from .power.activity import ActivityEngine
        engine = ActivityEngine(wb.circuit, wb.counters)
        merge_filter = constrain.wtm_budget_filter(engine, power_budget)
        power_key = constrain.topoff_power_key(engine, comb_tests)
    scoap_scores = (wb.scoap_difficulty() or None) if scoap else None
    return run_proposed(wb.sim, wb.comb_sim, t0, comb_tests,
                        run_phase4=run_phase4,
                        candidate_scan=candidate_scan,
                        merge_filter=merge_filter,
                        topoff_power_key=power_key,
                        observer=observer, resume=resume,
                        trial_batch=trial_batch,
                        adi=adi, adi_scores=adi_scores,
                        scoap_scores=scoap_scores)


def baseline_static(
    netlist: Netlist,
    seed: int = 0,
    comb_tests: Optional[Sequence[CombTest]] = None,
    workbench: Optional[Workbench] = None,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
) -> CombineResult:
    """The [4] baseline: combine a single-vector-per-test initial set.

    The initial set is the scan equivalent of the combinational test
    set (each test is ``(c_js, (c_ji))``), exactly the starting point
    [4] used.  The returned
    :attr:`~repro.core.combine.CombineStats.initial_cycles` /
    ``final_cycles`` are the paper's Table-3 ``[4] init`` / ``comp``.

    ``x_fill`` / ``power_budget`` mirror :func:`compact_tests`: the
    fill strategy shapes the generated combinational set (ignored
    when ``comb_tests`` is given) and the budget caps the peak shift
    WTM of every merged test.
    """
    wb = workbench or Workbench.for_netlist(netlist)
    if comb_tests is None:
        comb_tests = generate_comb_set(netlist, seed=seed,
                                       workbench=wb,
                                       x_fill=x_fill).tests
    initial = ScanTestSet(
        len(wb.circuit.ff_ids),
        [single_vector_test(t.state, t.pi) for t in comb_tests])
    merge_filter = None
    if power_budget is not None:
        from .power import constrain
        from .power.activity import ActivityEngine
        engine = ActivityEngine(wb.circuit, wb.counters)
        merge_filter = constrain.wtm_budget_filter(engine, power_budget)
    return static_compact(wb.sim, initial, merge_filter=merge_filter)


def measure_delay(
    netlist: Netlist,
    sets: Dict[str, ScanTestSet],
    spec: Optional[ClockSpec] = None,
    workbench: Optional[Workbench] = None,
    route: str = "auto",
) -> DelayReport:
    """Measure the at-speed quality of one or more final test sets.

    For every labeled :class:`~repro.core.scan_test.ScanTestSet` this
    runs the transition-fault simulator
    (:class:`repro.delay.transition.TransitionSim`) over the full
    launch-on-capture TDF list and prices the set under the test-clock
    model of :mod:`repro.delay.clocking`.  The labels become the keys
    of :attr:`~repro.delay.clocking.DelayReport.sets`, so the natural
    call compares the proposed procedure's output against a baseline::

        report = measure_delay(netlist, {
            "seqgen": proposed.compacted_set,
            "baseline4": combined.test_set,
        })

    Parameters
    ----------
    netlist:
        The full-scan circuit.
    sets:
        Label -> final test set to grade.  All sets are simulated with
        one shared simulator, so per-set numbers are comparable.
    spec:
        Test-clock scheme parameters; defaults to the paper-default
        :class:`~repro.delay.clocking.ClockSpec`.
    workbench:
        Reuse an existing toolchain (its counters absorb the
        ``tdf_*`` instrumentation); built fresh when omitted.
    route:
        Forwarded to :class:`~repro.delay.transition.TransitionSim`:
        ``"auto"`` (packed wide-word route when numpy + the C kernel
        are importable, scalar otherwise), ``"packed"`` (require it),
        or ``"scalar"``.
    """
    wb = workbench or Workbench.for_netlist(netlist)
    tsim = TransitionSim(wb.circuit, counters=wb.counters, route=route)
    return _measure_delay_sets(tsim, sets, spec=spec)


def baseline_dynamic(
    netlist: Netlist,
    seed: int = 0,
    comb_tests: Optional[Sequence[CombTest]] = None,
    workbench: Optional[Workbench] = None,
) -> DynamicResult:
    """The [2,3]-style dynamic compaction baseline."""
    wb = workbench or Workbench.for_netlist(netlist)
    if comb_tests is None:
        comb_tests = generate_comb_set(netlist, seed=seed,
                                       workbench=wb).tests
    return dynamic_compact(wb.sim, wb.comb_sim, comb_tests, seed=seed)

"""Performance benchmarks for the simulation and ATPG engines.

These track the throughput of the substrate the tables are built on
(useful when optimizing the inner loops):

* one bit-parallel fault-simulation pass over a sequence;
* the same pass fused (all faults in one wide word) vs chunked
  (128 machines per word) -- the packing-policy ablation;
* one PPSFP block over 64 combinational patterns;
* one PODEM run per fault, averaged;
* one full Phase-2 vector-omission run.

``benchmarks/emit_bench.py`` packages the fused-vs-chunked comparison
(over a full ``run_proposed`` pass) into ``BENCH_engine.json`` for the
CI perf gate; the micro-benchmarks here are for interactive tuning.
"""

import random

import pytest

from repro import api
from repro.atpg import random_gen
from repro.atpg.podem import Podem
from repro.circuits import synth
from repro.core.omission import omit_vectors
from repro.core.scan_test import ScanTest
from repro.sim import values as V


@pytest.fixture(scope="module")
def wb():
    return api.Workbench.for_netlist(
        synth.generate("engine", 5, 6, 12, 100, seed=4))


def test_fault_sim_sequence_pass(benchmark, wb):
    vectors = random_gen.random_sequence(wb.circuit, 100, seed=1)
    init = random_gen.random_state(wb.circuit, seed=2)
    detected = benchmark(wb.sim.detect, vectors, init,
                         early_exit=False)
    assert detected


def test_fault_sim_fused_word(benchmark, wb):
    """All faults packed into one fused word (width="auto")."""
    from repro.sim.fault_sim import FaultSimulator

    fused_sim = FaultSimulator(wb.circuit, wb.faults, width="auto")
    vectors = random_gen.random_sequence(wb.circuit, 100, seed=1)
    init = random_gen.random_state(wb.circuit, seed=2)
    detected = benchmark(fused_sim.detect, vectors, init,
                         early_exit=False)
    assert detected


def test_fault_sim_chunked_word(benchmark, wb):
    """The pre-fusion policy: 128 machines per word, many chunks."""
    from repro.sim.fault_sim import FaultSimulator

    chunked_sim = FaultSimulator(wb.circuit, wb.faults, width=128)
    vectors = random_gen.random_sequence(wb.circuit, 100, seed=1)
    init = random_gen.random_state(wb.circuit, seed=2)
    detected = benchmark(chunked_sim.detect, vectors, init,
                         early_exit=False)
    assert detected


def test_ppsfp_block(benchmark, wb):
    rng = random.Random(3)
    patterns = [(V.random_binary_vector(12, rng),
                 V.random_binary_vector(5, rng)) for _ in range(64)]
    hits = benchmark(wb.comb_sim.detect_block, patterns)
    assert hits


def test_podem_all_faults(benchmark, wb):
    podem = Podem(wb.circuit, wb.faults)

    def run_all():
        return [podem.generate(i).status
                for i in range(0, len(wb.faults), 4)]

    statuses = benchmark(run_all)
    assert statuses


def test_engine_generic_vs_codegen(benchmark, wb):
    """Ablation: interpreting evaluator vs the code-generated one.

    Times the generic engine here; compare against
    ``test_fault_sim_sequence_pass`` (which runs on the default
    codegen engine) for the speedup factor.
    """
    from repro.sim.fault_sim import FaultSimulator
    from repro.sim.logicsim import CompiledCircuit

    generic_cc = CompiledCircuit(wb.netlist.copy(), engine="generic")
    generic_sim = FaultSimulator(generic_cc, wb.faults)
    vectors = random_gen.random_sequence(wb.circuit, 100, seed=1)
    init = random_gen.random_state(wb.circuit, seed=2)
    detected = benchmark(generic_sim.detect, vectors, init,
                         early_exit=False)
    # Both engines agree exactly (the equivalence tests enforce it).
    assert detected == wb.sim.detect(vectors, init, early_exit=False)


def test_vector_omission(benchmark, wb):
    vectors = random_gen.random_sequence(wb.circuit, 60, seed=5)
    init = random_gen.random_state(wb.circuit, seed=6)
    test = ScanTest(tuple(init), tuple(vectors))
    required = wb.sim.detect(vectors, init, early_exit=False)

    result = benchmark.pedantic(
        omit_vectors, args=(wb.sim, test, required),
        rounds=1, iterations=1)
    assert result.test.length <= test.length

"""Code-generated circuit evaluation (the fast engine).

The generic :meth:`CompiledCircuit.eval_frame` interprets an op list:
per gate it unpacks a tuple, dispatches on the opcode and indexes the
word arrays.  For a fixed circuit all of that is constant, so this
module generates a specialized Python function with the whole
evaluation unrolled -- every net id a literal, every gate a line or
two of bitwise expressions -- and compiles it once per circuit.

The generated function is a drop-in for ``eval_frame`` (same
signature, same fault-injection semantics, including per-gate stem
forcing and fanout-branch overrides).  Equivalence against the generic
engine is enforced by tests over random circuits and injection masks;
pick the engine with ``CompiledCircuit(netlist, engine=...)``.

The generated source is **word-width and chunk-count agnostic**: no
literal in it depends on ``mask`` or on how many faulty machines the
caller packed per word.  The same compiled function therefore serves
the good-machine simulator (mask 1), the 128-bit chunked fault
simulator, and the fused wide-word engine (one multi-thousand-bit
word per pass) without recompilation -- the width lives entirely in
the big-int operands.  Keep it that way: baking a width into the
source would force one compile per packing policy and break the
``width="auto"`` adaptive switch in :mod:`repro.sim.fault_sim`.

Compiled code objects are cached by source text, so building many
:class:`~repro.sim.logicsim.CompiledCircuit` instances over copies of
the same netlist (benchmark harnesses, equivalence sweeps, worker
subprocesses re-importing a suite circuit) pays the bytecode
compilation once per distinct circuit per process.

Typical speedup on 100-gate circuits is 1.5-2.5x for the whole fault
simulation stack (measured in ``benchmarks/bench_engine.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..circuits.netlist import Netlist

# Opcode values mirror logicsim's (kept in sync by the import below).

#: Source-text -> compiled code object cache (process lifetime; the
#: source embeds every net id, so identical text implies an identical
#: evaluator).
_CODE_CACHE: Dict[str, object] = {}


def generate_source(circuit) -> str:
    """The Python source of the specialized evaluator."""
    from .logicsim import (OP_AND, OP_BUF, OP_CONST0, OP_CONST1,
                           OP_NAND, OP_NOR, OP_NOT, OP_OR, OP_XNOR,
                           OP_XOR)
    lines: List[str] = [
        "def eval_frame(zero, one, mask, stems=None, branch=None):",
        "    _z = zero",
        "    _o = one",
    ]
    emit = lines.append
    for opcode, out, fins in circuit.ops:
        zs = [f"_z[{f}]" for f in fins]
        os_ = [f"_o[{f}]" for f in fins]
        if opcode == OP_AND:
            z = " | ".join(zs)
            o = " & ".join(os_)
        elif opcode == OP_NAND:
            o = " | ".join(zs)
            z = " & ".join(os_)
        elif opcode == OP_OR:
            z = " & ".join(zs)
            o = " | ".join(os_)
        elif opcode == OP_NOR:
            o = " & ".join(zs)
            z = " | ".join(os_)
        elif opcode == OP_NOT:
            z, o = os_[0], zs[0]
        elif opcode == OP_BUF:
            z, o = zs[0], os_[0]
        elif opcode in (OP_XOR, OP_XNOR):
            # Fold pairwise; needs temporaries for 3+ inputs.
            emit(f"    _a, _b = {zs[0]}, {os_[0]}")
            for zf, of in zip(zs[1:], os_[1:]):
                emit(f"    _a, _b = (_a & {zf}) | (_b & {of}), "
                     f"(_a & {of}) | (_b & {zf})")
            if opcode == OP_XNOR:
                z, o = "_b", "_a"
            else:
                z, o = "_a", "_b"
        elif opcode == OP_CONST0:
            z, o = "mask", "0"
        else:  # OP_CONST1
            z, o = "0", "mask"

        has_branch_risk = len(fins) > 0
        if has_branch_risk:
            emit(f"    if branch and {out} in branch:")
            emit(f"        _fz = [{', '.join(zs)}]")
            emit(f"        _fo = [{', '.join(os_)}]")
            emit(f"        for _pin, _m0, _m1 in branch[{out}]:")
            emit("            _keep = mask & ~(_m0 | _m1)")
            emit("            _fz[_pin] = (_fz[_pin] & _keep) | _m0")
            emit("            _fo[_pin] = (_fo[_pin] & _keep) | _m1")
            emit(f"        _t, _u = _eval_lists({opcode}, _fz, _fo, "
                 "mask)")
            emit("    else:")
            emit(f"        _t = {z}")
            emit(f"        _u = {o}")
        else:
            emit(f"    _t = {z}")
            emit(f"    _u = {o}")
        emit(f"    if stems and {out} in stems:")
        emit(f"        _m0, _m1 = stems[{out}]")
        emit("        _keep = mask & ~(_m0 | _m1)")
        emit("        _t = (_t & _keep) | _m0")
        emit("        _u = (_u & _keep) | _m1")
        emit(f"    _z[{out}] = _t")
        emit(f"    _o[{out}] = _u")
    if len(lines) == 3:
        emit("    pass")
    return "\n".join(lines) + "\n"


def build_evaluator(circuit) -> Callable:
    """Compile the specialized evaluator for ``circuit``.

    Returns a function with :meth:`CompiledCircuit.eval_frame`'s
    signature (minus ``self``).
    """
    from .logicsim import _eval_lists
    source = generate_source(circuit)
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, f"<codegen:{circuit.netlist.name}>", "exec")
        _CODE_CACHE[source] = code
    namespace = {"_eval_lists": _eval_lists}
    exec(code, namespace)
    return namespace["eval_frame"]

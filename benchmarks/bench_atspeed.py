"""Benchmark (extension E6): transition-fault coverage of final sets.

The paper argues (Sections 1 and 4) that its long at-speed sequences
"contribute to the detection of delay defects" but never quantifies
the claim.  This bench does: transition-fault coverage under
launch-on-capture for the [4]-compacted sets versus the proposed sets.

Expected shape: the proposed sets dominate [4] on every circuit --
single-vector tests have no at-speed vector pairs at all, and [4]'s
combining produces only short sequences.
"""

from repro.experiments import tables


def test_transition_coverage(benchmark, suite_runs):
    table = benchmark(tables.table_atspeed_coverage, suite_runs)
    print()
    print(table.render())
    for row in table.rows:
        circuit, b4, prop, rand = row
        assert prop >= b4, circuit
    # Strictly better somewhere (usually everywhere).
    assert any(row[2] > row[1] for row in table.rows)

"""Tests for the paper-vs-measured comparison reporting (on b02,
which carries the full paper metadata and runs in seconds)."""

import pytest

from repro.circuits import suite
from repro.experiments import paper_comparison, runner


@pytest.fixture(scope="module")
def b02_run():
    return runner.run_circuit(suite.profile("b02"), seed=1)


class TestPaperComparison:
    def test_rows_for_known_metrics(self, b02_run):
        table = paper_comparison([b02_run])
        metrics = {row[1] for row in table.rows}
        assert "faults" in metrics
        assert "T0 detected" in metrics
        assert "prop init cycles" in metrics
        assert "[4] comp cycles" in metrics

    def test_paper_values_come_from_profile(self, b02_run):
        table = paper_comparison([b02_run])
        by_metric = {row[1]: row for row in table.rows}
        assert by_metric["faults"][2] == \
            b02_run.profile.paper["faults"]
        assert by_metric["faults"][3] == b02_run.n_faults

    def test_measured_orderings_match_paper(self, b02_run):
        """The orderings the reproduction promises: compaction helps,
        final covers more than tau_seq."""
        res = b02_run.arms["seqgen"].result
        b4 = b02_run.baseline4
        assert res.compacted_cycles() <= res.initial_cycles()
        assert b4.stats.final_cycles <= b4.stats.initial_cycles
        assert len(res.seq_detected) <= len(res.final_detected)

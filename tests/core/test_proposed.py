"""End-to-end tests for the proposed four-phase procedure."""

import pytest

from repro.atpg import random_gen
from repro.core.proposed import run as run_proposed


@pytest.fixture(scope="module")
def s27_result(s27_bench, s27_comb):
    wb = s27_bench
    t0 = random_gen.random_sequence(wb.circuit, 40, seed=2)
    return run_proposed(wb.sim, wb.comb_sim, t0, s27_comb.tests)


class TestInvariants:
    def test_detection_chain(self, s27_result):
        res = s27_result
        assert res.seq_detected <= res.final_detected

    def test_final_set_achieves_claimed_coverage(self, s27_bench,
                                                 s27_result):
        wb, res = s27_bench, s27_result
        covered = set()
        for test in res.test_set:
            covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                     early_exit=False)
        assert res.final_detected <= covered

    def test_complete_coverage_of_detectable(self, s27_bench, s27_comb,
                                             s27_result):
        res = s27_result
        detectable = s27_comb.detectable
        assert res.final_detected >= detectable - res.uncovered

    def test_tau_seq_is_first_test(self, s27_result):
        assert s27_result.test_set[0] == s27_result.tau_seq

    def test_added_count(self, s27_result):
        res = s27_result
        assert len(res.test_set) == 1 + res.added_tests

    def test_seq_no_longer_than_t0(self, s27_result):
        assert s27_result.seq_length <= s27_result.t0_length

    def test_phase4_never_worse(self, s27_bench, s27_result):
        res = s27_result
        assert res.compacted_cycles() <= res.initial_cycles()

    def test_phase4_coverage_preserved(self, s27_bench, s27_result):
        wb, res = s27_bench, s27_result
        covered = set()
        for test in res.compacted_set:
            covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                     early_exit=False)
        assert res.final_detected <= covered

    def test_iteration_log_present(self, s27_result):
        assert len(s27_result.iterations) >= 1
        log = s27_result.iterations[0]
        assert log.length_after <= log.length_before


class TestKnobs:
    def test_phase4_optional(self, s27_bench, s27_comb):
        wb = s27_bench
        t0 = random_gen.random_sequence(wb.circuit, 20, seed=3)
        res = run_proposed(wb.sim, wb.comb_sim, t0, s27_comb.tests,
                           run_phase4=False)
        assert res.compacted_set is None
        assert res.compacted_cycles() == res.initial_cycles()

    def test_max_iterations_cap(self, s27_bench, s27_comb):
        wb = s27_bench
        t0 = random_gen.random_sequence(wb.circuit, 20, seed=4)
        res = run_proposed(wb.sim, wb.comb_sim, t0, s27_comb.tests,
                           max_iterations=1)
        assert len(res.iterations) == 1

    def test_empty_inputs_rejected(self, s27_bench, s27_comb):
        wb = s27_bench
        with pytest.raises(ValueError, match="T0 is empty"):
            run_proposed(wb.sim, wb.comb_sim, [], s27_comb.tests)
        with pytest.raises(ValueError, match="test set is empty"):
            run_proposed(wb.sim, wb.comb_sim,
                         random_gen.random_sequence(wb.circuit, 5), [])

    def test_deterministic(self, s27_bench, s27_comb):
        wb = s27_bench
        t0 = random_gen.random_sequence(wb.circuit, 25, seed=5)
        a = run_proposed(wb.sim, wb.comb_sim, t0, s27_comb.tests)
        b = run_proposed(wb.sim, wb.comb_sim, t0, s27_comb.tests)
        assert a.initial_cycles() == b.initial_cycles()
        assert a.tau_seq == b.tau_seq


class TestMidCircuit:
    def test_full_pipeline(self, mid_bench, mid_comb):
        wb = mid_bench
        t0 = random_gen.random_sequence(wb.circuit, 80, seed=6)
        res = run_proposed(wb.sim, wb.comb_sim, t0, mid_comb.tests)
        detectable = mid_comb.detectable
        assert res.final_detected >= detectable - res.uncovered
        assert res.compacted_cycles() <= res.initial_cycles()
        # The whole point: tau_seq carries a long at-speed sequence.
        assert res.tau_seq.length > 1

"""Plain-text table rendering and JSON export for experiment results.

The renderers aim for the paper's look: fixed-width columns, one row
per circuit, a ``total`` row where the paper prints one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union


class Table:
    """A titled grid of rows used by every experiment report."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Any]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}")
        self.rows.append(list(cells))

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [self.headers] + [[_fmt(c) for c in row]
                                  for row in self.rows]
        widths = [max(len(str(row[i])) for row in cells)
                  for i in range(len(self.headers))]
        lines = [self.title]
        lines.append("  ".join(str(h).ljust(w)
                               for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"title": self.title, "headers": self.headers,
                "rows": self.rows}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)


def dump_json(tables: Sequence[Table], path: Union[str, Path]) -> None:
    """Write a list of tables as JSON (for regression tracking)."""
    payload = [t.to_dict() for t in tables]
    Path(path).write_text(json.dumps(payload, indent=2))


def render_all(tables: Sequence[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(t.render() for t in tables)

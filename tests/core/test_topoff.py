"""Tests for Phase 3: top-off test selection."""

import pytest

from repro.core.topoff import top_off
from repro.sim.comb_sim import CombPatternSim


class TestTopOff:
    def test_covers_everything_coverable(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        result = top_off(wb.comb_sim, C.tests, undetected)
        assert result.covered | result.uncovered == undetected
        assert not result.uncovered  # s27: C is complete

    def test_selected_tests_actually_cover(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        result = top_off(wb.comb_sim, C.tests, undetected)
        covered = set()
        for test in result.tests:
            covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                     target=sorted(undetected),
                                     early_exit=False)
        assert covered >= result.covered

    def test_empty_undetected(self, s27_bench, s27_comb):
        result = top_off(s27_bench.comb_sim, s27_comb.tests, set())
        assert result.tests == []
        assert result.covered == set()

    def test_unique_detector_is_selected(self, s27_bench, s27_comb):
        """A fault with n(f) = 1 forces its only detecting test in."""
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        detects = [wb.comb_sim.detect_single(t.as_pattern(),
                                             sorted(undetected))
                   for t in C.tests]
        count = {}
        for det in detects:
            for fid in det:
                count[fid] = count.get(fid, 0) + 1
        forced = {j for j, det in enumerate(detects)
                  if any(count[f] == 1 for f in det)}
        result = top_off(wb.comb_sim, C.tests, undetected)
        assert forced <= set(result.chosen_indices)

    def test_uncoverable_faults_reported(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        # Restrict C to its first test only: most faults uncoverable.
        first = C.tests[:1]
        undetected = set(range(len(wb.faults)))
        result = top_off(wb.comb_sim, first, undetected)
        only = wb.comb_sim.detect_single(first[0].as_pattern(),
                                         sorted(undetected))
        assert result.covered == only
        assert result.uncovered == undetected - only

    def test_selection_greedy_order(self, s27_bench, s27_comb):
        """Tests are chosen hardest-fault-first (min n(f))."""
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        result = top_off(wb.comb_sim, C.tests, undetected)
        # All chosen tests are distinct.
        assert len(result.chosen_indices) == len(set(result.chosen_indices))
        # Each chosen test contributed new coverage when picked.
        assert len(result.tests) <= len(C.tests)


class TestPowerKey:
    def test_none_key_is_byte_identical(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        plain = top_off(wb.comb_sim, C.tests, undetected)
        keyed = top_off(wb.comb_sim, C.tests, undetected,
                        power_key=None)
        assert keyed.chosen_indices == plain.chosen_indices
        assert keyed.covered == plain.covered

    def test_constant_key_is_byte_identical(self, s27_bench, s27_comb):
        """A constant power key never changes the min over (n(f),
        power, f): index order still breaks the ties."""
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        plain = top_off(wb.comb_sim, C.tests, undetected)
        keyed = top_off(wb.comb_sim, C.tests, undetected,
                        power_key=lambda j: 0.0)
        assert keyed.chosen_indices == plain.chosen_indices

    def test_power_key_preserves_coverage(self, s27_bench, s27_comb):
        from repro.power.activity import ActivityEngine
        from repro.power.constrain import topoff_power_key
        wb, C = s27_bench, s27_comb
        undetected = set(range(len(wb.faults)))
        plain = top_off(wb.comb_sim, C.tests, undetected)
        engine = ActivityEngine(wb.circuit)
        keyed = top_off(wb.comb_sim, C.tests, undetected,
                        power_key=topoff_power_key(engine, C.tests))
        assert keyed.covered == plain.covered
        assert keyed.uncovered == plain.uncovered

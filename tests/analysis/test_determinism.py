"""The determinism lint: ambient randomness and wall-clock reads."""

from pathlib import Path

from repro.analysis.determinism import (RULE_MODULE_RANDOM,
                                        RULE_UNSEEDED, RULE_WALL_CLOCK,
                                        default_paths, lint_paths,
                                        lint_source, main)


def rules(text):
    return [f.rule for f in lint_source(text)]


class TestRandomRules:
    def test_unseeded_random_flagged(self):
        assert rules("import random\nr = random.Random()\n") == \
            [RULE_UNSEEDED]

    def test_seeded_random_clean(self):
        assert rules("import random\nr = random.Random(7)\n") == []
        assert rules("import random\nr = random.Random(seed)\n") == []

    def test_module_level_calls_flagged(self):
        out = rules("import random\nx = random.randint(0, 9)\n"
                    "random.shuffle(xs)\n")
        assert out == [RULE_MODULE_RANDOM, RULE_MODULE_RANDOM]

    def test_alias_tracked(self):
        assert rules("import random as rnd\nrnd.random()\n") == \
            [RULE_MODULE_RANDOM]

    def test_from_import_flagged(self):
        assert rules("from random import randint\nrandint(0, 1)\n") \
            == [RULE_MODULE_RANDOM]

    def test_from_import_random_class_ok(self):
        assert rules("from random import Random\nr = Random(3)\n") == []

    def test_system_random_allowed(self):
        # SystemRandom is non-deterministic by contract; flagging it
        # would hide the intent (and it never shapes results here).
        assert rules("import random\nrandom.SystemRandom()\n") == []

    def test_unrelated_module_clean(self):
        assert rules("import numpy\nnumpy.random = 3\n") == []


class TestWallClockRules:
    def test_time_time_flagged(self):
        assert rules("import time\nt = time.time()\n") == \
            [RULE_WALL_CLOCK]

    def test_perf_counter_allowed(self):
        assert rules("import time\nt = time.perf_counter()\n"
                     "m = time.monotonic()\n") == []

    def test_datetime_now_flagged(self):
        assert rules("from datetime import datetime\n"
                     "datetime.now()\n") == [RULE_WALL_CLOCK]
        assert rules("import datetime\n"
                     "datetime.datetime.now()\n") == [RULE_WALL_CLOCK]

    def test_from_import_time_flagged(self):
        assert rules("from time import time\ntime()\n") == \
            [RULE_WALL_CLOCK]


class TestWaiversAndPaths:
    def test_allow_marker_waives(self):
        assert rules("import time\n"
                     "t = time.time()  # det: allow\n") == []

    def test_finding_renders_location(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import random\nrandom.random()\n")
        findings = lint_paths([f])
        assert len(findings) == 1
        assert findings[0].line == 2
        assert str(f) in findings[0].render()

    def test_directory_recursion(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(
            "import time\ntime.time()\n")
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        assert len(lint_paths([tmp_path])) == 1

    def test_repo_result_paths_are_clean(self):
        """The enforced CI property, runnable locally."""
        paths = default_paths()
        assert all(p.is_dir() for p in paths)
        findings = lint_paths(paths)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.random()\n")
        assert main([str(bad)]) == 1
        assert main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_default_paths_exist(self):
        for p in default_paths():
            assert isinstance(p, Path)
            assert p.exists()

"""Tests for time-frame-expansion targeted test generation."""

import pytest

from repro.atpg import seqgen
from repro.atpg.tfx import TargetedExtender, unroll
from repro.circuits import library, synth
from repro.sim import values as V
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit, simulate_comb


class TestUnroll:
    def test_sizes(self, s27):
        u = unroll(s27, 3)
        # PIs: 4 per frame + 3 state pseudo inputs.
        assert u.num_inputs == 4 * 3 + 3
        assert u.num_outputs == 1 * 3
        assert u.num_ffs == 0  # purely combinational

    def test_depth_validation(self, s27):
        with pytest.raises(ValueError, match="positive"):
            unroll(s27, 0)

    def test_frame_semantics_match_sequential_sim(self, s27):
        """Evaluating the unrolled model equals simulating the
        sequential circuit frame by frame."""
        import random
        from repro.sim.logicsim import simulate_sequence
        rng = random.Random(1)
        depth = 3
        u = unroll(s27, depth)
        ucc = CompiledCircuit(u)
        state = V.random_binary_vector(3, rng)
        vectors = [V.random_binary_vector(4, rng) for _ in range(depth)]
        # Sequential reference.
        ref = simulate_sequence(CompiledCircuit(s27), vectors, state)
        # Unrolled: assemble the flat input vector by name.
        values = {}
        for t, vec in enumerate(vectors):
            for pi, val in zip(s27.inputs, vec):
                values[f"{pi}@{t}"] = val
        for ff, val in zip(s27.flip_flops, state):
            values[f"{ff}@0"] = val
        flat = tuple(values[name] for name in u.inputs)
        po, _ = simulate_comb(ucc, flat, ())
        for t in range(depth):
            for p, po_name in enumerate(s27.outputs):
                got = po[u.outputs.index(f"{po_name}@{t}")]
                assert got == ref.po_frames[t][p], (t, po_name)


class TestTargetedExtender:
    def test_extensions_actually_detect(self, s27, s27_bench):
        """Every successful extension must detect its fault when
        simulated from the same state."""
        wb = s27_bench
        extender = TargetedExtender(s27, depth=4)
        state = V.vec("000")
        successes = 0
        for i, fault in enumerate(wb.faults):
            ext = extender.try_fault(fault, state)
            if ext is None:
                continue
            successes += 1
            assert 1 <= len(ext.vectors) <= 4
            detected = wb.sim.detect(ext.vectors, state, target=[i],
                                     scan_out=False, early_exit=False)
            assert i in detected, str(fault)
        assert successes > 0

    def test_requires_binary_state(self, s27):
        extender = TargetedExtender(s27, depth=2)
        from repro.sim.faults import collapse
        fault = collapse(s27)[0]
        with pytest.raises(ValueError, match="binary state"):
            extender.try_fault(fault, (V.X, V.ZERO, V.ONE))

    def test_synthetic_circuit(self, small_synth, small_bench):
        wb = small_bench
        extender = TargetedExtender(small_synth, depth=3)
        state = (V.ZERO,) * len(wb.circuit.ff_ids)
        hits = 0
        for i, fault in enumerate(wb.faults):
            if hits >= 5:
                break
            ext = extender.try_fault(fault, state)
            if ext is None:
                continue
            detected = wb.sim.detect(ext.vectors, state, target=[i],
                                     scan_out=False, early_exit=False)
            assert i in detected, str(fault)
            hits += 1
        assert hits > 0


class TestIntegration:
    def test_targeted_never_hurts(self, mid_bench):
        wb = mid_bench
        plain = seqgen.generate_sequence(wb.circuit, wb.faults,
                                         max_length=150, seed=4)
        targeted = seqgen.generate_sequence(wb.circuit, wb.faults,
                                            max_length=150, seed=4,
                                            targeted=True,
                                            unroll_depth=3,
                                            target_attempts=12)
        assert len(targeted.detected) >= len(plain.detected)
        # Consistency: re-simulation agrees.
        check = wb.sim.detect(targeted.sequence, None, scan_out=False,
                              early_exit=False)
        assert check == targeted.detected

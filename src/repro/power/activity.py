"""Bit-parallel switching-activity engine for scan tests.

Shift power: the weighted transition metric
-------------------------------------------
During scan, every pair of adjacent opposite values in the shifted
vector is a *transition* that toggles scan cells as it travels along
the chain.  The weighted transition metric (WTM) weights each
transition by how many shift cycles it spends inside the chain
(Sankaralingam et al.; see arXiv:1106.2794 for the surrounding
power-aware scan literature).

This repo's chain convention (see :mod:`repro.core.tester`): the chain
follows flip-flop declaration order; scan-in enters FF0 and values
move FF0 -> FF(L-1); the scan-in vector is fed last-bit-first so bit
``k`` of a scan vector ends up in flip-flop ``k``.  Consequently, for
a chain of length ``L``:

* scan-in: the transition between ``s[k]`` and ``s[k+1]`` enters at
  FF0 and must travel until ``s[k+1]`` reaches FF ``k+1``, so it is
  alive for ``k+1`` of the ``L`` shift cycles::

      WTM_in(s)  = sum_{k=0}^{L-2} (s[k] XOR s[k+1]) * (k + 1)

* scan-out: the captured response exits at FF(L-1); the transition
  between ``r[j]`` and ``r[j+1]`` stays in the chain until ``r[j+1]``
  has left, i.e. for ``L-1-j`` cycles::

      WTM_out(r) = sum_{j=0}^{L-2} (r[j] XOR r[j+1]) * (L - 1 - j)

A transition involving an X contributes 0 (the tester may fill it
arbitrarily; we score only the guaranteed activity).  Both metrics are
computed bit-parallel: the vector is packed into ``ones``/``defined``
big-int masks, the transition positions fall out of one shifted XOR,
and only the set bits are walked for the weighted sum.

Capture (functional) power
--------------------------
For the functional cycles of a test we count *good-machine toggles*:
the number of nets whose value changes between consecutive frames.
Each frame's full net valuation is packed into a single pair of
big ints (bit ``n`` of the word is net ``n`` -- the same transposed
packing idea as :func:`repro.sim.values.pack_lanes`, with nets in the
lanes), so the toggle count between two frames is one popcount.  A
net that is X in either frame never counts.  A test applying ``m``
vectors yields ``m - 1`` toggle counts (single-vector tests score 0:
there is no consecutive functional frame pair).

Sanitizer hook
--------------
Under ``REPRO_SANITIZE=1`` the engine spot-checks its first few
bit-parallel measurements against a direct scalar recomputation and
reports ``power-agreement`` violations through
:mod:`repro.analysis.sanitizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import sanitizer
from ..core.scan_test import ScanTest, ScanTestSet
from ..sim import values as V
from ..sim.counters import SimCounters
from ..sim.logicsim import CompiledCircuit

#: Bit-parallel measurements cross-checked against a scalar
#: recomputation per engine when the sanitizer is armed.
_SANITIZE_SPOT_BUDGET = 3


if hasattr(int, "bit_count"):
    def _popcount(word: int) -> int:
        # Native popcount (3.10+): one C call per word instead of
        # formatting the whole big int as a string.
        return word.bit_count()  # type: ignore[attr-defined]
else:  # pragma: no cover - exercised only on the 3.9 floor
    def _popcount(word: int) -> int:
        return bin(word).count("1")


def _pack_scan(vector: Sequence[int]) -> Tuple[int, int]:
    """Pack a scan vector into ``(ones, defined)`` masks, bit k = s[k]."""
    ones = 0
    defined = 0
    for k, value in enumerate(vector):
        if value == V.ONE:
            ones |= 1 << k
            defined |= 1 << k
        elif value == V.ZERO:
            defined |= 1 << k
    return ones, defined


def _transition_mask(vector: Sequence[int]) -> int:
    """Bit ``k`` set iff ``s[k] != s[k+1]`` with both bits defined."""
    length = len(vector)
    if length < 2:
        return 0
    ones, defined = _pack_scan(vector)
    window = (1 << (length - 1)) - 1
    return ((ones ^ (ones >> 1)) & defined & (defined >> 1) & window)


def scan_in_wtm(vector: Sequence[int]) -> int:
    """WTM of shifting ``vector`` *into* the chain (weight ``k + 1``)."""
    trans = _transition_mask(vector)
    total = 0
    while trans:
        low = trans & -trans
        total += low.bit_length()  # bit k set -> weight k + 1
        trans ^= low
    return total


def scan_out_wtm(vector: Sequence[int]) -> int:
    """WTM of shifting ``vector`` *out of* the chain
    (weight ``L - 1 - j``)."""
    trans = _transition_mask(vector)
    length = len(vector)
    total = 0
    while trans:
        low = trans & -trans
        total += length - low.bit_length()  # bit j -> L - 1 - j
        trans ^= low
    return total


@dataclass
class TestPower:
    """Power profile of one :class:`~repro.core.scan_test.ScanTest`.

    Attributes
    ----------
    scan_in_wtm / scan_out_wtm:
        WTM of the test's scan-in shift and of scanning out its final
        state.
    peak_capture / total_capture:
        Maximum and sum of good-machine net-toggle counts between
        consecutive functional frames (0 for single-vector tests).
    frames:
        Number of functional frames (vectors applied).
    """

    scan_in_wtm: int
    scan_out_wtm: int
    peak_capture: int
    total_capture: int
    frames: int

    @property
    def peak_shift_wtm(self) -> int:
        """The worse of the scan-in and scan-out shift WTMs."""
        return max(self.scan_in_wtm, self.scan_out_wtm)


@dataclass
class SetPowerSummary:
    """Aggregate power numbers for one test set (JSON-friendly)."""

    tests: int = 0
    peak_shift_wtm: int = 0
    avg_shift_wtm: float = 0.0
    peak_capture: int = 0
    avg_capture: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tests": self.tests,
            "peak_shift_wtm": self.peak_shift_wtm,
            "avg_shift_wtm": round(self.avg_shift_wtm, 2),
            "peak_capture": self.peak_capture,
            "avg_capture": round(self.avg_capture, 2),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SetPowerSummary":
        return cls(
            tests=int(data.get("tests", 0)),
            peak_shift_wtm=int(data.get("peak_shift_wtm", 0)),
            avg_shift_wtm=float(data.get("avg_shift_wtm", 0.0)),
            peak_capture=int(data.get("peak_capture", 0)),
            avg_capture=float(data.get("avg_capture", 0.0)),
        )


@dataclass
class SetPower:
    """Per-test power profiles for a whole test set."""

    tests: List[TestPower] = field(default_factory=list)

    def summary(self) -> SetPowerSummary:
        """Aggregate: peaks are maxima over tests, averages are means
        of the per-test peaks."""
        if not self.tests:
            return SetPowerSummary()
        shift = [t.peak_shift_wtm for t in self.tests]
        capture = [t.peak_capture for t in self.tests]
        return SetPowerSummary(
            tests=len(self.tests),
            peak_shift_wtm=max(shift),
            avg_shift_wtm=sum(shift) / len(shift),
            peak_capture=max(capture),
            avg_capture=sum(capture) / len(capture),
        )


@dataclass
class PowerReport:
    """Power measurements attached to a circuit run.

    ``sets`` maps a test-set label (e.g. ``"seqgen"``, ``"random"``,
    ``"baseline4"``) to its :class:`SetPowerSummary`; ``x_fill`` and
    ``budget`` record the knobs the run was produced with.
    """

    x_fill: str = "random"
    budget: Optional[float] = None
    sets: Dict[str, SetPowerSummary] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "x_fill": self.x_fill,
            "budget": self.budget,
            "sets": {name: summary.as_dict()
                     for name, summary in sorted(self.sets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PowerReport":
        sets_raw = data.get("sets", {}) or {}
        return cls(
            x_fill=str(data.get("x_fill", "random")),
            budget=(None if data.get("budget") is None
                    else float(data["budget"])),  # type: ignore[arg-type]
            sets={name: SetPowerSummary.from_dict(summary)
                  for name, summary in sets_raw.items()},  # type: ignore[union-attr]
        )


class ActivityEngine:
    """Bit-parallel power measurement over a compiled circuit.

    One engine per circuit; measurements are cached per
    :class:`~repro.core.scan_test.ScanTest` (tests hash by value), so
    the Phase-4 merge filter can score the same candidate merge many
    times for free.  Pass the workbench's shared
    :class:`~repro.sim.counters.SimCounters` to surface
    ``power_passes`` / ``power_words`` / ``power_s`` in the engine
    counters table.
    """

    def __init__(self, circuit: CompiledCircuit,
                 counters: Optional[SimCounters] = None) -> None:
        self.circuit = circuit
        self.counters = counters if counters is not None \
            else SimCounters()
        self._cache: Dict[ScanTest, TestPower] = {}
        self._sanitize_spots_left = _SANITIZE_SPOT_BUDGET

    # ------------------------------------------------------------------
    def test_power(self, test: ScanTest) -> TestPower:
        """Measure one scan test (cached)."""
        with self.counters.phase_timer("power"):
            return self._measure(test)

    def set_power(self, tests: Iterable[ScanTest]) -> SetPower:
        """Measure a whole test set (accepts a
        :class:`~repro.core.scan_test.ScanTestSet` or any iterable of
        tests)."""
        if isinstance(tests, ScanTestSet):
            tests = tests.tests
        with self.counters.phase_timer("power"):
            self.counters.power_passes += 1
            return SetPower([self._measure(t) for t in tests])

    # ------------------------------------------------------------------
    def _measure(self, test: ScanTest) -> TestPower:
        cached = self._cache.get(test)
        if cached is not None:
            return cached
        circuit = self.circuit
        n_ff = len(circuit.ff_ids)
        if len(test.scan_in) != n_ff:
            raise ValueError(
                f"scan-in width {len(test.scan_in)} != {n_ff} "
                f"flip-flops")

        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for nid, val in zip(circuit.ff_ids, test.scan_in):
            zero[nid], one[nid] = V.pack_scalar(val, 1)

        # Good-machine frame loop; every frame's full net valuation is
        # packed into one (fzero, fone) big-int pair for the toggle
        # popcounts.
        toggles: List[int] = []
        popcount = _popcount  # hoisted: one global lookup, not per frame
        prev_zero = prev_one = 0
        state: V.Vector = test.scan_in
        for frame, vector in enumerate(test.vectors):
            for nid, val in zip(circuit.pi_ids, vector):
                zero[nid], one[nid] = V.pack_scalar(val, 1)
            circuit.eval_frame(zero, one, 1)
            fzero = 0
            fone = 0
            for nid in range(circuit.n_nets):
                fzero |= zero[nid] << nid
                fone |= one[nid] << nid
            if frame:
                toggles.append(popcount((prev_one & fzero) |
                                        (prev_zero & fone)))
            prev_zero, prev_one = fzero, fone
            state = tuple(
                V.word_scalar(zero[nid], one[nid])
                for nid in circuit.ff_d_ids)
            for nid, val in zip(circuit.ff_ids, state):
                zero[nid], one[nid] = V.pack_scalar(val, 1)
        self.counters.power_words += len(test.vectors)

        result = TestPower(
            scan_in_wtm=scan_in_wtm(test.scan_in),
            scan_out_wtm=scan_out_wtm(state),
            peak_capture=max(toggles) if toggles else 0,
            total_capture=sum(toggles),
            frames=len(test.vectors),
        )
        if sanitizer.enabled() and self._sanitize_spots_left > 0:
            self._sanitize_spots_left -= 1
            self._spot_check(test, state, toggles, result)
        self._cache[test] = result
        return result

    # ------------------------------------------------------------------
    def _spot_check(self, test: ScanTest, scan_out: V.Vector,
                    toggles: List[int], result: TestPower) -> None:
        """Scalar shadow recomputation of the bit-parallel numbers."""
        if result.scan_in_wtm != _scalar_wtm_in(test.scan_in):
            sanitizer.report_violation(
                "power-agreement",
                f"scan-in WTM mismatch: bit-parallel "
                f"{result.scan_in_wtm}, scalar "
                f"{_scalar_wtm_in(test.scan_in)} for "
                f"{V.vec_str(test.scan_in)}")
        if result.scan_out_wtm != _scalar_wtm_out(scan_out):
            sanitizer.report_violation(
                "power-agreement",
                f"scan-out WTM mismatch: bit-parallel "
                f"{result.scan_out_wtm}, scalar "
                f"{_scalar_wtm_out(scan_out)} for "
                f"{V.vec_str(scan_out)}")
        scalar = _scalar_capture_toggles(self.circuit, test)
        if scalar != toggles:
            sanitizer.report_violation(
                "power-agreement",
                f"capture toggle mismatch: bit-parallel {toggles}, "
                f"scalar {scalar}")


# ----------------------------------------------------------------------
# Scalar shadows (sanitizer cross-checks and unit-test oracles).

def _scalar_wtm_in(vector: Sequence[int]) -> int:
    total = 0
    for k in range(len(vector) - 1):
        a, b = vector[k], vector[k + 1]
        if a != b and a != V.X and b != V.X:
            total += k + 1
    return total


def _scalar_wtm_out(vector: Sequence[int]) -> int:
    length = len(vector)
    total = 0
    for j in range(length - 1):
        a, b = vector[j], vector[j + 1]
        if a != b and a != V.X and b != V.X:
            total += length - 1 - j
    return total


def _scalar_capture_toggles(circuit: CompiledCircuit,
                            test: ScanTest) -> List[int]:
    """Per-frame-pair toggle counts via per-net scalar extraction."""
    zero = [0] * circuit.n_nets
    one = [0] * circuit.n_nets
    for nid, val in zip(circuit.ff_ids, test.scan_in):
        zero[nid], one[nid] = V.pack_scalar(val, 1)
    frames: List[Tuple[int, ...]] = []
    for vector in test.vectors:
        for nid, val in zip(circuit.pi_ids, vector):
            zero[nid], one[nid] = V.pack_scalar(val, 1)
        circuit.eval_frame(zero, one, 1)
        frames.append(tuple(V.word_scalar(zero[nid], one[nid])
                            for nid in range(circuit.n_nets)))
        state = tuple(V.word_scalar(zero[nid], one[nid])
                      for nid in circuit.ff_d_ids)
        for nid, val in zip(circuit.ff_ids, state):
            zero[nid], one[nid] = V.pack_scalar(val, 1)
    out: List[int] = []
    for prev, cur in zip(frames, frames[1:]):
        out.append(sum(1 for a, b in zip(prev, cur)
                       if a != b and a != V.X and b != V.X))
    return out

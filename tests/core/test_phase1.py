"""Tests for Phase 1: scan-in selection and scan-out time selection."""

import random

import pytest

from repro.atpg import random_gen
from repro.core import phase1
from repro.sim import values as V


@pytest.fixture(scope="module")
def setting(request):
    return None


def t0_for(wb, length, seed=3):
    return random_gen.random_sequence(wb.circuit, length, seed=seed)


class TestDetectNoScan:
    def test_matches_direct_sim(self, s27_bench):
        wb = s27_bench
        t0 = t0_for(wb, 30)
        f0 = phase1.detect_no_scan(wb.sim, t0)
        direct = wb.sim.detect(t0, None, scan_out=False, early_exit=False)
        assert f0 == direct


class TestSelectScanIn:
    def test_winner_maximizes_detection(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        t0 = t0_for(wb, 20)
        f0 = phase1.detect_no_scan(wb.sim, t0)
        selected = [False] * len(C.tests)
        index, f_si = phase1.select_scan_in(wb.sim, t0, C.tests, f0,
                                            selected)
        target = set(range(len(wb.faults)))
        counts = []
        for test in C.tests:
            det = wb.sim.detect(t0, test.state,
                                target=sorted(target - f0),
                                early_exit=False)
            counts.append(len(det))
        assert counts[index] == max(counts)
        assert f_si >= f0

    def test_unselected_preferred_on_tie(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        t0 = t0_for(wb, 20)
        f0 = phase1.detect_no_scan(wb.sim, t0)
        # Mark everything selected except one arbitrary index; if that
        # one ties with the best it must win.
        baseline_idx, _ = phase1.select_scan_in(
            wb.sim, t0, C.tests, f0, [False] * len(C.tests))
        selected = [True] * len(C.tests)
        selected[baseline_idx] = False
        index, _ = phase1.select_scan_in(wb.sim, t0, C.tests, f0,
                                         selected)
        assert index == baseline_idx

    def test_empty_tests_rejected(self, s27_bench):
        wb = s27_bench
        with pytest.raises(ValueError, match="empty"):
            phase1.select_scan_in(wb.sim, [V.vec("0000")], [], set(), [])

    def test_flag_mismatch_rejected(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        with pytest.raises(ValueError, match="flags"):
            phase1.select_scan_in(wb.sim, [V.vec("0000")], C.tests,
                                  set(), [False])


class TestSelectScanOut:
    def test_equivalent_to_paper_candidate_scan(self, s27_bench):
        """Our single-pass Step 3 must equal simulating every
        truncated candidate test explicitly."""
        wb = s27_bench
        t0 = t0_for(wb, 25, seed=11)
        scan_in = V.vec("010")
        f_si = wb.sim.detect(t0, scan_in, early_exit=False)
        u_so, f_so = phase1.select_scan_out(wb.sim, scan_in, t0, f_si)
        # Reproduce with explicit truncation sims.
        expected_u = None
        for i in range(len(t0)):
            det = wb.sim.detect(t0[:i + 1], scan_in, early_exit=False)
            if f_si <= det:
                expected_u = i
                expected_det = det
                break
        assert u_so == expected_u
        assert f_so == expected_det
        assert f_so >= f_si


class TestRunPhase1:
    def test_invariants(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        t0 = t0_for(wb, 30, seed=4)
        result = phase1.run_phase1(wb.sim, t0, C.tests,
                                   [False] * len(C.tests))
        assert result.f0 <= result.f_si <= result.f_so
        assert len(result.vectors) == result.u_so + 1
        assert result.vectors == tuple(tuple(v) for v in
                                       t0[:result.u_so + 1])
        assert result.scan_in == tuple(C.tests[result.chosen_index].state)
        assert not result.chose_selected

    def test_reuses_supplied_f0(self, s27_bench, s27_comb):
        wb, C = s27_bench, s27_comb
        t0 = t0_for(wb, 15, seed=5)
        f0 = phase1.detect_no_scan(wb.sim, t0)
        a = phase1.run_phase1(wb.sim, t0, C.tests,
                              [False] * len(C.tests), f0=f0)
        b = phase1.run_phase1(wb.sim, t0, C.tests,
                              [False] * len(C.tests))
        assert a.chosen_index == b.chosen_index
        assert a.u_so == b.u_so

"""Default-path equivalence: the power subsystem must be invisible.

The acceptance contract for the power work: with ``x_fill="random"``
(the default) and no budget, every run is byte-identical to the
pre-power pipeline -- detection sets, ``N_cyc``, the chosen scan-in
indices and the final test vectors.  Explicitly passing the default
knobs must therefore reproduce a default-parameter run exactly.
"""

from hypothesis import given, settings, strategies as st

from repro import api
from repro.circuits import synth


def _fingerprint(result):
    final = result.compacted_set or result.test_set
    return (frozenset(result.final_detected),
            frozenset(result.seq_detected),
            final.clock_cycles(),
            tuple(i.scan_in_index for i in result.iterations),
            tuple(final.tests))


class TestDefaultEquivalence:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 50))
    def test_random_arm_over_random_circuits(self, seed):
        netlist = synth.generate(f"eq{seed}", 4, 3, 4, 35, seed=seed)
        default = api.compact_tests(netlist, seed=1,
                                    t0_source="random", t0_length=60)
        explicit = api.compact_tests(netlist, seed=1,
                                     t0_source="random", t0_length=60,
                                     x_fill="random",
                                     power_budget=None)
        assert _fingerprint(explicit) == _fingerprint(default)

    def test_seqgen_arm(self, s27):
        """The seqgen ``T0`` arm threads x_fill through tfx; explicit
        random must still match the default path exactly."""
        default = api.compact_tests(s27, seed=1, t0_source="seqgen",
                                    t0_length=120)
        explicit = api.compact_tests(s27, seed=1, t0_source="seqgen",
                                     t0_length=120, x_fill="random")
        assert _fingerprint(explicit) == _fingerprint(default)

    def test_baseline_static(self, small_synth):
        default = api.baseline_static(small_synth, seed=1)
        explicit = api.baseline_static(small_synth, seed=1,
                                       x_fill="random",
                                       power_budget=None)
        assert list(explicit.test_set.tests) == \
            list(default.test_set.tests)
        assert explicit.detected == default.detected
        assert explicit.stats == default.stats

    def test_nondefault_fill_still_covers(self, small_synth):
        """Any strategy keeps the detection guarantee (X-fill only
        ever adds detections) even when outputs differ."""
        default = api.compact_tests(small_synth, seed=1,
                                    t0_source="random", t0_length=60)
        for strategy in ("fill0", "fill1", "adjacent"):
            other = api.compact_tests(small_synth, seed=1,
                                      t0_source="random",
                                      t0_length=60, x_fill=strategy)
            assert other.final_detected >= default.final_detected

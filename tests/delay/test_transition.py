"""Tests for transition-fault simulation."""

import random

import pytest

from repro.circuits import library
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.delay.transition import (TransitionFault, TransitionSim,
                                    all_transition_faults)
from repro.sim import values as V
from repro.sim.logicsim import CompiledCircuit, simulate_sequence


def oracle_detects(netlist, fault, test):
    """Reference: for each launch frame, freeze the net at its old
    value for that frame only, then run the error forward through the
    fault-free circuit and compare against the good run."""
    cc = CompiledCircuit(netlist)
    # Good-machine net values per frame.
    zero = [0] * cc.n_nets
    one = [0] * cc.n_nets
    for nid_, val in zip(cc.ff_ids, test.scan_in):
        zero[nid_], one[nid_] = V.pack_scalar(val, 1)
    values = []
    for vec in test.vectors:
        for nid_, val in zip(cc.pi_ids, vec):
            zero[nid_], one[nid_] = V.pack_scalar(val, 1)
        cc.eval_frame(zero, one, 1)
        values.append((list(zero), list(one)))
        cap = tuple(V.word_scalar(zero[nid_], one[nid_])
                    for nid_ in cc.ff_d_ids)
        for nid_, val in zip(cc.ff_ids, cap):
            zero[nid_], one[nid_] = V.pack_scalar(val, 1)
    nid = netlist.net_ids[fault.net]
    last = test.length - 1
    for t in range(1, test.length):
        pz, po_ = values[t - 1]
        czv, cov = values[t]
        if fault.rising:
            launched = bool(pz[nid] & 1) and bool(cov[nid] & 1)
            stuck = 0
        else:
            launched = bool(po_[nid] & 1) and bool(czv[nid] & 1)
            stuck = 1
        if not launched:
            continue
        # Faulty machine: stuck-at-old at frame t, fault-free after.
        fz = [0] * cc.n_nets
        fo = [0] * cc.n_nets
        state = tuple(
            V.word_scalar(values[t - 1][0][d], values[t - 1][1][d])
            for d in cc.ff_d_ids)
        for fid_, val in zip(cc.ff_ids, state):
            fz[fid_], fo[fid_] = V.pack_scalar(val, 1)
        for u in range(t, test.length):
            for pid, val in zip(cc.pi_ids, test.vectors[u]):
                fz[pid], fo[pid] = V.pack_scalar(val, 1)
            if u == t:
                stems = {nid: (1, 0) if stuck == 0 else (0, 1)}
                if nid in cc.pi_ids or nid in cc.ff_ids:
                    fz[nid], fo[nid] = (1, 0) if stuck == 0 else (0, 1)
                cc.eval_frame(fz, fo, 1, stems)
            else:
                cc.eval_frame(fz, fo, 1)
            gz, go = values[u]
            observe = list(cc.po_ids) + (list(cc.ff_d_ids)
                                         if u == last else [])
            for oid in observe:
                g = V.word_scalar(gz[oid], go[oid])
                f = V.word_scalar(fz[oid], fo[oid])
                if g != f and g != V.X and f != V.X:
                    return True
            cap = [(fz[d], fo[d]) for d in cc.ff_d_ids]
            for fid_, (z, o) in zip(cc.ff_ids, cap):
                fz[fid_], fo[fid_] = z, o
    return False


class TestModel:
    def test_fault_enumeration(self, s27):
        faults = all_transition_faults(s27)
        assert len(faults) == 2 * s27.num_nets
        assert str(TransitionFault("a", True)) == "a/STR"
        assert str(TransitionFault("a", False)) == "a/STF"

    def test_length_one_test_detects_nothing(self, s27):
        """No at-speed vector pair => no transition coverage (the crux
        of the paper's at-speed argument)."""
        sim = TransitionSim(CompiledCircuit(s27))
        test = ScanTest(V.vec("000"), (V.vec("1111"),))
        assert sim.detect_test(test) == set()

    def test_counter_lsb_transitions(self):
        """In a free-running counter, q0 toggles every cycle: both
        transition faults on its data net are launched and captured."""
        net = library.counter(3)
        cc = CompiledCircuit(net)
        sim = TransitionSim(cc)
        test = ScanTest((V.ZERO,) * 3, ((V.ONE,),) * 6)
        detected = {str(sim.faults[i]) for i in sim.detect_test(test)}
        assert "d0/STR" in detected or "q0/STR" in detected


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_s27_matches_reference(self, s27, seed):
        rng = random.Random(seed)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(10))
        test = ScanTest(V.random_binary_vector(3, rng), vectors)
        sim = TransitionSim(CompiledCircuit(s27))
        got = sim.detect_test(test)
        for i, fault in enumerate(sim.faults):
            expected = oracle_detects(s27, fault, test)
            assert (i in got) == expected, str(fault)


class TestTestSets:
    def test_coverage_monotone_in_tests(self, s27):
        rng = random.Random(3)
        cc = CompiledCircuit(s27)
        sim = TransitionSim(cc)
        tests = []
        for _ in range(3):
            vectors = tuple(V.random_binary_vector(4, rng)
                            for _ in range(8))
            tests.append(ScanTest(V.random_binary_vector(3, rng),
                                  vectors))
        small = ScanTestSet(3, tests[:1])
        large = ScanTestSet(3, tests)
        assert sim.detect_test_set(small) <= sim.detect_test_set(large)

    def test_coverage_percent_bounds(self, s27):
        rng = random.Random(4)
        cc = CompiledCircuit(s27)
        sim = TransitionSim(cc)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(12))
        ts = ScanTestSet(3, [ScanTest(V.vec("000"), vectors)])
        pct = sim.coverage_percent(ts)
        assert 0.0 <= pct <= 100.0

    def test_target_restriction(self, s27):
        rng = random.Random(5)
        sim = TransitionSim(CompiledCircuit(s27))
        vectors = tuple(V.random_binary_vector(4, rng) for _ in range(8))
        test = ScanTest(V.vec("010"), vectors)
        full = sim.detect_test(test)
        if full:
            some = set(sorted(full)[:3])
            assert sim.detect_test(test, some) == some

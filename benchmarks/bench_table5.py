"""Benchmark: regenerate the paper's Table 5 (random sequences).

Expected shape: the selected scan prefix is far shorter than the
random ``T0`` (the paper's length-1000 sequences shrink to tens of
vectors on most circuits), the scan test detects more than ``T0``
alone, and the final set completes coverage with a moderate number of
added tests.
"""

from repro.experiments import tables


def test_table5(benchmark, suite_runs):
    table = benchmark(tables.table5, suite_runs)
    print()
    print(table.render())
    shrunk = 0
    for row in table.rows:
        circuit, t0, scan, final, t0_len, scan_len, added = row
        assert t0 <= scan <= final, circuit
        assert scan_len <= t0_len, circuit
        if scan_len <= t0_len // 2:
            shrunk += 1
    assert shrunk >= len(table.rows) // 2

"""Self-verifying run store, phase-boundary salvage and the doctor.

Covers the CRC32/schema-version line envelope, quarantine-and-repair
loading (including the truncated-trailing-line regression for both
store files), the salvage writer/store pair, ``PartialRun`` rendering,
the byte-identical phase-resume acceptance path, and ``doctor``.
"""

import json

import pytest

from repro.experiments import harness, reporting, tables
from repro.experiments.harness import (HarnessConfig, JobSpec, RunStore,
                                       run_jobs)
from repro.experiments.salvage import (CorruptLine, PartialRun,
                                       SalvageStore, SalvageWriter,
                                       decode_line, doctor, encode_line,
                                       load_jsonl, salvage_usable)


def _spec(circuit="s27", **kw):
    kw.setdefault("arms", ("random",))
    kw.setdefault("with_baselines", False)
    return JobSpec(circuit, seed=1, **kw)


def _cfg(**kw):
    kw.setdefault("backoff_base", 0.01)
    return HarnessConfig(**kw)


def _chaos_once(directive):
    def chaos(spec, attempt):
        return directive if attempt == 1 else None
    return chaos


class TestEnvelope:
    def test_roundtrip(self):
        payload = {"a": 1, "b": [1, 2, {"c": "x"}]}
        data, version = decode_line(encode_line(payload))
        assert data == payload
        assert version == 1

    def test_legacy_line_passes_through(self):
        """Pre-envelope dicts decode as version 0, unverified."""
        data, version = decode_line('{"status": "ok", "seed": 3}')
        assert version == 0
        assert data == {"status": "ok", "seed": 3}

    def test_not_json_raises(self):
        with pytest.raises(CorruptLine, match="not JSON"):
            decode_line('{"truncated": tr')

    def test_non_object_raises(self):
        with pytest.raises(CorruptLine, match="not an object"):
            decode_line("[1, 2, 3]")

    def test_future_version_quarantined(self):
        line = encode_line({"x": 1}).replace('"v":1', '"v":99')
        with pytest.raises(CorruptLine, match="newer than"):
            decode_line(line)

    def test_bad_version_type_raises(self):
        line = encode_line({"x": 1}).replace('"v":1', '"v":"one"')
        with pytest.raises(CorruptLine, match="bad envelope version"):
            decode_line(line)

    def test_crc_mismatch_raises(self):
        line = encode_line({"seed": 1})
        rotten = line.replace('"seed":1', '"seed":2')
        with pytest.raises(CorruptLine, match="CRC mismatch"):
            decode_line(rotten)

    def test_data_not_object_raises(self):
        with pytest.raises(CorruptLine, match="data is not an object"):
            decode_line('{"crc": "0", "data": [1], "v": 1}')


class TestLoadJsonl:
    def test_quarantines_and_repairs(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good1, good2 = encode_line({"i": 1}), encode_line({"i": 2})
        bad = encode_line({"i": 9}).replace('"i":9', '"i":8')
        path.write_text(f"{good1}\n{bad}\n{good2}\n")
        payloads, n_bad = load_jsonl(path, tmp_path)
        assert payloads == [{"i": 1}, {"i": 2}]
        assert n_bad == 1
        # The rotten line moved aside, inspectable ...
        quarantined = (tmp_path / "quarantine" / "runs.jsonl").read_text()
        assert bad in quarantined
        # ... and the source was repaired in place.
        assert path.read_text() == f"{good1}\n{good2}\n"
        assert load_jsonl(path, tmp_path) == ([{"i": 1}, {"i": 2}], 0)

    def test_no_repair_leaves_source(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        bad = "not json at all"
        path.write_text(f"{bad}\n")
        payloads, n_bad = load_jsonl(path, tmp_path, repair=False)
        assert payloads == [] and n_bad == 1
        assert bad in path.read_text()

    def test_missing_file(self, tmp_path):
        assert load_jsonl(tmp_path / "nope.jsonl", tmp_path) == ([], 0)

    def test_legacy_lines_survive_repair(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        legacy = '{"status": "ok"}'
        path.write_text(f"{legacy}\nbroken{{\n")
        payloads, n_bad = load_jsonl(path, tmp_path)
        assert payloads == [{"status": "ok"}]
        assert n_bad == 1
        assert path.read_text() == f"{legacy}\n"

    def test_truncated_trailing_lines_both_stores(self, tmp_path):
        """Regression: a process killed mid-append leaves a truncated
        final line in runs.jsonl AND journal.jsonl; both loads must
        quarantine just that line and keep everything before it."""
        store = RunStore(tmp_path)
        outcome = run_jobs([_spec()], config=_cfg(isolate=False,
                                                  run_dir=tmp_path))
        assert outcome.ok
        for path in (store.runs_path, store.journal_path):
            text = path.read_text()
            assert text.endswith("\n")
            path.write_text(text + text.splitlines()[0][:37])
        runs, corrupt = store.load_runs()
        assert corrupt == 1
        assert ("s27", 1) in runs
        records = store.load_records()
        assert [r.status for r in records] == ["ok"]
        qdir = tmp_path / "quarantine"
        assert (qdir / "runs.jsonl").exists()
        assert (qdir / "journal.jsonl").exists()


class TestSalvageStore:
    def test_write_load_roundtrip(self, tmp_path):
        store = SalvageStore(tmp_path)
        store.write("s27", 1, {"circuit": "s27", "seed": 1})
        assert store.exists("s27", 1)
        assert store.load("s27", 1) == {"circuit": "s27", "seed": 1}

    def test_corrupt_file_quarantined_on_load(self, tmp_path):
        store = SalvageStore(tmp_path)
        store.write("s27", 1, {"seed": 1})
        path = store.path("s27", 1)
        path.write_text(path.read_text().replace('"seed":1', '"seed":2'))
        assert store.load("s27", 1) is None
        assert not path.exists()
        assert (tmp_path / "quarantine"
                / "salvage-s27-s1.json").exists()

    def test_quarantine_never_overwrites(self, tmp_path):
        store = SalvageStore(tmp_path)
        names = []
        for _ in range(2):
            store.write("s27", 1, {"seed": 1})
            path = store.path("s27", 1)
            path.write_text("rotten")
            names.append(store.quarantine(path).name)
        assert len(set(names)) == 2

    def test_discard(self, tmp_path):
        store = SalvageStore(tmp_path)
        store.write("s27", 1, {"seed": 1})
        store.discard("s27", 1)
        assert not store.exists("s27", 1)
        store.discard("s27", 1)  # idempotent

    def test_usability_gate(self):
        payload = {"seed": 1,
                   "knobs": {"x_fill": "random", "power_budget": None}}
        knobs = {"x_fill": "random", "power_budget": None}
        assert salvage_usable(payload, knobs, 1)
        assert not salvage_usable(payload, knobs, 2)
        assert not salvage_usable(payload,
                                  {"x_fill": "adjacent",
                                   "power_budget": None}, 1)
        assert not salvage_usable(payload,
                                  {"x_fill": "random",
                                   "power_budget": 9.0}, 1)


class TestSalvageWriter:
    KNOBS = {"x_fill": "random", "power_budget": None}

    def test_incompatible_prior_salvage_discarded(self, tmp_path):
        store = SalvageStore(tmp_path)
        writer = SalvageWriter(store, "s27", 1, self.KNOBS)
        writer.set_meta({"n_faults": 32})
        other = SalvageWriter(store, "s27", 1,
                              {"x_fill": "adjacent",
                               "power_budget": None})
        assert other.payload["meta"] == {}
        assert other.payload["knobs"]["x_fill"] == "adjacent"

    def test_compatible_prior_salvage_resumes(self, tmp_path):
        store = SalvageStore(tmp_path)
        writer = SalvageWriter(store, "s27", 1, self.KNOBS)
        writer.set_meta({"n_faults": 32})
        again = SalvageWriter(store, "s27", 1, self.KNOBS)
        assert again.payload["meta"] == {"n_faults": 32}

    def test_corrupt_after_write_damages_every_flush(self, tmp_path):
        store = SalvageStore(tmp_path)
        writer = SalvageWriter(store, "s27", 1, self.KNOBS,
                               corrupt_after_write=True)
        writer.set_meta({"a": 1})
        writer.set_meta({"a": 2})  # later flush must stay damaged too
        assert store.load("s27", 1) is None  # quarantined
        assert list((tmp_path / "quarantine").iterdir())


class TestPartialRun:
    def _payload(self):
        """A hand-built salvage payload: one arm stopped after Phase 2,
        one arm completed (phase 4)."""
        tau = {"si": "000", "vectors": ["0000", "1111"]}
        return {
            "circuit": "s27", "seed": 1,
            "meta": {"n_faults": 32, "comb_tests": 7},
            "arms": {"random": {"phase": 2, "state": {
                "tau": tau,
                "tau_detected": [1, 2, 3],
                "t0_detected": [1, 2],
                "t0_length": 200,
                "iterations": [],
                "retired": [1, 2, 3],
            }}},
            "completed_arms": {"seqgen": {
                "t0_source": "seqgen", "t0_length": 120,
                "seconds": 1.0,
                "result": {
                    "tau_seq": tau,
                    "t0_detected": [1], "seq_detected": [1, 2],
                    "final_detected": [1, 2, 3, 4],
                    "added_tests": 2,
                },
            }},
        }

    def test_from_salvage(self):
        partial = PartialRun.from_salvage(self._payload(), reason="stall")
        assert partial.circuit == "s27"
        assert partial.arm_phases == {"random": 2, "seqgen": 4}
        assert partial.phases_completed == 4
        assert partial.label == "PARTIAL(phase 4/4)"
        assert partial.arm_metric("random", "t0_detected") == 2
        assert partial.arm_metric("random", "seq_detected") == 3
        assert partial.arm_metric("random", "seq_length") == 2
        assert partial.arm_metric("random", "final_detected") is None
        assert partial.arm_metric("seqgen", "final_detected") == 4
        assert partial.arm_metric("seqgen", "added_tests") == 2
        assert partial.meta["n_faults"] == 32

    def test_tables_render_partial_rows(self):
        partial = PartialRun.from_salvage(self._payload(),
                                          reason="timeout")
        partials = {"s27": partial}
        t1 = tables.table1([], source="seqgen", partials=partials)
        row = t1.rows[0]
        assert row[0] == "s27"
        assert row[1] == "PARTIAL(phase 4/4)"
        assert row[2] == 7      # comb tests from meta
        assert row[7] == 4      # final detected
        t5 = tables.table5([], partials=partials)
        assert t5.rows[0][1] == "PARTIAL(phase 4/4)"
        assert t5.rows[0][5] == 2   # random arm's salvaged seq length
        # Table 3 knows nothing per-phase: label plus dashes, and the
        # partial row comes before the total row.
        t3 = tables.table3([], partials=partials)
        assert t3.rows[0][:2] == ["s27", "PARTIAL(phase 4/4)"]
        assert t3.rows[0][2:] == [None] * 6
        assert t3.rows[-1][0] == "total"

    def test_partial_beats_failed_annotation(self):
        partial = PartialRun.from_salvage(self._payload(), reason="x")
        t1 = tables.table1([], failures={"s27": "timeout"},
                           partials={"s27": partial})
        assert t1.rows[0][1].startswith("PARTIAL")
        t1 = tables.table1([], failures={"s27": "timeout"})
        assert t1.rows[0][1] == "FAILED(timeout)"


class TestPhaseResume:
    """The acceptance path: chaos-kill after a phase, retry resumes
    from salvage, final result byte-identical to uninterrupted."""

    @pytest.fixture(scope="class")
    def reference(self):
        outcome = run_jobs([_spec()], config=_cfg(isolate=False))
        assert outcome.ok
        return reporting.proposed_to_dict(
            outcome.runs[0].arms["random"].result)

    @pytest.mark.parametrize("directive,dead_phases", [
        ("crash@phase3", ("phase1_s", "phase2_s")),
        ("crash@phase4", ("phase1_s", "phase2_s", "phase3_s")),
    ])
    def test_resume_is_byte_identical(self, tmp_path, reference,
                                      directive, dead_phases):
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=False, retries=1,
                        run_dir=tmp_path / directive,
                        chaos=_chaos_once(directive)))
        assert outcome.ok
        assert [r.status for r in outcome.records] == ["ok"]
        assert outcome.records[0].attempts == 2
        run = outcome.runs[0]
        resumed = reporting.proposed_to_dict(run.arms["random"].result)
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(reference, sort_keys=True)
        # The retry's counters prove the salvaged phases never re-ran:
        # no Phase-1 candidate passes, no Phase-2 omission trials, and
        # zero wall clock inside every completed phase.
        assert run.counters["candidate_passes"] == 0
        assert run.counters["omission_trials"] == 0
        for key in dead_phases:
            assert run.counters[key] == 0.0

    def test_salvage_discarded_after_success(self, tmp_path):
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=False, retries=1, run_dir=tmp_path,
                        chaos=_chaos_once("crash@phase3")))
        assert outcome.ok
        assert not SalvageStore(tmp_path).jobs()

    def test_corrupt_salvage_quarantined_then_fresh(self, tmp_path):
        """The retry must refuse rotten salvage: quarantine it and
        recompute from scratch, still converging to success."""
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=False, retries=1, run_dir=tmp_path,
                        chaos=_chaos_once("corrupt-salvage")))
        assert outcome.ok
        assert outcome.records[0].attempts == 2
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == ["salvage-s27-s1.json"]

    def test_ultimate_failure_yields_partial(self, tmp_path):
        """No retries left: the job fails but its salvage becomes a
        PartialRun with the completed-phase count on the record."""
        def chaos(spec, attempt):
            return "crash@phase3"
        outcome = run_jobs([_spec()],
                           config=_cfg(isolate=False, run_dir=tmp_path,
                                       chaos=chaos))
        assert not outcome.ok
        record = outcome.records[0]
        assert record.status == "failed"
        assert record.salvaged_phase == 2
        partial = outcome.partials["s27"]
        assert partial.phases_completed == 2
        assert partial.label == "PARTIAL(phase 2/4)"
        assert partial.arm_metric("random", "t0_length") == 200
        summary = outcome.failure_summary().render()
        assert "phase 2/4" in summary

    def test_perturbed_seed_skipped_with_salvage(self, tmp_path):
        """perturb_final_seed must not fire when salvage exists --
        resuming under a different seed would splice two streams."""
        store = RunStore(tmp_path)
        spec = _spec()
        state = harness._JobState(spec, attempts=2)
        cfg = _cfg(retries=1, perturb_final_seed=True)
        assert harness._attempt_seed(spec, 2, cfg,
                                     has_salvage=False) == \
            spec.seed + harness.SEED_PERTURBATION
        assert harness._attempt_seed(spec, 2, cfg,
                                     has_salvage=True) == spec.seed
        assert state  # silence unused warning


class TestDoctor:
    def _campaign(self, run_dir, circuits=("s27",)):
        specs = [_spec(c) for c in circuits]
        outcome = run_jobs(specs, config=_cfg(isolate=False,
                                              run_dir=run_dir))
        assert outcome.ok
        return outcome

    def test_clean_dir(self, tmp_path):
        self._campaign(tmp_path)
        report = doctor(tmp_path)
        assert report.clean
        assert report.n_quarantined == 0
        assert "verdict: clean" in report.render()
        assert report.to_dict()["clean"] is True

    def test_quarantines_exactly_the_corrupt_lines(self, tmp_path):
        self._campaign(tmp_path, circuits=("s27", "b02"))
        store = RunStore(tmp_path)
        lines = store.runs_path.read_text().splitlines()
        assert len(lines) == 2
        # Flip one character inside the first checkpoint's payload;
        # the envelope stays valid JSON, the CRC catches the rot.
        lines[0] = lines[0].replace('"seed":1', '"seed":3', 1)
        store.runs_path.write_text("".join(l + "\n" for l in lines))
        report = doctor(tmp_path)
        assert not report.clean
        assert report.n_quarantined == 1
        runs_report = next(f for f in report.files
                           if f.name == "runs.jsonl")
        assert runs_report.quarantined == 1
        assert runs_report.records == 1
        # A subsequent resume recomputes only the quarantined job.
        outcome = run_jobs([_spec("s27"), _spec("b02")],
                           config=_cfg(isolate=False, run_dir=tmp_path,
                                       resume=True))
        assert outcome.ok
        statuses = {r.circuit: r.status for r in outcome.records}
        assert statuses == {"s27": "ok", "b02": "skipped-resume"}

    def test_orphaned_salvage_removed(self, tmp_path):
        self._campaign(tmp_path)
        salvage = SalvageStore(tmp_path)
        salvage.write("s27", 1, {"circuit": "s27", "seed": 1,
                                 "arms": {}, "completed_arms": {}})
        report = doctor(tmp_path)
        assert report.orphaned_salvage == ["s27-s1.json"]
        assert not salvage.exists("s27", 1)
        assert report.clean  # orphans are tidied, not corruption

    def test_resumable_salvage_reported(self, tmp_path):
        def chaos(spec, attempt):
            return "crash@phase3"
        run_jobs([_spec()], config=_cfg(isolate=False,
                                        run_dir=tmp_path, chaos=chaos))
        report = doctor(tmp_path)
        assert report.salvageable == [("s27", 1, 2)]
        assert "resumable from phase 2" in report.render()

    def test_corrupt_salvage_quarantined(self, tmp_path):
        self._campaign(tmp_path)
        salvage = SalvageStore(tmp_path)
        salvage.write("b02", 1, {"circuit": "b02", "seed": 1})
        path = salvage.path("b02", 1)
        path.write_text(path.read_text().replace('"seed":1',
                                                 '"seed":9'))
        report = doctor(tmp_path)
        assert report.quarantined_salvage == ["b02-s1.json"]
        assert not report.clean

"""Tests for the diagnostic containers shared by every analysis pass."""

import pytest

from repro.analysis import (ERROR, INFO, WARNING, Diagnostic, LintReport,
                            diagnostic_from_dict)


class TestDiagnostic:
    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(rule="x", severity="fatal", message="boom")

    def test_nets_coerced_to_tuple(self):
        d = Diagnostic(rule="x", severity=ERROR, message="m",
                       nets=["a", "b"])
        assert d.nets == ("a", "b")

    def test_dict_round_trip(self):
        d = Diagnostic(rule="struct.comb-cycle", severity=ERROR,
                       message="cycle", nets=("g1", "g2"),
                       data={"states": 3})
        back = diagnostic_from_dict(d.to_dict())
        assert back == d

    def test_str_mentions_rule_and_nets(self):
        d = Diagnostic(rule="r", severity=WARNING, message="m",
                       nets=("n1",))
        assert "r" in str(d) and "n1" in str(d)


class TestLintReport:
    def _report(self):
        r = LintReport(circuit="c")
        r.add(Diagnostic(rule="b.warn", severity=WARNING, message="w"))
        r.add(Diagnostic(rule="a.err", severity=ERROR, message="e"))
        r.add(Diagnostic(rule="c.info", severity=INFO, message="i"))
        return r

    def test_severity_buckets(self):
        r = self._report()
        assert [d.rule for d in r.errors] == ["a.err"]
        assert [d.rule for d in r.warnings] == ["b.warn"]
        assert not r.ok
        assert not r.clean

    def test_clean_and_ok(self):
        r = LintReport(circuit="c")
        assert r.ok and r.clean
        r.add(Diagnostic(rule="w", severity=WARNING, message="m"))
        assert r.ok and not r.clean

    def test_rule_ids_errors_first(self):
        assert self._report().rule_ids == ("a.err", "b.warn", "c.info")

    def test_by_rule(self):
        r = self._report()
        assert len(r.by_rule("a.err")) == 1
        assert r.by_rule("missing") == []

    def test_dict_round_trip(self):
        r = self._report()
        back = LintReport.from_dict(r.to_dict())
        assert back.circuit == "c"
        assert back.diagnostics == r.diagnostics

    def test_render(self):
        clean = LintReport(circuit="c")
        assert "clean" in clean.render()
        text = self._report().render()
        assert "a.err" in text and "error" in text

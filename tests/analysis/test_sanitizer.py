"""Tests for the engine-invariant sanitizer layer."""

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerError
from repro.atpg import random_gen
from repro.circuits import synth
from repro.sim.counters import SimCounters
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit
from repro.sim.scoreboard import FaultScoreboard


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
    sanitizer.reset()
    yield
    sanitizer.reset()


def _arm(monkeypatch, mode="1"):
    monkeypatch.setenv(sanitizer.ENV_VAR, mode)


class TestSwitches:
    def test_disabled_by_default(self):
        assert not sanitizer.enabled()
        assert not sanitizer.collect_only()

    def test_env_values(self, monkeypatch):
        _arm(monkeypatch, "0")
        assert not sanitizer.enabled()
        _arm(monkeypatch, "1")
        assert sanitizer.enabled() and not sanitizer.collect_only()
        _arm(monkeypatch, "collect")
        assert sanitizer.enabled() and sanitizer.collect_only()

    def test_report_raises_unless_collect(self, monkeypatch):
        _arm(monkeypatch)
        with pytest.raises(SanitizerError, match="sanitize.demo"):
            sanitizer.report_violation("demo", "boom")
        assert len(sanitizer.violations()) == 1
        _arm(monkeypatch, "collect")
        sanitizer.report_violation("demo", "again")  # no raise
        assert len(sanitizer.violations()) == 2
        diags = sanitizer.to_diagnostics()
        assert all(d.rule == "sanitize.demo" for d in diags)
        assert all(d.severity == "error" for d in diags)
        sanitizer.reset()
        assert sanitizer.violations() == []


class TestScoreboardChecks:
    def test_monotone(self, monkeypatch):
        _arm(monkeypatch)
        sanitizer.check_monotone({1, 2}, {1, 2, 3}, "t")  # fine
        with pytest.raises(SanitizerError, match="scoreboard-monotonic"):
            sanitizer.check_monotone({1, 2}, {2}, "t")

    def test_retired_subset(self, monkeypatch):
        _arm(monkeypatch)
        sanitizer.check_retired_subset({1}, {1, 2}, "t")  # fine
        with pytest.raises(SanitizerError, match="scoreboard-soundness"):
            sanitizer.check_retired_subset({1, 9}, {1, 2}, "t")

    def test_fresh_targets(self, monkeypatch):
        _arm(monkeypatch)
        board = FaultScoreboard(10)
        board.retire([3, 4])
        sanitizer.check_fresh_targets(board, [0, 1], "t")  # fine
        sanitizer.check_fresh_targets(None, [3], "t")      # no board
        with pytest.raises(SanitizerError,
                           match="scoreboard-reactivation"):
            sanitizer.check_fresh_targets(board, [0, 3], "t")

    def test_disabled_board_never_flags(self, monkeypatch):
        _arm(monkeypatch)
        board = FaultScoreboard(10, enabled=False)
        board.retire([3])  # no-op ledger
        sanitizer.check_fresh_targets(board, [3], "t")  # inert

    def test_agreement(self, monkeypatch):
        _arm(monkeypatch)
        sanitizer.check_agreement({1, 2}, {1, 2}, "t")  # fine
        with pytest.raises(SanitizerError,
                           match="fused-chunked-agreement"):
            sanitizer.check_agreement({1, 2}, {1, 3}, "t")


def _sim(width="auto", seed=5):
    net = synth.generate("sani", 4, 3, 5, 40, seed=seed)
    cc = CompiledCircuit(net)
    fs = FaultSet.collapsed(net)
    return FaultSimulator(cc, fs, width=width), cc, fs


class TestChunkChecks:
    def test_real_chunks_pass(self, monkeypatch):
        _arm(monkeypatch)
        sim, _, fs = _sim(width=8)
        for chunk in sim._build_chunks(list(range(len(fs)))):
            sanitizer.check_chunk(chunk, "test")
        assert sanitizer.violations() == []

    def test_tampered_stem_caught(self, monkeypatch):
        _arm(monkeypatch)
        sim, _, fs = _sim(width=8)
        chunk = sim._build_chunks(list(range(len(fs))))[0]
        net_id, (m0, m1) = next(iter(chunk.stems.items()))
        # Force one machine bit to both 0 and 1.
        chunk.stems[net_id] = (m0 | 2, m1 | 2)
        with pytest.raises(SanitizerError, match="lane-disjoint"):
            sanitizer.check_chunk(chunk, "test")

    def test_good_bit_claim_caught(self, monkeypatch):
        _arm(monkeypatch)
        sim, _, fs = _sim(width=8)
        chunk = sim._build_chunks(list(range(len(fs))))[0]
        net_id, (m0, m1) = next(iter(chunk.stems.items()))
        chunk.stems[net_id] = (m0 | 1, m1)  # claims the good machine
        with pytest.raises(SanitizerError, match="universe"):
            sanitizer.check_chunk(chunk, "test")

    def test_real_lane_chunks_pass(self, monkeypatch):
        _arm(monkeypatch)
        sim, _, fs = _sim()
        chunks = sim._build_lane_chunks(list(range(min(8, len(fs)))), 4)
        for chunk in chunks:
            sanitizer.check_lane_chunk(chunk, "test")
        assert sanitizer.violations() == []


class TestEndToEnd:
    def test_detect_clean_under_sanitizer(self, monkeypatch):
        _arm(monkeypatch)
        sim, cc, fs = _sim()
        vectors = random_gen.random_sequence(cc, 20, seed=0)
        detected = sim.detect(vectors, None, early_exit=False)
        assert sanitizer.violations() == []
        # Same detections as an unsanitized run.
        monkeypatch.delenv(sanitizer.ENV_VAR)
        sim2, cc2, _ = _sim()
        assert detected == sim2.detect(vectors, None, early_exit=False)

    def test_agreement_spot_check_consumes_budget(self, monkeypatch):
        _arm(monkeypatch)
        sim, cc, fs = _sim()
        before = sim._sanitize_spots_left
        assert before > 0
        vectors = random_gen.random_sequence(cc, 10, seed=1)
        sim.detect(vectors, None, early_exit=False)
        assert sim._sanitize_spots_left == before - 1
        assert sanitizer.violations() == []
        # The budget bottoms out at zero and stays there.
        for s in range(before + 2):
            sim.detect(vectors, None, early_exit=False)
        assert sim._sanitize_spots_left == 0

    def test_detect_candidates_clean(self, monkeypatch):
        _arm(monkeypatch)
        sim, cc, fs = _sim()
        n_sv = len(cc.ff_ids)
        import repro.sim.values as V
        states = [tuple(V.ONE if ((i >> b) & 1) else V.ZERO
                        for b in range(n_sv)) for i in range(4)]
        vectors = random_gen.random_sequence(cc, 6, seed=2)
        sim.detect_candidates(vectors, states,
                              list(range(min(12, len(fs)))))
        assert sanitizer.violations() == []

    def test_scoreboard_retire_hook_runs(self, monkeypatch):
        _arm(monkeypatch)
        board = FaultScoreboard(10, counters=SimCounters())
        board.retire([1, 2])
        board.retire([2, 3])
        assert sanitizer.violations() == []

"""Tests for power-constrained compaction hooks."""

from repro.core.scan_test import single_vector_test
from repro.power.activity import ActivityEngine
from repro.power.constrain import topoff_power_key, wtm_budget_filter


class TestBudgetFilter:
    def test_thresholds(self, s27_bench, s27_comb):
        engine = ActivityEngine(s27_bench.circuit)
        test = single_vector_test(s27_comb.tests[0].state,
                                  s27_comb.tests[0].pi)
        peak = engine.test_power(test).peak_shift_wtm
        assert wtm_budget_filter(engine, peak)(test)
        assert wtm_budget_filter(engine, peak + 1)(test)
        if peak > 0:
            assert not wtm_budget_filter(engine, peak - 1)(test)

    def test_infinite_budget_accepts_everything(self, s27_bench,
                                                s27_comb):
        engine = ActivityEngine(s27_bench.circuit)
        accept = wtm_budget_filter(engine, float("inf"))
        for comb in s27_comb.tests:
            assert accept(single_vector_test(comb.state, comb.pi))


class TestTopoffPowerKey:
    def test_scores_match_engine(self, s27_bench, s27_comb):
        engine = ActivityEngine(s27_bench.circuit)
        key = topoff_power_key(engine, s27_comb.tests)
        for j, comb in enumerate(s27_comb.tests):
            test = single_vector_test(comb.state, comb.pi)
            assert key(j) == engine.test_power(test).peak_shift_wtm

    def test_lazy_and_stable(self, s27_bench, s27_comb):
        engine = ActivityEngine(s27_bench.circuit)
        key = topoff_power_key(engine, s27_comb.tests)
        assert key(0) == key(0)

"""The paper's contribution: the four-phase compaction procedure."""

from .scan_test import ScanTest, ScanTestSet, single_vector_test
from .metrics import AtSpeedStats, Coverage, at_speed_stats, clock_cycles, \
    coverage
from .phase1 import Phase1Result, run_phase1
from .omission import OmissionResult, omit_vectors
from .topoff import TopOffResult, top_off
from .combine import CombineResult, CombineStats, static_compact
from .dynamic import DynamicResult, dynamic_compact
from .proposed import ProposedResult, run as run_proposed
from .tester import TesterProgram, execute, schedule
from .partial import PartialScanPlan, compact_partial
from . import testio

__all__ = [
    "TesterProgram", "execute", "schedule",
    "PartialScanPlan", "compact_partial",
    "ScanTest", "ScanTestSet", "single_vector_test",
    "AtSpeedStats", "Coverage", "at_speed_stats", "clock_cycles",
    "coverage",
    "Phase1Result", "run_phase1",
    "OmissionResult", "omit_vectors",
    "TopOffResult", "top_off",
    "CombineResult", "CombineStats", "static_compact",
    "DynamicResult", "dynamic_compact",
    "ProposedResult", "run_proposed",
]

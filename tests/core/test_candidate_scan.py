"""Candidate-parallel Phase-1 scan-in selection: lanes == scalar.

The lane-transposed candidate scan
(:meth:`repro.sim.fault_sim.FaultSimulator.detect_candidates` driving
``select_scan_in(mode="lanes")``) is a pure packing strategy: it must
reproduce the scalar per-candidate loop bit for bit -- the same
``(chosen_index, f_si)`` including the paper's unselected-preferred
tie-break, on any circuit, any width policy, and any X-laden candidate
set.  These properties are what justified flipping the default mode to
``"lanes"``.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.comb_set import CombTest
from repro.circuits import synth
from repro.core import phase1
from repro.sim import fault_sim as fault_sim_mod
from repro.sim import values as V
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit

_N_PI = 4
_N_FF = 5

_CACHE = {}


def circuit_for(seed):
    """Small random sequential circuit, cached across examples."""
    if seed not in _CACHE:
        net = synth.generate("cscan", _N_PI, 3, _N_FF, 30, seed=seed)
        cc_codegen = CompiledCircuit(net, engine="codegen")
        cc_generic = CompiledCircuit(net.copy(), engine="generic")
        fs = FaultSet.collapsed(net)
        _CACHE[seed] = (cc_codegen, cc_generic, fs)
    return _CACHE[seed]


circuit_seeds = st.integers(0, 9)
widths = st.sampled_from([2, 5, "auto"])


def _state(rng, data):
    """A candidate state, sometimes X-laden."""
    if data.draw(st.booleans()):
        return V.random_binary_vector(_N_FF, rng)
    return tuple(rng.choice((V.ZERO, V.ONE, V.X)) for _ in range(_N_FF))


def _comb_tests(rng, data, n):
    """Candidate tests with forced duplicate states mixed in."""
    tests = []
    for _ in range(n):
        if tests and data.draw(st.booleans()):
            # Duplicate an earlier state part: the dedup + tie-break
            # replay paths must handle equal candidates.
            state = tests[rng.randrange(len(tests))].state
        else:
            state = _state(rng, data)
        tests.append(CombTest(state=state,
                              pi=V.random_binary_vector(_N_PI, rng)))
    return tests


class TestScalarVsLanes:
    @settings(max_examples=40, deadline=None)
    @given(seed=circuit_seeds, width=widths, data=st.data())
    def test_selection_identical(self, seed, width, data):
        """(chosen_index, f_si) agree across modes, engines, widths."""
        cc_codegen, cc_generic, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        t0 = [V.random_binary_vector(_N_PI, rng)
              for _ in range(data.draw(st.integers(1, 8)))]
        tests = _comb_tests(rng, data, data.draw(st.integers(1, 7)))
        selected = [data.draw(st.booleans()) for _ in tests]
        sim_ref = FaultSimulator(cc_codegen, fs, width="auto")
        f0 = phase1.detect_no_scan(sim_ref, t0)
        reference = phase1.select_scan_in(sim_ref, t0, tests, f0,
                                          selected, mode="scalar")
        for circuit in (cc_codegen, cc_generic):
            sim = FaultSimulator(circuit, fs, width=width)
            got = phase1.select_scan_in(sim, t0, tests, f0, selected,
                                        mode="lanes")
            assert got == reference

    @settings(max_examples=15, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_forced_total_tie(self, seed, data):
        """With target a subset of f0, every candidate counts zero:
        the winner must still match scalar (first unselected test,
        else index 0)."""
        cc, _, fs = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        t0 = [V.random_binary_vector(_N_PI, rng) for _ in range(3)]
        tests = _comb_tests(rng, data, 5)
        selected = [data.draw(st.booleans()) for _ in tests]
        sim = FaultSimulator(cc, fs)
        f0 = set(range(len(fs)))          # nothing left to detect
        target = set(range(len(fs)))
        scalar = phase1.select_scan_in(sim, t0, tests, f0, selected,
                                       target=target, mode="scalar")
        lanes = phase1.select_scan_in(sim, t0, tests, f0, selected,
                                      target=target, mode="lanes")
        assert scalar == lanes
        expected = selected.index(False) if False in selected else 0
        assert scalar[0] == expected

    def test_detect_candidates_matches_detect_loop(self):
        """The simulator primitive itself: per-lane sets == per-state
        detect passes, including empty-candidate and empty-target."""
        cc, _, fs = circuit_for(0)
        rng = random.Random(7)
        sim = FaultSimulator(cc, fs)
        vectors = [V.random_binary_vector(_N_PI, rng) for _ in range(6)]
        states = [V.random_binary_vector(_N_FF, rng) for _ in range(4)]
        got = sim.detect_candidates(vectors, states)
        want = [sim.detect(vectors, s, early_exit=False)
                for s in states]
        assert got == want
        assert sim.detect_candidates(vectors, []) == []
        empty = sim.detect_candidates(vectors, states, target=[])
        assert empty == [set()] * len(states)

    def test_lane_repack_preserves_per_lane_sets(self, monkeypatch):
        """Aggressive in-pass group retirement never changes a lane's
        detection set (mirrors the scalar repack property)."""
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_GROUPS", 1)
        monkeypatch.setattr(fault_sim_mod, "_REPACK_MIN_FRAMES_LEFT", 1)
        net = synth.generate("lrepack", 5, 4, 6, 60, seed=3)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        rng = random.Random(11)
        vectors = [V.random_binary_vector(5, rng) for _ in range(20)]
        states = [V.random_binary_vector(6, rng) for _ in range(5)]
        sim = FaultSimulator(cc, fs)
        got = sim.detect_candidates(vectors, states)
        assert sim.counters.repacks > 0
        assert sim.counters.faults_dropped > 0
        want = [sim.detect(vectors, s, early_exit=False)
                for s in states]
        assert got == want

    def test_unknown_mode_rejected(self):
        cc, _, fs = circuit_for(0)
        sim = FaultSimulator(cc, fs)
        tests = [CombTest(state=(V.ZERO,) * _N_FF, pi=(V.ZERO,) * _N_PI)]
        with pytest.raises(ValueError, match="candidate-scan mode"):
            phase1.select_scan_in(sim, [(V.ZERO,) * _N_PI], tests,
                                  set(), [False], mode="vectorized")


class TestDedup:
    def test_duplicate_states_simulated_once(self):
        """Regression: tests sharing a state part cost one pass, and
        the winner maps back to the first unselected duplicate."""
        cc, _, fs = circuit_for(1)
        rng = random.Random(5)
        sim = FaultSimulator(cc, fs)
        t0 = [V.random_binary_vector(_N_PI, rng) for _ in range(5)]
        state = V.random_binary_vector(_N_FF, rng)
        # Indices 0 and 2 share a state; 0 is selected, 2 is not.
        tests = [CombTest(state=state, pi=V.random_binary_vector(_N_PI, rng)),
                 CombTest(state=state, pi=V.random_binary_vector(_N_PI, rng)),
                 CombTest(state=state, pi=V.random_binary_vector(_N_PI, rng))]
        selected = [True, True, False]
        f0 = phase1.detect_no_scan(sim, t0)
        before = sim.counters.detect_passes
        index, _ = phase1.select_scan_in(sim, t0, tests, f0, selected,
                                         mode="scalar")
        # One unique state -> exactly one scalar detect pass.
        assert sim.counters.detect_passes - before == 1
        # All counts tie; the first unselected test must win.
        assert index == 2

    def test_dedup_preserves_first_index_tie_break(self):
        """All duplicates unselected: the first index wins, exactly as
        the undeduplicated loop would pick."""
        cc, _, fs = circuit_for(2)
        rng = random.Random(9)
        sim = FaultSimulator(cc, fs)
        t0 = [V.random_binary_vector(_N_PI, rng) for _ in range(4)]
        state = V.random_binary_vector(_N_FF, rng)
        tests = [CombTest(state=state, pi=V.random_binary_vector(_N_PI, rng))
                 for _ in range(3)]
        f0 = phase1.detect_no_scan(sim, t0)
        for mode in phase1.CANDIDATE_SCAN_MODES:
            index, _ = phase1.select_scan_in(sim, t0, tests, f0,
                                             [False] * 3, mode=mode)
            assert index == 0


class TestFusedCapAtConstruction:
    def test_env_override_read_per_simulator(self, monkeypatch):
        """REPRO_FUSED_CAP applies to simulators built *after* the
        environment change -- no import-time freeze."""
        cc, _, fs = circuit_for(3)
        default = FaultSimulator(cc, fs)
        assert default.fused_cap == fault_sim_mod.FUSED_CAP
        monkeypatch.setenv("REPRO_FUSED_CAP", "64")
        overridden = FaultSimulator(cc, fs)
        assert overridden.fused_cap == 64
        assert overridden.resolve_width(100) <= 64
        # An explicit argument beats the environment.
        explicit = FaultSimulator(cc, fs, fused_cap=128)
        assert explicit.fused_cap == 128

    def test_cap_bounds_lane_groups(self, monkeypatch):
        """The lane packer honours the per-simulator cap too."""
        cc, _, fs = circuit_for(3)
        sim = FaultSimulator(cc, fs, fused_cap=16)
        assert sim._lane_groups_per_word(4) == 4
        chunks = sim._build_lane_chunks(range(10), n_lanes=4)
        assert len(chunks) == 3  # ceil(10 / 4) balanced words
        assert max(c.n_groups for c in chunks) - \
            min(c.n_groups for c in chunks) <= 1
        assert sum(c.n_groups for c in chunks) == 10

"""Scan test datatypes and the paper's test-application cost model.

A scan test is ``tau = (SI, T, SO)``: scan in ``SI``, apply the
primary-input sequence ``T`` with the functional clock (at speed),
then scan out and compare against the expected fault-free state ``SO``.
Following the paper's Section 3 we usually omit ``SO`` from the
notation; here it is computed on demand from the fault-free simulation.

The cost model (paper Section 2): a test set ``{tau_1..tau_k}`` on a
circuit with ``N_SV`` scanned state variables needs

    N_cyc = (k + 1) * N_SV + sum_j L(T_j)

clock cycles -- ``k+1`` scan operations (scan-in of test ``j+1``
overlaps scan-out of test ``j``) plus one functional cycle per vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim import values as V
from ..sim.logicsim import CompiledCircuit, simulate_sequence


@dataclass(frozen=True)
class ScanTest:
    """One scan test ``(SI, T)``.

    Attributes
    ----------
    scan_in:
        The scan-in state vector (one value per flip-flop, scan order).
    vectors:
        The primary-input sequence ``T`` applied at speed, length >= 1.
    """

    scan_in: V.Vector
    vectors: Tuple[V.Vector, ...]

    def __post_init__(self) -> None:
        if not self.vectors:
            raise ValueError("a scan test needs at least one vector")

    @property
    def length(self) -> int:
        """``L(T)``: number of at-speed primary-input vectors."""
        return len(self.vectors)

    def expected_scan_out(self, circuit: CompiledCircuit) -> V.Vector:
        """The fault-free scan-out vector ``SO`` for this test."""
        return simulate_sequence(circuit, list(self.vectors),
                                 self.scan_in).final_state

    def combined_with(self, other: "ScanTest") -> "ScanTest":
        """The paper's *combining* operation: drop this test's scan-out
        and ``other``'s scan-in, concatenating the sequences."""
        return ScanTest(self.scan_in, self.vectors + other.vectors)

    def __str__(self) -> str:
        return (f"ScanTest(SI={V.vec_str(self.scan_in)}, "
                f"L={self.length})")


@dataclass
class ScanTestSet:
    """An ordered set of scan tests on one circuit."""

    n_state_vars: int
    tests: List[ScanTest] = field(default_factory=list)

    def __post_init__(self) -> None:
        for test in self.tests:
            self._check(test)

    def _check(self, test: ScanTest) -> None:
        if len(test.scan_in) != self.n_state_vars:
            raise ValueError(
                f"scan-in width {len(test.scan_in)} != "
                f"{self.n_state_vars} state variables")

    def add(self, test: ScanTest) -> None:
        self._check(test)
        self.tests.append(test)

    def __len__(self) -> int:
        return len(self.tests)

    def __iter__(self):
        return iter(self.tests)

    def __getitem__(self, i: int) -> ScanTest:
        return self.tests[i]

    # ------------------------------------------------------------------
    def clock_cycles(self) -> int:
        """``N_cyc = (k+1) * N_SV + sum L(T_j)`` (paper Section 2)."""
        k = len(self.tests)
        if k == 0:
            return 0
        return (k + 1) * self.n_state_vars + self.total_vectors()

    def total_vectors(self) -> int:
        """Total number of at-speed primary-input vectors."""
        return sum(t.length for t in self.tests)

    def sequence_lengths(self) -> List[int]:
        return [t.length for t in self.tests]

    def average_length(self) -> float:
        """Average at-speed sequence length (paper Table 4 ``ave``)."""
        if not self.tests:
            return 0.0
        return self.total_vectors() / len(self.tests)

    def length_range(self) -> Tuple[int, int]:
        """(min, max) at-speed sequence length (paper Table 4 ``range``)."""
        if not self.tests:
            return (0, 0)
        lengths = self.sequence_lengths()
        return (min(lengths), max(lengths))

    def at_speed_pairs(self) -> int:
        """Number of at-speed *vector pairs* -- consecutive functional
        cycles, the launch/capture opportunities for delay defects:
        ``sum_j (L(T_j) - 1)``."""
        return sum(t.length - 1 for t in self.tests)

    def copy(self) -> "ScanTestSet":
        return ScanTestSet(self.n_state_vars, list(self.tests))

    def replaced(self, index_a: int, index_b: int,
                 combined: ScanTest) -> "ScanTestSet":
        """A new set with tests ``index_a``/``index_b`` replaced by
        ``combined`` (order: combined takes ``index_a``'s slot)."""
        tests = [t for i, t in enumerate(self.tests)
                 if i not in (index_a, index_b)]
        tests.insert(min(index_a, index_b), combined)
        return ScanTestSet(self.n_state_vars, tests)


def single_vector_test(state: V.Vector, pi_vector: V.Vector) -> ScanTest:
    """The scan equivalent of a combinational test: ``(SI, (t))``."""
    return ScanTest(tuple(state), (tuple(pi_vector),))

"""Resilient suite execution: isolation, timeouts, retries, resume.

:func:`repro.experiments.runner.run_suite` is a bare serial loop -- one
hung ATPG call or one crash on a single circuit discards every
completed :class:`CircuitRun` and produces no tables at all.  This
module gives long experiment campaigns the resilience a multi-circuit
fault-simulation sweep needs:

* every ``(circuit, seed)`` job runs in an isolated worker subprocess
  (``multiprocessing`` with the ``spawn`` start method), so a crash or
  an out-of-control computation cannot take the campaign down;
* a per-job wall-clock **timeout** kills hung workers;
* failed and timed-out jobs are **retried** with exponential backoff,
  optionally perturbing the seed on the final attempt (a different
  random ``T0`` often steers around a pathological case);
* every outcome is recorded as a structured :class:`JobRecord`
  (``ok`` / ``failed`` / ``timeout`` / ``skipped-resume`` /
  ``skipped-lint``, attempt count, seconds, traceback);
* completed runs are **checkpointed** incrementally to a JSONL run
  store, so an interrupted or partially failed campaign resumes from
  the checkpoint instead of recomputing;
* a **pre-flight lint** (structural rules only; see
  :mod:`repro.analysis`) runs once per distinct circuit before any
  worker is spawned: a circuit with error-severity findings would
  crash (or silently mislead) every attempt, so its jobs are recorded
  as ``skipped-lint`` with the rule ids instead of burning
  ``retries + 1`` subprocesses to rediscover the problem.

Run-store layout (``run_dir``)::

    runs.jsonl      one completed CircuitRun per line (checkpoint)
    journal.jsonl   one JobRecord per finished job, every invocation

Both files are append-only; a truncated trailing line (killed mid
write) is tolerated on load and simply recomputed.

Chaos hook
----------
``HarnessConfig.chaos`` is a callable invoked once per attempt with
``(spec, attempt)``; it may return a directive that forces a failure
mode deterministically -- the fault-injection surface the tests use:

``"crash"``
    the worker raises (clean traceback comes back),
``"exit"``
    the worker dies via ``os._exit`` (no traceback, like a segfault),
``"hang"``
    the worker sleeps until the timeout kills it,
``"corrupt-checkpoint"``
    a garbage line is appended to ``runs.jsonl`` before the attempt
    (the attempt itself then runs normally).
"""

from __future__ import annotations

import json
import os
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..circuits.suite import CircuitProfile
from ..core.phase1 import DEFAULT_CANDIDATE_SCAN
from . import reporting
from .reporting import Table
from .runner import CircuitRun, resolve_profiles, run_circuit_by_name

#: Added to the base seed when the final retry perturbs it.
SEED_PERTURBATION = 7919

_HANG_SECONDS = 3600.0
_POLL_INTERVAL = 0.02

#: Directives a chaos callable may return.
CHAOS_DIRECTIVES = ("crash", "exit", "hang", "corrupt-checkpoint")

ChaosFn = Callable[["JobSpec", int], Optional[str]]


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: a circuit run under one seed / arm config.

    ``engine``/``width`` select the simulation backend and fault-
    packing policy (see :meth:`repro.api.Workbench.for_netlist`);
    ``candidate_scan`` the Phase-1 Step-2 mode ("lanes" or "scalar");
    ``x_fill``/``power_budget`` the don't-care fill strategy and the
    optional peak shift-WTM cap (see :mod:`repro.power`).  All travel
    across the ``spawn`` boundary as plain values (``width`` is an int
    or the string ``"auto"``); workers read missing keys with
    defaults, so old callers and legacy spec dicts stay compatible
    (they default to ``random`` fill with no budget).
    """

    circuit: str
    seed: int = 1
    arms: Tuple[str, ...] = ("seqgen", "random")
    with_baselines: bool = True
    with_transition: bool = False
    engine: str = "codegen"
    width: Union[int, str] = "auto"
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN
    x_fill: str = "random"
    power_budget: Optional[float] = None

    @property
    def key(self) -> Tuple[str, int]:
        """Checkpoint identity (circuit, base seed)."""
        return (self.circuit, self.seed)


@dataclass
class JobRecord:
    """Structured outcome of one job across all its attempts."""

    circuit: str
    seed: int
    status: str   # ok | failed | timeout | skipped-resume | skipped-lint
    attempts: int
    seconds: float
    error: Optional[str] = None
    #: Analyzer rule ids behind a ``skipped-lint`` outcome (empty
    #: otherwise).  Stored in the journal; JSON round-trips lists, so
    #: ``__post_init__`` re-tuples.
    lint_rules: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.lint_rules = tuple(self.lint_rules)

    @property
    def failed(self) -> bool:
        return self.status in ("failed", "timeout")

    @property
    def skipped_lint(self) -> bool:
        return self.status == "skipped-lint"

    @property
    def reason(self) -> str:
        """Short annotation for degraded table rows."""
        if self.status == "timeout":
            return "timeout"
        if self.skipped_lint:
            return "lint: " + ",".join(self.lint_rules or ("?",))
        if self.error:
            last = self.error.strip().splitlines()[-1]
            return last[:60]
        return self.status


@dataclass
class HarnessConfig:
    """Resilience knobs for :func:`run_suite_resilient`.

    Attributes
    ----------
    timeout:
        Per-attempt wall-clock limit in seconds (None: unlimited).
        Enforced only in isolated mode -- in-process workers cannot be
        interrupted safely.
    retries:
        Extra attempts after the first failure (total = retries + 1).
    jobs:
        Worker subprocesses running concurrently.
    run_dir:
        Checkpoint directory; None disables checkpointing.
    resume:
        Reuse completed runs found in ``run_dir`` instead of
        recomputing them (recorded as ``skipped-resume``).
    backoff_base:
        First retry waits ``backoff_base`` seconds, the next one twice
        that, and so on.
    perturb_final_seed:
        On the last attempt, offset the seed by ``SEED_PERTURBATION``.
    isolate:
        Run jobs in subprocesses (default).  ``False`` keeps the old
        in-process behavior with retry/backoff/checkpoint support but
        no timeouts and no crash isolation beyond ``except``.
    preflight:
        Lint every distinct circuit (structural rules only) before
        scheduling and record jobs on broken circuits as
        ``skipped-lint`` instead of running them.  ``False`` restores
        the lint-free behavior.
    chaos:
        Fault-injection callable ``(spec, attempt) -> directive`` --
        see the module docstring.
    """

    timeout: Optional[float] = None
    retries: int = 0
    jobs: int = 1
    run_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    backoff_base: float = 0.5
    perturb_final_seed: bool = True
    isolate: bool = True
    preflight: bool = True
    chaos: Optional[ChaosFn] = None


@dataclass
class SuiteOutcome:
    """Everything a resilient campaign produced."""

    runs: List[CircuitRun]
    records: List[JobRecord] = field(default_factory=list)

    @property
    def failed_records(self) -> List[JobRecord]:
        return [r for r in self.records if r.failed]

    @property
    def skipped_records(self) -> List[JobRecord]:
        """Jobs the pre-flight lint refused to run."""
        return [r for r in self.records if r.skipped_lint]

    @property
    def ok(self) -> bool:
        """True iff no job ultimately failed (lint skips are
        deliberate outcomes, not failures)."""
        return not self.failed_records

    @property
    def failures(self) -> Dict[str, str]:
        """``{circuit: reason}`` for the table renderers.

        Covers both failed and lint-skipped jobs; the latter carry a
        ``lint: <rule,...>`` reason that the renderers turn into a
        ``SKIPPED(...)`` row.
        """
        out = {r.circuit: r.reason for r in self.failed_records}
        for r in self.skipped_records:
            out.setdefault(r.circuit, r.reason)
        return out

    def failure_summary(self) -> Table:
        """One row per job, for the end-of-campaign report."""
        table = Table("Job summary",
                      ["circuit", "seed", "status", "attempts",
                       "seconds", "lint"])
        for record in self.records:
            table.add_row(record.circuit, record.seed, record.status,
                          record.attempts, record.seconds,
                          ",".join(record.lint_rules) or None)
        return table


# ----------------------------------------------------------------------
# Run store (checkpoint)
# ----------------------------------------------------------------------

class RunStore:
    """Append-only JSONL checkpoint of completed runs + job journal."""

    RUNS_NAME = "runs.jsonl"
    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.runs_path = self.run_dir / self.RUNS_NAME
        self.journal_path = self.run_dir / self.JOURNAL_NAME

    def append_run(self, spec: JobSpec, run: CircuitRun) -> None:
        line = json.dumps({"circuit": spec.circuit, "seed": spec.seed,
                           "run": reporting.run_to_dict(run)})
        self._append(self.runs_path, line)

    def append_record(self, record: JobRecord) -> None:
        self._append(self.journal_path, json.dumps(asdict(record)))

    @staticmethod
    def _append(path: Path, line: str) -> None:
        with open(path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_runs(self) -> Tuple[Dict[Tuple[str, int], CircuitRun], int]:
        """Checkpointed runs keyed by (circuit, seed).

        Corrupt or truncated lines are skipped (and counted), never
        fatal: the affected job is simply recomputed.
        """
        runs: Dict[Tuple[str, int], CircuitRun] = {}
        corrupt = 0
        if not self.runs_path.exists():
            return runs, corrupt
        with open(self.runs_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = (entry["circuit"], entry["seed"])
                    runs[key] = reporting.run_from_dict(entry["run"])
                except Exception:
                    corrupt += 1
        return runs, corrupt

    def load_records(self) -> List[JobRecord]:
        """Every JobRecord ever journalled (corrupt lines skipped)."""
        records: List[JobRecord] = []
        if not self.journal_path.exists():
            return records
        with open(self.journal_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(JobRecord(**json.loads(line)))
                except Exception:
                    continue
        return records

    def corrupt_checkpoint(self) -> None:
        """Chaos helper: append a garbage line to the run store."""
        with open(self.runs_path, "a") as handle:
            handle.write('{"circuit": "zzz", "broken\n')


# ----------------------------------------------------------------------
# Worker (runs in the spawned subprocess)
# ----------------------------------------------------------------------

def _worker_main(conn, spec_dict: Dict[str, Any], seed: int,
                 directive: Optional[str]) -> None:
    """Subprocess body: run one circuit job, send the result back.

    Must stay importable at module top level for ``spawn``.
    """
    try:
        if directive == "hang":
            time.sleep(_HANG_SECONDS)
        elif directive == "crash":
            raise RuntimeError("chaos: injected worker crash")
        elif directive == "exit":
            os._exit(13)
        run = run_circuit_by_name(
            spec_dict["circuit"], seed=seed,
            arms=tuple(spec_dict["arms"]),
            with_baselines=spec_dict["with_baselines"],
            with_transition=spec_dict["with_transition"],
            engine=spec_dict.get("engine", "codegen"),
            width=spec_dict.get("width", "auto"),
            candidate_scan=spec_dict.get("candidate_scan",
                                         DEFAULT_CANDIDATE_SCAN),
            x_fill=spec_dict.get("x_fill", "random"),
            power_budget=spec_dict.get("power_budget"))
        conn.send(("ok", reporting.run_to_dict(run)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent went away
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def _run_attempt_inline(spec: JobSpec, seed: int,
                        directive: Optional[str]) -> Tuple[str, Any]:
    """One attempt without process isolation (``isolate=False``)."""
    try:
        if directive in ("crash", "exit", "hang"):
            raise RuntimeError(f"chaos: injected {directive} (in-process)")
        run = run_circuit_by_name(
            spec.circuit, seed=seed, arms=spec.arms,
            with_baselines=spec.with_baselines,
            with_transition=spec.with_transition,
            engine=spec.engine, width=spec.width,
            candidate_scan=spec.candidate_scan,
            x_fill=spec.x_fill, power_budget=spec.power_budget)
        return "ok", run
    except Exception:
        return "error", traceback.format_exc()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------

@dataclass
class _JobState:
    spec: JobSpec
    attempts: int = 0
    not_before: float = 0.0
    seconds: float = 0.0
    last_error: Optional[str] = None
    last_status: str = "failed"


class _ActiveWorker:
    __slots__ = ("state", "proc", "conn", "started", "deadline")

    def __init__(self, state, proc, conn, started, deadline) -> None:
        self.state = state
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline


def _attempt_seed(spec: JobSpec, attempt: int,
                  config: HarnessConfig) -> int:
    total = config.retries + 1
    if (config.perturb_final_seed and total > 1 and attempt == total):
        return spec.seed + SEED_PERTURBATION
    return spec.seed


def _preflight_rules(circuit: str,
                     cache: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
    """Error-severity lint rule ids for one suite circuit (cached).

    Only the cheap structural rules run (``xinit=False``).  Resolution
    or analysis problems never fail the pre-flight: a circuit that is
    unknown, unbuildable or un-lintable returns no rules and its job
    runs (and fails) normally, keeping the real traceback.
    """
    if circuit not in cache:
        rules: Tuple[str, ...] = ()
        try:
            from ..analysis.rules import lint_netlist
            from ..circuits.suite import profile as lookup
            report = lint_netlist(lookup(circuit).build(), xinit=False)
            rules = tuple(dict.fromkeys(d.rule for d in report.errors))
        except Exception:
            pass
        cache[circuit] = rules
    return cache[circuit]


def _chaos_directive(config: HarnessConfig, store: Optional[RunStore],
                     spec: JobSpec, attempt: int) -> Optional[str]:
    if config.chaos is None:
        return None
    directive = config.chaos(spec, attempt)
    if directive is None:
        return None
    if directive not in CHAOS_DIRECTIVES:
        raise ValueError(f"unknown chaos directive {directive!r}")
    if directive == "corrupt-checkpoint":
        if store is not None:
            store.corrupt_checkpoint()
        return None
    return directive


def run_jobs(specs: Sequence[JobSpec],
             config: Optional[HarnessConfig] = None,
             verbose: bool = False) -> SuiteOutcome:
    """Execute ``specs`` resiliently; the core of the harness.

    Jobs run in up to ``config.jobs`` worker subprocesses; each attempt
    gets ``config.timeout`` seconds; failures retry with exponential
    backoff.  With ``config.run_dir`` set, completed runs checkpoint
    incrementally, and ``config.resume`` skips jobs the checkpoint
    already holds.  Runs come back in ``specs`` order (failed jobs are
    simply absent); consult :attr:`SuiteOutcome.records` for the
    per-job story.
    """
    config = config or HarnessConfig()
    store = RunStore(config.run_dir) if config.run_dir else None

    results: Dict[Tuple[str, int], CircuitRun] = {}
    records: List[JobRecord] = []
    pending: List[_JobState] = []
    lint_cache: Dict[str, Tuple[str, ...]] = {}

    checkpoint: Dict[Tuple[str, int], CircuitRun] = {}
    if store is not None and config.resume:
        checkpoint, corrupt = store.load_runs()
        if corrupt and verbose:  # pragma: no cover - cosmetic
            print(f"  (checkpoint: skipped {corrupt} corrupt line(s))")

    for spec in specs:
        cached = checkpoint.get(spec.key)
        if cached is not None and _checkpoint_usable(cached, spec):
            results[spec.key] = cached
            record = JobRecord(spec.circuit, spec.seed, "skipped-resume",
                               attempts=0, seconds=0.0)
            records.append(record)
            if store is not None:
                store.append_record(record)
            if verbose:
                print(f"  {spec.circuit}: resumed from checkpoint")
            continue
        if config.preflight:
            rules = _preflight_rules(spec.circuit, lint_cache)
            if rules:
                record = JobRecord(spec.circuit, spec.seed, "skipped-lint",
                                   attempts=0, seconds=0.0,
                                   error="lint: " + ", ".join(rules),
                                   lint_rules=rules)
                records.append(record)
                if store is not None:
                    store.append_record(record)
                if verbose:
                    print(f"  {spec.circuit}: skipped "
                          f"(lint: {', '.join(rules)})")
                continue
        pending.append(_JobState(spec))

    if config.isolate:
        _run_isolated(pending, config, store, results, records, verbose)
    else:
        _run_inline(pending, config, store, results, records, verbose)

    runs = [results[s.key] for s in specs if s.key in results]
    return SuiteOutcome(runs=runs, records=records)


def _checkpoint_usable(run: CircuitRun, spec: JobSpec) -> bool:
    """A cached run satisfies the request
    (arms/baselines/transition/power knobs)."""
    if not all(a in run.arms for a in spec.arms):
        return False
    if spec.with_baselines and run.baseline4 is None:
        return False
    if spec.with_transition and not run.transition:
        return False
    # The power knobs change the produced test sets, so a checkpoint
    # only matches when it recorded the same knobs.  A pre-power
    # checkpoint (run.power is None) recorded no knobs and can only
    # satisfy the defaults it was produced under.
    if run.power is not None:
        if run.power.x_fill != spec.x_fill:
            return False
        if run.power.budget != spec.power_budget:
            return False
    elif spec.x_fill != "random" or spec.power_budget is not None:
        return False
    return True


def _finish(state: _JobState, status: str, payload: Any,
            config: HarnessConfig, store: Optional[RunStore],
            results: Dict[Tuple[str, int], CircuitRun],
            records: List[JobRecord], pending: List[_JobState],
            verbose: bool) -> None:
    """Record one finished attempt; reschedule or finalize the job."""
    spec = state.spec
    if status == "ok":
        run = payload if isinstance(payload, CircuitRun) \
            else reporting.run_from_dict(payload)
        results[spec.key] = run
        record = JobRecord(spec.circuit, spec.seed, "ok",
                           attempts=state.attempts,
                           seconds=round(state.seconds, 3))
        records.append(record)
        if store is not None:
            store.append_run(spec, run)
            store.append_record(record)
        if verbose:
            print(f"  {spec.circuit}: ok in {state.seconds:.1f}s "
                  f"(attempt {state.attempts})")
        return

    state.last_status = status
    state.last_error = payload
    if state.attempts <= config.retries:
        delay = config.backoff_base * (2 ** (state.attempts - 1))
        state.not_before = time.monotonic() + delay
        pending.append(state)
        if verbose:
            print(f"  {spec.circuit}: {status} (attempt "
                  f"{state.attempts}), retrying in {delay:.1f}s")
        return

    record = JobRecord(spec.circuit, spec.seed, status,
                       attempts=state.attempts,
                       seconds=round(state.seconds, 3),
                       error=payload)
    records.append(record)
    if store is not None:
        store.append_record(record)
    if verbose:
        print(f"  {spec.circuit}: {status} after "
              f"{state.attempts} attempt(s)")


def _run_inline(pending: List[_JobState], config: HarnessConfig,
                store: Optional[RunStore],
                results: Dict[Tuple[str, int], CircuitRun],
                records: List[JobRecord], verbose: bool) -> None:
    """Serial in-process execution (no isolation, no timeouts)."""
    while pending:
        state = pending.pop(0)
        wait = state.not_before - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        state.attempts += 1
        directive = _chaos_directive(config, store, state.spec,
                                     state.attempts)
        started = time.monotonic()
        status, payload = _run_attempt_inline(
            state.spec, _attempt_seed(state.spec, state.attempts, config),
            directive)
        state.seconds += time.monotonic() - started
        _finish(state, "ok" if status == "ok" else "failed", payload,
                config, store, results, records, pending, verbose)


def _run_isolated(pending: List[_JobState], config: HarnessConfig,
                  store: Optional[RunStore],
                  results: Dict[Tuple[str, int], CircuitRun],
                  records: List[JobRecord], verbose: bool) -> None:
    """Subprocess execution with timeouts and bounded parallelism."""
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    max_workers = max(1, config.jobs)
    active: List[_ActiveWorker] = []

    def launch(state: _JobState) -> None:
        state.attempts += 1
        directive = _chaos_directive(config, store, state.spec,
                                     state.attempts)
        seed = _attempt_seed(state.spec, state.attempts, config)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, asdict(state.spec), seed, directive),
            daemon=True)
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = now + config.timeout if config.timeout else None
        active.append(_ActiveWorker(state, proc, parent_conn, now,
                                    deadline))

    def settle(worker: _ActiveWorker, status: str, payload: Any) -> None:
        active.remove(worker)
        worker.conn.close()
        worker.state.seconds += time.monotonic() - worker.started
        _finish(worker.state, status, payload, config, store, results,
                records, pending, verbose)

    try:
        while pending or active:
            now = time.monotonic()
            ready = [s for s in pending if s.not_before <= now]
            while ready and len(active) < max_workers:
                state = ready.pop(0)
                pending.remove(state)
                launch(state)

            if not active:
                # Everything left is backing off; sleep to the nearest.
                wake = min(s.not_before for s in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            time.sleep(_POLL_INTERVAL)
            now = time.monotonic()
            for worker in list(active):
                if worker.conn.poll():
                    try:
                        kind, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        # Hard death (os._exit, segfault): the pipe hits
                        # EOF without a message.
                        worker.proc.join(timeout=5)
                        kind, payload = ("error",
                                         f"worker died without a result "
                                         f"(exit code "
                                         f"{worker.proc.exitcode})")
                    worker.proc.join(timeout=5)
                    settle(worker,
                           "ok" if kind == "ok" else "failed", payload)
                elif worker.deadline is not None and now >= worker.deadline:
                    worker.proc.kill()
                    worker.proc.join(timeout=5)
                    settle(worker, "timeout",
                           f"killed after exceeding the "
                           f"{config.timeout}s per-job timeout")
                elif not worker.proc.is_alive():
                    worker.proc.join()
                    settle(worker, "failed",
                           f"worker died without a result "
                           f"(exit code {worker.proc.exitcode})")
    finally:
        for worker in active:  # pragma: no cover - only on hard errors
            worker.proc.kill()
            worker.proc.join(timeout=5)


def run_suite_resilient(
    profiles: Optional[Sequence[CircuitProfile]] = None,
    quick: bool = True,
    seed: int = 1,
    arms: Sequence[str] = ("seqgen", "random"),
    with_baselines: bool = True,
    with_transition: bool = False,
    engine: str = "codegen",
    width: Union[int, str] = "auto",
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
    config: Optional[HarnessConfig] = None,
    verbose: bool = False,
) -> SuiteOutcome:
    """Resilient drop-in for :func:`repro.experiments.runner.run_suite`.

    Same experiment knobs; adds the :class:`HarnessConfig` resilience
    layer and returns a :class:`SuiteOutcome` instead of a bare list.
    Suite profiles are dispatched to workers *by name*, so explicit
    ``profiles`` must come from the suite registry.
    """
    specs = [JobSpec(circuit=p.name, seed=seed, arms=tuple(arms),
                     with_baselines=with_baselines,
                     with_transition=with_transition,
                     engine=engine, width=width,
                     candidate_scan=candidate_scan,
                     x_fill=x_fill, power_budget=power_budget)
             for p in resolve_profiles(profiles, quick=quick)]
    return run_jobs(specs, config=config, verbose=verbose)

#!/usr/bin/env python3
"""Quickstart: compact a scan test set for a small circuit.

Runs the paper's four-phase procedure on the ISCAS-89 s27 benchmark
and prints what each phase produced, the final test set, and the
clock-cycle comparison against the [4] static-compaction baseline.

Run with::

    python examples/quickstart.py
"""

from repro import api
from repro.circuits import library
from repro.core.metrics import at_speed_stats
from repro.sim import values as V


def main() -> None:
    # 1. A circuit: the exact ISCAS-89 s27 (4 PI, 1 PO, 3 FF).
    netlist = library.s27()
    print(f"circuit: {netlist!r}")

    # 2. One call runs everything: combinational set generation,
    #    T0 generation, Phases 1-4.
    result = api.compact_tests(netlist, seed=1, t0_length=60)

    print(f"\nT0: {result.t0_length} vectors, "
          f"{len(result.t0_detected)} faults detected without scan")
    print(f"tau_seq: scan-in {V.vec_str(result.tau_seq.scan_in)}, "
          f"{result.seq_length} at-speed vectors, "
          f"{len(result.seq_detected)} faults")
    print(f"phase 3 added {result.added_tests} single-vector tests "
          f"-> {len(result.final_detected)} faults total")

    final = result.compacted_set or result.test_set
    print(f"\nfinal test set: {len(final)} tests, "
          f"{final.clock_cycles()} clock cycles")
    stats = at_speed_stats(final)
    print(f"at-speed sequence lengths: ave {stats.average}, "
          f"range {stats.range_str}")

    # 3. Compare with the [4] baseline on the same circuit.
    baseline = api.baseline_static(netlist, seed=1)
    print(f"\n[4] baseline: {baseline.stats.initial_cycles} cycles "
          f"initial, {baseline.stats.final_cycles} after compaction")
    print(f"proposed:     {result.initial_cycles()} cycles initial, "
          f"{result.compacted_cycles()} after phase 4")


if __name__ == "__main__":
    main()

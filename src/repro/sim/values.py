"""Three-valued (0 / 1 / X) logic values and their bit-parallel encoding.

Scalar values
-------------
Scalars are plain ints: :data:`ZERO` (0), :data:`ONE` (1), :data:`X` (2).
Vectors (input vectors, states, scan vectors) are tuples of scalars.

Word encoding
-------------
The simulators are *bit parallel*: every net carries a pair of Python
integers ``(zero, one)`` where bit ``w`` of ``zero`` is set iff machine
``w`` sees logic 0 on that net, and bit ``w`` of ``one`` iff it sees
logic 1.  Neither bit set means X.  Both bits set is invalid.  Machine 0
is, by convention, the fault-free machine.

This encoding makes 3-valued gate evaluation a handful of big-int
bitwise operations, independent of how many machines are packed in a
word.

Array encoding
--------------
The numpy backend (:mod:`repro.sim.npsim`) stores the same packed
machines as ``uint64`` arrays: big-int bit ``w`` lives in bit
``w % 64`` of array word ``w // 64`` (little-endian word order).
:func:`word_to_array` / :func:`array_to_word` convert losslessly in
both directions, so scoreboard masks, detection bits and
:class:`~repro.sim.counters.SimCounters` accounting stay
backend-agnostic -- every cross-backend boundary goes through these
two functions.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence, Tuple

ZERO = 0
ONE = 1
X = 2

_CHAR_TO_VALUE = {"0": ZERO, "1": ONE, "x": X, "X": X, "-": X}
_VALUE_TO_CHAR = {ZERO: "0", ONE: "1", X: "x"}

Vector = Tuple[int, ...]


def lit(char: str) -> int:
    """Parse a single character ('0', '1', 'x', 'X' or '-') to a scalar."""
    try:
        return _CHAR_TO_VALUE[char]
    except KeyError:
        raise ValueError(f"invalid logic literal {char!r}") from None


def vec(text: str) -> Vector:
    """Parse a string like ``"01xx1"`` into a value vector."""
    return tuple(lit(c) for c in text)


def vec_str(vector: Sequence[int]) -> str:
    """Render a value vector as a compact string."""
    return "".join(_VALUE_TO_CHAR[v] for v in vector)


def is_binary(vector: Sequence[int]) -> bool:
    """True when the vector contains no X."""
    return all(v in (ZERO, ONE) for v in vector)


def pack_scalar(value: int, mask: int) -> Tuple[int, int]:
    """Broadcast a scalar to all machines selected by ``mask``.

    Returns the ``(zero, one)`` word pair.
    """
    if value == ZERO:
        return mask, 0
    if value == ONE:
        return 0, mask
    if value == X:
        return 0, 0
    raise ValueError(f"invalid scalar value {value!r}")


def word_scalar(zero: int, one: int, machine: int = 0) -> int:
    """Extract machine ``machine``'s scalar value from a word pair."""
    bit = 1 << machine
    if zero & bit:
        return ZERO
    if one & bit:
        return ONE
    return X


def diff_mask(zero: int, one: int, good_value: int) -> int:
    """Machines whose *binary* value differs from the good value.

    A machine with an X value never differs (pessimistic detection);
    a good value of X never produces a difference.
    """
    if good_value == ONE:
        return zero
    if good_value == ZERO:
        return one
    return 0


def pack_lanes(values: Sequence[int]) -> Tuple[int, int]:
    """Pack one scalar *per machine lane* into a ``(zero, one)`` pair.

    Lane ``k`` of the word carries ``values[k]``.  This is the
    transposed counterpart of :func:`pack_scalar` (which broadcasts one
    scalar to every machine): candidate-parallel simulation packs one
    *candidate scan-in state* per lane, so each lane starts from its
    own flip-flop value.
    """
    zero = 0
    one = 0
    for k, value in enumerate(values):
        if value == ZERO:
            zero |= 1 << k
        elif value == ONE:
            one |= 1 << k
        elif value != X:
            raise ValueError(f"invalid scalar value {value!r}")
    return zero, one


def word_to_array(word: int, n_words: int) -> Any:
    """Expand a packed big-int into a ``uint64`` array of ``n_words``.

    Bit ``w`` of ``word`` becomes bit ``w % 64`` of element
    ``w // 64``.  Raises ValueError when ``word`` needs more than
    ``n_words * 64`` bits; raises an actionable ImportError without
    numpy (install the ``fast`` extra).
    """
    from .npsim import require_numpy
    np = require_numpy()
    try:
        data = word.to_bytes(n_words * 8, "little")
    except OverflowError:
        raise ValueError(
            f"word needs more than {n_words} uint64 words") from None
    return np.frombuffer(data, dtype="<u8").copy()


def array_to_word(arr: Any) -> int:
    """Collapse a ``uint64`` array back into one packed big-int.

    Exact inverse of :func:`word_to_array` for same-length arrays.
    """
    import numpy as np
    return int.from_bytes(
        np.ascontiguousarray(arr, dtype="<u8").tobytes(), "little")


def random_binary_vector(width: int, rng: random.Random) -> Vector:
    """A uniformly random fully-specified vector of length ``width``."""
    return tuple(rng.randint(0, 1) for _ in range(width))


def all_x(width: int) -> Vector:
    """The all-X vector of length ``width``."""
    return (X,) * width


#: Don't-care fill strategies accepted by :func:`fill_x`.
FILL_STRATEGIES = ("random", "fill0", "fill1", "adjacent")


def fill_x(vector: Iterable[int], rng: random.Random,
           strategy: str = "random") -> Vector:
    """Replace every X in ``vector`` with a binary value.

    Contract (relied on by every ATPG call site and by the power
    subsystem's pluggable fills):

    * only X positions change -- every specified (0/1) position is
      returned untouched;
    * the result is fully binary (:func:`is_binary` holds);
    * the fill is deterministic given ``rng``'s state: ``"random"``
      draws exactly one ``rng.randint(0, 1)`` per X position, in
      vector order, and the other strategies never touch ``rng`` --
      so two equal-seeded generators produce identical fills and end
      in identical states.

    Strategies (see DESIGN.md section 11 for power semantics):

    * ``"random"`` -- independent uniform bits (the historical
      behavior and the default);
    * ``"fill0"`` / ``"fill1"`` -- every X becomes 0 / 1;
    * ``"adjacent"`` -- every X copies the nearest *preceding*
      specified value (minimum-transition fill); a leading X run
      copies the first specified value, and an all-X vector fills
      with 0.

    Raises
    ------
    ValueError
        On an unknown ``strategy``.
    """
    if strategy == "random":
        return tuple(v if v in (ZERO, ONE) else rng.randint(0, 1)
                     for v in vector)
    values = tuple(vector)
    if strategy == "fill0":
        return tuple(v if v in (ZERO, ONE) else ZERO for v in values)
    if strategy == "fill1":
        return tuple(v if v in (ZERO, ONE) else ONE for v in values)
    if strategy == "adjacent":
        first = next((v for v in values if v in (ZERO, ONE)), ZERO)
        out = []
        previous = first
        for v in values:
            if v in (ZERO, ONE):
                previous = v
                out.append(v)
            else:
                out.append(previous)
        return tuple(out)
    raise ValueError(f"unknown X-fill strategy {strategy!r}; "
                     f"use one of {FILL_STRATEGIES}")

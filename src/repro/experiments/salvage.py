"""Phase-boundary salvage and the self-verifying run store.

Three concerns live here, all serving the same goal -- a long campaign
must never lose finished work:

**Versioned, CRC-trailed JSONL lines.**  Every record the harness
persists (``runs.jsonl`` checkpoints, ``journal.jsonl`` job records,
salvage files) is wrapped in a one-line envelope carrying a schema
version and a CRC32 of the canonical payload encoding::

    {"crc": "1a2b3c4d", "data": {...payload...}, "v": 1}

:func:`decode_line` raises :class:`CorruptLine` on anything that is not
a verifiable record -- truncated JSON, a CRC mismatch (bit rot, a
partial overwrite) or an envelope version from the future.  Lines
written before the envelope existed decode as *legacy* (version 0)
records and stay readable.  Corrupt lines are **quarantined**: moved
into ``run_dir/quarantine/`` so they remain inspectable, while the
source file is repaired in place -- a corrupt checkpoint line costs one
recompute, never the campaign.

**Phase-boundary salvage.**  :class:`SalvageWriter` is the worker-side
journal of resumable pipeline state.  At each phase transition of
:func:`repro.core.proposed.run` (and at each completed arm of a
:class:`~repro.experiments.runner.CircuitRun`) the worker serializes
everything a retry needs to restart *from that boundary* instead of
from scratch: the committed ``tau_seq``, its known detections, the
:class:`~repro.sim.scoreboard.FaultScoreboard` ledger, the Phase-3
test set.  A job killed by the wall clock or the stall supervisor
leaves its salvage file behind; the retry loads it (CRC-verified,
knob-checked) and skips every completed phase, byte-identically.

**PartialRun.**  When a job ultimately fails but salvage exists, the
outcome is not a bare FAILED row: :class:`PartialRun` records which
phases completed per arm and whatever coverage figures are already
known, and the table renderers print ``PARTIAL(phase k/4)`` rows with
the known columns filled.

:func:`doctor` ties it together: verify/repair a run dir, reporting
what was salvaged, quarantined or orphaned (``repro-compact doctor``).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from . import reporting

#: Envelope schema version written by this build.  Readers accept
#: every version up to this one; greater versions are quarantined
#: (a downgraded reader must not guess at a future schema).
SCHEMA_VERSION = 1

#: Directory (under a run dir) where corrupt records are moved.
QUARANTINE_DIR = "quarantine"

#: Directory (under a run dir) holding per-job salvage files.
SALVAGE_DIR = "salvage"

#: Spec knobs that must match for salvaged state to be reused.  The
#: engine/width/candidate-scan knobs are deliberately absent: the
#: equivalence suite proves them byte-identical, so salvage written
#: under one backend is valid under any other.
SALVAGE_KNOBS = ("x_fill", "power_budget")


class CorruptLine(ValueError):
    """A persisted record failed verification (JSON, CRC or version)."""


def _canonical(payload: Mapping[str, Any]) -> str:
    """The byte-stable encoding the CRC is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _crc(payload: Mapping[str, Any]) -> str:
    return format(zlib.crc32(_canonical(payload).encode("utf-8"))
                  & 0xFFFFFFFF, "08x")


def encode_line(payload: Mapping[str, Any]) -> str:
    """Wrap ``payload`` in the versioned, CRC-trailed envelope."""
    return json.dumps({"crc": _crc(payload), "data": payload,
                       "v": SCHEMA_VERSION},
                      sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> Tuple[Dict[str, Any], int]:
    """Verify and unwrap one persisted line.

    Returns ``(payload, version)``; version 0 marks a legacy
    pre-envelope record (accepted as-is, nothing to verify against).

    Raises
    ------
    CorruptLine
        On malformed JSON, a non-dict record, an envelope version this
        reader does not know, or a CRC mismatch.
    """
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise CorruptLine(f"not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise CorruptLine("record is not an object")
    if not ("v" in obj and "crc" in obj and "data" in obj):
        return obj, 0  # legacy pre-envelope record
    version = obj["v"]
    if not isinstance(version, int) or version < 1:
        raise CorruptLine(f"bad envelope version {version!r}")
    if version > SCHEMA_VERSION:
        raise CorruptLine(f"envelope version {version} is newer than "
                          f"this reader (max {SCHEMA_VERSION})")
    data = obj["data"]
    if not isinstance(data, dict):
        raise CorruptLine("envelope data is not an object")
    if obj["crc"] != _crc(data):
        raise CorruptLine("CRC mismatch")
    return data, version


# ----------------------------------------------------------------------
# Quarantine-aware JSONL loading
# ----------------------------------------------------------------------

def quarantine_dir(run_dir: Union[str, Path]) -> Path:
    return Path(run_dir) / QUARANTINE_DIR


def load_jsonl(path: Path, run_dir: Union[str, Path],
               repair: bool = True) -> Tuple[List[Dict[str, Any]], int]:
    """Load every verifiable record of ``path``; quarantine the rest.

    Corrupt lines (see :func:`decode_line`) are appended to
    ``run_dir/quarantine/<name>`` and -- with ``repair`` (the default)
    -- removed from the source file via an atomic rewrite, so the next
    load starts clean and a resume recomputes exactly the quarantined
    jobs.  A truncated trailing line (process killed mid-append) is
    the common case; random corruption mid-file behaves identically.

    Returns ``(payloads, n_quarantined)``.
    """
    payloads: List[Dict[str, Any]] = []
    good_lines: List[str] = []
    bad_lines: List[str] = []
    if not path.exists():
        return payloads, 0
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            try:
                payload, _version = decode_line(line)
            except CorruptLine:
                bad_lines.append(line)
                continue
            payloads.append(payload)
            good_lines.append(line)
    if bad_lines:
        qdir = quarantine_dir(run_dir)
        qdir.mkdir(parents=True, exist_ok=True)
        with open(qdir / path.name, "a") as handle:
            for line in bad_lines:
                handle.write(line + "\n")
        if repair:
            text = "".join(line + "\n" for line in good_lines)
            reporting.atomic_write_text(path, text)
    return payloads, len(bad_lines)


# ----------------------------------------------------------------------
# Salvage store (per-job resumable state)
# ----------------------------------------------------------------------

def _salvage_name(circuit: str, seed: int) -> str:
    return f"{circuit}-s{seed}.json"


class SalvageStore:
    """File management for per-job salvage state under a run dir."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.dir = self.run_dir / SALVAGE_DIR

    def path(self, circuit: str, seed: int) -> Path:
        return self.dir / _salvage_name(circuit, seed)

    def exists(self, circuit: str, seed: int) -> bool:
        return self.path(circuit, seed).exists()

    def write(self, circuit: str, seed: int,
              payload: Mapping[str, Any]) -> None:
        reporting.atomic_write_text(self.path(circuit, seed),
                                    encode_line(payload) + "\n")

    def load(self, circuit: str, seed: int) -> Optional[Dict[str, Any]]:
        """The decoded salvage payload, or None.

        A file that fails verification is moved into the quarantine
        directory (it must not be silently reused *or* silently lost)
        and the load reports "no salvage": the retry starts fresh.
        """
        path = self.path(circuit, seed)
        if not path.exists():
            return None
        try:
            payload, _version = decode_line(path.read_text().strip())
            return payload
        except CorruptLine:
            self.quarantine(path)
            return None

    def quarantine(self, path: Path) -> Path:
        qdir = quarantine_dir(self.run_dir)
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / f"{SALVAGE_DIR}-{path.name}"
        n = 0
        while target.exists():  # keep every corpse inspectable
            n += 1
            target = qdir / f"{SALVAGE_DIR}-{path.name}.{n}"
        os.replace(path, target)
        return target

    def discard(self, circuit: str, seed: int) -> None:
        path = self.path(circuit, seed)
        if path.exists():
            path.unlink()

    def jobs(self) -> List[Path]:
        if not self.dir.exists():
            return []
        return sorted(self.dir.glob("*.json"))


def salvage_usable(payload: Mapping[str, Any],
                   spec_knobs: Mapping[str, Any], seed: int) -> bool:
    """Salvaged state may seed a retry only under identical inputs.

    The seed must match exactly (a perturbed-seed attempt would mix
    two different random streams into one result) and every
    result-shaping knob in :data:`SALVAGE_KNOBS` must agree.
    """
    if payload.get("seed") != seed:
        return False
    knobs = payload.get("knobs", {})
    for name in SALVAGE_KNOBS:
        if knobs.get(name) != spec_knobs.get(name):
            return False
    return True


# ----------------------------------------------------------------------
# Rich <-> JSON phase-state serialization
# ----------------------------------------------------------------------

def phase_state_to_json(state: Mapping[str, Any]) -> Dict[str, Any]:
    """Serialize a phase-boundary state dict emitted by
    :func:`repro.core.proposed.run` (see its ``observer`` parameter)."""
    import dataclasses
    out: Dict[str, Any] = {
        "tau": reporting.scan_test_to_dict(state["tau"]),
        "tau_detected": sorted(state["tau_detected"]),
        "t0_detected": sorted(state["t0_detected"]),
        "t0_length": state["t0_length"],
        "iterations": [dataclasses.asdict(i)
                       for i in state["iterations"]],
        "retired": sorted(state["retired"]),
    }
    if "test_set" in state:
        out["test_set"] = reporting.test_set_to_dict(state["test_set"])
        out["seq_detected"] = sorted(state["seq_detected"])
        out["final_detected"] = sorted(state["final_detected"])
        out["added_tests"] = state["added_tests"]
        out["uncovered"] = sorted(state["uncovered"])
    return out


def phase_state_from_json(data: Mapping[str, Any],
                          phase: int) -> Dict[str, Any]:
    """Inverse of :func:`phase_state_to_json`; adds the ``phase`` key
    :func:`repro.core.proposed.run` resumes from."""
    from ..core.proposed import IterationLog
    state: Dict[str, Any] = {
        "phase": phase,
        "tau": reporting.scan_test_from_dict(data["tau"]),
        "tau_detected": set(data["tau_detected"]),
        "t0_detected": set(data["t0_detected"]),
        "t0_length": data["t0_length"],
        "iterations": [IterationLog(**i) for i in data["iterations"]],
        "retired": set(data["retired"]),
    }
    if "test_set" in data:
        state["test_set"] = reporting.test_set_from_dict(
            data["test_set"])
        state["seq_detected"] = set(data["seq_detected"])
        state["final_detected"] = set(data["final_detected"])
        state["added_tests"] = data["added_tests"]
        state["uncovered"] = set(data["uncovered"])
    return state


class SalvageWriter:
    """Worker-side salvage journal for one ``(circuit, seed)`` job.

    Created at attempt start: loads any prior salvage (verified and
    knob-checked; a mismatch or corruption means "start fresh"), then
    accumulates phase states and completed arms, flushing the whole
    payload atomically at every boundary.

    ``corrupt_after_write`` is the ``corrupt-salvage`` chaos hook:
    every flush is deliberately damaged on disk, so when the worker
    dies the retry must prove it quarantines (and survives) a rotten
    salvage file.
    """

    #: Salvage payload schema version (inside the envelope payload).
    STATE_VERSION = 1

    def __init__(self, store: SalvageStore, circuit: str, seed: int,
                 knobs: Mapping[str, Any],
                 corrupt_after_write: bool = False) -> None:
        self.store = store
        self.circuit = circuit
        self.seed = seed
        self.knobs = dict(knobs)
        self._corrupt_pending = corrupt_after_write
        prior = store.load(circuit, seed)
        if prior is not None and not salvage_usable(prior, self.knobs,
                                                    seed):
            prior = None
        self.payload: Dict[str, Any] = prior or {
            "state_version": self.STATE_VERSION,
            "circuit": circuit,
            "seed": seed,
            "knobs": self.knobs,
            "meta": {},
            "arms": {},
            "completed_arms": {},
        }

    # -- reads (resume) ------------------------------------------------
    def arm_resume_state(self, arm: str) -> Optional[Dict[str, Any]]:
        entry = self.payload.get("arms", {}).get(arm)
        if not entry:
            return None
        return phase_state_from_json(entry["state"],
                                     int(entry["phase"]))

    def completed_arm(self, arm: str):
        data = self.payload.get("completed_arms", {}).get(arm)
        if data is None:
            return None
        return reporting.arm_from_dict(data)

    # -- writes (phase boundaries) -------------------------------------
    def set_meta(self, meta: Mapping[str, Any]) -> None:
        self.payload["meta"] = dict(meta)
        self._flush()

    def save_arm_state(self, arm: str, phase: int,
                       state: Mapping[str, Any]) -> None:
        self.payload.setdefault("arms", {})[arm] = {
            "phase": phase,
            "state": phase_state_to_json(state),
        }
        self._flush()

    def save_completed_arm(self, arm: str, arm_result: Any) -> None:
        self.payload.setdefault("completed_arms", {})[arm] = \
            reporting.arm_to_dict(arm_result)
        self.payload.get("arms", {}).pop(arm, None)
        self._flush()

    def _flush(self) -> None:
        self.store.write(self.circuit, self.seed, self.payload)
        if self._corrupt_pending:
            # Damage every flush while the directive is armed (a later
            # boundary would otherwise overwrite the rot with a valid
            # file before the worker dies).  Keep it valid JSON: the
            # CRC, not the JSON parser, must catch this.
            path = self.store.path(self.circuit, self.seed)
            raw = path.read_text()
            path.write_text(raw.replace('"seed":', '"sEed":', 1))


# ----------------------------------------------------------------------
# PartialRun
# ----------------------------------------------------------------------

#: Per-arm metric keys a :class:`PartialRun` may know, in the order
#: the paper tables use them.
PARTIAL_METRICS = ("t0_length", "t0_detected", "seq_detected",
                   "final_detected", "seq_length", "added_tests")


@dataclass
class PartialRun:
    """A job that died, but not for nothing.

    Built from the salvage a failed job left behind: which phase each
    arm completed (0 = nothing, 4 = the whole pipeline) and the
    coverage figures already known at that boundary.  Table renderers
    print these as ``PARTIAL(phase k/4)`` rows with the known columns
    filled -- mirroring the FAILED-row degradation, but informative.
    """

    circuit: str
    seed: int
    reason: str
    arm_phases: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    arms: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def phases_completed(self) -> int:
        """Furthest phase any arm completed."""
        return max(self.arm_phases.values(), default=0)

    @property
    def label(self) -> str:
        return f"PARTIAL(phase {self.phases_completed}/4)"

    def arm_metric(self, arm: str, key: str) -> Optional[Any]:
        return self.arms.get(arm, {}).get(key)

    @classmethod
    def from_salvage(cls, payload: Mapping[str, Any],
                     reason: str) -> "PartialRun":
        arm_phases: Dict[str, int] = {}
        arms: Dict[str, Dict[str, Any]] = {}
        for arm, entry in payload.get("arms", {}).items():
            phase = int(entry["phase"])
            state = entry["state"]
            arm_phases[arm] = phase
            known: Dict[str, Any] = {
                "t0_length": state["t0_length"],
                "t0_detected": len(state["t0_detected"]),
                # At the Phase-2 boundary only tau_seq's detections
                # from the omission pass are known -- a true lower
                # bound the Phase-3 full pass later completes.
                "seq_detected": len(state["tau_detected"]),
                "seq_length": len(state["tau"]["vectors"]),
            }
            if "final_detected" in state:
                known["seq_detected"] = len(state["seq_detected"])
                known["final_detected"] = len(state["final_detected"])
                known["added_tests"] = state["added_tests"]
            arms[arm] = known
        for arm, data in payload.get("completed_arms", {}).items():
            result = data["result"]
            arm_phases[arm] = 4
            arms[arm] = {
                "t0_length": data["t0_length"],
                "t0_detected": len(result["t0_detected"]),
                "seq_detected": len(result["seq_detected"]),
                "final_detected": len(result["final_detected"]),
                "seq_length": len(result["tau_seq"]["vectors"]),
                "added_tests": result["added_tests"],
            }
        return cls(circuit=payload.get("circuit", "?"),
                   seed=int(payload.get("seed", 0)),
                   reason=reason,
                   arm_phases=arm_phases,
                   meta=dict(payload.get("meta") or {}),
                   arms=arms)


# ----------------------------------------------------------------------
# Doctor
# ----------------------------------------------------------------------

@dataclass
class FileReport:
    """Verification outcome for one JSONL store file."""

    name: str
    records: int = 0
    legacy: int = 0
    quarantined: int = 0


@dataclass
class DoctorReport:
    """Everything ``repro-compact doctor`` found (and fixed)."""

    run_dir: str
    files: List[FileReport] = field(default_factory=list)
    #: Salvage files holding resumable partial work: (circuit, seed,
    #: furthest completed phase).
    salvageable: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Salvage files quarantined for failing verification.
    quarantined_salvage: List[str] = field(default_factory=list)
    #: Salvage files removed because their job already has a
    #: completed checkpoint (stale leftovers).
    orphaned_salvage: List[str] = field(default_factory=list)

    @property
    def n_quarantined(self) -> int:
        return (sum(f.quarantined for f in self.files)
                + len(self.quarantined_salvage))

    @property
    def clean(self) -> bool:
        return self.n_quarantined == 0

    def render(self) -> str:
        lines = [f"doctor: {self.run_dir}"]
        for f in self.files:
            lines.append(f"  {f.name}: {f.records} record(s)"
                         f" ({f.legacy} legacy),"
                         f" {f.quarantined} quarantined")
        for circuit, seed, phase in self.salvageable:
            lines.append(f"  salvage: {circuit} seed {seed} resumable "
                         f"from phase {phase}")
        for name in self.quarantined_salvage:
            lines.append(f"  salvage: {name} quarantined (corrupt)")
        for name in self.orphaned_salvage:
            lines.append(f"  salvage: {name} removed "
                         f"(orphaned -- job already checkpointed)")
        verdict = ("clean" if self.clean else
                   f"{self.n_quarantined} corrupt record(s) quarantined"
                   f" -> {quarantine_dir(self.run_dir)}")
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_dir": self.run_dir,
            "files": [vars(f).copy() for f in self.files],
            "salvageable": [list(s) for s in self.salvageable],
            "quarantined_salvage": list(self.quarantined_salvage),
            "orphaned_salvage": list(self.orphaned_salvage),
            "clean": self.clean,
        }


def doctor(run_dir: Union[str, Path]) -> DoctorReport:
    """Verify and repair a run dir.

    * Every ``runs.jsonl`` / ``journal.jsonl`` line is CRC-verified;
      corrupt lines move to ``quarantine/`` and the store is rewritten
      without them (so a later ``--resume`` recomputes exactly those
      jobs).
    * Every salvage file is verified; corrupt ones are quarantined,
      ones whose job already has a completed checkpoint are removed as
      orphans, and the rest are reported as resumable partial work.
    """
    run_dir = Path(run_dir)
    report = DoctorReport(run_dir=str(run_dir))

    checkpointed = set()
    for name in ("runs.jsonl", "journal.jsonl"):
        path = run_dir / name
        payloads, n_bad = load_jsonl(path, run_dir, repair=True)
        legacy = 0
        if path.exists():
            # Count legacy records for the report (cheap second pass
            # over the already-repaired file).
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        _, version = decode_line(line)
                        legacy += int(version == 0)
                    except CorruptLine:  # pragma: no cover - repaired
                        pass
        report.files.append(FileReport(name, records=len(payloads),
                                       legacy=legacy,
                                       quarantined=n_bad))
        if name == "runs.jsonl":
            for payload in payloads:
                if "circuit" in payload and "seed" in payload:
                    checkpointed.add((payload["circuit"],
                                      payload["seed"]))

    store = SalvageStore(run_dir)
    for path in store.jobs():
        try:
            payload, _version = decode_line(path.read_text().strip())
        except CorruptLine:
            store.quarantine(path)
            report.quarantined_salvage.append(path.name)
            continue
        circuit = payload.get("circuit", "?")
        seed = int(payload.get("seed", 0))
        if (circuit, seed) in checkpointed:
            path.unlink()
            report.orphaned_salvage.append(path.name)
            continue
        partial = PartialRun.from_salvage(payload, reason="salvage")
        report.salvageable.append((circuit, seed,
                                   partial.phases_completed))
    return report

"""Static analysis for scan circuits: lint, fault space, sanitizer.

Three halves (see DESIGN.md sections 10 and 15):

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.xinit` -- structural
  lint passes plus a ternary reachability analysis that decides, without
  simulating a single test vector, whether a circuit can be driven out of
  the all-X reset state (and if not, *which* flip-flops are stuck and
  why).
* :mod:`repro.analysis.faultspace` / :mod:`repro.analysis.scoap` -- the
  static fault-space analyzer: structural equivalence classes, a
  dominance graph (ordering only), SCOAP testability measures, and
  untestability proofs for faults on constant or unobservable lines.
  :mod:`repro.analysis.determinism` polices the repository's own
  result-shaping source for ambient randomness and wall-clock reads.
* :mod:`repro.analysis.sanitizer` -- runtime invariant checks for the
  wide-word fault-simulation engines, armed by ``REPRO_SANITIZE=1``.

Everything user-facing funnels through :func:`lint_netlist` /
:func:`lint_bench_text` (diagnostics) and :func:`analyze_faultspace`
(the :class:`FaultSpaceReport`).
"""

from .determinism import DeterminismFinding, lint_paths as \
    lint_determinism
from .diagnostics import (ERROR, INFO, WARNING, Diagnostic, LintReport,
                          diagnostic_from_dict)
from .faultspace import (FaultSpaceReport, UntestableProof,
                         analyze_faultspace)
from .rules import lint_bench_path, lint_bench_text, lint_netlist
from .scoap import ScoapMeasures, compute_scoap
from .xinit import XInitResult, analyze_xinit
from . import sanitizer

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "LintReport",
    "diagnostic_from_dict",
    "lint_netlist",
    "lint_bench_text",
    "lint_bench_path",
    "FaultSpaceReport",
    "UntestableProof",
    "analyze_faultspace",
    "ScoapMeasures",
    "compute_scoap",
    "DeterminismFinding",
    "lint_determinism",
    "XInitResult",
    "analyze_xinit",
    "sanitizer",
]

"""Benchmark: regenerate the paper's Table 4 (at-speed lengths).

Expected shape: the proposed procedure yields *much* longer at-speed
primary-input sequences than the [4] baseline (paper: often an order
of magnitude), and the random-T0 arm sits above [4] as well.
"""

from repro.experiments import tables


def test_table4(benchmark, suite_runs):
    table = benchmark(tables.table4, suite_runs)
    print()
    print(table.render())
    prop_wins = 0
    rand_wins = 0
    for row in table.rows:
        circuit, ave4, rng4, avep, rngp, aver, rngr = row
        assert avep >= ave4, circuit
        if avep >= 2 * ave4:
            prop_wins += 1
        if aver >= ave4:
            rand_wins += 1
    # The shape, not exact factors: proposed is >=2x on most circuits.
    assert prop_wins >= len(table.rows) // 2
    assert rand_wins >= len(table.rows) // 2

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "s298" in out

    def test_circuit_s27(self, capsys):
        assert main(["circuit", "s27"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 5" in out
        assert "Engine counters" in out

    def test_circuit_engine_width_flags(self, capsys):
        assert main(["circuit", "s27", "--engine", "interp",
                     "--width", "16"]) == 0
        out = capsys.readouterr().out
        assert "Engine counters" in out
        # The chunked run packs at most 15 faulty machines per word.
        assert "Table 1" in out

    def test_width_auto_accepted(self):
        args = build_parser().parse_args(
            ["circuit", "s27", "--width", "auto"])
        assert args.width == "auto"
        args = build_parser().parse_args(
            ["circuit", "s27", "--width", "64"])
        assert args.width == 64

    def test_width_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--width", "huge"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--width", "1"])

    def test_engine_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--engine", "fpga"])

    def test_candidate_scan_flag(self, capsys):
        args = build_parser().parse_args(["circuit", "s27"])
        assert args.candidate_scan == "lanes"
        args = build_parser().parse_args(
            ["circuit", "s27", "--candidate-scan", "scalar"])
        assert args.candidate_scan == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--candidate-scan", "vectorized"])

    def test_circuit_candidate_scan_scalar_runs(self, capsys):
        assert main(["circuit", "s27", "--candidate-scan",
                     "scalar"]) == 0
        out = capsys.readouterr().out
        assert "Engine counters" in out

    def test_circuit_unknown(self, capsys):
        assert main(["circuit", "sXXX"]) == 2
        err = capsys.readouterr().err
        assert "unknown circuit" in err
        assert "s298" in err  # the valid names are listed

    def test_tables_unknown_circuit(self, capsys):
        assert main(["tables", "--circuits", "s27", "sXXX"]) == 2
        assert "unknown circuit" in capsys.readouterr().err

    def test_resume_requires_run_dir(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["tables", "--resume"])
        assert exc.value.code == 2

    def test_tables_single_circuit_json(self, capsys, tmp_path):
        out_json = tmp_path / "tables.json"
        assert main(["tables", "--circuits", "s27",
                     "--json", str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        titles = [t["title"] for t in data]
        assert any("Table 3" in t for t in titles)

    def test_tables_run_dir_then_resume(self, capsys, tmp_path):
        run_dir = tmp_path / "campaign"
        assert main(["tables", "--circuits", "s27",
                     "--run-dir", str(run_dir)]) == 0
        assert (run_dir / "runs.jsonl").exists()
        capsys.readouterr()
        assert main(["tables", "--circuits", "s27",
                     "--run-dir", str(run_dir), "--resume"]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out
        journal = (run_dir / "journal.jsonl").read_text().splitlines()
        statuses = [json.loads(line)["status"] for line in journal]
        assert statuses == ["ok", "skipped-resume"]

    def test_failed_job_exits_nonzero(self, capsys, monkeypatch):
        from repro.experiments import harness

        def chaos(spec, attempt):
            return "crash"

        original = harness.HarnessConfig

        def patched(*args, **kwargs):
            config = original(*args, **kwargs)
            config.chaos = chaos
            config.isolate = False
            return config

        monkeypatch.setattr("repro.cli.HarnessConfig", patched)
        assert main(["circuit", "s27"]) == 1
        captured = capsys.readouterr()
        assert "Job summary" in captured.out
        assert "ultimately failed" in captured.err

    def test_bench_info(self, capsys):
        assert main(["bench-info"]) == 0
        assert "pytest" in capsys.readouterr().out

    def test_partial_command(self, capsys):
        assert main(["partial", "s27"]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "cut" in out

    def test_export_roundtrip(self, capsys, tmp_path):
        from repro.core import testio
        out_file = tmp_path / "s27.rtp"
        assert main(["export", "s27", "-o", str(out_file)]) == 0
        program = testio.load(out_file)
        assert program.n_state_vars == 3
        assert "replay OK" in capsys.readouterr().out

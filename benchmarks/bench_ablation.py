"""Benchmarks (ablations A1, A2): the paper's design choices.

A1 -- Section 3.1's scan-out rule: the paper selects the *earliest*
safe scan-out time (``i0``) and reports that the alternative
max-coverage rule (``i1``) "results in input sequences that are
significantly longer, while the increase in the number of detected
faults is marginal".  We reproduce that comparison.

A2 -- Section 3.3's iteration of Phases 1+2: one iteration versus the
full selected/unselected loop.

A3 -- the [7] improvement the paper cites but does not use: transfer
sequences inserted where direct combinations fail.  Expected shape:
never worse than plain [4], sometimes strictly better.
"""

import pytest

from repro import api
from repro.atpg import comb_set as comb_set_mod, seqgen
from repro.circuits import suite as suite_mod
from repro.core.combine import static_compact
from repro.core.proposed import run as run_proposed
from repro.core.scan_test import ScanTestSet, single_vector_test


@pytest.fixture(scope="module")
def setup():
    profile = suite_mod.profile("b06")
    netlist = profile.build()
    wb = api.Workbench.for_netlist(netlist)
    comb = comb_set_mod.generate(wb.circuit, wb.faults, seed=1)
    t0 = seqgen.generate_sequence(
        wb.circuit, wb.faults, max_length=profile.seq_budget, seed=1,
        hints=[t.pi for t in comb.tests]).sequence
    return wb, comb, t0


def test_ablation_scanout_rule(benchmark, setup):
    """A1: earliest (i0) vs max-coverage (i1) scan-out selection."""
    wb, comb, t0 = setup

    def run_both():
        i0 = run_proposed(wb.sim, wb.comb_sim, t0, comb.tests,
                          run_phase4=False, scan_out_rule="earliest")
        i1 = run_proposed(wb.sim, wb.comb_sim, t0, comb.tests,
                          run_phase4=False, scan_out_rule="max_coverage")
        return i0, i1

    i0, i1 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nA1 scan-out rule: i0 len={i0.seq_length} "
          f"det={len(i0.seq_detected)} cycles={i0.initial_cycles()} | "
          f"i1 len={i1.seq_length} det={len(i1.seq_detected)} "
          f"cycles={i1.initial_cycles()}")
    # The paper's observation: i1 sequences are no shorter, and the
    # detection difference is marginal.
    assert i1.seq_length >= i0.seq_length
    assert len(i1.seq_detected) - len(i0.seq_detected) <= \
        0.05 * len(wb.faults) + 5


def test_ablation_iterations(benchmark, setup):
    """A2: a single Phase 1+2 iteration vs the full loop."""
    wb, comb, t0 = setup

    def run_both():
        once = run_proposed(wb.sim, wb.comb_sim, t0, comb.tests,
                            run_phase4=False, max_iterations=1)
        full = run_proposed(wb.sim, wb.comb_sim, t0, comb.tests,
                            run_phase4=False)
        return once, full

    once, full = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nA2 iterations: 1 iter cycles={once.initial_cycles()} "
          f"len={once.seq_length} | full ({len(full.iterations)} iters) "
          f"cycles={full.initial_cycles()} len={full.seq_length}")
    # Iterating can only refine tau_seq (shorter or more detections).
    assert full.seq_length <= once.seq_length or \
        len(full.seq_detected) >= len(once.seq_detected)


def test_ablation_transfer_sequences(benchmark, setup):
    """A3: [4] with and without [7]-style transfer sequences."""
    wb, comb, _t0 = setup
    initial = ScanTestSet(
        len(wb.circuit.ff_ids),
        [single_vector_test(t.state, t.pi) for t in comb.tests])

    def run_both():
        plain = static_compact(wb.sim, initial)
        with_t = static_compact(wb.sim, initial, max_transfer=3,
                                transfer_pool=[t.pi for t in comb.tests])
        return plain, with_t

    plain, with_t = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nA3 transfers: [4] plain={plain.stats.final_cycles} "
          f"cycles ({plain.stats.final_tests} tests) | with [7] "
          f"transfers={with_t.stats.final_cycles} cycles "
          f"({with_t.stats.final_tests} tests, "
          f"{with_t.stats.transfers_used} transfers)")
    assert with_t.stats.final_cycles <= plain.stats.final_cycles

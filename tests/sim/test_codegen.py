"""Equivalence tests: code-generated engine vs the generic interpreter.

The two engines must produce bit-identical results for every
evaluation mode the simulators use -- plain good-machine runs, stem
injection, branch injection, multi-machine words.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import library, synth
from repro.sim import values as V
from repro.sim.codegen import generate_source
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit, simulate_sequence


def random_injections(circuit, rng, mask):
    """Random stems/branch dicts shaped like real fault chunks."""
    stems = {}
    branch = {}
    for _ in range(rng.randint(0, 4)):
        nid = rng.randrange(circuit.n_nets)
        m0 = rng.getrandbits(8) & mask
        m1 = rng.getrandbits(8) & mask & ~m0
        stems[nid] = (m0, m1)
    gate_outs = [out for _, out, fins in circuit.ops if fins]
    for _ in range(rng.randint(0, 3)):
        out = rng.choice(gate_outs)
        op, _, fins = next(o for o in circuit.ops if o[1] == out)
        pin = rng.randrange(len(fins))
        m0 = rng.getrandbits(8) & mask
        m1 = rng.getrandbits(8) & mask & ~m0
        branch.setdefault(out, []).append((pin, m0, m1))
    return stems, branch


def load_words(circuit, rng, mask):
    zero = [0] * circuit.n_nets
    one = [0] * circuit.n_nets
    for nid in list(circuit.pi_ids) + list(circuit.ff_ids):
        z = rng.getrandbits(9) & mask
        o = rng.getrandbits(9) & mask & ~z
        zero[nid], one[nid] = z, o
    return zero, one


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_random_frames_identical(self, seed):
        rng = random.Random(seed)
        net = synth.generate("cg", 4, 3, 4, 30, seed=seed % 40)
        generic = CompiledCircuit(net, engine="generic")
        fast = CompiledCircuit(net.copy(), engine="codegen")
        mask = (1 << rng.randint(1, 9)) - 1
        stems, branch = random_injections(generic, rng, mask)
        z1, o1 = load_words(generic, rng, mask)
        z2, o2 = list(z1), list(o1)
        generic.eval_frame(z1, o1, mask, stems, branch)
        fast.eval_frame(z2, o2, mask, stems, branch)
        assert z1 == z2
        assert o1 == o2

    def test_fault_sim_results_identical(self, s27):
        rng = random.Random(7)
        vectors = [V.random_binary_vector(4, rng) for _ in range(25)]
        init = V.vec("010")
        results = []
        for engine in ("generic", "codegen"):
            cc = CompiledCircuit(s27.copy(), engine=engine)
            fs = FaultSet.collapsed(cc.netlist)
            sim = FaultSimulator(cc, fs)
            results.append(sim.detect(vectors, init, early_exit=False))
        assert results[0] == results[1]

    def test_good_machine_identical(self):
        net = library.counter(4)
        rng = random.Random(1)
        vectors = [(rng.randint(0, 1),) for _ in range(20)]
        a = simulate_sequence(CompiledCircuit(net, engine="generic"),
                              vectors, (V.ZERO,) * 4)
        b = simulate_sequence(CompiledCircuit(net.copy(),
                                              engine="codegen"),
                              vectors, (V.ZERO,) * 4)
        assert a.po_frames == b.po_frames
        assert a.state_frames == b.state_frames


class TestMechanics:
    def test_source_is_valid_python(self, s27):
        cc = CompiledCircuit(s27, engine="generic")
        source = generate_source(cc)
        compile(source, "<test>", "exec")
        assert "def eval_frame" in source

    def test_unknown_engine_rejected(self, s27):
        with pytest.raises(ValueError, match="unknown engine"):
            CompiledCircuit(s27, engine="turbo")

    def test_default_is_codegen(self, s27):
        cc = CompiledCircuit(s27)
        assert cc.engine == "codegen"
        # Instance attribute shadows the class method.
        assert "eval_frame" in cc.__dict__

    def test_speedup_exists(self):
        """The whole point: the fast engine should not be slower."""
        import time
        net = synth.generate("perf", 5, 5, 10, 120, seed=9)
        rng = random.Random(2)
        vectors = [V.random_binary_vector(5, rng) for _ in range(120)]
        timings = {}
        for engine in ("generic", "codegen"):
            cc = CompiledCircuit(net.copy(), engine=engine)
            fs = FaultSet.collapsed(cc.netlist)
            sim = FaultSimulator(cc, fs)
            start = time.perf_counter()
            sim.detect(vectors, V.random_binary_vector(10, rng),
                       early_exit=False)
            timings[engine] = time.perf_counter() - start
        # Allow noise, but codegen must not be significantly slower.
        assert timings["codegen"] <= timings["generic"] * 1.15

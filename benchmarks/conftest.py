"""Shared benchmark fixtures.

The full experiment suite is run once per pytest session and shared by
every ``bench_table*`` file; each bench then times its table assembly
and prints the regenerated rows (compare them against the paper's
tables -- see EXPERIMENTS.md for the recorded side-by-side).

Engine knobs (mirroring the CLI's ``--engine/--width/--candidate-scan``)
apply to the shared suite run, so every table bench can be timed under
any backend combination:

* ``--repro-engine {codegen,interp,numpy,auto}`` /
  ``REPRO_BENCH_ENGINE``
* ``--repro-width {N,auto}`` / ``REPRO_BENCH_WIDTH``
* ``--repro-candidate-scan {scalar,lanes}`` /
  ``REPRO_BENCH_CANDIDATE_SCAN``

Set ``REPRO_BENCH_FULL=1`` to run all reproduced circuits instead of
the quick subset (slower by an order of magnitude).
"""

from __future__ import annotations

import os

import pytest

from repro.circuits import suite as suite_mod
from repro.core.phase1 import CANDIDATE_SCAN_MODES, DEFAULT_CANDIDATE_SCAN
from repro.experiments import run_suite


def pytest_addoption(parser):
    parser.addoption("--repro-full", action="store_true", default=False,
                     help="run the full circuit suite in benches")
    parser.addoption("--repro-engine",
                     choices=("codegen", "interp", "numpy", "auto"),
                     default=None,
                     help="evaluation backend for the suite run")
    parser.addoption("--repro-width", default=None, metavar="{N,auto}",
                     help="fault machines per word ('auto' or an int)")
    parser.addoption("--repro-candidate-scan",
                     choices=CANDIDATE_SCAN_MODES, default=None,
                     help="Phase-1 scan-in selection mode")


def _knob(request, option: str, env: str, default: str) -> str:
    """CLI option wins, then the environment variable, then default."""
    value = request.config.getoption(option)
    if value is None:
        value = os.environ.get(env) or default
    return value


@pytest.fixture(scope="session")
def suite_runs(request):
    """All per-circuit experiment results (computed once)."""
    full = (request.config.getoption("--repro-full")
            or os.environ.get("REPRO_BENCH_FULL") == "1")
    engine = _knob(request, "--repro-engine", "REPRO_BENCH_ENGINE",
                   "codegen")
    width = _knob(request, "--repro-width", "REPRO_BENCH_WIDTH", "auto")
    if width != "auto":
        width = int(width)
    candidate_scan = _knob(request, "--repro-candidate-scan",
                           "REPRO_BENCH_CANDIDATE_SCAN",
                           DEFAULT_CANDIDATE_SCAN)
    profiles = suite_mod.suite(quick=not full)
    return run_suite(profiles, seed=1, delay=True,
                     engine=engine, width=width,
                     candidate_scan=candidate_scan, verbose=True)

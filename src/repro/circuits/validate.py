"""Structural sanity checks beyond what :meth:`Netlist.compile` enforces.

``compile`` already rejects hard errors (undriven nets, combinational
cycles, bad arities).  :func:`check` reports softer structural issues
that usually indicate a modelling mistake: dangling nets, unused inputs,
flip-flops whose value can never be observed, and so on.  Each issue is
an :class:`Issue` with a severity and a message; :func:`assert_clean`
raises if any *error*-severity issue is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .netlist import Netlist

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str   # ERROR or WARNING
    code: str       # stable machine-readable code
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def check(net: Netlist) -> List[Issue]:
    """Run all structural checks and return the list of findings."""
    if not net.is_compiled():
        net.compile()
    issues: List[Issue] = []
    issues.extend(_check_dangling(net))
    issues.extend(_check_unused_inputs(net))
    issues.extend(_check_no_outputs(net))
    issues.extend(_check_duplicate_fanins(net))
    issues.extend(_check_unobservable_ffs(net))
    return issues


def assert_clean(net: Netlist, allow_warnings: bool = True) -> None:
    """Raise :class:`ValueError` when validation finds problems.

    With ``allow_warnings`` (default) only *error* findings raise.
    """
    issues = check(net)
    bad = [i for i in issues
           if i.severity == ERROR or not allow_warnings]
    if bad:
        raise ValueError("netlist validation failed:\n" +
                         "\n".join(str(i) for i in bad))


def _check_dangling(net: Netlist) -> List[Issue]:
    """Nets that drive nothing and are not primary outputs."""
    out = []
    po = set(net.outputs)
    for name in net.gates:
        if not net.fanout[name] and name not in po:
            out.append(Issue(WARNING, "dangling-net",
                             f"net {name!r} drives nothing and is not a PO"))
    return out


def _check_unused_inputs(net: Netlist) -> List[Issue]:
    out = []
    po = set(net.outputs)
    for pi in net.inputs:
        if not net.fanout[pi] and pi not in po:
            out.append(Issue(WARNING, "unused-input",
                             f"primary input {pi!r} is unused"))
    return out


def _check_no_outputs(net: Netlist) -> List[Issue]:
    if not net.outputs:
        return [Issue(ERROR, "no-outputs",
                      "circuit has no primary outputs")]
    return []


def _check_duplicate_fanins(net: Netlist) -> List[Issue]:
    """Repeated pins on one gate: legal but usually a mistake (and a
    source of undetectable faults)."""
    out = []
    for gate in net.gates.values():
        if len(set(gate.fanins)) != len(gate.fanins):
            out.append(Issue(WARNING, "duplicate-fanin",
                             f"gate {gate.name!r} has repeated fanins"))
    return out


def _check_unobservable_ffs(net: Netlist) -> List[Issue]:
    """Flip-flops outside every PO cone.

    With full scan they are still observable through scan-out, so this
    is only a warning -- but faults behind them are sequentially
    untestable without scan.
    """
    po_cone = set(net.transitive_fanin(net.outputs, stop_at_ffs=False))
    out = []
    for ff in net.flip_flops:
        if ff not in po_cone:
            out.append(Issue(WARNING, "ff-outside-po-cone",
                             f"flip-flop {ff!r} feeds no primary output "
                             f"(observable only via scan)"))
    return out

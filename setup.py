"""Legacy shim so offline environments without `wheel` can install -e."""

from setuptools import setup

setup()

"""Delay-defect (transition fault) analysis of scan test sets."""

from .transition import (TransitionFault, TransitionSim,
                         all_transition_faults)

__all__ = ["TransitionFault", "TransitionSim", "all_transition_faults"]

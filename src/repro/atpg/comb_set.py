"""Generation and compaction of the combinational test set ``C``.

The paper draws scan-in states and top-off tests from a *compact
combinational test set* ([9] for ISCAS-89; random-pattern selection for
ITC-99).  This module provides both flavours:

* :func:`generate` -- random-pattern phase (pattern-parallel fault
  simulation, keep only useful patterns) followed by a PODEM top-off for
  the random-resistant faults, then static compaction (reverse-order +
  greedy elimination).
* :func:`random_selected` -- pure random-pattern selection, the ITC-99
  recipe.

The result records per-fault classification (detected / redundant /
aborted), which downstream phases use to report *detectable* coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim import values as V
from ..sim.comb_sim import CombPatternSim, Pattern
from ..sim.faults import FaultSet
from ..sim.logicsim import CompiledCircuit
from .podem import ABORTED, Podem, REDUNDANT, TESTABLE


@dataclass
class CombTest:
    """One combinational test, split the way the paper uses it.

    ``state`` is the flip-flop part (the candidate scan-in vector
    ``c_js``); ``pi`` is the primary-input part (``c_ji``).  Both fully
    specified (X-filled at generation time).
    """

    state: V.Vector
    pi: V.Vector

    def as_pattern(self) -> Pattern:
        return (self.state, self.pi)


@dataclass
class CombSetResult:
    """A combinational test set plus its fault accounting.

    Attributes
    ----------
    tests:
        The compacted test set ``C``.
    detected:
        Fault indices detected by ``C``.
    redundant:
        Faults proven combinationally untestable by PODEM.
    aborted:
        Faults abandoned at the backtrack limit (counted as potentially
        detectable but uncovered).
    adi:
        Accidental Detection Index per fault (Pomeranz & Reddy,
        arXiv:0710.4637): how many random-phase patterns detected the
        fault while it was still undetected -- detections that happen
        *by chance*, not by targeting.  Faults absent from the map
        were never accidentally detected (random-resistant).  Purely
        advisory ordering data; it does not affect the test set.
    """

    tests: List[CombTest]
    detected: Set[int]
    redundant: Set[int] = field(default_factory=set)
    aborted: Set[int] = field(default_factory=set)
    adi: Dict[int, int] = field(default_factory=dict)

    @property
    def detectable(self) -> Set[int]:
        """Faults not proven redundant (the denominator for coverage)."""
        return self.detected | self.aborted

    def __len__(self) -> int:
        return len(self.tests)


def _random_pattern(n_ff: int, n_pi: int, rng: random.Random) -> Pattern:
    return (V.random_binary_vector(n_ff, rng),
            V.random_binary_vector(n_pi, rng))


def random_selected(
    circuit: CompiledCircuit,
    faults: FaultSet,
    seed: int = 0,
    max_patterns: int = 4096,
    block: int = 64,
    stale_blocks: int = 8,
    scan_positions=None,
) -> CombSetResult:
    """Select useful patterns out of a large random stream (ITC-99 style).

    Blocks of random patterns are fault simulated; a pattern is kept
    only if it detects at least one still-undetected fault.  Generation
    stops after ``max_patterns`` candidates or ``stale_blocks``
    consecutive blocks with no new detection.
    """
    rng = random.Random(seed)
    sim = CombPatternSim(circuit, faults, scan_positions=scan_positions)
    n_ff = (len(circuit.ff_ids) if scan_positions is None
            else len(scan_positions))
    n_pi = len(circuit.pi_ids)
    undetected: Set[int] = set(range(len(faults)))
    tests: List[CombTest] = []
    detected: Set[int] = set()
    adi: Dict[int, int] = {}
    stale = 0
    seen = 0
    while undetected and seen < max_patterns and stale < stale_blocks:
        patterns = [_random_pattern(n_ff, n_pi, rng) for _ in range(block)]
        seen += block
        hits = sim.detect_block(patterns, sorted(undetected))
        new_by_pattern: Dict[int, Set[int]] = {}
        for fid, pmask in hits.items():
            # Every random-pattern detection of a still-undetected
            # fault is accidental -- that popcount is the fault's ADI
            # contribution from this block.
            adi[fid] = adi.get(fid, 0) + bin(pmask).count("1")
            first = (pmask & -pmask).bit_length() - 1
            new_by_pattern.setdefault(first, set()).add(fid)
        if not hits:
            stale += 1
            continue
        stale = 0
        # Greedy within the block: keep patterns in first-detection order.
        for p in sorted(new_by_pattern):
            fresh = new_by_pattern[p] & undetected
            if not fresh:
                continue
            state, pi = patterns[p]
            tests.append(CombTest(state, pi))
            # Credit this pattern with everything it detects.
            full = sim.detect_single(patterns[p], sorted(undetected))
            detected |= full
            undetected -= full
    return CombSetResult(tests, detected, adi=adi)


def generate(
    circuit: CompiledCircuit,
    faults: FaultSet,
    seed: int = 0,
    random_patterns: int = 512,
    block: int = 64,
    backtrack_limit: int = 256,
    compaction_passes: int = 2,
    scan_positions=None,
    x_fill: str = "random",
) -> CombSetResult:
    """Full generation of a compact complete test set (the [9] stand-in).

    Random-pattern phase, PODEM top-off (classifying leftover faults as
    redundant or aborted), then :func:`compact_tests` passes.  With
    ``scan_positions`` the set targets a partial-scan chain: state
    parts cover only scanned flip-flops, and "redundant" means
    untestable by any single-frame partial-scan test.

    ``x_fill`` selects how PODEM's don't-cares are filled (see
    :func:`repro.sim.values.fill_x`); the detection guarantee holds
    under any strategy because X-fill only ever adds detections.  The
    default ``"random"`` keeps the historical output byte-identical.
    """
    rng = random.Random(seed)
    result = random_selected(circuit, faults, seed=seed,
                             max_patterns=random_patterns, block=block,
                             scan_positions=scan_positions)
    sim = CombPatternSim(circuit, faults, scan_positions=scan_positions)
    podem = Podem(circuit, faults, backtrack_limit=backtrack_limit,
                  scan_positions=scan_positions)
    undetected = set(range(len(faults))) - result.detected
    for fid in sorted(undetected):
        if fid in result.detected:
            continue
        outcome = podem.generate(fid)
        if outcome.status == TESTABLE:
            state, pi = outcome.pattern
            if scan_positions is not None:
                state = tuple(state[p] for p in sorted(scan_positions))
            test = CombTest(V.fill_x(state, rng, strategy=x_fill),
                            V.fill_x(pi, rng, strategy=x_fill))
            full = sim.detect_single(
                test.as_pattern(),
                sorted(set(range(len(faults))) - result.detected))
            if fid not in full:
                # X-fill can only add detections, never remove the
                # PODEM-guaranteed one; reaching here means a bug.
                raise AssertionError(
                    f"PODEM pattern lost its target fault {faults[fid]}")
            result.tests.append(test)
            result.detected |= full
        elif outcome.status == REDUNDANT:
            result.redundant.add(fid)
        else:
            assert outcome.status == ABORTED
            result.aborted.add(fid)
    for _ in range(compaction_passes):
        before = len(result.tests)
        result.tests = compact_tests(circuit, faults, result.tests,
                                     result.detected,
                                     scan_positions=scan_positions)
        if len(result.tests) == before:
            break
    return result


def compact_tests(
    circuit: CompiledCircuit,
    faults: FaultSet,
    tests: Sequence[CombTest],
    must_detect: Set[int],
    scan_positions=None,
) -> List[CombTest]:
    """Reverse-order static compaction of a combinational test set.

    Simulates the tests in reverse order with fault dropping and keeps
    only tests that detect at least one not-yet-credited fault; the kept
    set still detects all of ``must_detect``.
    """
    sim = CombPatternSim(circuit, faults, scan_positions=scan_positions)
    remaining = set(must_detect)
    kept: List[CombTest] = []
    for test in reversed(list(tests)):
        if not remaining:
            break
        hits = sim.detect_single(test.as_pattern(), sorted(remaining))
        if hits:
            kept.append(test)
            remaining -= hits
    if remaining:
        # Reverse-order pass lost coverage (ordering artefact): fall
        # back to the original set, which is known to be complete.
        return list(tests)
    kept.reverse()
    return kept

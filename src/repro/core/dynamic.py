"""Dynamic compaction baseline (the [1]-[3] family).

The procedures of Pradhan/Saxena [1] and Lee/Saluja [2,3] reduce test
application time for a *given* set of combinational tests by deciding,
during application, whether the next test's state can be produced by
functional clocking (one cycle per vector) instead of a scan operation
(``N_SV`` cycles).  Their decisions are made online, test by test,
without the global reordering freedom that static compaction enjoys --
which is why they trail [4] in the paper's Table 3.

This implementation keeps that structure:

1. pick the hardest still-uncovered fault; scan in the state of a
   combinational test that detects it and apply that test's input
   vector;
2. look for another *unused* combinational test whose still-needed
   faults are actually detected when its input vector is applied from
   the circuit's current state (a state-transfer opportunity); if one
   exists, apply it with the functional clock and continue, otherwise
   scan out;
3. repeat until all coverable faults are covered.

Extensions draw only on the given test set ``C`` (no free-form vector
search) and each extension must pay for itself immediately -- the
defining limitations of the dynamic approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..atpg.comb_set import CombTest
from ..sim import values as V
from ..sim.comb_sim import CombPatternSim
from ..sim.fault_sim import FaultSimulator
from .scan_test import ScanTest, ScanTestSet


@dataclass
class DynamicResult:
    """Result of the dynamic-compaction baseline."""

    test_set: ScanTestSet
    detected: Set[int]
    uncovered: Set[int]


def dynamic_compact(
    sim: FaultSimulator,
    comb_sim: CombPatternSim,
    comb_tests: Sequence[CombTest],
    target: Optional[Set[int]] = None,
    seed: int = 0,
    max_extension: Optional[int] = None,
) -> DynamicResult:
    """Build a test set with the dynamic (online) procedure.

    Parameters
    ----------
    sim, comb_sim:
        Sequential and pattern-parallel fault simulators.
    comb_tests:
        Complete combinational test set ``C``.
    target:
        Fault indices to cover; defaults to all faults.
    seed:
        Reserved for interface symmetry with the other baselines (the
        procedure itself is deterministic).
    max_extension:
        Cap on one test's functional-sequence length; defaults to
        ``N_SV`` (past that, a fresh scan-in costs no more).

    Raises
    ------
    ValueError
        If ``comb_tests`` is empty.
    """
    if not comb_tests:
        raise ValueError("combinational test set is empty")
    circuit = sim.circuit
    n_sv = sim.n_state_vars
    if target is None:
        target = set(range(len(sim.faults)))
    if max_extension is None:
        max_extension = max(n_sv, 2)

    order = sorted(target)
    detects: List[Set[int]] = [
        comb_sim.detect_single(t.as_pattern(), order) for t in comb_tests]
    coverable: Set[int] = set().union(*detects) if detects else set()
    uncovered = target - coverable
    remaining = set(coverable)
    n_of: Dict[int, int] = {}
    for det in detects:
        for fid in det:
            n_of[fid] = n_of.get(fid, 0) + 1

    unused = set(range(len(comb_tests)))
    tests: List[ScanTest] = []
    detected: Set[int] = set()

    while remaining:
        seed_fault = min(remaining, key=lambda f: (n_of[f], f))
        from_unused = [i for i in sorted(unused)
                       if seed_fault in detects[i]]
        if from_unused:
            seed_index = from_unused[0]
        else:
            seed_index = next(i for i, det in enumerate(detects)
                              if seed_fault in det)
        unused.discard(seed_index)
        start = comb_tests[seed_index]
        scan_in = tuple(start.state)
        vectors: List[V.Vector] = [tuple(start.pi)]
        pending = set(remaining)

        while len(vectors) < max_extension:
            # Only count gains this trial would keep when scanned out
            # right here -- the online procedure commits as it goes.
            so_far = sim.detect(vectors, scan_in, target=sorted(pending),
                                early_exit=False)
            extension = _find_transfer(sim, scan_in, vectors, detects,
                                       comb_tests, unused,
                                       pending - so_far)
            if extension is None:
                break
            index, _ = extension
            unused.discard(index)
            vectors.append(tuple(comb_tests[index].pi))

        # Final accounting: what the finished test actually detects
        # (extensions can move the scan-out past an earlier capture, so
        # interim credits are never trusted).
        final = sim.detect(vectors, scan_in, target=sorted(remaining),
                           early_exit=False)
        if not final and len(vectors) > 1:
            # Guarantee progress: fall back to the bare seed test,
            # which detects its seed fault by construction.
            vectors = [tuple(start.pi)]
            final = sim.detect(vectors, scan_in,
                               target=sorted(remaining),
                               early_exit=False)
        if not final:
            # The seed fault is combinationally detected by this test;
            # reaching here means it was already covered elsewhere.
            remaining.discard(seed_fault)
            continue
        remaining -= final
        detected |= final
        tests.append(ScanTest(scan_in, tuple(vectors)))

    test_set = ScanTestSet(n_sv, tests)
    return DynamicResult(test_set, detected, uncovered)


def _find_transfer(
    sim: FaultSimulator,
    scan_in: V.Vector,
    vectors: List[V.Vector],
    detects: List[Set[int]],
    comb_tests: Sequence[CombTest],
    unused: Set[int],
    remaining: Set[int],
):
    """First unused test whose needed faults survive a functional
    application from the current state.

    Returns ``(test_index, gained_faults)`` or ``None``.  "Needed"
    means faults of that test still uncovered; *all* of them must be
    detected by the extended sequence (with a scan-out right after the
    candidate) for the transfer to be taken -- the online procedures
    commit a test entirely or not at all.
    """
    for index in sorted(unused):
        needed = detects[index] & remaining
        if not needed:
            unused.discard(index)
            continue
        trial = vectors + [tuple(comb_tests[index].pi)]
        gained = sim.detect(trial, scan_in, target=sorted(needed),
                            early_exit=True)
        if needed <= gained:
            return index, gained
    return None

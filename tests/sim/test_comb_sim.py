"""Tests for the pattern-parallel combinational fault simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import values as V
from repro.sim.comb_sim import CombPatternSim
from repro.sim.fault_sim import FaultSimulator


def random_patterns(n_ff, n_pi, count, seed):
    rng = random.Random(seed)
    return [(V.random_binary_vector(n_ff, rng),
             V.random_binary_vector(n_pi, rng)) for _ in range(count)]


class TestAgainstSequentialSim:
    """A length-1 scan test and a combinational pattern are the same
    thing; both simulators must agree fault for fault."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_pattern_equivalence(self, s27_bench, seed):
        wb = s27_bench
        csim = CombPatternSim(wb.circuit, wb.faults)
        (state, pi), = random_patterns(3, 4, 1, seed)
        comb = csim.detect_single((state, pi))
        seq = wb.sim.detect([pi], state, early_exit=False)
        assert comb == seq

    def test_block_equals_singles(self, s27_bench):
        wb = s27_bench
        csim = CombPatternSim(wb.circuit, wb.faults)
        patterns = random_patterns(3, 4, 10, seed=7)
        block = csim.detect_block(patterns)
        for p, pattern in enumerate(patterns):
            singles = csim.detect_single(pattern)
            from_block = {fid for fid, mask in block.items()
                          if mask & (1 << p)}
            assert from_block == singles

    def test_synthetic_circuit(self, small_bench):
        wb = small_bench
        csim = CombPatternSim(wb.circuit, wb.faults)
        n_ff = len(wb.circuit.ff_ids)
        n_pi = len(wb.circuit.pi_ids)
        for state, pi in random_patterns(n_ff, n_pi, 5, seed=3):
            assert csim.detect_single((state, pi)) == \
                wb.sim.detect([pi], state, early_exit=False)


class TestInterface:
    def test_block_too_large_rejected(self, s27_bench):
        wb = s27_bench
        csim = CombPatternSim(wb.circuit, wb.faults, block=4)
        with pytest.raises(ValueError, match="exceeds width"):
            csim.detect_block(random_patterns(3, 4, 5, 0))

    def test_target_restriction(self, s27_bench):
        wb = s27_bench
        csim = CombPatternSim(wb.circuit, wb.faults)
        pattern = random_patterns(3, 4, 1, 5)[0]
        full = csim.detect_single(pattern)
        if full:
            some = sorted(full)[:2]
            assert csim.detect_single(pattern, some) == set(some)

    def test_good_block_reusable(self, s27_bench):
        wb = s27_bench
        csim = CombPatternSim(wb.circuit, wb.faults)
        patterns = random_patterns(3, 4, 6, 9)
        good = csim.good_block(patterns)
        a = csim.detect_block(patterns, good=good)
        b = csim.detect_block(patterns)
        assert a == b

    def test_x_values_in_pattern_are_pessimistic(self, s27_bench):
        wb = s27_bench
        csim = CombPatternSim(wb.circuit, wb.faults)
        all_x = ((V.X,) * 3, (V.X,) * 4)
        assert csim.detect_single(all_x) == set()

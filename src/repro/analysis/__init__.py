"""Static analysis for scan circuits: netlist lint and engine sanitizer.

Two halves (see DESIGN.md section 10):

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.xinit` -- structural
  lint passes plus a ternary reachability analysis that decides, without
  simulating a single test vector, whether a circuit can be driven out of
  the all-X reset state (and if not, *which* flip-flops are stuck and
  why).
* :mod:`repro.analysis.sanitizer` -- runtime invariant checks for the
  wide-word fault-simulation engines, armed by ``REPRO_SANITIZE=1``.

Everything user-facing funnels through :func:`lint_netlist` /
:func:`lint_bench_text` and the :class:`LintReport` they return.
"""

from .diagnostics import (ERROR, INFO, WARNING, Diagnostic, LintReport,
                          diagnostic_from_dict)
from .rules import lint_bench_path, lint_bench_text, lint_netlist
from .xinit import XInitResult, analyze_xinit
from . import sanitizer

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "LintReport",
    "diagnostic_from_dict",
    "lint_netlist",
    "lint_bench_text",
    "lint_bench_path",
    "XInitResult",
    "analyze_xinit",
    "sanitizer",
]

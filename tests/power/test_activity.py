"""Tests for the bit-parallel switching-activity engine."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.power import activity
from repro.power.activity import (ActivityEngine, PowerReport, SetPower,
                                  SetPowerSummary, scan_in_wtm,
                                  scan_out_wtm)
from repro.core.scan_test import ScanTest, single_vector_test
from repro.sim import values as V
from repro.sim.counters import SimCounters

scan_vectors = st.lists(st.sampled_from([V.ZERO, V.ONE, V.X]),
                        min_size=1, max_size=40).map(tuple)


class TestShiftWtm:
    """Hand-computed WTM values under the repo's chain convention."""

    def test_no_transitions(self):
        assert scan_in_wtm(V.vec("0000")) == 0
        assert scan_out_wtm(V.vec("1111")) == 0

    def test_single_vector_chain(self):
        assert scan_in_wtm(V.vec("1")) == 0
        assert scan_out_wtm(V.vec("0")) == 0

    def test_alternating(self):
        # 0110: transitions at k=0 (w 1) and k=2 (w 3) -> WTM_in 4;
        # scan-out weights are mirrored: (4-1-0) + (4-1-2) = 4.
        assert scan_in_wtm(V.vec("0110")) == 4
        assert scan_out_wtm(V.vec("0110")) == 4

    def test_asymmetric_weights(self):
        # 10000: one transition at k=0 -> in-weight 1, out-weight 4.
        assert scan_in_wtm(V.vec("10000")) == 1
        assert scan_out_wtm(V.vec("10000")) == 4

    def test_x_adjacent_pairs_score_zero(self):
        assert scan_in_wtm(V.vec("1x0")) == 0
        assert scan_out_wtm(V.vec("1x0")) == 0
        # The fully-specified pair still counts.
        assert scan_in_wtm(V.vec("10x")) == 1

    @given(scan_vectors)
    def test_matches_scalar_shadow(self, vec):
        assert scan_in_wtm(vec) == activity._scalar_wtm_in(vec)
        assert scan_out_wtm(vec) == activity._scalar_wtm_out(vec)

    @given(scan_vectors)
    def test_reversal_swaps_in_and_out(self, vec):
        """The weight profiles are mirror images of each other."""
        assert scan_in_wtm(vec) == scan_out_wtm(tuple(reversed(vec)))


class TestEngine:
    def _tests(self, wb, comb, n=4):
        return [single_vector_test(t.state, t.pi)
                for t in comb.tests[:n]]

    def test_capture_matches_scalar_shadow(self, s27_bench, s27_comb):
        wb = s27_bench
        state = s27_comb.tests[0].state
        vectors = tuple(t.pi for t in s27_comb.tests[:4])
        test = ScanTest(state, vectors)
        engine = ActivityEngine(wb.circuit)
        power = engine.test_power(test)
        toggles = activity._scalar_capture_toggles(wb.circuit, test)
        assert power.frames == len(vectors)
        assert power.total_capture == sum(toggles)
        assert power.peak_capture == max(toggles)

    def test_single_vector_scores_zero_capture(self, s27_bench,
                                               s27_comb):
        engine = ActivityEngine(s27_bench.circuit)
        power = engine.test_power(self._tests(s27_bench, s27_comb)[0])
        assert power.frames == 1
        assert power.total_capture == 0
        assert power.peak_capture == 0

    def test_scan_out_measured_on_final_state(self, s27_bench,
                                              s27_comb):
        from repro.sim.logicsim import simulate_sequence
        wb = s27_bench
        test = self._tests(wb, s27_comb)[0]
        response = simulate_sequence(wb.circuit, list(test.vectors),
                                     test.scan_in)
        power = ActivityEngine(wb.circuit).test_power(test)
        assert power.scan_out_wtm == scan_out_wtm(response.final_state)

    def test_results_cached_per_test(self, s27_bench, s27_comb):
        counters = SimCounters()
        engine = ActivityEngine(s27_bench.circuit, counters)
        test = self._tests(s27_bench, s27_comb)[0]
        engine.test_power(test)
        words = counters.power_words
        assert engine.test_power(test) is engine.test_power(test)
        assert counters.power_words == words  # no re-simulation

    def test_counters_bumped(self, s27_bench, s27_comb):
        counters = SimCounters()
        engine = ActivityEngine(s27_bench.circuit, counters)
        tests = self._tests(s27_bench, s27_comb)
        engine.set_power(tests)
        assert counters.power_passes == 1
        assert counters.power_words == sum(len(t.vectors)
                                           for t in tests)
        assert counters.power_s >= 0.0

    def test_sanitized_run_agrees(self, s27_bench, s27_comb,
                                  monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        plain = ActivityEngine(s27_bench.circuit)
        armed = ActivityEngine(s27_bench.circuit)
        for test in self._tests(s27_bench, s27_comb):
            assert armed.test_power(test) == plain.test_power(test)


class TestSummaries:
    def _power(self, si, so, peak, total, frames):
        return activity.TestPower(scan_in_wtm=si, scan_out_wtm=so,
                                  peak_capture=peak,
                                  total_capture=total, frames=frames)

    def test_peak_shift_is_max_of_in_and_out(self):
        assert self._power(3, 7, 0, 0, 1).peak_shift_wtm == 7
        assert self._power(9, 2, 0, 0, 1).peak_shift_wtm == 9

    def test_set_summary_peaks_and_averages(self):
        power = SetPower(tests=[self._power(4, 2, 5, 8, 3),
                                self._power(1, 6, 9, 9, 2)])
        summary = power.summary()
        assert summary.tests == 2
        assert summary.peak_shift_wtm == 6
        assert summary.avg_shift_wtm == pytest.approx(5.0)
        assert summary.peak_capture == 9
        assert summary.avg_capture == pytest.approx(7.0)

    def test_empty_set_summary(self):
        summary = SetPower(tests=[]).summary()
        assert summary.tests == 0
        assert summary.peak_shift_wtm == 0
        assert summary.avg_shift_wtm == 0.0

    def test_summary_dict_roundtrip(self):
        summary = SetPower(tests=[self._power(4, 2, 5, 8, 3)]).summary()
        again = SetPowerSummary.from_dict(summary.as_dict())
        assert again == summary

    def test_report_dict_roundtrip(self):
        report = PowerReport(x_fill="adjacent", budget=12.5)
        report.sets["seqgen"] = SetPower(
            tests=[self._power(4, 2, 5, 8, 3)]).summary()
        again = PowerReport.from_dict(report.as_dict())
        assert again.x_fill == "adjacent"
        assert again.budget == 12.5
        assert again.sets == report.sets

    def test_report_from_legacy_dict(self):
        report = PowerReport.from_dict({})
        assert report.x_fill == "random"
        assert report.budget is None
        assert report.sets == {}

"""Failure-injection tests: the library must degrade loudly and
predictably when inputs are wrong or degenerate."""

import pytest

from repro import api
from repro.atpg.comb_set import CombTest
from repro.circuits.netlist import Netlist
from repro.core.proposed import run as run_proposed
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.core.combine import static_compact
from repro.core.topoff import top_off
from repro.sim import values as V


class TestDegenerateCircuits:
    def test_single_gate_circuit_full_flow(self):
        """The minimal sequential circuit survives the whole pipeline."""
        net = Netlist("tiny")
        net.add_input("a")
        net.add_dff("q", "d")
        net.add_gate("d", "NAND", ["a", "q"])
        net.add_output("d")
        net.compile()
        result = api.compact_tests(net, seed=1, t0_length=16)
        assert result.final_detected
        final = result.compacted_set or result.test_set
        assert final.clock_cycles() > 0

    def test_constant_output_circuit(self):
        """A circuit whose PO is constant: nearly everything redundant,
        nothing crashes."""
        net = Netlist("const")
        net.add_input("a")
        net.add_dff("q", "d")
        net.add_gate("na", "NOT", ["a"])
        net.add_gate("d", "AND", ["a", "na"])   # constant 0
        net.add_gate("o", "OR", ["d", "q"])
        net.add_output("o")
        net.compile()
        comb = api.generate_comb_set(net, seed=1)
        assert comb.redundant  # the constant cone is untestable
        # With at least one test, the flow still runs.
        if comb.tests:
            result = api.compact_tests(net, seed=1, t0_length=10,
                                       comb_tests=comb.tests)
            assert result.final_detected >= set()


class TestCorruptedInputs:
    def test_incomplete_comb_set_leaves_uncovered(self, s27_bench,
                                                  s27_comb):
        """With a crippled C, Phase 3 must report what it cannot do --
        not silently claim coverage."""
        wb = s27_bench
        crippled = s27_comb.tests[:1]
        result = api.compact_tests(wb.netlist, seed=1, t0_length=5,
                                   comb_tests=crippled, workbench=wb)
        # Claimed coverage must still be real.
        covered = set()
        for test in (result.compacted_set or result.test_set):
            covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                     early_exit=False)
        assert result.final_detected <= covered

    def test_wrong_width_scan_in(self, s27_bench):
        wb = s27_bench
        with pytest.raises(ValueError, match="state width"):
            wb.sim.detect([V.vec("0000")], (V.ZERO,))

    def test_wrong_width_vector(self, s27_bench):
        wb = s27_bench
        with pytest.raises(ValueError):
            wb.sim.detect([V.vec("00")], V.vec("000"))

    def test_topoff_with_empty_candidates(self, s27_bench):
        result = top_off(s27_bench.comb_sim, [], {1, 2, 3})
        assert result.uncovered == {1, 2, 3}
        assert result.tests == []

    def test_combine_single_test_noop(self, s27_bench):
        wb = s27_bench
        single = ScanTestSet(3, [ScanTest(V.vec("000"),
                                          (V.vec("1111"),))])
        result = static_compact(wb.sim, single)
        assert len(result.test_set) == 1

    def test_proposed_rejects_x_heavy_t0(self, s27_bench, s27_comb):
        """An all-X T0 is legal 3-valued input: detects nothing, and
        the pipeline still completes via Phase 3."""
        wb = s27_bench
        t0 = [V.all_x(4)] * 4
        result = run_proposed(wb.sim, wb.comb_sim, t0, s27_comb.tests)
        assert len(result.t0_detected) == 0
        assert result.final_detected  # phase 3 carried the coverage


class TestHarnessDegradation:
    """The experiment layer must survive failing circuit jobs: keep the
    survivors, annotate the casualties, never raise."""

    def test_campaign_survives_one_crashing_job(self, tmp_path):
        from repro.experiments import all_tables
        from repro.experiments.harness import (HarnessConfig, JobSpec,
                                               run_jobs)

        def chaos(spec, attempt):
            return "crash" if spec.circuit == "b02" else None

        specs = [JobSpec("s27", with_baselines=False),
                 JobSpec("b02", with_baselines=False)]
        outcome = run_jobs(specs, HarnessConfig(isolate=False,
                                                run_dir=tmp_path,
                                                chaos=chaos))
        assert not outcome.ok
        assert [r.name for r in outcome.runs] == ["s27"]
        rendered = [t.render()
                    for t in all_tables(outcome.runs,
                                        failures=outcome.failures)]
        assert all("s27" in text for text in rendered)
        assert all("FAILED(" in text for text in rendered)

    def test_run_circuit_by_name_unknown(self):
        from repro.experiments import run_circuit_by_name
        with pytest.raises(KeyError, match="unknown suite circuit"):
            run_circuit_by_name("sXXX")


class TestApiGuards:
    def test_unknown_source(self, s27):
        with pytest.raises(ValueError):
            api.compact_tests(s27, t0_source="telepathy")

    def test_comb_test_types(self, s27_bench):
        """Hand-built CombTests work through the whole API."""
        wb = s27_bench
        tests = [CombTest(V.vec("000"), V.vec("1111")),
                 CombTest(V.vec("111"), V.vec("0000")),
                 CombTest(V.vec("010"), V.vec("1010")),
                 CombTest(V.vec("101"), V.vec("0101"))]
        result = api.compact_tests(wb.netlist, seed=1, t0_length=8,
                                   comb_tests=tests, workbench=wb)
        assert result.added_tests <= len(tests)

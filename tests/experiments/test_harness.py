"""Chaos-injection tests for the resilient experiment harness.

Every failure mode the harness defends against is forced
deterministically through ``HarnessConfig.chaos``: worker crashes,
hard exits, hangs (killed by the timeout), and corrupt checkpoint
lines on resume.  Subprocess cases use the cheap s27/b02 jobs with a
single arm to keep the suite fast.
"""

import json

import pytest

from repro.circuits import suite
from repro.experiments import harness, reporting, runner, tables
from repro.experiments.harness import (HarnessConfig, JobRecord, JobSpec,
                                       RunStore, run_jobs,
                                       run_suite_resilient)


def _spec(circuit="s27", **kw):
    kw.setdefault("arms", ("random",))
    kw.setdefault("with_baselines", False)
    return JobSpec(circuit, seed=1, **kw)


def _cfg(**kw):
    kw.setdefault("backoff_base", 0.01)
    return HarnessConfig(**kw)


@pytest.fixture(scope="module")
def s27_full_run():
    return runner.run_circuit(suite.profile("s27"), seed=1,
                              delay=True)


class TestSerialization:
    def test_roundtrip_through_json(self, s27_full_run):
        blob = json.dumps(reporting.run_to_dict(s27_full_run))
        back = reporting.run_from_dict(json.loads(blob))
        assert back.name == "s27"
        assert back.n_faults == s27_full_run.n_faults
        assert back.transition == s27_full_run.transition
        for source in ("seqgen", "random"):
            orig = s27_full_run.arms[source].result
            rest = back.arms[source].result
            assert rest.final_detected == orig.final_detected
            assert rest.initial_cycles() == orig.initial_cycles()
            assert rest.compacted_cycles() == orig.compacted_cycles()
        assert back.baseline4.stats == s27_full_run.baseline4.stats
        assert back.dynamic.detected == s27_full_run.dynamic.detected

    def test_roundtrip_preserves_delay_report(self, s27_full_run):
        """The at-speed report survives the JSON checkpoint verbatim;
        legacy checkpoints without the key load with delay=None."""
        assert s27_full_run.delay is not None
        blob = json.dumps(reporting.run_to_dict(s27_full_run))
        back = reporting.run_from_dict(json.loads(blob))
        assert back.delay is not None
        assert back.delay.as_dict() == s27_full_run.delay.as_dict()
        assert back.delay.spec == s27_full_run.delay.spec
        legacy = reporting.run_to_dict(s27_full_run)
        del legacy["delay"]
        assert reporting.run_from_dict(legacy).delay is None

    def test_roundtrip_preserves_counters(self, s27_full_run):
        assert s27_full_run.counters  # the runner collected them
        assert s27_full_run.counters["words"] > 0
        back = reporting.run_from_dict(
            reporting.run_to_dict(s27_full_run))
        assert back.counters == s27_full_run.counters

    def test_counters_table_renders(self, s27_full_run):
        table = reporting.engine_counters_table([s27_full_run])
        text = table.render()
        assert "mach/word" in text
        assert "p1_s" in text and "p4_s" in text
        assert "s27" in text

    def test_phase_timers_collected_and_roundtrip(self, s27_full_run):
        counters = s27_full_run.counters
        # Every phase ran, so every timer accumulated wall clock.
        for key in ("phase1_s", "phase2_s", "phase3_s", "phase4_s"):
            assert counters[key] > 0.0
        back = reporting.run_from_dict(
            reporting.run_to_dict(s27_full_run))
        # Timers stay floats through the JSON checkpoint round-trip.
        assert all(isinstance(back.counters[k], float)
                   for k in ("phase1_s", "phase2_s",
                             "phase3_s", "phase4_s"))

    def test_legacy_checkpoint_without_counters(self, s27_full_run):
        data = reporting.run_to_dict(s27_full_run)
        del data["counters"]
        back = reporting.run_from_dict(data)
        assert back.counters == {}
        # The renderer degrades to dashes, never crashes.
        assert "-" in reporting.engine_counters_table([back]).render()

    def test_legacy_checkpoint_without_phase_timers(self, s27_full_run):
        """Checkpoints written before the timer fields existed render
        with dashes in the timer columns, not a KeyError."""
        data = reporting.run_to_dict(s27_full_run)
        for key in ("phase1_s", "phase2_s", "phase3_s", "phase4_s"):
            del data["counters"][key]
        back = reporting.run_from_dict(data)
        text = reporting.engine_counters_table([back]).render()
        assert "s27" in text and "-" in text

    def test_engine_width_travel_through_jobspec(self):
        spec = _spec(engine="interp", width=16)
        outcome = run_jobs([spec], config=_cfg(isolate=True))
        assert outcome.ok
        run = outcome.runs[0]
        assert run.counters["words"] >= run.counters["frames"]

    def test_candidate_scan_travels_through_jobspec(self):
        """The candidate-scan knob crosses the spawn boundary, and a
        spec dict without the field (old checkpoint) still loads."""
        spec = _spec(candidate_scan="scalar")
        outcome = run_jobs([spec], config=_cfg(isolate=True))
        assert outcome.ok
        assert outcome.runs[0].counters["candidate_passes"] == 0
        from dataclasses import asdict
        legacy = asdict(_spec())
        del legacy["candidate_scan"]
        assert JobSpec(**legacy).candidate_scan == \
            harness.DEFAULT_CANDIDATE_SCAN

    def test_roundtrip_preserves_tables(self, s27_full_run):
        back = reporting.run_from_dict(
            reporting.run_to_dict(s27_full_run))
        for build in (tables.table1, tables.table3, tables.table4):
            assert build([back]).rows == build([s27_full_run]).rows

    def test_unknown_circuit_gets_stub_profile(self, s27_full_run):
        data = reporting.run_to_dict(s27_full_run)
        data["circuit"] = "never-heard-of-it"
        back = reporting.run_from_dict(data)
        assert back.name == "never-heard-of-it"
        with pytest.raises(RuntimeError, match="checkpoint"):
            back.profile.build()
        # Table renderers only need the name.
        assert tables.table3([back]).rows


class TestRunStore:
    def test_corrupt_lines_skipped(self, tmp_path, s27_full_run):
        store = RunStore(tmp_path)
        store.corrupt_checkpoint()
        store.append_run(_spec(), s27_full_run)
        (tmp_path / "runs.jsonl").open("a").write('{"truncat')
        runs, corrupt = store.load_runs()
        assert corrupt == 2
        assert ("s27", 1) in runs

    def test_journal_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        store.append_record(JobRecord("s27", 1, "failed", 3, 1.5,
                                      error="boom"))
        records = store.load_records()
        assert records[0].status == "failed"
        assert records[0].attempts == 3

    def test_missing_store_is_empty(self, tmp_path):
        store = RunStore(tmp_path / "fresh")
        assert store.load_runs() == ({}, 0)
        assert store.load_records() == []


class TestInlineMode:
    """isolate=False: retry/backoff/checkpoint logic without spawns."""

    def test_crash_then_retry_succeeds(self, tmp_path):
        crashes = []

        def chaos(spec, attempt):
            if attempt == 1:
                crashes.append(spec.circuit)
                return "crash"
            return None

        out = run_jobs([_spec()], _cfg(retries=1, isolate=False,
                                       run_dir=tmp_path, chaos=chaos))
        assert out.ok
        assert crashes == ["s27"]
        assert [(r.status, r.attempts) for r in out.records] == [("ok", 2)]

    def test_crash_exhausts_retries(self):
        out = run_jobs([_spec()],
                       _cfg(isolate=False, chaos=lambda s, a: "crash"))
        assert not out.ok
        record = out.records[0]
        assert record.status == "failed"
        assert record.attempts == 1
        assert "injected" in record.error
        assert out.runs == []

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError, match="chaos directive"):
            run_jobs([_spec()],
                     _cfg(isolate=False, chaos=lambda s, a: "meteor"))

    def test_final_attempt_perturbs_seed(self):
        spec = _spec()
        config = _cfg(retries=2)
        assert harness._attempt_seed(spec, 1, config) == spec.seed
        assert harness._attempt_seed(spec, 2, config) == spec.seed
        assert harness._attempt_seed(spec, 3, config) == \
            spec.seed + harness.SEED_PERTURBATION
        config.perturb_final_seed = False
        assert harness._attempt_seed(spec, 3, config) == spec.seed


class TestIsolatedChaos:
    def test_worker_crash_then_retry(self, tmp_path):
        out = run_jobs(
            [_spec()],
            _cfg(retries=1, run_dir=tmp_path,
                 chaos=lambda s, a: "crash" if a == 1 else None))
        assert out.ok
        assert out.records[0].attempts == 2
        # The checkpoint holds the completed run.
        runs, _ = RunStore(tmp_path).load_runs()
        assert ("s27", 1) in runs

    def test_worker_hard_exit(self):
        out = run_jobs([_spec()], _cfg(chaos=lambda s, a: "exit"))
        assert not out.ok
        record = out.records[0]
        assert record.status == "failed"
        assert "exit code" in record.error

    def test_worker_hang_times_out(self):
        out = run_jobs([_spec()],
                       _cfg(timeout=2.0, chaos=lambda s, a: "hang"))
        record = out.records[0]
        assert record.status == "timeout"
        assert record.failed
        assert out.failures == {"s27": "timeout"}

    def test_parallel_jobs_all_complete(self):
        specs = [_spec("s27"), _spec("b02")]
        out = run_jobs(specs, _cfg(jobs=2))
        assert out.ok
        assert [r.name for r in out.runs] == ["s27", "b02"]


class TestResume:
    def test_failed_job_recomputed_survivor_skipped(self, tmp_path):
        specs = [_spec("s27"), _spec("b02")]

        def chaos(spec, attempt):
            return "crash" if spec.circuit == "s27" else None

        first = run_jobs(specs, _cfg(run_dir=tmp_path, chaos=chaos))
        assert not first.ok
        assert [r.name for r in first.runs] == ["b02"]

        # Re-invocation with resume: only the failed job reruns.
        second = run_jobs(specs, _cfg(run_dir=tmp_path, resume=True))
        assert second.ok
        assert [r.name for r in second.runs] == ["s27", "b02"]
        by_circuit = {r.circuit: r for r in second.records}
        assert by_circuit["b02"].status == "skipped-resume"
        assert by_circuit["b02"].attempts == 0
        assert by_circuit["s27"].status == "ok"
        assert by_circuit["s27"].attempts == 1
        # The journal keeps the whole campaign's attempt history.
        journal = RunStore(tmp_path).load_records()
        assert [(r.circuit, r.status) for r in journal] == [
            ("s27", "failed"), ("b02", "ok"),
            ("b02", "skipped-resume"), ("s27", "ok")]

    def test_corrupt_checkpoint_line_recomputed(self, tmp_path):
        run_jobs([_spec()], _cfg(run_dir=tmp_path, isolate=False))
        # A crash mid-append leaves a truncated line; resume must
        # recompute that job rather than die.
        runs_file = tmp_path / "runs.jsonl"
        runs_file.write_text(runs_file.read_text()[:40])
        out = run_jobs([_spec()],
                       _cfg(run_dir=tmp_path, resume=True,
                            isolate=False))
        assert out.ok
        assert out.records[0].status == "ok"  # not skipped-resume

    def test_chaos_corrupts_checkpoint(self, tmp_path):
        out = run_jobs(
            [_spec()],
            _cfg(run_dir=tmp_path, isolate=False,
                 chaos=lambda s, a: "corrupt-checkpoint"))
        assert out.ok  # the attempt itself runs normally
        runs, corrupt = RunStore(tmp_path).load_runs()
        assert corrupt == 1
        assert ("s27", 1) in runs

    def test_resume_rejects_insufficient_checkpoint(self, tmp_path):
        run_jobs([_spec()], _cfg(run_dir=tmp_path, isolate=False))
        richer = JobSpec("s27", seed=1, arms=("seqgen", "random"),
                         with_baselines=True)
        out = run_jobs([richer], _cfg(run_dir=tmp_path, resume=True,
                                      isolate=False))
        # The cached run lacks baselines + the seqgen arm: recompute.
        assert out.records[0].status == "ok"
        assert out.runs[0].baseline4 is not None


class TestDegradedTables:
    def test_tables_render_with_failures(self, s27_full_run):
        failures = {"s298": "timeout"}
        for table in tables.all_tables([s27_full_run],
                                       failures=failures):
            text = table.render()
            assert "FAILED(timeout)" in text
            assert "s298" in text

    def test_table3_failure_row_before_total(self, s27_full_run):
        t = tables.table3([s27_full_run], failures={"s298": "crash"})
        assert t.rows[-1][0] == "total"
        assert t.rows[-2][:2] == ["s298", "FAILED(crash)"]

    def test_empty_runs_render(self):
        failures = {"s27": "timeout", "b02": "crash"}
        for table in tables.all_tables([], with_delay=True,
                                       failures=failures):
            assert "FAILED" in table.render()
        comparison = tables.paper_comparison([], failures=failures)
        assert "FAILED(timeout)" in comparison.render()

    def test_empty_runs_no_failures(self):
        for table in tables.all_tables([]):
            assert table.render()


class TestPreflightLint:
    """Structurally broken circuits become SKIPPED rows, not crashes."""

    @staticmethod
    def _install_broken(monkeypatch, name="brokenville"):
        from repro.circuits import suite as suite_mod
        from repro.circuits.netlist import Netlist

        class _Profile:
            def build(self):
                net = Netlist(name)
                net.add_input("a")
                net.add_gate("g1", "AND", ["a", "ghost"])
                net.add_output("g1")
                return net

        real = suite_mod.profile

        def lookup(circuit):
            return _Profile() if circuit == name else real(circuit)

        monkeypatch.setattr(suite_mod, "profile", lookup)

    def test_broken_circuit_skipped_healthy_runs(self, monkeypatch,
                                                 tmp_path):
        self._install_broken(monkeypatch)
        out = run_jobs([_spec("brokenville"), _spec("s27")],
                       _cfg(isolate=False, run_dir=tmp_path))
        by = {r.circuit: r for r in out.records}
        record = by["brokenville"]
        assert record.status == "skipped-lint"
        assert record.skipped_lint and not record.failed
        assert record.lint_rules == ("struct.undriven-net",)
        assert record.attempts == 0
        assert record.reason == "lint: struct.undriven-net"
        assert by["s27"].status == "ok"
        # Lint skips are deliberate outcomes, not failures...
        assert out.ok
        assert [r.name for r in out.runs] == ["s27"]
        # ...but they still reach the table renderers.
        assert out.failures == \
            {"brokenville": "lint: struct.undriven-net"}

    def test_skip_rendered_in_tables(self, monkeypatch):
        self._install_broken(monkeypatch)
        out = run_jobs([_spec("brokenville")], _cfg(isolate=False))
        text = tables.table1(out.runs, failures=out.failures).render()
        assert "SKIPPED(lint: struct.undriven-net)" in text
        assert "FAILED" not in text
        summary = out.failure_summary().render()
        assert "skipped-lint" in summary
        assert "struct.undriven-net" in summary

    def test_journal_roundtrip_lint_rules(self, monkeypatch, tmp_path):
        self._install_broken(monkeypatch)
        run_jobs([_spec("brokenville")],
                 _cfg(isolate=False, run_dir=tmp_path))
        records = RunStore(tmp_path).load_records()
        assert [r.status for r in records] == ["skipped-lint"]
        # JSON round-trip re-coerces the rule list to a tuple.
        assert records[0].lint_rules == ("struct.undriven-net",)

    def test_preflight_opt_out_restores_crash(self, monkeypatch):
        self._install_broken(monkeypatch)
        out = run_jobs([_spec("brokenville")],
                       _cfg(isolate=False, preflight=False))
        record = out.records[0]
        assert record.status == "failed"
        assert record.lint_rules == ()
        assert not out.ok

    def test_healthy_circuit_has_no_lint_rules(self):
        out = run_jobs([_spec("s27")], _cfg(isolate=False))
        assert out.ok
        assert out.records[0].lint_rules == ()
        assert out.skipped_records == []


class TestSuiteEntry:
    def test_run_suite_resilient_matches_run_suite(self):
        profile = suite.profile("s27")
        outcome = run_suite_resilient(
            [profile], arms=("random",), with_baselines=False,
            config=_cfg(isolate=False))
        plain = runner.run_suite([profile], arms=("random",),
                                 with_baselines=False)
        assert outcome.ok
        assert tables.table5(outcome.runs).rows == \
            tables.table5(plain).rows

    def test_failure_summary_table(self):
        out = run_jobs([_spec()],
                       _cfg(isolate=False, chaos=lambda s, a: "crash"))
        text = out.failure_summary().render()
        assert "s27" in text and "failed" in text


class TestPowerSerialization:
    """The PowerReport travels through checkpoints and JobSpecs."""

    def test_run_carries_power_report(self, s27_full_run):
        report = s27_full_run.power
        assert report is not None
        assert report.x_fill == "random"
        assert report.budget is None
        assert set(report.sets) == {"seqgen", "random", "baseline4"}

    def test_power_roundtrip_through_json(self, s27_full_run):
        blob = json.dumps(reporting.run_to_dict(s27_full_run))
        back = reporting.run_from_dict(json.loads(blob))
        assert back.power is not None
        assert back.power.x_fill == s27_full_run.power.x_fill
        assert back.power.budget == s27_full_run.power.budget
        assert back.power.sets == s27_full_run.power.sets
        assert tables.table_power([back]).rows == \
            tables.table_power([s27_full_run]).rows

    def test_legacy_checkpoint_without_power(self, s27_full_run):
        """Checkpoints written before the power subsystem load with
        power=None and the power table silently drops them."""
        data = reporting.run_to_dict(s27_full_run)
        del data["power"]
        back = reporting.run_from_dict(data)
        assert back.power is None
        assert tables.table_power([back]).rows == []
        titles = [t.title for t in tables.all_tables([back])]
        assert not any("Power" in t for t in titles)

    def test_legacy_counters_render_power_dashes(self, s27_full_run):
        data = reporting.run_to_dict(s27_full_run)
        for key in ("power_passes", "power_words", "power_s"):
            del data["counters"][key]
        back = reporting.run_from_dict(data)
        text = reporting.engine_counters_table([back]).render()
        assert "pw_words" in text and "pw_s" in text
        assert "-" in text

    def test_engine_column_and_legacy_dashes(self, s27_full_run):
        """The counters table shows the engine knob (``eng``) and the
        numpy pass count (``np``); a checkpoint from before either
        field renders dashes in those columns, not a KeyError."""
        table = reporting.engine_counters_table([s27_full_run])
        assert "eng" in table.headers and "np" in table.headers
        row = dict(zip(table.headers, table.rows[0]))
        assert row["eng"] == s27_full_run.knobs["engine"]
        assert row["np"] == s27_full_run.counters["np_passes"]
        data = reporting.run_to_dict(s27_full_run)
        del data["knobs"]
        del data["counters"]["np_passes"]
        back = reporting.run_from_dict(data)
        legacy = reporting.engine_counters_table([back])
        row = dict(zip(legacy.headers, legacy.rows[0]))
        assert row["eng"] is None and row["np"] is None
        assert "-" in legacy.render()

    def test_jobspec_defaults_from_legacy_dict(self):
        """A spec dict from before the power fields still loads with
        the paper-reproducing defaults."""
        from dataclasses import asdict
        legacy = asdict(_spec())
        del legacy["x_fill"]
        del legacy["power_budget"]
        spec = JobSpec(**legacy)
        assert spec.x_fill == "random"
        assert spec.power_budget is None

    def test_checkpoint_usable_power_knobs(self, s27_full_run):
        from repro.experiments.harness import _checkpoint_usable
        base = _spec(arms=("seqgen", "random"), with_baselines=True,
                     delay=True)
        assert _checkpoint_usable(s27_full_run, base)
        # Non-default knobs reject a default checkpoint ...
        assert not _checkpoint_usable(
            s27_full_run, _spec(arms=("random",), x_fill="adjacent"))
        assert not _checkpoint_usable(
            s27_full_run, _spec(arms=("random",), power_budget=9.0))
        # ... and a pre-power checkpoint (power=None) too.
        data = reporting.run_to_dict(s27_full_run)
        del data["power"]
        old = reporting.run_from_dict(data)
        assert _checkpoint_usable(old, base)
        assert not _checkpoint_usable(
            old, _spec(arms=("random",), x_fill="adjacent"))
        # A default spec must not reuse a non-default checkpoint.
        data = reporting.run_to_dict(s27_full_run)
        data["knobs"]["x_fill"] = "adjacent"
        assert not _checkpoint_usable(reporting.run_from_dict(data),
                                      base)
        data["knobs"]["x_fill"] = "random"
        data["knobs"]["power_budget"] = 9.0
        assert not _checkpoint_usable(reporting.run_from_dict(data),
                                      base)
        # Pre-knob checkpoints fall back to the PowerReport fields.
        data = reporting.run_to_dict(s27_full_run)
        del data["knobs"]
        data["power"]["x_fill"] = "adjacent"
        assert not _checkpoint_usable(reporting.run_from_dict(data),
                                      base)
        data["power"]["x_fill"] = "random"
        data["power"]["budget"] = 9.0
        assert not _checkpoint_usable(reporting.run_from_dict(data),
                                      base)

    def test_checkpoint_usable_rejects_every_knob(self, s27_full_run):
        """Every JobSpec result-shaping knob participates in the
        checkpoint compatibility check, including on legacy spec
        dicts rebuilt without the newer fields."""
        from dataclasses import asdict
        from repro.experiments.harness import (CHECKPOINT_KNOBS,
                                               _checkpoint_usable)
        base = _spec(arms=("seqgen", "random"), with_baselines=True,
                     delay=True)
        different = {"engine": "interp", "width": 4,
                     "candidate_scan": "scalar", "x_fill": "adjacent",
                     "power_budget": 9.0, "adi": True, "scoap": True}
        assert set(different) == set(CHECKPOINT_KNOBS)
        for name, value in different.items():
            spec = _spec(arms=("seqgen", "random"), with_baselines=True,
                         **{"delay": True, name: value})
            assert not _checkpoint_usable(s27_full_run, spec), name
        # A legacy spec dict (pre-knob fields stripped) resolves to the
        # defaults and must still accept the matching checkpoint.
        legacy = asdict(base)
        for name in ("engine", "width", "candidate_scan", "x_fill",
                     "power_budget", "adi", "scoap"):
            legacy.pop(name, None)
        assert _checkpoint_usable(s27_full_run, JobSpec(**legacy))

    def test_checkpoint_usable_delay_asymmetric(self, s27_full_run):
        """--delay is measurement-only: a delay-bearing checkpoint
        serves both settings, but a bare checkpoint cannot serve a
        delay request (nor can a with_transition-era one, which
        carried only the flat coverage dict)."""
        from repro.experiments.harness import _checkpoint_usable
        plain = _spec(arms=("seqgen", "random"), with_baselines=True)
        wants = _spec(arms=("seqgen", "random"), with_baselines=True,
                      delay=True)
        assert _checkpoint_usable(s27_full_run, plain)
        assert _checkpoint_usable(s27_full_run, wants)
        data = reporting.run_to_dict(s27_full_run)
        data["delay"] = None
        bare = reporting.run_from_dict(data)
        assert _checkpoint_usable(bare, plain)
        assert not _checkpoint_usable(bare, wants)

    def test_power_knobs_travel_through_jobspec(self):
        """x_fill/power_budget cross the spawn boundary and land in
        the produced run's PowerReport."""
        spec = _spec(x_fill="fill1", power_budget=100.0)
        outcome = run_jobs([spec], config=_cfg(isolate=True))
        assert outcome.ok
        report = outcome.runs[0].power
        assert report is not None
        assert report.x_fill == "fill1"
        assert report.budget == 100.0

"""Tests for transfer-sequence combining (the ref [7] extension)."""

import pytest

from repro.core.combine import static_compact
from repro.core.scan_test import ScanTestSet, single_vector_test


def initial_set(wb, comb):
    return ScanTestSet(
        len(wb.circuit.ff_ids),
        [single_vector_test(t.state, t.pi) for t in comb.tests])


def union_coverage(wb, test_set):
    covered = set()
    for test in test_set:
        covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                 early_exit=False)
    return covered


class TestTransfers:
    def test_disabled_by_default(self, s27_bench, s27_comb):
        wb = s27_bench
        result = static_compact(wb.sim, initial_set(wb, s27_comb))
        assert result.stats.transfers_used == 0
        assert result.stats.transfer_vectors_added == 0

    def test_coverage_preserved_with_transfers(self, s27_bench,
                                               s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        before = union_coverage(wb, initial)
        result = static_compact(wb.sim, initial, max_transfer=2,
                                transfer_pool=[t.pi
                                               for t in s27_comb.tests])
        assert before <= union_coverage(wb, result.test_set)

    def test_never_worse_than_plain(self, s27_bench, s27_comb):
        """Transfers only fire where a direct combination failed and
        each saves N_SV - L(transfer) > 0 cycles, so the result can
        only improve."""
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        plain = static_compact(wb.sim, initial)
        with_t = static_compact(wb.sim, initial, max_transfer=2,
                                transfer_pool=[t.pi
                                               for t in s27_comb.tests])
        assert with_t.stats.final_cycles <= plain.stats.final_cycles

    def test_transfer_capped_below_chain_length(self, s27_bench,
                                                s27_comb):
        """A transfer as long as the scan chain saves nothing; the cap
        must hold even when the caller asks for more."""
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial, max_transfer=50)
        n_sv = len(wb.circuit.ff_ids)
        # Every transfer accepted added < N_SV vectors.
        if result.stats.transfers_used:
            assert result.stats.transfer_vectors_added < \
                result.stats.transfers_used * n_sv

    def test_deterministic(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        a = static_compact(wb.sim, initial, max_transfer=2, seed=5)
        b = static_compact(wb.sim, initial, max_transfer=2, seed=5)
        assert [t.vectors for t in a.test_set] == \
            [t.vectors for t in b.test_set]

    def test_on_synthetic_circuit(self, mid_bench, mid_comb):
        wb = mid_bench
        initial = ScanTestSet(
            len(wb.circuit.ff_ids),
            [single_vector_test(t.state, t.pi) for t in mid_comb.tests])
        before = union_coverage(wb, initial)
        result = static_compact(wb.sim, initial, max_transfer=3,
                                transfer_pool=[t.pi
                                               for t in mid_comb.tests])
        assert before <= union_coverage(wb, result.test_set)
        assert result.stats.final_cycles <= result.stats.initial_cycles
"""Benchmark: regenerate the paper's Table 2 (test lengths).

Expected shape: ``L(T_seq) <= L(T0)`` (Phases 1-2 only truncate and
omit vectors), and the number of added Phase-3 tests stays small
relative to the combinational test set.
"""

from repro.experiments import tables


def test_table2(benchmark, suite_runs):
    table = benchmark(tables.table2, suite_runs)
    print()
    print(table.render())
    by_name = {run.name: run for run in suite_runs}
    for row in table.rows:
        circuit, t0_len, scan_len, added = row
        assert scan_len <= t0_len, circuit
        assert scan_len >= 1, circuit
        assert added <= by_name[circuit].comb_tests, circuit

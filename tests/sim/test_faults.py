"""Tests for the fault model and equivalence collapsing."""

import pytest

from repro.circuits.netlist import Netlist
from repro.sim.faults import (Fault, FaultSet, all_faults, collapse,
                              fault_classes)


def and_chain():
    """a,b -> n1=AND -> n2=NOT -> PO, plus a DFF for sequentiality."""
    net = Netlist("chain")
    net.add_input("a")
    net.add_input("b")
    net.add_dff("q", "n2")
    net.add_gate("n1", "AND", ["a", "b"])
    net.add_gate("n2", "NOT", ["n1"])
    net.add_output("n2")
    return net.compile()


class TestEnumeration:
    def test_fanout_free_lines_have_no_branch_faults(self):
        net = and_chain()
        faults = all_faults(net)
        assert all(f.pin is None for f in faults)
        # 5 nets x 2 faults
        assert len(faults) == 10

    def test_branch_faults_on_fanout_stems(self, s27):
        faults = all_faults(s27)
        branch = [f for f in faults if f.pin is not None]
        assert branch  # s27 has fanout stems (e.g. G8, G11, G12, G14)
        nets_with_branches = {f.net for f in branch}
        for net_name in nets_with_branches:
            assert len(s27.fanout[net_name]) > 1

    def test_str_forms(self):
        assert str(Fault("n1", None, 0)) == "n1/0"
        assert str(Fault("n1", ("g2", 1), 1)) == "n1->g2.1/1"

    def test_ordering_total(self, s27):
        faults = all_faults(s27)
        ordered = sorted(faults)
        assert len(ordered) == len(faults)
        assert ordered[0].sort_key() <= ordered[1].sort_key()


class TestCollapse:
    def test_s27_collapsed_count(self, s27):
        # 32 is the standard collapsed fault count for s27.
        assert len(collapse(s27)) == 32

    def test_chain_collapse(self):
        """AND: out/0 == a/0 == b/0; NOT: out faults fold into input."""
        net = and_chain()
        collapsed = collapse(net)
        # Classes: {a/0,b/0,n1/0,n2/1}, {n1/1,n2/0,(q gets its own via
        # DFF boundary)}, a/1, b/1, q/0, q/1 -> count them:
        assert len(collapsed) < len(all_faults(net))
        classes = fault_classes(net)
        merged = [c for c in classes.values() if len(c) > 1]
        assert any(Fault("a", None, 0) in c and Fault("b", None, 0) in c
                   for c in merged)

    def test_classes_partition_universe(self, s27):
        classes = fault_classes(s27)
        members = [f for cls in classes.values() for f in cls]
        assert sorted(members) == sorted(all_faults(s27))
        assert set(classes) == set(collapse(s27))

    def test_xor_does_not_collapse(self):
        net = Netlist()
        net.add_input("a")
        net.add_input("b")
        net.add_dff("q", "x")
        net.add_gate("x", "XOR", ["a", "b"])
        net.add_output("x")
        net.compile()
        # No equivalences: every line keeps both faults.
        assert len(collapse(net)) == len(all_faults(net))

    def test_deterministic(self, s27):
        assert collapse(s27) == collapse(s27)


class TestFaultSet:
    def test_indexing(self, s27):
        fs = FaultSet.collapsed(s27)
        for i, fault in enumerate(fs):
            assert fs.index[fault] == i
            assert fs[i] == fault

    def test_indices_and_subset(self, s27):
        fs = FaultSet.collapsed(s27)
        some = [fs[3], fs[5], fs[1]]
        idx = fs.indices(some)
        assert idx == [3, 5, 1]
        assert fs.subset({5, 1, 3}) == [fs[1], fs[3], fs[5]]

    def test_duplicates_rejected(self, s27):
        fs = FaultSet.collapsed(s27)
        with pytest.raises(ValueError, match="duplicate"):
            FaultSet([fs[0], fs[0]])

    def test_uncollapsed_larger(self, s27):
        assert len(FaultSet.uncollapsed(s27)) > len(FaultSet.collapsed(s27))

"""Static compaction by combining tests (the procedure of ref [4]).

Combining ``tau_i = (SI_i, T_i)`` and ``tau_j = (SI_j, T_j)`` removes
``SO_i`` and ``SI_j`` and concatenates the sequences:
``tau_ij = (SI_i, T_i T_j)``.  Each combination saves one scan
operation (``N_SV`` clock cycles) and is accepted only if the *test
set's* fault coverage does not drop.  The procedure repeats until no
pair can be combined.

Implementation notes
--------------------
Checking "coverage does not drop" is done with essential-fault
bookkeeping: a fault is *essential* to a test when no other test in the
current set detects it.  A combination of ``tau_i`` and ``tau_j`` is
acceptable iff the combined test detects every fault essential to
either -- all other faults stay covered by the rest of the set.  On
acceptance the combined test is re-simulated over the whole target set
(coverage can also *grow*: the second sequence now runs from the state
the first one left behind).

Detection sets are cached per :class:`ScanTest` (tests are frozen and
hash by value) for the lifetime of one :func:`static_compact` call:
across rounds only a newly combined test is ever simulated from
scratch; every surviving test's set is reused.  Callers that already
know a test's detection set -- Phase 4 knows ``tau_seq``'s from the
Phase 1+2 pipeline -- seed the cache through ``known_detections`` and
skip even the initial simulation of those tests.  Essential-fault
bookkeeping needs exact per-test detection sets over the *full*
target, so no fault dropping is possible here beyond the cache; a
``retire_to`` scoreboard only receives the final coverage.

This module serves double duty as the paper's Phase 4 and as the [4]
baseline (applied to a single-vector-per-test initial set built from a
combinational test set).

Transfer sequences (ref [7])
----------------------------
The paper points to an improvement of [4]: when two tests cannot be
combined directly (the state left by ``T_i`` breaks ``tau_j``'s
detections), a short *transfer sequence* of primary-input vectors
inserted between them can steer the circuit into a usable state.  The
combination then saves ``N_SV - L(transfer)`` cycles instead of
``N_SV``, so only transfers shorter than the scan chain are worth
taking.  Enable with ``max_transfer > 0``; the paper runs [4] without
it ("we use the procedure of [4] for all our experiments"), so it
defaults off and is evaluated separately in the ablation bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..sim import values as V
from ..sim.fault_sim import FaultSimulator
from .scan_test import ScanTest, ScanTestSet

# A lane-batched trial pass targets the union of the batch's essential
# sets; past this many union faults the pass costs more than the lanes
# save, so prefetching stops collecting candidates (soundness does not
# depend on the value -- skipped pairs just prefetch later).
_PREFETCH_FAULT_CAP = 32


@dataclass
class CombineStats:
    """Bookkeeping from a static-compaction run."""

    combinations_accepted: int = 0
    combinations_tried: int = 0
    combinations_rejected: int = 0
    transfers_used: int = 0
    transfer_vectors_added: int = 0
    initial_tests: int = 0
    final_tests: int = 0
    initial_cycles: int = 0
    final_cycles: int = 0


@dataclass
class CombineResult:
    """Result of :func:`static_compact`."""

    test_set: ScanTestSet
    detected: Set[int]
    stats: CombineStats = field(default_factory=CombineStats)


def _detections(sim: FaultSimulator, tests: Sequence[ScanTest],
                target: Sequence[int],
                cache: Optional[Dict[ScanTest, Set[int]]] = None
                ) -> List[Set[int]]:
    """Per-test detection sets over ``target``, via ``cache`` when warm.

    Cached sets may cover a superset of ``target`` (e.g. seeded from a
    phase that simulated the whole fault list); they are intersected
    down.  Fresh simulations are stored back, so across
    :func:`static_compact` rounds only changed tests are re-simulated.
    """
    if cache is None:
        cache = {}
    target_set = set(target)
    out: List[Set[int]] = []
    for t in tests:
        det = cache.get(t)
        if det is None:
            det = sim.detect(list(t.vectors), t.scan_in, target=target,
                             early_exit=False)
            cache[t] = det
        out.append(det & target_set)
    return out


def _detection_counts(detects: List[Set[int]]) -> Dict[int, int]:
    """How many tests of the set detect each fault."""
    count: Dict[int, int] = {}
    for det in detects:
        for fid in det:
            count[fid] = count.get(fid, 0) + 1
    return count


def _essential_sets(detects: List[Set[int]], count: Dict[int, int]
                    ) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Per-test singly- and doubly-covered fault sets.

    ``ess[k]`` holds the faults only test ``k`` detects; ``two[k]``
    those covered by exactly two tests, ``k`` among them.  The faults a
    candidate merge of tests ``i`` and ``j`` must keep -- the faults no
    *third* test covers -- are then ``ess[i] | ess[j] |
    (two[i] & two[j])``: a fault of the pair with no outside coverage
    is either singly covered by one of the two, or covered by exactly
    both (essential to the pair though to neither test alone).
    Precomputing the index once per ``count`` rebuild turns the
    per-pair essential computation into three C-level set operations.
    """
    ess: List[Set[int]] = []
    two: List[Set[int]] = []
    for det in detects:
        e: Set[int] = set()
        t: Set[int] = set()
        for fid in det:
            c = count[fid]
            if c == 1:
                e.add(fid)
            elif c == 2:
                t.add(fid)
        ess.append(e)
        two.append(t)
    return ess, two


def static_compact(
    sim: FaultSimulator,
    test_set: ScanTestSet,
    target: Optional[Set[int]] = None,
    max_rounds: int = 16,
    max_sequence_length: Optional[int] = None,
    max_transfer: int = 0,
    transfer_pool: Optional[Sequence[V.Vector]] = None,
    transfer_attempts: int = 4,
    seed: int = 0,
    known_detections: Optional[Dict[ScanTest, Set[int]]] = None,
    retire_to=None,
    merge_filter: Optional[Callable[[ScanTest], bool]] = None,
    trial_batch: int = 64,
) -> CombineResult:
    """Compact ``test_set`` by combining test pairs ([4]).

    Parameters
    ----------
    sim:
        Fault simulator for the circuit.
    test_set:
        The initial tests (not mutated).
    target:
        Fault indices that define coverage; defaults to all faults.
    max_rounds:
        Safety bound on full passes (each pass needs at least one
        accepted combination to continue).
    max_sequence_length:
        Optional cap on combined sequence length (no cap by default,
        as in [4]).
    max_transfer:
        Maximum transfer-sequence length tried when a direct
        combination fails (ref [7]); 0 disables transfers (the paper's
        setting).  Transfers are capped at ``N_SV - 1`` regardless --
        longer ones cost more than the scan they replace.
    transfer_pool:
        Candidate transfer vectors (e.g. the primary-input parts of
        the combinational test set); random vectors fill in when
        absent.
    transfer_attempts:
        Candidate transfer sequences tried per length.
    seed:
        RNG seed for transfer candidates (deterministic).
    known_detections:
        Detection sets the caller already holds, per test, each over
        at least the target faults; seeds the per-test cache so those
        tests are never simulated from scratch.
    retire_to:
        Optional :class:`~repro.sim.scoreboard.FaultScoreboard`; the
        compacted set's coverage is retired into it.
    merge_filter:
        Optional predicate over a candidate *merged* test; a merge is
        only attempted when the predicate accepts the combined test
        (rejections are counted in ``combinations_rejected`` and
        cost no simulation).  Power-constrained compaction passes a
        peak-WTM budget check here
        (:func:`repro.power.constrain.wtm_budget_filter`); ``None``
        (the default) keeps the procedure of [4] byte-identical.
        The predicate must be deterministic: rejected pairs are
        remembered and never retried.
    trial_batch:
        Maximum merge trials speculatively simulated per lane-batched
        pass (:meth:`~repro.sim.fault_sim.FaultSimulator.
        detect_trials`): before a cache-missing trial runs, the
        upcoming candidate merges of the same row are prefetched, one
        lane each, and their exact detection records cached.  Results,
        stats and acceptance order are byte-identical to the scalar
        procedure for every value (the equivalence suite enforces
        it); ``1`` disables prefetching entirely.  With
        ``max_transfer > 0`` the per-length transfer candidates batch
        the same way, which reorders the RNG draws of a partially
        successful attempt round relative to ``trial_batch=1`` --
        transfers default off, so the default path is unaffected.
    """
    if target is None:
        target = set(range(len(sim.faults)))
    order = sorted(target)
    tests: List[ScanTest] = list(test_set.tests)
    stats = CombineStats(initial_tests=len(tests),
                         initial_cycles=test_set.clock_cycles())
    cache: Dict[ScanTest, Set[int]] = dict(known_detections or {})
    detects = _detections(sim, tests, order, cache)
    coverage = set().union(*detects) if detects else set()
    failed: Set[Tuple[ScanTest, ScanTest]] = set()
    # Speculative trial records: combined test -> (covered, detected).
    # ``detected`` is exact over ``covered``; because per-fault
    # detection is independent, ``detected & must`` equals the scalar
    # trial result for any ``must <= covered``.
    trial_cache: Dict[ScanTest, Tuple[Set[int], Set[int]]] = {}
    max_transfer = min(max_transfer, max(0, sim.n_state_vars - 1))
    rng = random.Random(seed)
    n_pi = len(sim.circuit.pi_ids)

    for _ in range(max_rounds):
        count = _detection_counts(detects)
        ess, two = _essential_sets(detects, count)
        accepted_any = False
        i = 0
        while i < len(tests):
            j = 0
            while j < len(tests):
                if i == j:
                    j += 1
                    continue
                first, second = tests[i], tests[j]
                if (first, second) in failed:
                    j += 1
                    continue
                if max_sequence_length is not None and \
                        first.length + second.length > max_sequence_length:
                    j += 1
                    continue
                combined = first.combined_with(second)
                if merge_filter is not None and \
                        not merge_filter(combined):
                    stats.combinations_rejected += 1
                    failed.add((first, second))
                    j += 1
                    continue
                must = ess[i] | ess[j] | (two[i] & two[j])
                stats.combinations_tried += 1
                sim.counters.combine_trials += 1
                det_must: Optional[Set[int]] = None
                if trial_batch > 1:
                    hit = trial_cache.get(combined)
                    if hit is None or not must <= hit[0]:
                        _prefetch_trials(
                            sim, tests, ess, two, i, j, failed,
                            max_sequence_length, merge_filter,
                            trial_batch, trial_cache)
                        hit = trial_cache.get(combined)
                    if hit is not None and must <= hit[0]:
                        det_must = hit[1] & must
                if det_must is None:
                    det_must = sim.detect(list(combined.vectors),
                                          combined.scan_in,
                                          target=sorted(must),
                                          early_exit=True)
                if not must <= det_must and max_transfer > 0:
                    transfer = _find_transfer_sequence(
                        sim, first, second, must, max_transfer,
                        transfer_pool, transfer_attempts, rng, n_pi,
                        trial_batch=trial_batch)
                    if transfer is not None:
                        with_transfer = ScanTest(
                            first.scan_in,
                            first.vectors + tuple(transfer) +
                            second.vectors)
                        if merge_filter is not None and \
                                not merge_filter(with_transfer):
                            stats.combinations_rejected += 1
                        else:
                            combined = with_transfer
                            det_must = sim.detect(
                                list(combined.vectors),
                                combined.scan_in,
                                target=sorted(must),
                                early_exit=True)
                            if must <= det_must:
                                stats.transfers_used += 1
                                stats.transfer_vectors_added += \
                                    len(transfer)
                if must <= det_must:
                    det_full = cache.get(combined)
                    if det_full is None:
                        det_full = sim.detect(list(combined.vectors),
                                              combined.scan_in,
                                              target=order,
                                              early_exit=False)
                        cache[combined] = det_full
                    else:
                        det_full = det_full & target
                    hi, lo = max(i, j), min(i, j)
                    for idx in (hi, lo):
                        tests.pop(idx)
                        detects.pop(idx)
                    tests.insert(lo, combined)
                    detects.insert(lo, det_full)
                    coverage |= det_full
                    count = _detection_counts(detects)
                    ess, two = _essential_sets(detects, count)
                    stats.combinations_accepted += 1
                    accepted_any = True
                    if j < i:
                        i -= 1
                    j = 0  # rescan partners for the new combined test
                else:
                    failed.add((first, second))
                    j += 1
            i += 1
        if not accepted_any:
            break

    final = ScanTestSet(test_set.n_state_vars, tests)
    stats.final_tests = len(tests)
    stats.final_cycles = final.clock_cycles()
    if retire_to is not None:
        retire_to.retire(coverage)
    return CombineResult(final, coverage, stats)


def _prefetch_trials(
    sim: FaultSimulator,
    tests: Sequence[ScanTest],
    ess: Sequence[Set[int]],
    two: Sequence[Set[int]],
    i: int,
    j: int,
    failed: Set[Tuple[ScanTest, ScanTest]],
    max_sequence_length: Optional[int],
    merge_filter: Optional[Callable[[ScanTest], bool]],
    trial_batch: int,
    trial_cache: Dict[ScanTest, Tuple[Set[int], Set[int]]],
) -> None:
    """Speculatively simulate the upcoming merge trials of row ``i``.

    Scans forward over the partners the inner loop will visit next
    (mirroring its skip rules without touching its bookkeeping --
    stats, the failed set and rejection accounting stay with the main
    loop), batches the surviving candidate merges through
    :meth:`~repro.sim.fault_sim.FaultSimulator.detect_trials` one lane
    each, and records per-test ``(covered, detected)`` pairs in
    ``trial_cache``.  A record is exact for any essential set inside
    ``covered`` because per-fault detection is independent, so a pair
    the loop later visits with a *grown* essential set (an acceptance
    changed ``count`` in between) simply misses and re-prefetches;
    wrong speculation can waste lanes, never change a result.

    The batch is additionally capped by the *union* of essential sets
    (:data:`_PREFETCH_FAULT_CAP`): every lane pass targets the union,
    so disjoint essential sets would otherwise inflate the per-pass
    fault-group count quadratically with the lane count.  Stopping the
    scan early only shrinks the speculation window -- the skipped
    pairs prefetch on a later miss -- so results stay byte-identical
    for every cap value.
    """
    first = tests[i]
    ess_i = ess[i]
    two_i = two[i]
    pending: List[ScanTest] = []
    musts: Dict[ScanTest, Set[int]] = {}
    union: Set[int] = set()
    jj = j
    while jj < len(tests) and len(pending) < trial_batch:
        if jj == i:
            jj += 1
            continue
        second = tests[jj]
        if (first, second) in failed:
            jj += 1
            continue
        if max_sequence_length is not None and \
                first.length + second.length > max_sequence_length:
            jj += 1
            continue
        combined = first.combined_with(second)
        if merge_filter is not None and not merge_filter(combined):
            jj += 1
            continue
        must = ess_i | ess[jj] | (two_i & two[jj])
        hit = trial_cache.get(combined)
        if hit is not None and must <= hit[0]:
            jj += 1
            continue
        if pending and len(union | must) > _PREFETCH_FAULT_CAP:
            break
        union |= must
        if combined in musts:
            musts[combined] |= must
        else:
            musts[combined] = set(must)
            pending.append(combined)
        jj += 1
    if not pending:
        return
    if union:
        results = sim.detect_trials(
            [(t.scan_in, list(t.vectors)) for t in pending],
            target=sorted(union))
    else:
        results = [set() for _ in pending]
    for t, det in zip(pending, results):
        prev = trial_cache.get(t)
        if prev is None:
            trial_cache[t] = (set(union), det)
        else:
            trial_cache[t] = (prev[0] | union, prev[1] | det)


def _find_transfer_sequence(
    sim: FaultSimulator,
    first: ScanTest,
    second: ScanTest,
    must: Set[int],
    max_transfer: int,
    transfer_pool: Optional[Sequence[V.Vector]],
    attempts: int,
    rng: random.Random,
    n_pi: int,
    trial_batch: int = 1,
) -> Optional[List[V.Vector]]:
    """A transfer sequence making ``first ++ transfer ++ second`` keep
    every pair-essential fault (ref [7]), or ``None``.

    Candidates per length: vectors from the pool (when given), a hold
    of ``first``'s last vector, and random vectors.  Shortest working
    transfer wins, since each transfer vector eats into the ``N_SV``
    cycles the combination saves.

    With ``trial_batch > 1`` all candidates of a length are built
    up front and simulated in one lane-batched pass; the winner is
    still the lowest attempt number, but a round that would have
    stopped early under ``trial_batch=1`` now draws RNG for its
    remaining attempts, so pool/random choices in *later* rounds can
    differ between batched and scalar runs.  Both remain valid
    transfer searches; byte-identity is only promised for the paper's
    default ``max_transfer=0`` (no call at all).
    """

    def _build(attempt: int, length: int) -> List[V.Vector]:
        transfer: List[V.Vector] = []
        for position in range(length):
            roll = (attempt + position) % 3
            if roll == 0 and transfer_pool:
                transfer.append(tuple(
                    transfer_pool[rng.randrange(len(transfer_pool))]))
            elif roll == 1:
                transfer.append(tuple(first.vectors[-1]))
            else:
                transfer.append(V.random_binary_vector(n_pi, rng))
        return transfer

    for length in range(1, max_transfer + 1):
        if trial_batch > 1 and attempts > 1:
            candidates = [_build(a, length) for a in range(attempts)]
            sim.counters.combine_trials += len(candidates)
            results = sim.detect_trials(
                [(first.scan_in,
                  list(first.vectors) + list(c) + list(second.vectors))
                 for c in candidates],
                target=sorted(must))
            for cand, det in zip(candidates, results):
                if must <= det:
                    return cand
            continue
        for attempt in range(attempts):
            transfer = _build(attempt, length)
            trial = first.vectors + tuple(transfer) + second.vectors
            sim.counters.combine_trials += 1
            detected = sim.detect(list(trial), first.scan_in,
                                  target=sorted(must), early_exit=True)
            if must <= detected:
                return transfer
    return None

"""Unit tests for the .bench reader/writer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import bench, synth
from repro.circuits.bench import BenchFormatError
from repro.circuits.library import S27_BENCH


class TestParse:
    def test_s27_parses(self):
        net = bench.loads(S27_BENCH, name="s27")
        assert net.num_inputs == 4
        assert net.num_outputs == 1
        assert net.num_ffs == 3
        assert net.num_gates == 10

    def test_comments_and_blank_lines_skipped(self):
        text = """
        # a comment
        INPUT(a)   # trailing comment
        OUTPUT(n)

        n = NOT(a)
        """
        net = bench.loads(text)
        assert net.num_gates == 1

    def test_case_insensitive_types(self):
        net = bench.loads("INPUT(a)\nOUTPUT(n)\nn = nand(a, a)\n")
        assert net.gates["n"].gtype == "NAND"

    def test_aliases(self):
        net = bench.loads("INPUT(a)\nOUTPUT(n)\nb = BUFF(a)\n"
                          "n = INV(b)\n")
        assert net.gates["b"].gtype == "BUF"
        assert net.gates["n"].gtype == "NOT"

    def test_unknown_type_rejected(self):
        with pytest.raises(BenchFormatError, match="unknown gate type"):
            bench.loads("INPUT(a)\nOUTPUT(n)\nn = MAJ(a, a, a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            bench.loads("INPUT(a)\nthis is not bench\n")

    def test_dff_multiple_fanins_rejected(self):
        with pytest.raises(BenchFormatError, match="one fanin"):
            bench.loads("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n")

    def test_line_number_in_error(self):
        with pytest.raises(BenchFormatError, match="line 3"):
            bench.loads("INPUT(a)\nOUTPUT(a)\n???\n")

    def test_const_gates(self):
        net = bench.loads("INPUT(a)\nOUTPUT(o)\nc = CONST1()\n"
                          "o = AND(a, c)\n")
        assert net.gates["c"].gtype == "CONST1"


class TestRoundTrip:
    def test_s27_roundtrip(self):
        net = bench.loads(S27_BENCH, name="s27")
        again = bench.loads(bench.dumps(net), name="s27")
        assert again.gates.keys() == net.gates.keys()
        for name, gate in net.gates.items():
            assert again.gates[name].gtype == gate.gtype
            assert again.gates[name].fanins == gate.fanins
        assert again.outputs == net.outputs

    def test_file_roundtrip(self, tmp_path):
        net = bench.loads(S27_BENCH, name="s27")
        path = tmp_path / "s27.bench"
        bench.dump(net, path)
        again = bench.load(path)
        assert again.name == "s27"
        assert again.num_gates == net.num_gates

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_synth_roundtrip_property(self, seed):
        """Any generated circuit survives a dump/load cycle intact."""
        net = synth.generate("rt", 3, 2, 3, 20, seed=seed)
        again = bench.loads(bench.dumps(net))
        assert again.gates.keys() == net.gates.keys()
        for name, gate in net.gates.items():
            assert again.gates[name].gtype == gate.gtype
            assert again.gates[name].fanins == gate.fanins
        assert set(again.outputs) == set(net.outputs)

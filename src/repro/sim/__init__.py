"""Simulation substrate: 3-valued logic sim and stuck-at fault sim."""

from .values import ZERO, ONE, X, vec, vec_str
from .logicsim import CompiledCircuit, simulate_sequence, simulate_comb
from .faults import Fault, FaultSet, all_faults, collapse
from .fault_sim import FaultSimulator, SimRecords

__all__ = [
    "ZERO", "ONE", "X", "vec", "vec_str",
    "CompiledCircuit", "simulate_sequence", "simulate_comb",
    "Fault", "FaultSet", "all_faults", "collapse",
    "FaultSimulator", "SimRecords",
]

"""Tests for the high-level API."""

import pytest

import repro
from repro import api
from repro.circuits import library


class TestWorkbench:
    def test_builds_everything(self, s27):
        wb = api.Workbench.for_netlist(s27)
        assert wb.circuit.n_nets == s27.num_nets
        assert len(wb.faults) == 32

    def test_engine_and_width_knobs(self, s27):
        wb = api.Workbench.for_netlist(s27, engine="interp", width=8)
        assert wb.circuit.engine == "generic"  # CLI alias resolved
        assert wb.sim.width == 8
        auto = api.Workbench.for_netlist(s27)
        assert auto.circuit.engine == "codegen"
        assert auto.sim.width == "auto"

    def test_counters_property_is_sims(self, s27):
        wb = api.Workbench.for_netlist(s27)
        assert wb.counters is wb.sim.counters

    def test_bad_engine_rejected(self, s27):
        with pytest.raises(ValueError, match="engine"):
            api.Workbench.for_netlist(s27, engine="fpga")

    def test_numpy_and_auto_engines(self, s27):
        pytest.importorskip("numpy")
        wb = api.Workbench.for_netlist(s27, engine="numpy")
        assert wb.circuit.engine == "numpy"
        assert wb.circuit.array_backend is not None
        auto = api.Workbench.for_netlist(s27, engine="auto")
        assert auto.circuit.engine == "auto"
        # auto still detects correctly whatever executor it picked.
        assert len(auto.faults) == len(wb.faults)


class TestCompactTests:
    def test_seqgen_arm(self, s27):
        res = repro.compact_tests(s27, seed=1, t0_length=40)
        assert res.final_detected
        assert res.compacted_set is not None

    def test_random_arm(self, s27):
        res = repro.compact_tests(s27, seed=1, t0_source="random",
                                  t0_length=60)
        assert res.t0_length == 60

    def test_explicit_t0(self, s27_bench, s27_comb):
        from repro.sim import values as V
        t0 = [V.vec("1010")] * 5
        res = repro.compact_tests(s27_bench.netlist, t0=t0,
                                  comb_tests=s27_comb.tests,
                                  workbench=s27_bench)
        assert res.t0_length == 5

    def test_bad_source(self, s27):
        with pytest.raises(ValueError, match="unknown t0_source"):
            repro.compact_tests(s27, t0_source="magic")

    def test_workbench_reuse(self, s27_bench, s27_comb):
        res = repro.compact_tests(s27_bench.netlist, seed=2,
                                  t0_length=20,
                                  comb_tests=s27_comb.tests,
                                  workbench=s27_bench)
        assert res.added_tests >= 0


class TestBaselines:
    def test_static_baseline(self, s27):
        result = repro.baseline_static(s27, seed=1)
        assert result.stats.final_cycles <= result.stats.initial_cycles

    def test_dynamic_baseline(self, s27):
        result = repro.baseline_dynamic(s27, seed=1)
        assert len(result.test_set) >= 1

    def test_generate_comb_set(self, s27):
        result = repro.generate_comb_set(s27, seed=1)
        assert result.detected
        assert len(result.tests) >= 1


class TestPackage:
    def test_version(self):
        assert repro.__version__

    def test_public_names(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

"""Gate-level netlist data model for synchronous sequential circuits.

The model follows the ISCAS-89 conventions: a circuit is a set of named
nets, each driven by exactly one gate.  Primary inputs and D flip-flops
are modelled as source gates (``INPUT`` has no fanin, ``DFF`` has one
fanin -- its next-state function).  Primary outputs are nets flagged as
observable.  All clocking is implicit: every DFF loads its fanin value at
the end of each functional clock cycle.

A :class:`Netlist` is built incrementally with :meth:`Netlist.add_input`,
:meth:`Netlist.add_gate`, :meth:`Netlist.add_dff` and
:meth:`Netlist.add_output`, then compiled once with
:meth:`Netlist.compile`.  Compilation assigns dense integer ids to nets,
computes a topological order of the combinational logic and checks for
structural errors (undriven nets, combinational cycles).

Example
-------
>>> net = Netlist("toy")
>>> net.add_input("a")
>>> net.add_dff("q", "d")
>>> net.add_gate("d", "XOR", ["a", "q"])
>>> net.add_output("d")
>>> net.compile()
>>> net.num_inputs, net.num_ffs, net.num_gates
(1, 1, 1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Gate types with free fanin arity.
VARIADIC_TYPES = ("AND", "NAND", "OR", "NOR", "XOR", "XNOR")

#: Single-input combinational gate types.
UNARY_TYPES = ("NOT", "BUF")

#: Source gate types (values come from outside the combinational logic).
SOURCE_TYPES = ("INPUT", "DFF")

#: Constant generators (no fanin).
CONST_TYPES = ("CONST0", "CONST1")

ALL_TYPES = VARIADIC_TYPES + UNARY_TYPES + SOURCE_TYPES + CONST_TYPES


class NetlistError(ValueError):
    """Raised for structural errors: bad gate types, cycles, missing nets."""


@dataclass
class Gate:
    """One gate driving the net named :attr:`name`.

    Attributes
    ----------
    name:
        Name of the net this gate drives (nets and gates are one-to-one).
    gtype:
        One of :data:`ALL_TYPES`.
    fanins:
        Names of the input nets, in pin order.
    """

    name: str
    gtype: str
    fanins: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.gtype not in ALL_TYPES:
            raise NetlistError(f"unknown gate type {self.gtype!r} for {self.name!r}")
        arity = len(self.fanins)
        if self.gtype in CONST_TYPES and arity != 0:
            raise NetlistError(f"{self.gtype} gate {self.name!r} must have no fanins")
        if self.gtype == "INPUT" and arity != 0:
            raise NetlistError(f"INPUT {self.name!r} must have no fanins")
        if self.gtype == "DFF" and arity != 1:
            raise NetlistError(f"DFF {self.name!r} must have exactly one fanin")
        if self.gtype in UNARY_TYPES and arity != 1:
            raise NetlistError(f"{self.gtype} gate {self.name!r} must have one fanin")
        if self.gtype in VARIADIC_TYPES and arity < 1:
            raise NetlistError(f"{self.gtype} gate {self.name!r} needs at least one fanin")


class Netlist:
    """A synchronous sequential circuit at gate level.

    The netlist must be :meth:`compile`-d before simulation-oriented
    attributes (``order``, ``net_ids``, ``fanout`` ...) are available.
    Mutating the netlist after compilation invalidates the compiled data;
    call :meth:`compile` again.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.outputs: List[str] = []
        self._compiled = False
        # Populated by compile():
        self.net_ids: Dict[str, int] = {}
        self.net_names: List[str] = []
        self.order: List[str] = []           # topological order of comb. gates
        self.levels: Dict[str, int] = {}
        self.fanout: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> None:
        """Declare primary input ``name``."""
        self._add(Gate(name, "INPUT"))

    def add_dff(self, q: str, d: str) -> None:
        """Declare a D flip-flop whose output net is ``q`` and whose
        next-state (D pin) net is ``d``."""
        self._add(Gate(q, "DFF", [d]))

    def add_gate(self, name: str, gtype: str, fanins: Sequence[str]) -> None:
        """Declare a combinational gate of type ``gtype`` driving ``name``."""
        self._add(Gate(name, gtype, list(fanins)))

    def add_const(self, name: str, value: int) -> None:
        """Declare a constant-``value`` net (value must be 0 or 1)."""
        if value not in (0, 1):
            raise NetlistError(f"constant value must be 0 or 1, got {value!r}")
        self._add(Gate(name, "CONST1" if value else "CONST0"))

    def add_output(self, name: str) -> None:
        """Flag net ``name`` as a primary output (may be declared before
        the driving gate)."""
        if name in self.outputs:
            return
        self.outputs.append(name)
        self._compiled = False

    def _add(self, gate: Gate) -> None:
        if gate.name in self.gates:
            raise NetlistError(f"net {gate.name!r} driven twice")
        self.gates[gate.name] = gate
        self._compiled = False

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        """Primary input net names, in declaration order."""
        return [g.name for g in self.gates.values() if g.gtype == "INPUT"]

    @property
    def flip_flops(self) -> List[str]:
        """Flip-flop output net names, in declaration order.

        This order defines the scan chain: scan-in vectors and scan-out
        vectors index flip-flops in this order.
        """
        return [g.name for g in self.gates.values() if g.gtype == "DFF"]

    @property
    def comb_gates(self) -> List[str]:
        """Names of combinational (non-source) gates, declaration order."""
        return [g.name for g in self.gates.values()
                if g.gtype not in SOURCE_TYPES]

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_ffs(self) -> int:
        return len(self.flip_flops)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (excludes INPUT and DFF)."""
        return len(self.comb_gates)

    @property
    def num_nets(self) -> int:
        return len(self.gates)

    def is_compiled(self) -> bool:
        return self._compiled

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self) -> "Netlist":
        """Check structure, assign net ids, and compute topological order.

        Returns ``self`` so construction can be chained.

        Raises
        ------
        NetlistError
            If a net is referenced but never driven, an output is
            undriven, or the combinational logic contains a cycle.
        """
        for gate in self.gates.values():
            for fin in gate.fanins:
                if fin not in self.gates:
                    raise NetlistError(
                        f"net {fin!r} used by {gate.name!r} is never driven")
        for out in self.outputs:
            if out not in self.gates:
                raise NetlistError(f"output net {out!r} is never driven")

        self.fanout = {name: [] for name in self.gates}
        for gate in self.gates.values():
            for fin in gate.fanins:
                self.fanout[fin].append(gate.name)

        self._toposort()

        self.net_names = (self.inputs + self.flip_flops + self.order)
        self.net_ids = {n: i for i, n in enumerate(self.net_names)}
        self._compiled = True
        return self

    def _toposort(self) -> None:
        """Kahn topological sort of combinational gates.

        Sources (INPUT, DFF, CONST*) are level 0.  DFF *data* pins do not
        create dependencies (they are cut points), so feedback through
        flip-flops is legal; any remaining cycle is purely combinational
        and is an error.
        """
        self.levels = {}
        indeg: Dict[str, int] = {}
        for gate in self.gates.values():
            if gate.gtype in SOURCE_TYPES:
                self.levels[gate.name] = 0
            else:
                indeg[gate.name] = sum(
                    1 for f in gate.fanins
                    if self.gates[f].gtype not in SOURCE_TYPES)
        ready = sorted(n for n, d in indeg.items() if d == 0)

        order: List[str] = []
        queue = list(ready)
        while queue:
            name = queue.pop()
            gate = self.gates[name]
            self.levels[name] = 1 + max(
                (self.levels[f] for f in gate.fanins), default=0)
            order.append(name)
            for succ in self.fanout[name]:
                sg = self.gates[succ]
                if sg.gtype in SOURCE_TYPES:
                    continue
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
        if len(order) != len(indeg):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise NetlistError(
                f"combinational cycle involving nets: {stuck[:10]}")
        # Stable order: by level, then by name, for reproducibility.
        order.sort(key=lambda n: (self.levels[n], n))
        self.order = order

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep copy (compiled state is not carried over)."""
        dup = Netlist(name or self.name)
        for gate in self.gates.values():
            dup.gates[gate.name] = Gate(gate.name, gate.gtype,
                                        list(gate.fanins))
        dup.outputs = list(self.outputs)
        return dup

    def stats(self) -> Dict[str, int]:
        """Summary counts used in reports and tables."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "ffs": self.num_ffs,
            "gates": self.num_gates,
            "nets": self.num_nets,
        }

    def transitive_fanin(self, nets: Iterable[str],
                         stop_at_ffs: bool = True) -> List[str]:
        """Nets in the transitive fanin cone of ``nets``.

        With ``stop_at_ffs`` the traversal does not go through DFF data
        pins (cone of the current time frame only).
        """
        seen = set()
        stack = list(nets)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            gate = self.gates[name]
            if gate.gtype == "DFF" and stop_at_ffs:
                continue
            stack.extend(gate.fanins)
        return sorted(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, pi={self.num_inputs}, "
                f"po={self.num_outputs}, ff={self.num_ffs}, "
                f"gates={self.num_gates})")

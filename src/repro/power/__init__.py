"""Scan test power analysis and power-constrained compaction.

This package quantifies what a compacted test set *costs* in switching
activity and lets the compaction pipeline trade cycles against power:

* :mod:`~repro.power.activity` -- a bit-parallel switching-activity
  engine computing the weighted transition metric (WTM) of every scan
  shift and the capture-cycle toggle counts of every functional frame,
  per test and per test set;
* :mod:`~repro.power.xfill` -- the registry of pluggable don't-care
  fill strategies (``random``, ``fill0``, ``fill1``, ``adjacent``)
  implemented by :func:`repro.sim.values.fill_x`;
* :mod:`~repro.power.constrain` -- power-constrained hooks for the
  compaction pipeline: a peak-WTM merge filter for Phase 4
  (:func:`repro.core.combine.static_compact`) and a power tie-break
  key for Phase 3 (:func:`repro.core.topoff.top_off`).

The core pipeline never imports this package; it exposes generic
callables (``merge_filter``, ``power_key``) that the API layer fills
in from here, so the default (no-budget, random-fill) flow stays
byte-identical to the paper reproduction.

See DESIGN.md section 11 for the WTM definitions and the launch/capture
accounting conventions.
"""

from .activity import (ActivityEngine, PowerReport, SetPower,
                       SetPowerSummary, TestPower)
from .constrain import topoff_power_key, wtm_budget_filter
from .xfill import FILL_STRATEGIES, validate_strategy

__all__ = [
    "ActivityEngine",
    "TestPower",
    "SetPower",
    "SetPowerSummary",
    "PowerReport",
    "FILL_STRATEGIES",
    "validate_strategy",
    "wtm_budget_filter",
    "topoff_power_key",
]

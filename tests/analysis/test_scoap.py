"""SCOAP controllability/observability measures."""

import pytest

from repro.analysis.scoap import (UNREACHABLE, ScoapMeasures,
                                  compute_scoap)
from repro.circuits import library, synth
from repro.circuits.netlist import Netlist
from repro.sim.faults import Fault, all_faults


def chain():
    """a,b -> n1=AND -> n2=NOT -> PO; q=DFF(n2)."""
    net = Netlist("chain")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("n1", "AND", ["a", "b"])
    net.add_gate("n2", "NOT", ["n1"])
    net.add_dff("q", "n2")
    net.add_output("n2")
    return net.compile()


class TestControllability:
    def test_inputs_and_ffs_cost_one(self):
        m = compute_scoap(chain())
        assert m.cc0["a"] == m.cc1["a"] == 1
        # Full scan: the FF output is a pseudo primary input.
        assert m.cc0["q"] == m.cc1["q"] == 1

    def test_and_gate(self):
        m = compute_scoap(chain())
        # AND-1 needs both inputs 1 (1+1+1); AND-0 needs the cheaper
        # input at 0 (1+1).
        assert m.cc1["n1"] == 3
        assert m.cc0["n1"] == 2

    def test_not_swaps(self):
        m = compute_scoap(chain())
        assert m.cc0["n2"] == m.cc1["n1"] + 1
        assert m.cc1["n2"] == m.cc0["n1"] + 1

    def test_const_saturates(self):
        net = Netlist("c")
        net.add_input("a")
        net.add_gate("k", "CONST0", [])
        net.add_gate("g", "OR", ["a", "k"])
        net.add_output("g")
        net.compile()
        m = compute_scoap(net)
        assert m.cc0["k"] == 1
        assert m.cc1["k"] == UNREACHABLE
        # OR-0 needs every input 0: reachable; sums saturate, never
        # overflow past the bound.
        assert m.cc0["g"] < UNREACHABLE

    def test_xor_parity_dp(self):
        net = Netlist("x")
        for name in ("a", "b", "c"):
            net.add_input(name)
        net.add_gate("g", "XOR", ["a", "b", "c"])
        net.add_output("g")
        net.compile()
        m = compute_scoap(net)
        # Three unit inputs: any parity costs 3 traversals + the gate.
        assert m.cc0["g"] == 4
        assert m.cc1["g"] == 4


class TestObservability:
    def test_po_and_dff_pins_free(self):
        m = compute_scoap(chain())
        assert m.co_stem["n2"] == 0          # primary output
        assert m.observability("n2", None) == 0
        # The DFF data pin is scan-observed for free, so n2's stem
        # takes the cheaper of PO (0) and the pin (0).
        assert m.co_pin[("q", 0)] == 0

    def test_side_input_cost(self):
        m = compute_scoap(chain())
        # Observing `a` through the AND needs b=1 (cc1=1), then the
        # NOT, each a traversal.
        assert m.observability("a", None) == \
            m.co_stem["n1"] + m.cc1["b"] + 1

    def test_unobservable_saturates(self):
        net = Netlist("dead")
        net.add_input("a")
        net.add_gate("g", "NOT", ["a"])
        net.add_gate("dead", "NOT", ["g"])
        net.add_output("g")
        net.compile()
        m = compute_scoap(net)
        assert m.co_stem["dead"] == UNREACHABLE


class TestDifficulty:
    def test_difficulty_is_excite_plus_observe(self):
        m = compute_scoap(chain())
        f = Fault("n1", None, 0)  # excite: n1=1
        assert m.difficulty(f) == m.cc1["n1"] + m.co_stem["n1"]

    def test_profile_counts_saturated(self):
        net = Netlist("p")
        net.add_input("a")
        net.add_gate("k", "CONST1", [])
        net.add_gate("g", "AND", ["a", "k"])
        net.add_output("g")
        net.compile()
        m = compute_scoap(net)
        prof = m.profile(all_faults(net))
        assert prof["n_faults"] == len(all_faults(net))
        assert prof["n_saturated"] >= 1   # k s-a-1 is unexcitable
        assert prof["min"] <= prof["median"] <= prof["max"]

    def test_every_line_measured(self):
        net = synth.generate("sc", 4, 3, 5, 40, seed=2)
        m = compute_scoap(net)
        for f in all_faults(net):
            assert m.difficulty(f) >= 0

    def test_branch_vs_stem_observability(self, s27):
        m = compute_scoap(s27)
        for f in all_faults(s27):
            if f.pin is not None:
                # A stem is at most as hard to observe as any branch.
                assert m.co_stem[f.net] <= m.co_pin[f.pin]


class TestRoundTrip:
    def test_dict_round_trip(self, s27):
        m = compute_scoap(s27)
        back = ScoapMeasures.from_dict(m.to_dict())
        assert back == m

    def test_library_deterministic(self):
        a = compute_scoap(library.s27())
        b = compute_scoap(library.s27())
        assert a == b

    def test_missing_net_raises(self, s27):
        m = compute_scoap(s27)
        with pytest.raises(KeyError):
            m.controllability("nosuch", 1)

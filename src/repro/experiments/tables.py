"""Regeneration of the paper's Tables 1-5 plus the extension tables.

Each ``table*`` function turns a list of :class:`CircuitRun` into a
:class:`~repro.experiments.reporting.Table` with the same columns the
paper prints.  Where the paper reports a total (Table 3), so do we.
Paper-published values, where the profile carries them, are available
through :func:`paper_comparison` for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence)

from ..core.metrics import at_speed_stats
from .reporting import Table
from .runner import CircuitRun
from .salvage import PartialRun

#: ``{circuit: reason}`` -- circuits whose job ultimately failed.
Failures = Optional[Mapping[str, str]]

#: ``{circuit: PartialRun}`` -- failed jobs that left salvage behind.
Partials = Optional[Mapping[str, PartialRun]]

#: Known-column extractor for a PARTIAL row (cells after the label).
_PartialCells = Optional[Callable[[PartialRun], List[Optional[Any]]]]


def _arm(run: CircuitRun, source: str):
    arm = run.arms.get(source)
    return arm.result if arm else None


def _add_failure_rows(table: Table, failures: Failures,
                      partials: Partials = None,
                      partial_cells: _PartialCells = None) -> None:
    """Annotate circuits that produced no run instead of dropping them.

    A failed job still gets a row: its name, ``FAILED(reason)`` in the
    first data column, and dashes for the rest -- so a partially
    degraded campaign renders every requested circuit.  Jobs the
    pre-flight analyzer refused to run carry a ``lint: <rule,...>``
    reason and render as ``SKIPPED(lint: <rule,...>)``: skipping a
    structurally broken circuit is deliberate, not a failure.

    A failed job that left phase-boundary salvage behind renders as
    ``PARTIAL(phase k/4)`` instead, followed by whatever coverage
    columns ``partial_cells`` can extract from the salvaged state
    (dashes elsewhere).
    """
    partials = partials or {}
    for name in sorted(set(failures or {}) | set(partials)):
        partial = partials.get(name)
        if partial is not None:
            cells: List[Optional[Any]] = [name, partial.label]
            if partial_cells is not None:
                cells.extend(partial_cells(partial))
        else:
            reason = (failures or {})[name]
            label = (f"SKIPPED({reason})" if reason.startswith("lint:")
                     else f"FAILED({reason})")
            cells = [name, label]
        cells.extend([None] * (len(table.headers) - len(cells)))
        table.add_row(*cells)


def table1(runs: Sequence[CircuitRun], source: str = "seqgen",
           failures: Failures = None,
           partials: Partials = None) -> Table:
    """Table 1: faults detected by T0, by tau_seq, and by the final set.

    The ``untst`` column (not in the paper) counts the faults the
    static analyzer *proved* untestable -- they are excluded from
    simulation and bound the achievable ``final`` count at
    ``flts - untst``.  Runs restored from pre-analyzer checkpoints
    show ``0``.
    """
    table = Table(f"Table 1: Detected faults (T0 source: {source})",
                  ["circuit", "ff", "comb tsts", "flts", "untst",
                   "T0", "scan", "final"])
    for run in runs:
        res = _arm(run, source)
        if res is None:
            continue
        table.add_row(
            run.name,
            run.n_ffs,
            run.comb_tests,
            run.n_faults,
            run.n_untestable,
            len(res.t0_detected),
            len(res.seq_detected),
            len(res.final_detected),
        )
    _add_failure_rows(table, failures, partials, lambda p: [
        p.meta.get("comb_tests"),
        p.meta.get("n_faults"),
        p.meta.get("n_untestable"),
        p.arm_metric(source, "t0_detected"),
        p.arm_metric(source, "seq_detected"),
        p.arm_metric(source, "final_detected"),
    ])
    return table


def table2(runs: Sequence[CircuitRun], source: str = "seqgen",
           failures: Failures = None,
           partials: Partials = None) -> Table:
    """Table 2: sequence lengths and Phase-3 additions."""
    table = Table(f"Table 2: Test lengths (T0 source: {source})",
                  ["circuit", "T0 len", "scan len", "added c.tst"])
    for run in runs:
        res = _arm(run, source)
        if res is None:
            continue
        table.add_row(run.name, res.t0_length, res.seq_length,
                      res.added_tests)
    _add_failure_rows(table, failures, partials, lambda p: [
        p.arm_metric(source, "seq_length"),
        p.arm_metric(source, "added_tests"),
    ])
    return table


def table3(runs: Sequence[CircuitRun],
           failures: Failures = None,
           partials: Partials = None) -> Table:
    """Table 3: clock cycles for every method.

    Columns mirror the paper: the [2,3] dynamic baseline, the [4]
    baseline before/after compaction, and the proposed procedure
    before/after Phase 4 for both ``T0`` sources.
    """
    table = Table(
        "Table 3: Numbers of clock cycles",
        ["circuit", "[2,3]", "[4] init", "[4] comp",
         "prop init", "prop comp", "rand init", "rand comp"])
    totals = [0] * 7
    have = [False] * 7
    for run in runs:
        cells: List[Optional[int]] = []
        dyn = run.dynamic.test_set.clock_cycles() if run.dynamic else None
        cells.append(dyn)
        if run.baseline4:
            cells.append(run.baseline4.stats.initial_cycles)
            cells.append(run.baseline4.stats.final_cycles)
        else:
            cells.extend([None, None])
        for source in ("seqgen", "random"):
            res = _arm(run, source)
            if res is None:
                cells.extend([None, None])
            else:
                cells.append(res.initial_cycles())
                cells.append(res.compacted_cycles())
        table.add_row(run.name, *cells)
        for i, cell in enumerate(cells):
            if cell is not None:
                totals[i] += cell
                have[i] = True
    _add_failure_rows(table, failures, partials)
    table.add_row("total",
                  *[totals[i] if have[i] else None for i in range(7)])
    return table


def table4(runs: Sequence[CircuitRun],
           failures: Failures = None,
           partials: Partials = None) -> Table:
    """Table 4: at-speed primary-input sequence lengths (ave / range)."""
    table = Table(
        "Table 4: At-speed test lengths",
        ["circuit", "[4] ave", "[4] range",
         "prop ave", "prop range", "rand ave", "rand range"])
    for run in runs:
        cells: List[Optional[object]] = []
        if run.baseline4:
            stats = at_speed_stats(run.baseline4.test_set)
            cells.extend([stats.average, stats.range_str])
        else:
            cells.extend([None, None])
        for source in ("seqgen", "random"):
            res = _arm(run, source)
            if res is None:
                cells.extend([None, None])
            else:
                final = res.compacted_set or res.test_set
                stats = at_speed_stats(final)
                cells.extend([stats.average, stats.range_str])
        table.add_row(run.name, *cells)
    _add_failure_rows(table, failures, partials)
    return table


def table5(runs: Sequence[CircuitRun],
           failures: Failures = None,
           partials: Partials = None) -> Table:
    """Table 5: the random-T0 arm in detail."""
    table = Table(
        "Table 5: Results for random sequences",
        ["circuit", "T0", "scan", "final",
         "T0 len", "scan len", "added c.tst"])
    for run in runs:
        res = _arm(run, "random")
        if res is None:
            continue
        table.add_row(
            run.name,
            len(res.t0_detected),
            len(res.seq_detected),
            len(res.final_detected),
            res.t0_length,
            res.seq_length,
            res.added_tests,
        )
    _add_failure_rows(table, failures, partials, lambda p: [
        p.arm_metric("random", "seq_detected"),
        p.arm_metric("random", "final_detected"),
        p.arm_metric("random", "t0_length"),
        p.arm_metric("random", "seq_length"),
        p.arm_metric("random", "added_tests"),
    ])
    return table


def table_atspeed_coverage(runs: Sequence[CircuitRun],
                           failures: Failures = None,
                           partials: Partials = None) -> Table:
    """Extension E6: transition-fault coverage of the final test sets.

    Quantifies the paper's at-speed claim: the long-sequence test sets
    detect far more delay defects than the [4]-style sets.
    """
    table = Table(
        "Extension: transition-fault coverage (%) of final test sets",
        ["circuit", "[4]", "proposed", "rand"])
    for run in runs:
        table.add_row(
            run.name,
            run.transition.get("baseline4"),
            run.transition.get("seqgen"),
            run.transition.get("random"),
        )
    _add_failure_rows(table, failures, partials)
    return table


def table_delay(runs: Sequence[CircuitRun],
                failures: Failures = None,
                partials: Partials = None) -> Table:
    """Delay extension: at-speed quality vs clock cost per test set.

    The paper-style comparison: the proposed long-sequence sets (both
    ``T0`` arms) against the [4]-style single-vector baseline, scored
    on transition-fault coverage *and* the test-clock budget that
    bought it -- paper-model cycles (``cycles``), at-speed
    launch/capture pairs (``at-speed``, always 0 for single-vector
    sets), their ratio (``as-frac``), and the Beck-model tester
    cycles with slow shifts and resync overhead priced in
    (``tester``).  The ``clk`` column tags the clock scheme and shift
    divisor the report was produced under; ``tdf`` is the simulation
    route.  Runs without a delay report (legacy checkpoints, runs
    without ``--delay``) contribute no rows.
    """
    table = Table(
        "Delay: TDF coverage / test-clock cost of final test sets",
        ["circuit", "clk", "tdf", "set", "tests", "TDF cov",
         "at-speed", "cycles", "as-frac", "tester"])
    for run in runs:
        report = run.delay
        if report is None:
            continue
        tag = f"{report.spec.scheme}/{report.spec.shift_divisor}"
        for name in ("seqgen", "random", "baseline4"):
            summary = report.sets.get(name)
            if summary is None:
                continue
            table.add_row(run.name, tag, report.engine, name,
                          summary.tests, summary.coverage,
                          summary.at_speed_cycles,
                          summary.total_cycles,
                          summary.at_speed_fraction,
                          summary.tester_cycles)
    _add_failure_rows(table, failures, partials)
    return table


def table_power(runs: Sequence[CircuitRun],
                failures: Failures = None,
                partials: Partials = None) -> Table:
    """Power extension: shift WTM and capture toggles per test set.

    Compares the proposed sets (both ``T0`` arms) against the
    [4]-style baseline set under the run's X-fill strategy: peak and
    average shift WTM (``max(WTM_in, WTM_out)`` per test, see
    DESIGN.md section 11) and the peak capture-cycle toggle count.
    The ``x-fill`` column tags the strategy (and budget, when one was
    set) the run was produced with.
    """
    table = Table(
        "Power: shift WTM / capture toggles of final test sets",
        ["circuit", "x-fill", "set", "tests", "peak WTM",
         "avg WTM", "peak capt", "avg capt"])
    for run in runs:
        report = run.power
        if report is None:
            continue
        tag = report.x_fill
        if report.budget is not None:
            tag = f"{tag} (<= {report.budget:g})"
        for name in ("seqgen", "random", "baseline4"):
            summary = report.sets.get(name)
            if summary is None:
                continue
            table.add_row(run.name, tag, name, summary.tests,
                          summary.peak_shift_wtm,
                          summary.avg_shift_wtm,
                          summary.peak_capture,
                          summary.avg_capture)
    _add_failure_rows(table, failures, partials)
    return table


def all_tables(runs: Sequence[CircuitRun],
               with_delay: bool = False,
               failures: Failures = None,
               partials: Partials = None) -> List[Table]:
    """Every paper table (plus the extensions when data is present).

    ``with_delay`` forces the at-speed coverage table even when no
    surviving run carries transition data (so a failed ``--delay``
    campaign still renders the table frame); the Delay cost table
    appears whenever any run carries a full
    :class:`~repro.delay.clocking.DelayReport`.  ``failures``
    annotates circuits whose job produced no run; ``partials``
    upgrades those annotations to ``PARTIAL(phase k/4)`` rows with
    salvaged coverage columns.  The tables render with the surviving
    subset either way.
    """
    tables = [table1(runs, failures=failures, partials=partials),
              table2(runs, failures=failures, partials=partials),
              table3(runs, failures=failures, partials=partials),
              table4(runs, failures=failures, partials=partials),
              table5(runs, failures=failures, partials=partials)]
    if with_delay or any(run.transition for run in runs):
        tables.append(table_atspeed_coverage(runs, failures=failures,
                                             partials=partials))
    if with_delay or any(run.delay is not None for run in runs):
        tables.append(table_delay(runs, failures=failures,
                                  partials=partials))
    if any(run.power is not None for run in runs):
        tables.append(table_power(runs, failures=failures,
                                  partials=partials))
    return tables


def paper_comparison(runs: Sequence[CircuitRun],
                     failures: Failures = None,
                     partials: Partials = None) -> Table:
    """Paper-published vs measured key figures, where known.

    Used to fill EXPERIMENTS.md; absolute values are expected to
    differ (synthetic stand-in circuits) while orderings should hold.
    """
    table = Table(
        "Paper vs measured (key figures)",
        ["circuit", "metric", "paper", "measured"])
    for run in runs:
        paper = run.profile.paper
        res = _arm(run, "seqgen")
        b4 = run.baseline4
        rows = []
        if "faults" in paper:
            rows.append(("faults", paper["faults"], run.n_faults))
        if res is not None:
            if "t0_detected" in paper:
                rows.append(("T0 detected", paper["t0_detected"],
                             len(res.t0_detected)))
            if "scan_detected" in paper:
                rows.append(("tau_seq detected", paper["scan_detected"],
                             len(res.seq_detected)))
            if "added" in paper:
                rows.append(("added tests", paper["added"],
                             res.added_tests))
            if "cycles_prop_init" in paper:
                rows.append(("prop init cycles",
                             paper["cycles_prop_init"],
                             res.initial_cycles()))
            if "cycles_prop_comp" in paper:
                rows.append(("prop comp cycles",
                             paper["cycles_prop_comp"],
                             res.compacted_cycles()))
        if b4 is not None:
            if "cycles_4_init" in paper:
                rows.append(("[4] init cycles", paper["cycles_4_init"],
                             b4.stats.initial_cycles))
            if "cycles_4_comp" in paper:
                rows.append(("[4] comp cycles", paper["cycles_4_comp"],
                             b4.stats.final_cycles))
        for metric, expected, measured in rows:
            table.add_row(run.name, metric, expected, measured)
    _add_failure_rows(table, failures, partials)
    return table

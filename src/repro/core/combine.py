"""Static compaction by combining tests (the procedure of ref [4]).

Combining ``tau_i = (SI_i, T_i)`` and ``tau_j = (SI_j, T_j)`` removes
``SO_i`` and ``SI_j`` and concatenates the sequences:
``tau_ij = (SI_i, T_i T_j)``.  Each combination saves one scan
operation (``N_SV`` clock cycles) and is accepted only if the *test
set's* fault coverage does not drop.  The procedure repeats until no
pair can be combined.

Implementation notes
--------------------
Checking "coverage does not drop" is done with essential-fault
bookkeeping: a fault is *essential* to a test when no other test in the
current set detects it.  A combination of ``tau_i`` and ``tau_j`` is
acceptable iff the combined test detects every fault essential to
either -- all other faults stay covered by the rest of the set.  On
acceptance the combined test is re-simulated over the whole target set
(coverage can also *grow*: the second sequence now runs from the state
the first one left behind).

Detection sets are cached per :class:`ScanTest` (tests are frozen and
hash by value) for the lifetime of one :func:`static_compact` call:
across rounds only a newly combined test is ever simulated from
scratch; every surviving test's set is reused.  Callers that already
know a test's detection set -- Phase 4 knows ``tau_seq``'s from the
Phase 1+2 pipeline -- seed the cache through ``known_detections`` and
skip even the initial simulation of those tests.  Essential-fault
bookkeeping needs exact per-test detection sets over the *full*
target, so no fault dropping is possible here beyond the cache; a
``retire_to`` scoreboard only receives the final coverage.

This module serves double duty as the paper's Phase 4 and as the [4]
baseline (applied to a single-vector-per-test initial set built from a
combinational test set).

Transfer sequences (ref [7])
----------------------------
The paper points to an improvement of [4]: when two tests cannot be
combined directly (the state left by ``T_i`` breaks ``tau_j``'s
detections), a short *transfer sequence* of primary-input vectors
inserted between them can steer the circuit into a usable state.  The
combination then saves ``N_SV - L(transfer)`` cycles instead of
``N_SV``, so only transfers shorter than the scan chain are worth
taking.  Enable with ``max_transfer > 0``; the paper runs [4] without
it ("we use the procedure of [4] for all our experiments"), so it
defaults off and is evaluated separately in the ablation bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..sim import values as V
from ..sim.fault_sim import FaultSimulator
from .scan_test import ScanTest, ScanTestSet


@dataclass
class CombineStats:
    """Bookkeeping from a static-compaction run."""

    combinations_accepted: int = 0
    combinations_tried: int = 0
    combinations_rejected: int = 0
    transfers_used: int = 0
    transfer_vectors_added: int = 0
    initial_tests: int = 0
    final_tests: int = 0
    initial_cycles: int = 0
    final_cycles: int = 0


@dataclass
class CombineResult:
    """Result of :func:`static_compact`."""

    test_set: ScanTestSet
    detected: Set[int]
    stats: CombineStats = field(default_factory=CombineStats)


def _detections(sim: FaultSimulator, tests: Sequence[ScanTest],
                target: Sequence[int],
                cache: Optional[Dict[ScanTest, Set[int]]] = None
                ) -> List[Set[int]]:
    """Per-test detection sets over ``target``, via ``cache`` when warm.

    Cached sets may cover a superset of ``target`` (e.g. seeded from a
    phase that simulated the whole fault list); they are intersected
    down.  Fresh simulations are stored back, so across
    :func:`static_compact` rounds only changed tests are re-simulated.
    """
    if cache is None:
        cache = {}
    target_set = set(target)
    out: List[Set[int]] = []
    for t in tests:
        det = cache.get(t)
        if det is None:
            det = sim.detect(list(t.vectors), t.scan_in, target=target,
                             early_exit=False)
            cache[t] = det
        out.append(det & target_set)
    return out


def _detection_counts(detects: List[Set[int]]) -> Dict[int, int]:
    """How many tests of the set detect each fault."""
    count: Dict[int, int] = {}
    for det in detects:
        for fid in det:
            count[fid] = count.get(fid, 0) + 1
    return count


def _pair_essentials(count: Dict[int, int], det_i: Set[int],
                     det_j: Set[int]) -> Set[int]:
    """Faults covered *only* by tests ``i`` and/or ``j``.

    These are exactly the faults the combined test must keep: every
    other fault of ``det_i | det_j`` stays covered by some third test.
    Note a fault detected by both ``i`` and ``j`` (count 2) is
    essential to the *pair* even though it is essential to neither
    test alone.
    """
    essential = set()
    for fid in det_i | det_j:
        outside = count[fid] - (fid in det_i) - (fid in det_j)
        if outside == 0:
            essential.add(fid)
    return essential


def static_compact(
    sim: FaultSimulator,
    test_set: ScanTestSet,
    target: Optional[Set[int]] = None,
    max_rounds: int = 16,
    max_sequence_length: Optional[int] = None,
    max_transfer: int = 0,
    transfer_pool: Optional[Sequence[V.Vector]] = None,
    transfer_attempts: int = 4,
    seed: int = 0,
    known_detections: Optional[Dict[ScanTest, Set[int]]] = None,
    retire_to=None,
    merge_filter: Optional[Callable[[ScanTest], bool]] = None,
) -> CombineResult:
    """Compact ``test_set`` by combining test pairs ([4]).

    Parameters
    ----------
    sim:
        Fault simulator for the circuit.
    test_set:
        The initial tests (not mutated).
    target:
        Fault indices that define coverage; defaults to all faults.
    max_rounds:
        Safety bound on full passes (each pass needs at least one
        accepted combination to continue).
    max_sequence_length:
        Optional cap on combined sequence length (no cap by default,
        as in [4]).
    max_transfer:
        Maximum transfer-sequence length tried when a direct
        combination fails (ref [7]); 0 disables transfers (the paper's
        setting).  Transfers are capped at ``N_SV - 1`` regardless --
        longer ones cost more than the scan they replace.
    transfer_pool:
        Candidate transfer vectors (e.g. the primary-input parts of
        the combinational test set); random vectors fill in when
        absent.
    transfer_attempts:
        Candidate transfer sequences tried per length.
    seed:
        RNG seed for transfer candidates (deterministic).
    known_detections:
        Detection sets the caller already holds, per test, each over
        at least the target faults; seeds the per-test cache so those
        tests are never simulated from scratch.
    retire_to:
        Optional :class:`~repro.sim.scoreboard.FaultScoreboard`; the
        compacted set's coverage is retired into it.
    merge_filter:
        Optional predicate over a candidate *merged* test; a merge is
        only attempted when the predicate accepts the combined test
        (rejections are counted in ``combinations_rejected`` and
        cost no simulation).  Power-constrained compaction passes a
        peak-WTM budget check here
        (:func:`repro.power.constrain.wtm_budget_filter`); ``None``
        (the default) keeps the procedure of [4] byte-identical.
        The predicate must be deterministic: rejected pairs are
        remembered and never retried.
    """
    if target is None:
        target = set(range(len(sim.faults)))
    order = sorted(target)
    tests: List[ScanTest] = list(test_set.tests)
    stats = CombineStats(initial_tests=len(tests),
                         initial_cycles=test_set.clock_cycles())
    cache: Dict[ScanTest, Set[int]] = dict(known_detections or {})
    detects = _detections(sim, tests, order, cache)
    coverage = set().union(*detects) if detects else set()
    failed: Set[Tuple[ScanTest, ScanTest]] = set()
    max_transfer = min(max_transfer, max(0, sim.n_state_vars - 1))
    rng = random.Random(seed)
    n_pi = len(sim.circuit.pi_ids)

    for _ in range(max_rounds):
        count = _detection_counts(detects)
        accepted_any = False
        i = 0
        while i < len(tests):
            j = 0
            while j < len(tests):
                if i == j:
                    j += 1
                    continue
                first, second = tests[i], tests[j]
                if (first, second) in failed:
                    j += 1
                    continue
                if max_sequence_length is not None and \
                        first.length + second.length > max_sequence_length:
                    j += 1
                    continue
                combined = first.combined_with(second)
                if merge_filter is not None and \
                        not merge_filter(combined):
                    stats.combinations_rejected += 1
                    failed.add((first, second))
                    j += 1
                    continue
                must = _pair_essentials(count, detects[i], detects[j])
                stats.combinations_tried += 1
                sim.counters.combine_trials += 1
                det_must = sim.detect(list(combined.vectors),
                                      combined.scan_in,
                                      target=sorted(must),
                                      early_exit=True)
                if not must <= det_must and max_transfer > 0:
                    transfer = _find_transfer_sequence(
                        sim, first, second, must, max_transfer,
                        transfer_pool, transfer_attempts, rng, n_pi)
                    if transfer is not None:
                        with_transfer = ScanTest(
                            first.scan_in,
                            first.vectors + tuple(transfer) +
                            second.vectors)
                        if merge_filter is not None and \
                                not merge_filter(with_transfer):
                            stats.combinations_rejected += 1
                        else:
                            combined = with_transfer
                            det_must = sim.detect(
                                list(combined.vectors),
                                combined.scan_in,
                                target=sorted(must),
                                early_exit=True)
                            if must <= det_must:
                                stats.transfers_used += 1
                                stats.transfer_vectors_added += \
                                    len(transfer)
                if must <= det_must:
                    det_full = cache.get(combined)
                    if det_full is None:
                        det_full = sim.detect(list(combined.vectors),
                                              combined.scan_in,
                                              target=order,
                                              early_exit=False)
                        cache[combined] = det_full
                    else:
                        det_full = det_full & target
                    hi, lo = max(i, j), min(i, j)
                    for idx in (hi, lo):
                        tests.pop(idx)
                        detects.pop(idx)
                    tests.insert(lo, combined)
                    detects.insert(lo, det_full)
                    coverage |= det_full
                    count = _detection_counts(detects)
                    stats.combinations_accepted += 1
                    accepted_any = True
                    if j < i:
                        i -= 1
                    j = 0  # rescan partners for the new combined test
                else:
                    failed.add((first, second))
                    j += 1
            i += 1
        if not accepted_any:
            break

    final = ScanTestSet(test_set.n_state_vars, tests)
    stats.final_tests = len(tests)
    stats.final_cycles = final.clock_cycles()
    if retire_to is not None:
        retire_to.retire(coverage)
    return CombineResult(final, coverage, stats)


def _find_transfer_sequence(
    sim: FaultSimulator,
    first: ScanTest,
    second: ScanTest,
    must: Set[int],
    max_transfer: int,
    transfer_pool: Optional[Sequence[V.Vector]],
    attempts: int,
    rng: random.Random,
    n_pi: int,
) -> Optional[List[V.Vector]]:
    """A transfer sequence making ``first ++ transfer ++ second`` keep
    every pair-essential fault (ref [7]), or ``None``.

    Candidates per length: vectors from the pool (when given), a hold
    of ``first``'s last vector, and random vectors.  Shortest working
    transfer wins, since each transfer vector eats into the ``N_SV``
    cycles the combination saves.
    """
    for length in range(1, max_transfer + 1):
        for attempt in range(attempts):
            transfer: List[V.Vector] = []
            for position in range(length):
                roll = (attempt + position) % 3
                if roll == 0 and transfer_pool:
                    transfer.append(tuple(
                        transfer_pool[rng.randrange(len(transfer_pool))]))
                elif roll == 1:
                    transfer.append(tuple(first.vectors[-1]))
                else:
                    transfer.append(V.random_binary_vector(n_pi, rng))
            trial = first.vectors + tuple(transfer) + second.vectors
            sim.counters.combine_trials += 1
            detected = sim.detect(list(trial), first.scan_in,
                                  target=sorted(must), early_exit=True)
            if must <= detected:
                return transfer
    return None

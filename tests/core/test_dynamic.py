"""Tests for the dynamic compaction baseline."""

import pytest

from repro.core.dynamic import dynamic_compact
from repro.core.scan_test import ScanTestSet, single_vector_test


class TestDynamic:
    def test_complete_coverage_of_coverable(self, s27_bench, s27_comb):
        wb = s27_bench
        result = dynamic_compact(wb.sim, wb.comb_sim, s27_comb.tests)
        covered = set()
        for test in result.test_set:
            covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                     early_exit=False)
        assert result.detected <= covered
        assert result.detected | result.uncovered == \
            set(range(len(wb.faults)))

    def test_beats_naive_application(self, s27_bench, s27_comb):
        """Dynamic compaction must never cost more than applying the
        combinational set test by test."""
        wb = s27_bench
        naive = ScanTestSet(
            len(wb.circuit.ff_ids),
            [single_vector_test(t.state, t.pi) for t in s27_comb.tests])
        result = dynamic_compact(wb.sim, wb.comb_sim, s27_comb.tests)
        assert result.test_set.clock_cycles() <= naive.clock_cycles()

    def test_extension_cap(self, s27_bench, s27_comb):
        wb = s27_bench
        result = dynamic_compact(wb.sim, wb.comb_sim, s27_comb.tests,
                                 max_extension=2)
        assert all(t.length <= 2 for t in result.test_set)

    def test_default_cap_is_nsv(self, s27_bench, s27_comb):
        wb = s27_bench
        result = dynamic_compact(wb.sim, wb.comb_sim, s27_comb.tests)
        n_sv = len(wb.circuit.ff_ids)
        assert all(t.length <= max(n_sv, 2) for t in result.test_set)

    def test_empty_test_set_rejected(self, s27_bench):
        with pytest.raises(ValueError, match="empty"):
            dynamic_compact(s27_bench.sim, s27_bench.comb_sim, [])

    def test_deterministic(self, s27_bench, s27_comb):
        wb = s27_bench
        a = dynamic_compact(wb.sim, wb.comb_sim, s27_comb.tests)
        b = dynamic_compact(wb.sim, wb.comb_sim, s27_comb.tests)
        assert [t.vectors for t in a.test_set] == \
            [t.vectors for t in b.test_set]

    def test_mid_circuit(self, mid_bench, mid_comb):
        wb = mid_bench
        result = dynamic_compact(wb.sim, wb.comb_sim, mid_comb.tests)
        assert result.detected >= mid_comb.detected - result.uncovered

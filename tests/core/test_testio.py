"""Tests for tester-program serialization."""

import pytest

from repro.core import tester, testio
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.sim import values as V


@pytest.fixture()
def program(s27_bench):
    wb = s27_bench
    ts = ScanTestSet(3, [
        ScanTest(V.vec("010"), (V.vec("1100"), V.vec("0011"))),
        ScanTest(V.vec("111"), (V.vec("1010"),)),
    ])
    return tester.schedule(ts, wb.circuit)


class TestRoundTrip:
    def test_dumps_loads_identity(self, program):
        again = testio.loads(testio.dumps(program))
        assert again.n_state_vars == program.n_state_vars
        assert len(again) == len(program)
        for a, b in zip(again.cycles, program.cycles):
            assert a == b

    def test_file_roundtrip(self, program, tmp_path):
        path = tmp_path / "prog.rtp"
        testio.dump(program, path)
        again = testio.load(path)
        assert again.cycles == program.cycles

    def test_roundtripped_program_still_executes(self, program,
                                                 s27_bench):
        again = testio.loads(testio.dumps(program))
        assert tester.execute(again, s27_bench.circuit).passed


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(testio.TestProgramFormatError, match="empty"):
            testio.loads("# only a comment\n")

    def test_missing_header(self):
        with pytest.raises(testio.TestProgramFormatError,
                           match="PROGRAM header"):
            testio.loads("SHIFT in=1 out=x\n")

    def test_bad_cycle_kind(self, program):
        text = testio.dumps(program).replace("SHIFT", "SPIN", 1)
        with pytest.raises(testio.TestProgramFormatError,
                           match="unknown cycle kind"):
            testio.loads(text)

    def test_cycle_count_mismatch(self, program):
        text = testio.dumps(program)
        # Drop the last cycle line.
        text = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(testio.TestProgramFormatError,
                           match="cycles"):
            testio.loads(text)

    def test_bad_logic_char(self, program):
        text = testio.dumps(program).replace("in=1", "in=7", 1)
        with pytest.raises(testio.TestProgramFormatError,
                           match="malformed"):
            testio.loads(text)

    def test_line_numbers_in_errors(self, program):
        text = testio.dumps(program).replace("SHIFT", "SPIN", 1)
        with pytest.raises(testio.TestProgramFormatError, match="line 3"):
            testio.loads(text)

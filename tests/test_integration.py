"""Cross-module integration tests: the whole paper pipeline at once.

These exercise realistic end-to-end flows on a mid-size circuit and
check the global invariants that tie the subsystems together --
detection bookkeeping, the cost model, the tester replay, and the
at-speed story.
"""

import pytest

from repro import api
from repro.core import tester
from repro.core.metrics import at_speed_stats
from repro.core.scan_test import ScanTestSet, single_vector_test
from repro.delay.transition import TransitionSim


@pytest.fixture(scope="module")
def flow(mid_bench, mid_comb):
    """Everything computed once for the mid circuit."""
    wb = mid_bench
    proposed = api.compact_tests(wb.netlist, seed=1, t0_length=120,
                                 comb_tests=mid_comb.tests,
                                 workbench=wb)
    baseline = api.baseline_static(wb.netlist, seed=1,
                                   comb_tests=mid_comb.tests,
                                   workbench=wb)
    dyn = api.baseline_dynamic(wb.netlist, seed=1,
                               comb_tests=mid_comb.tests, workbench=wb)
    return wb, mid_comb, proposed, baseline, dyn


class TestCoverageInvariants:
    def test_every_method_covers_detectable(self, flow):
        """All three methods must reach full detectable coverage."""
        wb, comb, proposed, baseline, dyn = flow
        detectable = comb.detectable

        def union(test_set):
            covered = set()
            for t in test_set:
                covered |= wb.sim.detect(list(t.vectors), t.scan_in,
                                         early_exit=False)
            return covered

        prop_cover = union(proposed.compacted_set or proposed.test_set)
        base_cover = union(baseline.test_set)
        dyn_cover = union(dyn.test_set)
        assert detectable - proposed.uncovered <= prop_cover
        assert comb.detected <= base_cover
        assert comb.detected - dyn.uncovered <= dyn_cover

    def test_methods_agree_on_detectability(self, flow):
        wb, comb, proposed, baseline, dyn = flow
        # Whatever the proposed flow could not cover must be outside
        # C's detected set too (both bottom out at the same C).
        assert proposed.uncovered <= \
            set(range(len(wb.faults))) - comb.detected


class TestCostInvariants:
    def test_cost_ordering(self, flow):
        """The paper's headline ordering on this circuit."""
        wb, comb, proposed, baseline, dyn = flow
        assert proposed.compacted_cycles() <= proposed.initial_cycles()
        assert baseline.stats.final_cycles <= \
            baseline.stats.initial_cycles
        # The proposed compacted set beats the [4] compacted set here.
        assert proposed.compacted_cycles() <= baseline.stats.final_cycles

    def test_cost_model_vs_tester_program(self, flow):
        """N_cyc formula == flattened tester schedule length, for
        every produced test set."""
        wb, comb, proposed, baseline, dyn = flow
        for test_set in (proposed.test_set,
                         proposed.compacted_set,
                         baseline.test_set,
                         dyn.test_set):
            program = tester.schedule(test_set, wb.circuit)
            assert len(program) == test_set.clock_cycles()
            assert tester.execute(program, wb.circuit).passed


class TestAtSpeedStory:
    def test_longer_sequences_and_more_transition_coverage(self, flow):
        wb, comb, proposed, baseline, dyn = flow
        prop_stats = at_speed_stats(proposed.compacted_set or
                                    proposed.test_set)
        base_stats = at_speed_stats(baseline.test_set)
        assert prop_stats.average >= base_stats.average
        assert prop_stats.pairs >= base_stats.pairs
        tsim = TransitionSim(wb.circuit)
        prop_tc = tsim.coverage_percent(proposed.compacted_set or
                                        proposed.test_set)
        base_tc = tsim.coverage_percent(baseline.test_set)
        assert prop_tc >= base_tc

    def test_naive_set_has_zero_pairs(self, flow):
        wb, comb, proposed, baseline, dyn = flow
        naive = ScanTestSet(
            wb.sim.n_state_vars,
            [single_vector_test(t.state, t.pi) for t in comb.tests])
        assert naive.at_speed_pairs() == 0
        tsim = TransitionSim(wb.circuit)
        assert tsim.coverage_percent(naive) == 0.0


class TestDeterminism:
    def test_full_flow_reproducible(self, mid_bench, mid_comb):
        wb = mid_bench
        a = api.compact_tests(wb.netlist, seed=7, t0_length=60,
                              comb_tests=mid_comb.tests, workbench=wb)
        b = api.compact_tests(wb.netlist, seed=7, t0_length=60,
                              comb_tests=mid_comb.tests, workbench=wb)
        assert a.tau_seq == b.tau_seq
        assert a.compacted_cycles() == b.compacted_cycles()
        assert [t.vectors for t in a.compacted_set] == \
            [t.vectors for t in b.compacted_set]

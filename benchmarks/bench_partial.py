"""Benchmark (extension): partial-scan trade-off.

The paper's stated extension ("the proposed procedure can be extended
to the case of partial-scan circuits"), measured: test application
time and fault coverage under a cycle-cutting scan-chain selection
versus full scan.

Expected shape: partial scan reduces clock cycles (cheaper scan
operations) and loses some coverage -- monotonically in the chain
length.
"""

import pytest

from repro.circuits import suite
from repro.core.partial import PartialScanPlan, compact_partial


def test_partial_scan_tradeoff(benchmark):
    netlist = suite.profile("b06").build()

    def run_all():
        rows = []
        plans = [("full", PartialScanPlan.full(netlist)),
                 ("cut", PartialScanPlan.by_cycle_cutting(netlist))]
        for label, plan in plans:
            result = compact_partial(plan, seed=1, t0_length=120)
            final = result.compacted_set or result.test_set
            rows.append((label, plan.n_scanned, final.clock_cycles(),
                         len(result.final_detected)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for label, chain, cycles, detected in rows:
        print(f"  {label:>5}: chain={chain} cycles={cycles} "
              f"detected={detected}")
    (_, full_chain, full_cycles, full_det) = rows[0]
    (_, cut_chain, cut_cycles, cut_det) = rows[1]
    assert cut_chain <= full_chain
    assert cut_det <= full_det
    if cut_chain < full_chain:
        # Cheaper scans must show up in the cost when chains shrink.
        assert cut_cycles < full_cycles + full_chain

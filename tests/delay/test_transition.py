"""Tests for transition-fault simulation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import library, synth
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.delay import transition as transition_mod
from repro.delay.transition import (ROUTES, TransitionFault,
                                    TransitionSim, all_transition_faults)
from repro.sim import values as V
from repro.sim.counters import SimCounters
from repro.sim.logicsim import CompiledCircuit, simulate_sequence

try:
    from repro.sim import npsim
    _PACKED_OK = (npsim.numpy_available()
                  and npsim.kernel_unavailable_reason() is None)
except ImportError:  # pragma: no cover - numpy present in CI
    _PACKED_OK = False

needs_packed = pytest.mark.skipif(
    not _PACKED_OK, reason="packed TDF route needs numpy + C kernel")


def oracle_detects(netlist, fault, test):
    """Reference: for each launch frame, freeze the net at its old
    value for that frame only, then run the error forward through the
    fault-free circuit and compare against the good run."""
    cc = CompiledCircuit(netlist)
    # Good-machine net values per frame.
    zero = [0] * cc.n_nets
    one = [0] * cc.n_nets
    for nid_, val in zip(cc.ff_ids, test.scan_in):
        zero[nid_], one[nid_] = V.pack_scalar(val, 1)
    values = []
    for vec in test.vectors:
        for nid_, val in zip(cc.pi_ids, vec):
            zero[nid_], one[nid_] = V.pack_scalar(val, 1)
        cc.eval_frame(zero, one, 1)
        values.append((list(zero), list(one)))
        cap = tuple(V.word_scalar(zero[nid_], one[nid_])
                    for nid_ in cc.ff_d_ids)
        for nid_, val in zip(cc.ff_ids, cap):
            zero[nid_], one[nid_] = V.pack_scalar(val, 1)
    nid = netlist.net_ids[fault.net]
    last = test.length - 1
    for t in range(1, test.length):
        pz, po_ = values[t - 1]
        czv, cov = values[t]
        if fault.rising:
            launched = bool(pz[nid] & 1) and bool(cov[nid] & 1)
            stuck = 0
        else:
            launched = bool(po_[nid] & 1) and bool(czv[nid] & 1)
            stuck = 1
        if not launched:
            continue
        # Faulty machine: stuck-at-old at frame t, fault-free after.
        fz = [0] * cc.n_nets
        fo = [0] * cc.n_nets
        state = tuple(
            V.word_scalar(values[t - 1][0][d], values[t - 1][1][d])
            for d in cc.ff_d_ids)
        for fid_, val in zip(cc.ff_ids, state):
            fz[fid_], fo[fid_] = V.pack_scalar(val, 1)
        for u in range(t, test.length):
            for pid, val in zip(cc.pi_ids, test.vectors[u]):
                fz[pid], fo[pid] = V.pack_scalar(val, 1)
            if u == t:
                stems = {nid: (1, 0) if stuck == 0 else (0, 1)}
                if nid in cc.pi_ids or nid in cc.ff_ids:
                    fz[nid], fo[nid] = (1, 0) if stuck == 0 else (0, 1)
                cc.eval_frame(fz, fo, 1, stems)
            else:
                cc.eval_frame(fz, fo, 1)
            gz, go = values[u]
            observe = list(cc.po_ids) + (list(cc.ff_d_ids)
                                         if u == last else [])
            for oid in observe:
                g = V.word_scalar(gz[oid], go[oid])
                f = V.word_scalar(fz[oid], fo[oid])
                if g != f and g != V.X and f != V.X:
                    return True
            cap = [(fz[d], fo[d]) for d in cc.ff_d_ids]
            for fid_, (z, o) in zip(cc.ff_ids, cap):
                fz[fid_], fo[fid_] = z, o
    return False


class TestModel:
    def test_fault_enumeration(self, s27):
        faults = all_transition_faults(s27)
        assert len(faults) == 2 * s27.num_nets
        assert str(TransitionFault("a", True)) == "a/STR"
        assert str(TransitionFault("a", False)) == "a/STF"

    def test_length_one_test_detects_nothing(self, s27):
        """No at-speed vector pair => no transition coverage (the crux
        of the paper's at-speed argument)."""
        sim = TransitionSim(CompiledCircuit(s27))
        test = ScanTest(V.vec("000"), (V.vec("1111"),))
        assert sim.detect_test(test) == set()

    def test_counter_lsb_transitions(self):
        """In a free-running counter, q0 toggles every cycle: both
        transition faults on its data net are launched and captured."""
        net = library.counter(3)
        cc = CompiledCircuit(net)
        sim = TransitionSim(cc)
        test = ScanTest((V.ZERO,) * 3, ((V.ONE,),) * 6)
        detected = {str(sim.faults[i]) for i in sim.detect_test(test)}
        assert "d0/STR" in detected or "q0/STR" in detected


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_s27_matches_reference(self, s27, seed):
        rng = random.Random(seed)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(10))
        test = ScanTest(V.random_binary_vector(3, rng), vectors)
        sim = TransitionSim(CompiledCircuit(s27))
        got = sim.detect_test(test)
        for i, fault in enumerate(sim.faults):
            expected = oracle_detects(s27, fault, test)
            assert (i in got) == expected, str(fault)


class TestTestSets:
    def test_coverage_monotone_in_tests(self, s27):
        rng = random.Random(3)
        cc = CompiledCircuit(s27)
        sim = TransitionSim(cc)
        tests = []
        for _ in range(3):
            vectors = tuple(V.random_binary_vector(4, rng)
                            for _ in range(8))
            tests.append(ScanTest(V.random_binary_vector(3, rng),
                                  vectors))
        small = ScanTestSet(3, tests[:1])
        large = ScanTestSet(3, tests)
        assert sim.detect_test_set(small) <= sim.detect_test_set(large)

    def test_coverage_percent_bounds(self, s27):
        rng = random.Random(4)
        cc = CompiledCircuit(s27)
        sim = TransitionSim(cc)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(12))
        ts = ScanTestSet(3, [ScanTest(V.vec("000"), vectors)])
        pct = sim.coverage_percent(ts)
        assert 0.0 <= pct <= 100.0

    def test_target_restriction(self, s27):
        rng = random.Random(5)
        sim = TransitionSim(CompiledCircuit(s27))
        vectors = tuple(V.random_binary_vector(4, rng) for _ in range(8))
        test = ScanTest(V.vec("010"), vectors)
        full = sim.detect_test(test)
        if full:
            some = set(sorted(full)[:3])
            assert sim.detect_test(test, some) == some


# ----------------------------------------------------------------------
# Route selection and the packed (wide-word) execution path
# ----------------------------------------------------------------------

_N_PI = 4
_N_FF = 3

_EQ_CACHE = {}


def sims_for(seed):
    """One scalar + one packed simulator per engine, cached across
    hypothesis examples (fault lists and packing plans are per-circuit
    and expensive to rebuild every example)."""
    if seed not in _EQ_CACHE:
        net = synth.generate("tdfeq", _N_PI, _N_FF, 4, 25, seed=seed)
        pairs = []
        for engine in ("codegen", "generic"):
            cc = CompiledCircuit(net.copy(), engine=engine)
            scalar = TransitionSim(cc, route="scalar")
            packed = TransitionSim(cc, route="packed")
            pairs.append((scalar, packed))
        _EQ_CACHE[seed] = pairs
    return _EQ_CACHE[seed]


eq_seeds = st.integers(0, 9)


def _vectors(data, rng, n):
    """A PI sequence mixing binary and X-laden vectors."""
    out = []
    for _ in range(n):
        if data.draw(st.booleans()):
            out.append(V.random_binary_vector(_N_PI, rng))
        else:
            out.append(tuple(rng.choice((V.ZERO, V.ONE, V.X))
                             for _ in range(_N_PI)))
    return tuple(out)


class TestRouteSelection:
    def test_unknown_route_rejected(self, s27):
        with pytest.raises(ValueError, match="unknown TDF route"):
            TransitionSim(CompiledCircuit(s27), route="fused")
        assert ROUTES == ("auto", "packed", "scalar")

    def test_scalar_route_forced(self, s27):
        sim = TransitionSim(CompiledCircuit(s27), route="scalar")
        assert sim.route == "scalar"

    def test_auto_resolves(self, s27):
        sim = TransitionSim(CompiledCircuit(s27), route="auto")
        assert sim.route in ("packed", "scalar")
        if _PACKED_OK:
            assert sim.route == "packed"

    @needs_packed
    def test_packed_route_forced(self, s27):
        sim = TransitionSim(CompiledCircuit(s27), route="packed")
        assert sim.route == "packed"

    def test_counters_surface_tdf_fields(self, s27):
        counters = SimCounters()
        sim = TransitionSim(CompiledCircuit(s27), counters=counters)
        rng = random.Random(7)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(8))
        sim.detect_test(ScanTest(V.vec("010"), vectors))
        assert counters.tdf_passes > 0
        assert counters.tdf_words > 0
        assert counters.tdf_s >= 0.0
        back = SimCounters.from_dict(counters.as_dict())
        assert back.tdf_passes == counters.tdf_passes
        assert back.tdf_words == counters.tdf_words


@needs_packed
class TestRouteEquivalence:
    """The packed kernel route must be byte-identical to the scalar
    big-int reference -- including X-laden stimuli, restricted targets
    and multi-word launch groups -- on both big-int engines."""

    @settings(max_examples=30, deadline=None)
    @given(seed=eq_seeds, data=st.data())
    def test_detections_identical(self, seed, data):
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(1, 10)))
        test = ScanTest(V.random_binary_vector(_N_FF, rng), vectors)
        results = []
        for scalar, packed in sims_for(seed):
            got_scalar = scalar.detect_test(test)
            got_packed = packed.detect_test(test)
            assert got_packed == got_scalar
            results.append(got_packed)
        assert results[0] == results[1]  # engines agree too

    @settings(max_examples=20, deadline=None)
    @given(seed=eq_seeds, data=st.data())
    def test_restricted_target_identical(self, seed, data):
        """Target restriction + the all-caught saturation break must
        not depend on the route."""
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = _vectors(data, rng, data.draw(st.integers(2, 8)))
        test = ScanTest(V.random_binary_vector(_N_FF, rng), vectors)
        scalar, packed = sims_for(seed)[0]
        full = scalar.detect_test(test)
        if not full:
            return
        k = data.draw(st.integers(1, len(full)))
        some = set(sorted(full)[:k])
        assert packed.detect_test(test, some) == \
            scalar.detect_test(test, some) == some

    def test_length_one_detects_nothing_packed(self, s27):
        sim = TransitionSim(CompiledCircuit(s27), route="packed")
        test = ScanTest(V.vec("000"), (V.vec("1111"),))
        assert sim.detect_test(test) == set()

    def test_multi_word_launch_groups(self):
        """A circuit with > 63 faults forces multi-word uint64 chunks;
        detection must still match the scalar route exactly."""
        net = synth.generate("tdfwide", 5, 4, 8, 80, seed=11)
        cc = CompiledCircuit(net)
        scalar = TransitionSim(cc, route="scalar")
        packed = TransitionSim(cc, route="packed")
        assert len(packed.faults) > 63
        rng = random.Random(2)
        tests = [ScanTest(V.random_binary_vector(4, rng),
                          tuple(V.random_binary_vector(5, rng)
                                for _ in range(12)))
                 for _ in range(3)]
        ts = ScanTestSet(4, tests)
        assert packed.detect_test_set(ts) == scalar.detect_test_set(ts)

    def test_sanitizer_spot_checks_packed_captures(self, monkeypatch):
        """With REPRO_SANITIZE armed the packed route recomputes its
        first captures on the scalar shadow; agreement means no
        violation is reported and the spot budget is consumed."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        net = synth.generate("tdfsan", 4, 3, 5, 30, seed=5)
        sim = TransitionSim(CompiledCircuit(net), route="packed")
        rng = random.Random(9)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(10))
        sim.detect_test(ScanTest(V.random_binary_vector(3, rng),
                                 vectors))
        assert sim._sanitize_spots_left < \
            transition_mod._SANITIZE_SPOT_BUDGET

    def test_shadow_does_not_distort_counters(self, monkeypatch):
        """The sanitizer's scalar shadow recomputation must not bump
        the TDF counters: armed and unarmed runs count the same."""
        net = synth.generate("tdfsan", 4, 3, 5, 30, seed=6)
        rng = random.Random(3)
        vectors = tuple(V.random_binary_vector(4, rng)
                        for _ in range(8))
        test = ScanTest(V.random_binary_vector(3, rng), vectors)
        counts = []
        for armed in (False, True):
            if armed:
                monkeypatch.setenv("REPRO_SANITIZE", "1")
            else:
                monkeypatch.delenv("REPRO_SANITIZE", raising=False)
            sim = TransitionSim(CompiledCircuit(net.copy()),
                                route="packed")
            sim.detect_test(test)
            counts.append((sim.counters.tdf_passes,
                           sim.counters.tdf_words))
        assert counts[0] == counts[1]

"""The cross-process C-kernel cache (``$REPRO_KERNEL_CACHE``)."""

import os

import pytest

from repro.sim import npsim


def _reset_kernel_state(monkeypatch):
    """Give the test a virgin process-level kernel cache.

    monkeypatch restores the real compiled kernel afterwards, so other
    tests in the process keep their fast path.
    """
    monkeypatch.setattr(npsim, "_KERNEL", None)
    monkeypatch.setattr(npsim, "_KERNEL_ERROR", None)
    monkeypatch.setattr(npsim, "_KERNEL_TRIED", False)


def test_no_env_means_no_cache(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
    assert npsim._kernel_cache_path() is None


def test_path_is_keyed_on_source(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    first = npsim._kernel_cache_path()
    assert first is not None and first.startswith(str(tmp_path))
    monkeypatch.setattr(npsim, "_KERNEL_SOURCE",
                        npsim._KERNEL_SOURCE + "\n/* v2 */\n")
    assert npsim._kernel_cache_path() != first


def test_publish_then_hit_without_a_compiler(monkeypatch, tmp_path):
    """A compile publishes the .so; the next load needs no compiler."""
    if not npsim.numpy_available():
        pytest.skip("numpy not installed")
    if npsim.kernel_unavailable_reason() is not None:
        pytest.skip(npsim.kernel_unavailable_reason())
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    _reset_kernel_state(monkeypatch)
    assert npsim._load_kernel() is not None
    cached = npsim._kernel_cache_path()
    assert cached is not None and os.path.exists(cached)
    # Second process (simulated): cache hit must not need a compiler.
    _reset_kernel_state(monkeypatch)
    monkeypatch.setattr(npsim, "_find_cc", lambda: None)
    assert npsim._load_kernel() is not None
    assert npsim._KERNEL_ERROR is None

"""The paper's proposed compaction procedure (Sections 3.1-3.5).

:func:`run` orchestrates the full pipeline:

1. iterate Phase 1 (scan-in + scan-out selection) and Phase 2 (vector
   omission) starting from ``T0``, re-feeding ``T_C`` as the next
   iteration's sequence, until the selected scan-in state repeats
   (Section 3.3's selected/unselected rule) or the iteration cap hits;
2. Phase 3: top off the remaining detectable faults with single-vector
   tests chosen by the ``min n(f)`` / ``last(f)`` rule;
3. Phase 4 (optional): static compaction of the final set with the
   combining procedure of [4].

The result records per-phase statistics matching the paper's Tables
1-3: faults detected by ``T0`` alone, by ``tau_seq``, and by the final
set; the lengths of ``T0`` and ``T_seq``; the number of added tests;
and the clock-cycle counts before and after Phase 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..analysis import sanitizer
from ..atpg.comb_set import CombTest
from ..sim import values as V
from ..sim.comb_sim import CombPatternSim
from ..sim.fault_sim import FaultSimulator
from ..sim.scoreboard import FaultScoreboard
from .combine import CombineStats, static_compact
from .omission import omit_vectors
from .phase1 import DEFAULT_CANDIDATE_SCAN, detect_no_scan, run_phase1
from .scan_test import ScanTest, ScanTestSet
from .topoff import top_off


class PhaseObserver:
    """Phase-boundary hooks for supervision and salvage.

    :func:`run` calls :meth:`enter` when a pipeline phase begins and
    :meth:`completed` when a phase boundary commits, passing a state
    dict holding everything needed to resume *from* that boundary (the
    same dict shape :meth:`run`'s ``resume`` parameter accepts, minus
    the ``phase`` key).  The harness uses this to stream heartbeats
    and persist salvage; the default implementation does nothing, so
    library callers pay nothing.

    Hooks run on the worker's hot path between phases -- they must not
    mutate the state they are handed.
    """

    def enter(self, phase: str) -> None:  # pragma: no cover - trivial
        """``phase`` is one of ``"phase1"`` .. ``"phase4"``."""

    def completed(self, phase: str,
                  state: Dict[str, Any]) -> None:  # pragma: no cover
        """A phase boundary committed; ``state`` is resumable."""


@dataclass
class IterationLog:
    """One Phase 1+2 iteration, for reporting and debugging."""

    scan_in_index: int
    u_so: int
    length_before: int
    length_after: int
    detected_before: int
    detected_after: int


@dataclass
class ProposedResult:
    """Full outcome of the proposed procedure.

    Attributes mirror the paper's tables; see the class body comments.
    """

    tau_seq: ScanTest                 # the long-sequence test
    test_set: ScanTestSet             # end of Phase 3 ("init" in Table 3)
    compacted_set: Optional[ScanTestSet]  # end of Phase 4 ("comp")
    t0_length: int                    # L(T0)           (Table 2)
    t0_detected: Set[int]             # detected by T0  (Table 1 "T0")
    seq_detected: Set[int]            # by tau_seq      (Table 1 "scan")
    final_detected: Set[int]          # by the test set (Table 1 "final")
    added_tests: int                  # Phase-3 additions (Table 2)
    uncovered: Set[int]               # undetectable leftovers
    iterations: List[IterationLog] = field(default_factory=list)
    combine_stats: Optional[CombineStats] = None

    @property
    def seq_length(self) -> int:
        """``L(T_seq)`` (Table 2 ``scan`` column)."""
        return self.tau_seq.length

    def initial_cycles(self) -> int:
        """Clock cycles at the end of Phase 3 (Table 3 ``init``)."""
        return self.test_set.clock_cycles()

    def compacted_cycles(self) -> int:
        """Clock cycles after Phase 4 (Table 3 ``comp``)."""
        final = self.compacted_set or self.test_set
        return final.clock_cycles()


def run(
    sim: FaultSimulator,
    comb_sim: CombPatternSim,
    t0: Sequence[V.Vector],
    comb_tests: Sequence[CombTest],
    target: Optional[Set[int]] = None,
    max_iterations: Optional[int] = None,
    omission_passes: int = 2,
    run_phase4: bool = True,
    scan_out_rule: str = "earliest",
    scoreboard: Optional[FaultScoreboard] = None,
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    merge_filter: Optional[Callable[[ScanTest], bool]] = None,
    topoff_power_key: Optional[Callable[[int], float]] = None,
    observer: Optional[PhaseObserver] = None,
    resume: Optional[Dict[str, Any]] = None,
    trial_batch: int = 64,
    adi: bool = False,
    adi_scores: Optional[Dict[int, int]] = None,
    scoap_scores: Optional[Dict[int, int]] = None,
) -> ProposedResult:
    """Run the proposed procedure end to end.

    Parameters
    ----------
    sim, comb_sim:
        Sequential and pattern-parallel fault simulators over the same
        circuit and fault set.
    t0:
        The initial test sequence (from a sequential test generator, or
        random -- the paper evaluates both).
    comb_tests:
        The combinational test set ``C``.
    target:
        Target fault indices; defaults to the whole fault set.
    max_iterations:
        Cap on Phase 1+2 iterations; defaults to ``len(comb_tests)``
        (the paper's bound: at most ``K`` iterations).
    omission_passes:
        Sweeps per Phase-2 run.
    run_phase4:
        Apply [4]'s static compaction at the end (paper Phase 4).
    scan_out_rule:
        Step-3 variant: "earliest" (the paper's ``i0``) or
        "max_coverage" (the rejected ``i1`` -- kept for the ablation
        study).
    scoreboard:
        The cross-phase fault-dropping ledger; one is created when
        omitted.  Must be *fresh* for this run -- its ledger is
        interpreted as "detected by this run's committed tests".
        Faults are retired as each artifact commits
        (``tau_seq`` after the Phase 1+2 loop, every Phase-3 top-off
        test, the Phase-4 compacted set), so each later full-set
        simulation rebuilds a smaller injection word.  Dropping is
        applied only where the result is provably unchanged; see
        :mod:`repro.sim.scoreboard`.
    candidate_scan:
        Phase-1 Step-2 engine mode: ``"lanes"`` (candidate-parallel
        transposed packing, the default) or ``"scalar"`` (one detect
        pass per unique candidate state).  Both produce identical
        results; see :data:`repro.core.phase1.CANDIDATE_SCAN_MODES`.
    merge_filter:
        Optional predicate over candidate Phase-4 merges, forwarded to
        :func:`repro.core.combine.static_compact` (e.g. a peak-WTM
        budget from :func:`repro.power.constrain.wtm_budget_filter`).
    topoff_power_key:
        Optional Phase-3 power tie-break, forwarded to
        :func:`repro.core.topoff.top_off` (e.g. from
        :func:`repro.power.constrain.topoff_power_key`).  Both hooks
        default to ``None``, keeping the pipeline byte-identical to
        the paper reproduction.
    observer:
        Optional :class:`PhaseObserver` receiving phase-entry and
        phase-boundary callbacks (heartbeats and salvage).
    resume:
        Optional phase-boundary state dict as previously handed to
        ``observer.completed`` (plus a ``"phase"`` key: the furthest
        completed phase, 2 or 3).  Every completed phase is skipped
        and its committed artifacts restored -- including the
        scoreboard ledger via
        :meth:`~repro.sim.scoreboard.FaultScoreboard.restore` -- so
        the remaining phases produce byte-identical results without
        re-simulating.  With ``resume``, ``t0`` may be empty (its
        length is taken from the saved state).
    trial_batch:
        Lane budget for batched trial simulation, forwarded to
        :func:`repro.core.combine.static_compact` (Phase-4 merge-trial
        prefetching) and :func:`repro.core.topoff.top_off` (Phase-3
        candidate blocks).  Results are byte-identical for every
        value; ``1`` forces the scalar one-trial-per-pass loops.
    adi:
        Enable Accidental-Detection-Index guidance (Pomeranz & Reddy,
        arXiv:0710.4637): ``adi_scores`` are recorded on the
        scoreboard and used to (a) order fused-word fault packing,
        (b) tie-break the Phase-1 scan-in argmax toward candidates
        detecting more random-resistant faults, and (c) order Phase-3
        top-off targets.  Off (the default) keeps every result
        byte-identical to the paper reproduction; on, only orderings
        within the paper's freedom change.
    adi_scores:
        Fault index -> accidental-detection count, typically
        ``CombSetResult.adi`` from the random phase of combinational
        test generation.  Ignored unless ``adi`` is set.
    scoap_scores:
        Optional fault index -> SCOAP difficulty map (from
        :meth:`~repro.analysis.faultspace.FaultSpaceReport.
        difficulty_map`).  When given, the static difficulty becomes
        the pre-ADI tie-break in the Phase-1 scan-in argmax and the
        Phase-3 top-off order, and -- when ADI is off -- orders
        fused-word packing by *ascending* difficulty so the easy
        faults share words that saturate early.  ``None`` (the
        default) keeps every result byte-identical to the paper
        reproduction; set, only orderings within the paper's freedom
        change.

    Raises
    ------
    ValueError
        If ``t0`` (absent a resume state) or ``comb_tests`` is empty.
    """
    resume_phase = int(resume["phase"]) if resume else 0
    if not t0 and resume_phase < 2:
        raise ValueError("initial sequence T0 is empty")
    if not comb_tests:
        raise ValueError("combinational test set is empty")
    if target is None:
        target = set(range(len(sim.faults)))
    if max_iterations is None:
        max_iterations = len(comb_tests)
    if scoreboard is None:
        scoreboard = FaultScoreboard(len(sim.faults),
                                     counters=sim.counters)

    if adi and adi_scores:
        scoreboard.record_adi(adi_scores)
    adi_map: Optional[Dict[int, int]] = dict(scoreboard.adi) if adi else None
    timers = sim.counters
    t0_length = len(t0)

    # ADI packing order is simulator state; reset it on every exit so a
    # simulator shared across runs (bench arms, harness retries) never
    # leaks one run's ordering into the next.  Without ADI, SCOAP
    # difficulty orders the packing instead (negated: the packer groups
    # by descending score, and low difficulty = accidentally-easy =
    # saturates early, mirroring high ADI).
    pack_order = adi_map
    if pack_order is None and scoap_scores:
        pack_order = {f: -d for f, d in scoap_scores.items()}
    sim.set_adi_order(pack_order)
    try:

        if resume_phase >= 2:
            assert resume is not None
            tau = resume["tau"]
            tau_detected = set(resume["tau_detected"])
            t0_detected = set(resume["t0_detected"])
            t0_length = resume["t0_length"]
            logs = list(resume["iterations"])
            scoreboard.restore(resume["retired"])
        else:
            if observer is not None:
                observer.enter("phase1")
            selected = [False] * len(comb_tests)
            current: List[V.Vector] = [tuple(v) for v in t0]
            with timers.phase_timer("phase1"):
                t0_detected = detect_no_scan(sim, current, sorted(target))
            f0 = set(t0_detected)
            tau = None
            tau_detected = set()
            logs = []

            entered_phase2 = False
            for _ in range(max(1, max_iterations)):
                with timers.phase_timer("phase1"):
                    phase1 = run_phase1(sim, current, comb_tests, selected,
                                        target=target, f0=f0,
                                        scan_out_rule=scan_out_rule,
                                        candidate_scan=candidate_scan,
                                        adi=adi_map,
                                        scoap=scoap_scores)
                candidate = ScanTest(phase1.scan_in, phase1.vectors)
                if observer is not None and not entered_phase2:
                    entered_phase2 = True
                    observer.enter("phase2")
                with timers.phase_timer("phase2"):
                    omission = omit_vectors(sim, candidate, phase1.f_so,
                                            passes=omission_passes)
                logs.append(IterationLog(
                    scan_in_index=phase1.chosen_index,
                    u_so=phase1.u_so,
                    length_before=len(current),
                    length_after=omission.test.length,
                    detected_before=len(phase1.f_so),
                    detected_after=len(omission.detected),
                ))
                tau = omission.test
                tau_detected = omission.detected
                if phase1.chose_selected:
                    break
                selected[phase1.chosen_index] = True
                current = list(tau.vectors)
                # Next iteration's Step 1 runs on the new sequence.
                with timers.phase_timer("phase1"):
                    f0 = detect_no_scan(sim, current, sorted(target))

            assert tau is not None
            # tau_seq is committed now: retire its known detections (from
            # the omission pass over F_SO) so the full-target pass below
            # carries only the still-unknown faults in its injection word.
            scoreboard.retire(tau_detected & target)
            if observer is not None:
                observer.completed("phase2", {
                    "tau": tau,
                    "tau_detected": set(tau_detected),
                    "t0_detected": set(t0_detected),
                    "t0_length": t0_length,
                    "iterations": list(logs),
                    "retired": scoreboard.retired_snapshot(),
                })

        assert tau is not None
        if resume_phase >= 3:
            assert resume is not None
            test_set = resume["test_set"]
            seq_detected = set(resume["seq_detected"])
            final_detected = set(resume["final_detected"])
            added_tests = resume["added_tests"]
            uncovered = set(resume["uncovered"])
        else:
            if observer is not None:
                observer.enter("phase3")
            with timers.phase_timer("phase3"):
                # Full detection set of tau_seq over the target faults.
                seq_detected = scoreboard.retired_within(target)
                seq_detected |= sim.detect(list(tau.vectors), tau.scan_in,
                                           target=scoreboard.active(target),
                                           early_exit=False,
                                           retire_to=scoreboard)

                undetected = target - seq_detected
                topoff = top_off(comb_sim, comb_tests, undetected,
                                 retire_to=scoreboard,
                                 power_key=topoff_power_key,
                                 trial_batch=trial_batch,
                                 adi=adi_map,
                                 counters=sim.counters,
                                 scoap=scoap_scores)
            n_sv = sim.n_state_vars
            test_set = ScanTestSet(n_sv, [tau] + list(topoff.tests))
            final_detected = seq_detected | topoff.covered
            added_tests = len(topoff.tests)
            uncovered = topoff.uncovered
            if observer is not None:
                observer.completed("phase3", {
                    "tau": tau,
                    "tau_detected": set(tau_detected),
                    "t0_detected": set(t0_detected),
                    "t0_length": t0_length,
                    "iterations": list(logs),
                    "retired": scoreboard.retired_snapshot(),
                    "test_set": test_set,
                    "seq_detected": set(seq_detected),
                    "final_detected": set(final_detected),
                    "added_tests": added_tests,
                    "uncovered": set(uncovered),
                })

        compacted = None
        combine_stats = None
        if run_phase4:
            if observer is not None:
                observer.enter("phase4")
            # Phase 4 needs exact per-test detection sets; the only sound
            # cross-phase saving is seeding tau_seq's set, which Phase 1+2
            # already computed over the full target.
            with timers.phase_timer("phase4"):
                outcome = static_compact(sim, test_set, target=target,
                                         known_detections={tau: seq_detected},
                                         retire_to=scoreboard,
                                         merge_filter=merge_filter,
                                         trial_batch=trial_batch)
            compacted = outcome.test_set
            combine_stats = outcome.stats

        if sanitizer.enabled():
            # Soundness of cross-phase dropping: everything the scoreboard
            # retired over this run must be in the final detected set.
            sanitizer.check_retired_subset(scoreboard.retired_within(target),
                                           final_detected, "proposed.run")

        return ProposedResult(
            tau_seq=tau,
            test_set=test_set,
            compacted_set=compacted,
            t0_length=t0_length,
            t0_detected=t0_detected,
            seq_detected=seq_detected,
            final_detected=final_detected,
            added_tests=added_tests,
            uncovered=uncovered,
            iterations=logs,
            combine_stats=combine_stats,
        )
    finally:
        sim.set_adi_order(None)

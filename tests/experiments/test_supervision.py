"""Heartbeat supervision, chaos grammar and stall detection.

The subprocess cases exercise the real spawn boundary: heartbeats
streaming over the worker pipe, the supervisor's stall timeout killing
silent workers, and phase-scoped chaos riding `REPRO_CHAOS` /
``HarnessConfig.chaos`` into a worker that then resumes from salvage.
"""

import json

import pytest

from repro.experiments import reporting
from repro.experiments.harness import HarnessConfig, JobSpec, run_jobs
from repro.experiments.supervision import (ChaosDirective, ChaosError,
                                           ProgressReporter, WorkerHooks,
                                           chaos_from_env, parse_chaos)
from repro.sim.counters import SimCounters


def _spec(circuit="s27", **kw):
    kw.setdefault("arms", ("random",))
    kw.setdefault("with_baselines", False)
    return JobSpec(circuit, seed=1, **kw)


def _cfg(**kw):
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("heartbeat_interval", 0.05)
    return HarnessConfig(**kw)


def _chaos_once(directive):
    def chaos(spec, attempt):
        return directive if attempt == 1 else None
    return chaos


class TestParseChaos:
    @pytest.mark.parametrize("text,kind,phase", [
        ("crash", "crash", None),
        ("exit", "exit", None),
        ("hang", "hang", None),
        ("corrupt-checkpoint", "corrupt-checkpoint", None),
        ("corrupt-salvage", "corrupt-salvage", None),
        ("crash@phase1", "crash", "phase1"),
        ("crash@phase3", "crash", "phase3"),
        ("stall@phase2", "stall", "phase2"),
        ("stall@phase4", "stall", "phase4"),
    ])
    def test_valid(self, text, kind, phase):
        directive = parse_chaos(text)
        assert directive == ChaosDirective(kind, phase)
        assert str(directive) == text

    @pytest.mark.parametrize("text,match", [
        ("stall", "requires a phase scope"),
        ("segfault", "unknown chaos directive"),
        ("crash@phase9", "unknown phase"),
        ("crash@", "unknown phase"),
        ("exit@phase2", "does not accept a phase scope"),
        ("corrupt-salvage@phase3", "does not accept a phase scope"),
    ])
    def test_invalid(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_chaos(text)


class TestChaosFromEnv:
    def test_wildcard_first_attempt_only(self):
        chaos = chaos_from_env("crash@phase3")
        assert chaos(_spec("s27"), 1) == "crash@phase3"
        assert chaos(_spec("b02"), 1) == "crash@phase3"
        assert chaos(_spec("s27"), 2) is None

    def test_circuit_scoped(self):
        chaos = chaos_from_env("s27:crash@phase3,b02:stall@phase2")
        assert chaos(_spec("s27"), 1) == "crash@phase3"
        assert chaos(_spec("b02"), 1) == "stall@phase2"
        assert chaos(_spec("s298"), 1) is None

    def test_malformed_fails_at_parse_time(self):
        with pytest.raises(ValueError):
            chaos_from_env("s27:stall")
        with pytest.raises(ValueError):
            chaos_from_env("segfault")

    def test_blank_entries_ignored(self):
        chaos = chaos_from_env("crash, ,")
        assert chaos(_spec(), 1) == "crash"

    def test_env_reaches_run_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash@phase3")
        outcome = run_jobs([_spec()],
                           config=_cfg(isolate=False, retries=1,
                                       run_dir=tmp_path))
        assert outcome.ok
        assert outcome.records[0].attempts == 2

    def test_explicit_chaos_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash@phase3")
        outcome = run_jobs([_spec()],
                           config=_cfg(isolate=False,
                                       chaos=lambda s, a: None))
        assert outcome.ok
        assert outcome.records[0].attempts == 1


class _PipeStub:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


class TestProgressReporter:
    def test_update_sends_immediately(self):
        conn = _PipeStub()
        reporter = ProgressReporter(conn, interval=60.0)
        reporter.update(arm="random", phase="phase1")
        assert len(conn.sent) == 1
        kind, status = conn.sent[0]
        assert kind == "heartbeat"
        assert status["arm"] == "random"
        assert status["phase"] == "phase1"
        assert status["seq"] == 1
        reporter.update(phase="phase2")
        assert conn.sent[-1][1]["arm"] == "random"  # merged, not reset
        assert conn.sent[-1][1]["seq"] == 2

    def test_counters_snapshot_in_heartbeat(self):
        conn = _PipeStub()
        reporter = ProgressReporter(conn, interval=60.0)
        counters = SimCounters()
        reporter.bind_counters(counters, n_faults=100)
        counters.frames = 7
        counters.faults_dropped = 40
        reporter.update(arm="random", phase="phase2")
        status = conn.sent[-1][1]
        assert status["counters"]["frames"] == 7
        assert status["faults_remaining"] == 60

    def test_inline_mode_tracks_without_sending(self):
        reporter = ProgressReporter(None, interval=60.0)
        reporter.start()  # no-op, no thread
        reporter.update(arm="random", phase="phase3")
        assert reporter.status["phase"] == "phase3"
        reporter.stop()

    def test_status_survives_json(self):
        """Heartbeat payloads must stay plain data (they cross the
        pipe and land in JobRecord.progress)."""
        conn = _PipeStub()
        reporter = ProgressReporter(conn, interval=60.0)
        reporter.bind_counters(SimCounters(), n_faults=10)
        reporter.update(arm="seqgen", phase="phase1")
        json.dumps(conn.sent[-1][1])


class TestWorkerHooksInline:
    def test_phase_crash_enacted_once(self):
        hooks = WorkerHooks(ProgressReporter(None),
                            chaos=parse_chaos("crash@phase2"),
                            isolated=False)
        observer = hooks.arm_observer("random")
        observer.enter("phase1")
        with pytest.raises(ChaosError, match="crash@phase2"):
            observer.enter("phase2")
        observer.enter("phase2")  # directive cleared: second pass runs

    def test_inline_stall_degrades_to_raise(self):
        hooks = WorkerHooks(ProgressReporter(None),
                            chaos=parse_chaos("stall@phase2"),
                            isolated=False)
        observer = hooks.arm_observer("random")
        with pytest.raises(ChaosError, match="inline"):
            observer.enter("phase2")

    def test_no_salvage_hooks_are_noops(self):
        hooks = WorkerHooks(ProgressReporter(None), isolated=False)
        assert hooks.arm_resume("random") is None
        assert hooks.completed_arm("random") is None
        hooks.job_meta({"n_faults": 1})
        hooks.arm_completed("random", None)


class TestIsolatedSupervision:
    """Real subprocess workers: heartbeats, stalls, phase resumes."""

    def test_progress_recorded_on_success(self, tmp_path):
        outcome = run_jobs([_spec()],
                           config=_cfg(isolate=True, run_dir=tmp_path))
        assert outcome.ok
        record = outcome.records[0]
        assert record.progress is not None
        assert record.progress.startswith("random/")
        summary = outcome.failure_summary().render()
        assert "progress" in summary

    def test_hang_killed_by_stall_timeout(self, tmp_path):
        """A worker that never heartbeats dies at the stall timeout --
        no wall-clock timeout configured at all."""
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=True, run_dir=tmp_path,
                        stall_timeout=1.0,
                        chaos=lambda s, a: "hang"))
        assert not outcome.ok
        record = outcome.records[0]
        assert record.status == "stall"
        assert "without a heartbeat" in record.error
        assert "stall" in record.reason

    def test_phase_stall_killed_and_resumed(self, tmp_path):
        """stall@phase2: heartbeats flow through Phase 1, go quiet at
        the Phase-2 boundary, the supervisor kills on silence, and the
        retry resumes from the Phase-1 salvage... which does not exist
        (only completed phases salvage), so it recomputes -- but the
        kill itself must be a 'stall' with the last-seen phase."""
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=True, retries=1, run_dir=tmp_path,
                        stall_timeout=0.5,
                        chaos=_chaos_once("stall@phase2")))
        assert outcome.ok
        assert outcome.records[0].attempts == 2

    def test_isolated_crash_resumes_byte_identical(self, tmp_path):
        reference = run_jobs([_spec()], config=_cfg(isolate=False))
        assert reference.ok
        ref = reporting.proposed_to_dict(
            reference.runs[0].arms["random"].result)
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=True, retries=1, run_dir=tmp_path,
                        chaos=_chaos_once("crash@phase3")))
        assert outcome.ok
        resumed = reporting.proposed_to_dict(
            outcome.runs[0].arms["random"].result)
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(ref, sort_keys=True)
        assert outcome.runs[0].counters["candidate_passes"] == 0
        assert outcome.runs[0].counters["omission_trials"] == 0

    def test_stall_reports_last_progress(self, tmp_path):
        """The stall record carries the last heartbeat-reported
        position so the job summary says *where* it died."""
        outcome = run_jobs(
            [_spec()],
            config=_cfg(isolate=True, run_dir=tmp_path,
                        stall_timeout=0.5,
                        chaos=lambda s, a: "stall@phase2"))
        assert not outcome.ok
        record = outcome.records[0]
        assert record.status == "stall"
        assert record.progress is not None
        assert "phase" in record.progress


class TestBackoffJitter:
    def test_deterministic_per_job(self):
        from repro.experiments.harness import _JobState, _retry_delay
        cfg = HarnessConfig(backoff_base=0.5, backoff_cap=30.0)
        a = _JobState(_spec("s27"), attempts=1)
        b = _JobState(_spec("s27"), attempts=1)
        assert _retry_delay(a, cfg) == _retry_delay(b, cfg)

    def test_jobs_decorrelate(self):
        from repro.experiments.harness import _JobState, _retry_delay
        cfg = HarnessConfig(backoff_base=0.5, backoff_cap=30.0)
        delays = {_retry_delay(_JobState(_spec(c), attempts=1), cfg)
                  for c in ("s27", "b02", "s298", "s344")}
        assert len(delays) > 1

    def test_growth_and_cap(self):
        from repro.experiments.harness import _JobState, _retry_delay
        cfg = HarnessConfig(backoff_base=0.5, backoff_cap=2.0)
        state = _JobState(_spec(), attempts=1)
        seen = []
        for attempt in range(1, 8):
            state.attempts = attempt
            delay = _retry_delay(state, cfg)
            assert cfg.backoff_base <= delay <= cfg.backoff_cap
            seen.append(delay)
        assert max(seen) <= cfg.backoff_cap

    def test_no_hang_seconds_constant(self):
        """The bounded-sleep hang constant is gone; stalls are the
        supervisor's business now."""
        from repro.experiments import harness, supervision
        assert not hasattr(harness, "_HANG_SECONDS")
        assert hasattr(supervision, "freeze")

"""Code-generated circuit evaluation (the fast engine).

The generic :meth:`CompiledCircuit.eval_frame` interprets an op list:
per gate it unpacks a tuple, dispatches on the opcode and indexes the
word arrays.  For a fixed circuit all of that is constant, so this
module generates a specialized Python function with the whole
evaluation unrolled -- every net id a literal, every gate a line or
two of bitwise expressions -- and compiles it once per circuit.

The generated function is a drop-in for ``eval_frame`` (same
signature, same fault-injection semantics, including per-gate stem
forcing and fanout-branch overrides).  Equivalence against the generic
engine is enforced by tests over random circuits and injection masks;
pick the engine with ``CompiledCircuit(netlist, engine=...)``.

The generated source is **word-width and chunk-count agnostic**: no
literal in it depends on ``mask`` or on how many faulty machines the
caller packed per word.  The same compiled function therefore serves
the good-machine simulator (mask 1), the 128-bit chunked fault
simulator, and the fused wide-word engine (one multi-thousand-bit
word per pass) without recompilation -- the width lives entirely in
the big-int operands.  Keep it that way: baking a width into the
source would force one compile per packing policy and break the
``width="auto"`` adaptive switch in :mod:`repro.sim.fault_sim`.

The module emits two flavors behind the same source-text cache:

* the **big-int** evaluator (:func:`generate_source`), operating on
  per-net Python-int word pairs;
* the **numpy** evaluator (:func:`generate_numpy_source`), the same
  unrolled program over ``(n_nets, n_words)`` ``uint64`` arrays --
  one row slice per net, in-place ufunc calls on the fast path, and
  the width living in ``n_words`` instead of the operand.  It is the
  portable executor of :mod:`repro.sim.npsim` (used when the C
  kernel is unavailable) and shares the big-int flavor's injection
  semantics verbatim: the branch slow path rebinds blended fanin
  rows and folds through :func:`_eval_lists_np`, the array-safe twin
  of :func:`~repro.sim.logicsim._eval_lists` (same folds, but never
  an augmented assignment -- ndarray ``&=`` would mutate the shared
  mask array that big-int rebinding leaves untouched).

Compiled code objects are cached by source text, so building many
:class:`~repro.sim.logicsim.CompiledCircuit` instances over copies of
the same netlist (benchmark harnesses, equivalence sweeps, worker
subprocesses re-importing a suite circuit) pays the bytecode
compilation once per distinct circuit per process.  The two flavors
emit different text for the same netlist, so they occupy distinct
cache slots and never collide.

Typical speedup on 100-gate circuits is 1.5-2.5x for the whole fault
simulation stack (measured in ``benchmarks/bench_engine.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..circuits.netlist import Netlist

# Opcode values mirror logicsim's (kept in sync by the import below).

#: Source-text -> compiled code object cache (process lifetime; the
#: source embeds every net id, so identical text implies an identical
#: evaluator).
_CODE_CACHE: Dict[str, object] = {}


def generate_source(circuit) -> str:
    """The Python source of the specialized evaluator."""
    from .logicsim import (OP_AND, OP_BUF, OP_CONST0, OP_CONST1,
                           OP_NAND, OP_NOR, OP_NOT, OP_OR, OP_XNOR,
                           OP_XOR)
    lines: List[str] = [
        "def eval_frame(zero, one, mask, stems=None, branch=None):",
        "    _z = zero",
        "    _o = one",
    ]
    emit = lines.append
    for opcode, out, fins in circuit.ops:
        zs = [f"_z[{f}]" for f in fins]
        os_ = [f"_o[{f}]" for f in fins]
        if opcode == OP_AND:
            z = " | ".join(zs)
            o = " & ".join(os_)
        elif opcode == OP_NAND:
            o = " | ".join(zs)
            z = " & ".join(os_)
        elif opcode == OP_OR:
            z = " & ".join(zs)
            o = " | ".join(os_)
        elif opcode == OP_NOR:
            o = " & ".join(zs)
            z = " | ".join(os_)
        elif opcode == OP_NOT:
            z, o = os_[0], zs[0]
        elif opcode == OP_BUF:
            z, o = zs[0], os_[0]
        elif opcode in (OP_XOR, OP_XNOR):
            # Fold pairwise; needs temporaries for 3+ inputs.
            emit(f"    _a, _b = {zs[0]}, {os_[0]}")
            for zf, of in zip(zs[1:], os_[1:]):
                emit(f"    _a, _b = (_a & {zf}) | (_b & {of}), "
                     f"(_a & {of}) | (_b & {zf})")
            if opcode == OP_XNOR:
                z, o = "_b", "_a"
            else:
                z, o = "_a", "_b"
        elif opcode == OP_CONST0:
            z, o = "mask", "0"
        else:  # OP_CONST1
            z, o = "0", "mask"

        has_branch_risk = len(fins) > 0
        if has_branch_risk:
            emit(f"    if branch and {out} in branch:")
            emit(f"        _fz = [{', '.join(zs)}]")
            emit(f"        _fo = [{', '.join(os_)}]")
            emit(f"        for _pin, _m0, _m1 in branch[{out}]:")
            emit("            _keep = mask & ~(_m0 | _m1)")
            emit("            _fz[_pin] = (_fz[_pin] & _keep) | _m0")
            emit("            _fo[_pin] = (_fo[_pin] & _keep) | _m1")
            emit(f"        _t, _u = _eval_lists({opcode}, _fz, _fo, "
                 "mask)")
            emit("    else:")
            emit(f"        _t = {z}")
            emit(f"        _u = {o}")
        else:
            emit(f"    _t = {z}")
            emit(f"    _u = {o}")
        emit(f"    if stems and {out} in stems:")
        emit(f"        _m0, _m1 = stems[{out}]")
        emit("        _keep = mask & ~(_m0 | _m1)")
        emit("        _t = (_t & _keep) | _m0")
        emit("        _u = (_u & _keep) | _m1")
        emit(f"    _z[{out}] = _t")
        emit(f"    _o[{out}] = _u")
    if len(lines) == 3:
        emit("    pass")
    return "\n".join(lines) + "\n"


def build_evaluator(circuit) -> Callable:
    """Compile the specialized evaluator for ``circuit``.

    Returns a function with :meth:`CompiledCircuit.eval_frame`'s
    signature (minus ``self``).
    """
    from .logicsim import _eval_lists
    source = generate_source(circuit)
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, f"<codegen:{circuit.netlist.name}>", "exec")
        _CODE_CACHE[source] = code
    namespace = {"_eval_lists": _eval_lists}
    exec(code, namespace)
    return namespace["eval_frame"]


def _eval_lists_np(opcode: int, fz: List, fo: List, mask):
    """Array twin of :func:`~repro.sim.logicsim._eval_lists`.

    Same fold semantics, but every operation is non-augmented: the
    big-int original uses ``o &= bo`` style folds, which rebind for
    immutable ints but would *mutate the shared mask array* for
    ndarrays.  The numpy evaluator's namespace binds this function
    under the ``_eval_lists`` name.
    """
    from .logicsim import (_INVERTING, OP_AND, OP_BUF, OP_CONST0,
                           OP_NAND, OP_NOR, OP_NOT, OP_OR, OP_XNOR,
                           OP_XOR)
    if opcode == OP_AND or opcode == OP_NAND:
        z, o = 0, mask
        for bz, bo in zip(fz, fo):
            z = z | bz
            o = o & bo
    elif opcode == OP_OR or opcode == OP_NOR:
        z, o = mask, 0
        for bz, bo in zip(fz, fo):
            z = z & bz
            o = o | bo
    elif opcode == OP_XOR or opcode == OP_XNOR:
        z, o = fz[0], fo[0]
        for bz, bo in zip(fz[1:], fo[1:]):
            z, o = (z & bz) | (o & bo), (z & bo) | (o & bz)
    elif opcode == OP_NOT or opcode == OP_BUF:
        z, o = fz[0], fo[0]
    elif opcode == OP_CONST0:
        return mask, 0
    else:
        return 0, mask
    if opcode in _INVERTING:
        z, o = o, z
    return z, o


def _emit_reduce(emit: Callable[[str], None], fn: str, dest: str,
                 terms: List[str]) -> None:
    """Emit an in-place ufunc reduction of ``terms`` into ``dest``."""
    if len(terms) == 1:
        emit(f"    _np.copyto({dest}, {terms[0]})")
        return
    emit(f"    _np.{fn}({terms[0]}, {terms[1]}, out={dest})")
    for term in terms[2:]:
        emit(f"    _np.{fn}({dest}, {term}, out={dest})")


def generate_numpy_source(circuit) -> str:
    """The Python source of the numpy-flavored evaluator.

    Same signature and injection semantics as :func:`generate_source`,
    but ``zero`` / ``one`` are ``(n_nets, n_words)`` ``uint64``
    arrays, ``mask`` is an ``(n_words,)`` row, and stem / branch
    masks are rows too.  The fast path writes gate outputs with
    in-place ``_np.bitwise_*`` calls (no per-gate allocation); the
    branch slow path rebinds blended fanin rows -- creating fresh
    arrays, exactly like the big-int flavor's immutable ints -- and
    reuses ``_eval_lists``.
    """
    from .logicsim import (OP_AND, OP_BUF, OP_CONST0, OP_CONST1,
                           OP_NAND, OP_NOR, OP_NOT, OP_OR, OP_XNOR,
                           OP_XOR)
    lines: List[str] = [
        "def eval_frame(zero, one, mask, stems=None, branch=None):",
        "    _z = zero",
        "    _o = one",
    ]
    emit = lines.append

    def emit_fast(opcode: int, out: int, zs: List[str],
                  os_: List[str], indent: str = "    ") -> None:
        def ind(line: str) -> None:
            emit(indent + line.lstrip())

        if opcode == OP_AND:
            _emit_reduce(ind, "bitwise_or", f"_z[{out}]", zs)
            _emit_reduce(ind, "bitwise_and", f"_o[{out}]", os_)
        elif opcode == OP_NAND:
            _emit_reduce(ind, "bitwise_or", f"_o[{out}]", zs)
            _emit_reduce(ind, "bitwise_and", f"_z[{out}]", os_)
        elif opcode == OP_OR:
            _emit_reduce(ind, "bitwise_and", f"_z[{out}]", zs)
            _emit_reduce(ind, "bitwise_or", f"_o[{out}]", os_)
        elif opcode == OP_NOR:
            _emit_reduce(ind, "bitwise_and", f"_o[{out}]", zs)
            _emit_reduce(ind, "bitwise_or", f"_z[{out}]", os_)
        elif opcode == OP_NOT:
            ind(f"    _np.copyto(_z[{out}], {os_[0]})")
            ind(f"    _np.copyto(_o[{out}], {zs[0]})")
        elif opcode == OP_BUF:
            ind(f"    _np.copyto(_z[{out}], {zs[0]})")
            ind(f"    _np.copyto(_o[{out}], {os_[0]})")
        elif opcode in (OP_XOR, OP_XNOR):
            ind(f"    _a, _b = {zs[0]}, {os_[0]}")
            for zf, of in zip(zs[1:], os_[1:]):
                ind(f"    _a, _b = (_a & {zf}) | (_b & {of}), "
                    f"(_a & {of}) | (_b & {zf})")
            if opcode == OP_XNOR:
                ind(f"    _z[{out}] = _b")
                ind(f"    _o[{out}] = _a")
            else:
                ind(f"    _z[{out}] = _a")
                ind(f"    _o[{out}] = _b")
        elif opcode == OP_CONST0:
            ind(f"    _np.copyto(_z[{out}], mask)")
            ind(f"    _o[{out}] = 0")
        else:  # OP_CONST1
            ind(f"    _z[{out}] = 0")
            ind(f"    _np.copyto(_o[{out}], mask)")

    for opcode, out, fins in circuit.ops:
        zs = [f"_z[{f}]" for f in fins]
        os_ = [f"_o[{f}]" for f in fins]
        if len(fins) > 0:
            emit(f"    if branch and {out} in branch:")
            emit(f"        _fz = [{', '.join(zs)}]")
            emit(f"        _fo = [{', '.join(os_)}]")
            emit(f"        for _pin, _m0, _m1 in branch[{out}]:")
            emit("            _keep = mask & ~(_m0 | _m1)")
            emit("            _fz[_pin] = (_fz[_pin] & _keep) | _m0")
            emit("            _fo[_pin] = (_fo[_pin] & _keep) | _m1")
            emit(f"        _t, _u = _eval_lists({opcode}, _fz, _fo, "
                 "mask)")
            emit(f"        _z[{out}] = _t")
            emit(f"        _o[{out}] = _u")
            emit("    else:")
            emit_fast(opcode, out, zs, os_, indent="        ")
        else:
            emit_fast(opcode, out, zs, os_)
        emit(f"    if stems and {out} in stems:")
        emit(f"        _m0, _m1 = stems[{out}]")
        emit("        _keep = mask & ~(_m0 | _m1)")
        emit(f"        _z[{out}] = (_z[{out}] & _keep) | _m0")
        emit(f"        _o[{out}] = (_o[{out}] & _keep) | _m1")
    if len(lines) == 3:
        emit("    pass")
    return "\n".join(lines) + "\n"


def build_numpy_evaluator(circuit) -> Callable:
    """Compile the numpy-flavored evaluator for ``circuit``.

    Shares :data:`_CODE_CACHE` with the big-int flavor (the emitted
    text differs, so the flavors cache independently).  Raises an
    actionable error without numpy.
    """
    from .npsim import require_numpy
    np = require_numpy()
    source = generate_numpy_source(circuit)
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source,
                       f"<codegen-numpy:{circuit.netlist.name}>", "exec")
        _CODE_CACHE[source] = code
    namespace = {"_eval_lists": _eval_lists_np, "_np": np}
    exec(code, namespace)
    return namespace["eval_frame"]

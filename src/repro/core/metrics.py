"""Metrics reported in the paper's tables.

Everything here is a pure function of a test set (plus fault counts),
matching the definitions in Sections 2 and 4 of the paper:

* clock cycles: ``N_cyc = (k+1) N_SV + sum L(T_j)``;
* at-speed statistics: average and range of the primary-input sequence
  lengths (Table 4) -- these sequences run on the functional clock;
* coverage ratios against total and detectable fault counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from .scan_test import ScanTestSet


@dataclass(frozen=True)
class AtSpeedStats:
    """Table-4 row: at-speed sequence-length statistics."""

    average: float
    minimum: int
    maximum: int
    tests: int
    pairs: int  # launch/capture vector pairs: sum(L - 1)

    @property
    def range_str(self) -> str:
        """The paper's ``range`` column rendering, e.g. ``"1-68"``."""
        return f"{self.minimum}-{self.maximum}"


def clock_cycles(test_set: ScanTestSet) -> int:
    """``N_cyc`` for a test set (paper Section 2)."""
    return test_set.clock_cycles()


def at_speed_stats(test_set: ScanTestSet) -> AtSpeedStats:
    """At-speed sequence-length statistics (paper Table 4)."""
    lo, hi = test_set.length_range()
    return AtSpeedStats(
        average=round(test_set.average_length(), 2),
        minimum=lo,
        maximum=hi,
        tests=len(test_set),
        pairs=test_set.at_speed_pairs(),
    )


@dataclass(frozen=True)
class Coverage:
    """Fault-coverage summary."""

    detected: int
    total: int
    detectable: Optional[int] = None

    @property
    def percent_total(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 0.0

    @property
    def percent_detectable(self) -> float:
        base = self.detectable if self.detectable else self.total
        return 100.0 * self.detected / base if base else 0.0

    def complete(self) -> bool:
        """True when every detectable fault is detected."""
        base = self.detectable if self.detectable is not None else self.total
        return self.detected >= base


def coverage(detected: Set[int], total: int,
             detectable: Optional[Set[int]] = None) -> Coverage:
    """Build a :class:`Coverage` from detection sets."""
    return Coverage(
        detected=len(detected),
        total=total,
        detectable=None if detectable is None else len(detectable),
    )

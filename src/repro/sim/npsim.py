"""numpy word-array simulation backend (the ``--engine numpy`` path).

The big-int engine keeps every net's packed machines in a pair of
Python integers and pays interpreter overhead per gate *and* per
frame: one arbitrary-precision bitwise op is cheap, but a 330-gate
frame costs hundreds of microseconds of bytecode dispatch, dict
probes for injection sites, and list traffic on the branch-fault
slow path.  This module re-hosts a pass in numpy: per-net words
become a pair of ``(n_nets, n_words)`` ``uint64`` arrays (net-major
-- see DESIGN.md section 13 for the layout rationale) and the whole
pass loop runs through one of two executors:

* **C kernel** (the fast path): a *circuit-independent* pass loop
  compiled once per process with cffi and the system C compiler.
  The circuit (opcode/fanin tables) and the chunk's injection sites
  (stem / fanout-branch / flip-flop-branch forcing masks) are handed
  over as dense plan arrays, so a frame costs a few microseconds
  with zero per-frame Python work; Python regains control only at
  pass boundaries and at in-pass repack points.
* **pure-numpy fallback**: a per-frame loop over the numpy-flavored
  specialized evaluator emitted by :mod:`repro.sim.codegen`
  (column-sliced array expressions, same injection semantics).  It
  exists so ``--engine numpy`` works without a C toolchain; it is
  *slower* than the fused big-int engine at typical widths, which is
  why ``engine="auto"`` only routes here when the kernel is
  available.

Both executors mirror :meth:`repro.sim.fault_sim.FaultSimulator`'s
big-int pass loops operation for operation -- load, source stems,
topological gate evaluation with branch overrides and post-gate stem
forcing, next-state capture with flip-flop branch blends, PO / scan
observation, the ``caught`` bookkeeping, the saturation break and
the in-pass repack trigger -- so detection sets are byte-identical
under every backend (enforced by ``tests/sim/test_engine_equivalence
.py`` and the sanitizer's cross-backend spot checks).

numpy (and cffi) are optional dependencies: install the ``fast``
extra (``pip install repro[fast]``).  Importing this module without
numpy raises :class:`MissingNumpyError` with that instruction.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from collections import OrderedDict
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Set, Tuple, Union)

from . import values as V

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fault_sim import FaultSimulator, _Chunk, _LaneChunk
    from .logicsim import CompiledCircuit


class MissingNumpyError(ImportError):
    """numpy is not installed (the backend cannot be built)."""


def require_numpy() -> Any:
    """Import and return numpy, or raise an actionable error."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy present in CI
        raise MissingNumpyError(
            "the numpy simulation backend requires numpy; install the "
            "optional extra with `pip install repro[fast]` (or use "
            "--engine codegen / --engine auto, which fall back to the "
            "fused big-int engine)") from exc
    return numpy


def numpy_available() -> bool:
    """True when numpy can be imported."""
    try:
        require_numpy()
    except MissingNumpyError:
        return False
    return True


# ----------------------------------------------------------------------
# The circuit-independent C kernel
# ----------------------------------------------------------------------
# One C function runs a whole pass (many frames) over the array state.
# It is generated once -- the circuit travels in plan arrays, not in
# the source -- so the process pays a single sub-second compile no
# matter how many circuits it simulates.  Opcode values mirror
# logicsim's OP_* constants (asserted at backend build time).

_KERNEL_SOURCE = r"""
typedef unsigned long long u64;

static void repro_blend(u64* z, u64* o, const u64* f0, const u64* f1,
                        const u64* keep, long W) {
    long w;
    for (w = 0; w < W; w++) {
        z[w] = (z[w] & keep[w]) | f0[w];
        o[w] = (o[w] & keep[w]) | f1[w];
    }
}

static void repro_diff_acc(const u64* z, const u64* o, u64* acc,
                           long W) {
    long w;
    if (o[0] & 1ULL) {
        for (w = 0; w < W; w++) acc[w] |= z[w];
    } else if (z[0] & 1ULL) {
        for (w = 0; w < W; w++) acc[w] |= o[w];
    }
}

/* One frame of gate evaluation in topological order, with fanout-
   branch overrides and post-gate stem forcing -- shared by the
   detect/records pass and the lane-transposed trial pass so the two
   can never drift apart. */
static void repro_eval_gates(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    u64* scr_z, u64* scr_o)
{
    long g, i, w, b;
    for (g = 0; g < n_gates; g++) {
        long out = g_out[g];
        long s = g_foff[g], e = g_foff[g + 1];
        long k = e - s;
        const u64* fz[64];
        const u64* fo[64];
        u64* zz = zero + out * W;
        u64* oo = one + out * W;
        int op = g_op[g];
        long bc = br_count[out];
        int ssite = stem_site[out];
        for (i = 0; i < k; i++) {
            fz[i] = zero + (long)g_fan[s + i] * W;
            fo[i] = one + (long)g_fan[s + i] * W;
        }
        if (bc) {
            /* Fanout-branch overrides: force this gate's view of
               the overridden fanin pins (scratch copies). */
            u64 copied = 0;
            for (b = br_start[out]; b < br_start[out] + bc; b++) {
                long pin = br_pin[b];
                u64* cz = scr_z + pin * W;
                u64* co = scr_o + pin * W;
                if (!((copied >> pin) & 1ULL)) {
                    for (w = 0; w < W; w++) {
                        cz[w] = fz[pin][w];
                        co[w] = fo[pin][w];
                    }
                    fz[pin] = cz;
                    fo[pin] = co;
                    copied |= 1ULL << pin;
                }
                repro_blend(cz, co, br_f0 + b * W, br_f1 + b * W,
                            br_keep + b * W, W);
            }
        }
        switch (op) {
        case 0: case 1:                  /* AND / NAND */
            for (w = 0; w < W; w++) { zz[w] = 0; oo[w] = mask[w]; }
            for (i = 0; i < k; i++)
                for (w = 0; w < W; w++) {
                    zz[w] |= fz[i][w];
                    oo[w] &= fo[i][w];
                }
            break;
        case 2: case 3:                  /* OR / NOR */
            for (w = 0; w < W; w++) { zz[w] = mask[w]; oo[w] = 0; }
            for (i = 0; i < k; i++)
                for (w = 0; w < W; w++) {
                    zz[w] &= fz[i][w];
                    oo[w] |= fo[i][w];
                }
            break;
        case 4: case 5:                  /* XOR / XNOR pairwise */
            for (w = 0; w < W; w++) {
                zz[w] = fz[0][w];
                oo[w] = fo[0][w];
            }
            for (i = 1; i < k; i++)
                for (w = 0; w < W; w++) {
                    u64 nz = (zz[w] & fz[i][w]) | (oo[w] & fo[i][w]);
                    u64 no = (zz[w] & fo[i][w]) | (oo[w] & fz[i][w]);
                    zz[w] = nz;
                    oo[w] = no;
                }
            break;
        case 6: case 7:                  /* NOT / BUF */
            for (w = 0; w < W; w++) {
                zz[w] = fz[0][w];
                oo[w] = fo[0][w];
            }
            break;
        case 8:                          /* CONST0 */
            for (w = 0; w < W; w++) { zz[w] = mask[w]; oo[w] = 0; }
            break;
        default:                         /* CONST1 */
            for (w = 0; w < W; w++) { zz[w] = 0; oo[w] = mask[w]; }
        }
        if (op == 1 || op == 3 || op == 5 || op == 6) {
            /* Inverting gate: swap the value rails. */
            for (w = 0; w < W; w++) {
                u64 t = zz[w];
                zz[w] = oo[w];
                oo[w] = t;
            }
        }
        if (ssite >= 0)
            repro_blend(zz, oo, st_f0 + (long)ssite * W,
                        st_f1 + (long)ssite * W,
                        st_keep + (long)ssite * W, W);
    }
}

int repro_run_pass(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    long n_pi, const int* pi_ids,
    long n_po, const int* po_ids,
    long n_ff, const int* ff_ids, const int* ffd_ids,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    long n_src_stem, const int* src_stem_ids, const int* src_stem_site,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    long n_ffbr, const int* ffbr_pos,
    const u64* ffbr_f0, const u64* ffbr_f1, const u64* ffbr_keep,
    const unsigned char* vecs,
    long start_frame, long last_frame,
    int observe_po, int scan_out,
    long n_scan_obs, const int* scan_obs,
    int early_exit, long repack_min_machines,
    long repack_min_frames_left, long n_machines,
    u64* rec_po, u64* rec_scan,
    u64* ns_zero, u64* ns_one,
    u64* scr_z, u64* scr_o,
    u64* caught, long* stop_frame, long* frames_done)
{
    long f, p, i, w, b;
    for (f = start_frame; f <= last_frame; f++) {
        /* Load primary inputs (pack_scalar semantics: 0 -> zero row,
           1 -> one row, X -> neither). */
        const unsigned char* vec = vecs + f * n_pi;
        for (p = 0; p < n_pi; p++) {
            u64* z = zero + (long)pi_ids[p] * W;
            u64* o = one + (long)pi_ids[p] * W;
            unsigned char v = vec[p];
            for (w = 0; w < W; w++) {
                z[w] = (v == 0) ? mask[w] : 0;
                o[w] = (v == 1) ? mask[w] : 0;
            }
        }
        /* Stems on source nets (PIs and FF outputs), every frame. */
        for (i = 0; i < n_src_stem; i++) {
            long nid = src_stem_ids[i];
            long s = src_stem_site[i];
            repro_blend(zero + nid * W, one + nid * W,
                        st_f0 + s * W, st_f1 + s * W,
                        st_keep + s * W, W);
        }
        /* Gates in topological order. */
        repro_eval_gates(zero, one, mask, W, n_gates, g_op, g_out,
                         g_foff, g_fan, stem_site, st_f0, st_f1,
                         st_keep, br_start, br_count, br_pin,
                         br_f0, br_f1, br_keep, scr_z, scr_o);
        (*frames_done)++;
        /* Next state: captured FF data values + FF branch blends. */
        for (i = 0; i < n_ff; i++) {
            const u64* dz = zero + (long)ffd_ids[i] * W;
            const u64* dn = one + (long)ffd_ids[i] * W;
            u64* nz = ns_zero + i * W;
            u64* no = ns_one + i * W;
            for (w = 0; w < W; w++) { nz[w] = dz[w]; no[w] = dn[w]; }
        }
        for (b = 0; b < n_ffbr; b++)
            repro_blend(ns_zero + (long)ffbr_pos[b] * W,
                        ns_one + (long)ffbr_pos[b] * W,
                        ffbr_f0 + b * W, ffbr_f1 + b * W,
                        ffbr_keep + b * W, W);
        if (rec_po) {
            /* Records mode: per-frame PO and scan-out diff words, no
               early exit, flip-flops always advance. */
            u64* rp = rec_po + f * W;
            u64* rs = rec_scan + f * W;
            for (w = 0; w < W; w++) { rp[w] = 0; rs[w] = 0; }
            for (i = 0; i < n_po; i++)
                repro_diff_acc(zero + (long)po_ids[i] * W,
                               one + (long)po_ids[i] * W, rp, W);
            if (n_scan_obs < 0) {
                for (i = 0; i < n_ff; i++)
                    repro_diff_acc(ns_zero + i * W, ns_one + i * W,
                                   rs, W);
            } else {
                for (i = 0; i < n_scan_obs; i++)
                    repro_diff_acc(ns_zero + (long)scan_obs[i] * W,
                                   ns_one + (long)scan_obs[i] * W,
                                   rs, W);
            }
            for (i = 0; i < n_ff; i++) {
                u64* z = zero + (long)ff_ids[i] * W;
                u64* o = one + (long)ff_ids[i] * W;
                for (w = 0; w < W; w++) {
                    z[w] = ns_zero[i * W + w];
                    o[w] = ns_one[i * W + w];
                }
            }
            continue;
        }
        /* Detect mode: accumulate caught machines. */
        if (observe_po)
            for (i = 0; i < n_po; i++)
                repro_diff_acc(zero + (long)po_ids[i] * W,
                               one + (long)po_ids[i] * W, caught, W);
        if (scan_out && f == last_frame) {
            if (n_scan_obs < 0) {
                for (i = 0; i < n_ff; i++)
                    repro_diff_acc(ns_zero + i * W, ns_one + i * W,
                                   caught, W);
            } else {
                for (i = 0; i < n_scan_obs; i++)
                    repro_diff_acc(ns_zero + (long)scan_obs[i] * W,
                                   ns_one + (long)scan_obs[i] * W,
                                   caught, W);
            }
        }
        caught[0] &= ~1ULL;
        {
            int sat = 1;
            for (w = 0; w < W; w++) {
                u64 m = mask[w];
                if (w == 0) m &= ~1ULL;
                if (caught[w] != m) { sat = 0; break; }
            }
            if (sat) { *stop_frame = f; return 1; }
        }
        if (early_exit) {
            u64 any = 0;
            long pc = 0;
            for (w = 0; w < W; w++) {
                any |= caught[w];
                pc += __builtin_popcountll(caught[w]);
            }
            if (any && n_machines >= repack_min_machines &&
                    (last_frame - f) >= repack_min_frames_left &&
                    2 * pc >= n_machines) {
                *stop_frame = f;
                return 2;
            }
        }
        for (i = 0; i < n_ff; i++) {
            u64* z = zero + (long)ff_ids[i] * W;
            u64* o = one + (long)ff_ids[i] * W;
            for (w = 0; w < W; w++) {
                z[w] = ns_zero[i * W + w];
                o[w] = ns_one[i * W + w];
            }
        }
    }
    *stop_frame = last_frame + 1;
    return 0;
}

/* Lane-transposed trial pass: each lane carries an independent test
   (its own scan-in state and PI sequence), each lane *block* one
   injected fault, and the fault-free reference arrives pre-computed
   (and pre-replicated across blocks) from a separate good pass.
   `act` masks the lanes still inside their own sequence at a frame
   (PO observation), `end_mask` the lanes whose last frame it is
   (scan-out diff against the captured state).  No repack, no early
   exit beyond full saturation (status 1); mirrors FaultSimulator.
   _run_trial_chunk word for word. */
int repro_run_lane_pass(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    long n_pi, const int* pi_ids,
    long n_po, const int* po_ids,
    long n_ff, const int* ff_ids, const int* ffd_ids,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    long n_src_stem, const int* src_stem_ids, const int* src_stem_site,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    long n_ffbr, const int* ffbr_pos,
    const u64* ffbr_f0, const u64* ffbr_f1, const u64* ffbr_keep,
    long n_frames,
    const u64* pi_zero, const u64* pi_one,
    const u64* act, const u64* end_mask,
    int observe_po,
    const u64* good_po_z, const u64* good_po_o,
    long n_slots, const int* slot_pos,
    const u64* good_sc_z, const u64* good_sc_o,
    u64* ns_zero, u64* ns_one,
    u64* scr_z, u64* scr_o,
    u64* caught, long* frames_done)
{
    long f, p, i, w, b;
    for (f = 0; f < n_frames; f++) {
        /* Load per-lane primary-input words (pre-replicated). */
        for (p = 0; p < n_pi; p++) {
            u64* z = zero + (long)pi_ids[p] * W;
            u64* o = one + (long)pi_ids[p] * W;
            const u64* pz = pi_zero + (f * n_pi + p) * W;
            const u64* po = pi_one + (f * n_pi + p) * W;
            for (w = 0; w < W; w++) { z[w] = pz[w]; o[w] = po[w]; }
        }
        for (i = 0; i < n_src_stem; i++) {
            long nid = src_stem_ids[i];
            long s = src_stem_site[i];
            repro_blend(zero + nid * W, one + nid * W,
                        st_f0 + s * W, st_f1 + s * W,
                        st_keep + s * W, W);
        }
        repro_eval_gates(zero, one, mask, W, n_gates, g_op, g_out,
                         g_foff, g_fan, stem_site, st_f0, st_f1,
                         st_keep, br_start, br_count, br_pin,
                         br_f0, br_f1, br_keep, scr_z, scr_o);
        (*frames_done)++;
        for (i = 0; i < n_ff; i++) {
            const u64* dz = zero + (long)ffd_ids[i] * W;
            const u64* dn = one + (long)ffd_ids[i] * W;
            u64* nz = ns_zero + i * W;
            u64* no = ns_one + i * W;
            for (w = 0; w < W; w++) { nz[w] = dz[w]; no[w] = dn[w]; }
        }
        for (b = 0; b < n_ffbr; b++)
            repro_blend(ns_zero + (long)ffbr_pos[b] * W,
                        ns_one + (long)ffbr_pos[b] * W,
                        ffbr_f0 + b * W, ffbr_f1 + b * W,
                        ffbr_keep + b * W, W);
        if (observe_po) {
            const u64* a = act + f * W;
            for (i = 0; i < n_po; i++) {
                const u64* gz = good_po_z + (f * n_po + i) * W;
                const u64* go = good_po_o + (f * n_po + i) * W;
                const u64* fz = zero + (long)po_ids[i] * W;
                const u64* fo = one + (long)po_ids[i] * W;
                for (w = 0; w < W; w++)
                    caught[w] |= a[w] &
                        ((gz[w] & fo[w]) | (go[w] & fz[w]));
            }
        }
        if (n_slots) {
            const u64* e = end_mask + f * W;
            u64 any_end = 0;
            for (w = 0; w < W; w++) any_end |= e[w];
            if (any_end) {
                for (i = 0; i < n_slots; i++) {
                    const u64* gz = good_sc_z + (f * n_slots + i) * W;
                    const u64* go = good_sc_o + (f * n_slots + i) * W;
                    const u64* nz = ns_zero + (long)slot_pos[i] * W;
                    const u64* no = ns_one + (long)slot_pos[i] * W;
                    for (w = 0; w < W; w++)
                        caught[w] |= e[w] &
                            ((gz[w] & no[w]) | (go[w] & nz[w]));
                }
            }
        }
        {
            int sat = 1;
            for (w = 0; w < W; w++)
                if (caught[w] != mask[w]) { sat = 0; break; }
            if (sat) return 1;
        }
        for (i = 0; i < n_ff; i++) {
            u64* z = zero + (long)ff_ids[i] * W;
            u64* o = one + (long)ff_ids[i] * W;
            for (w = 0; w < W; w++) {
                z[w] = ns_zero[i * W + w];
                o[w] = ns_one[i * W + w];
            }
        }
    }
    return 0;
}

/* Fault-free lane pass: the good-value reference for the trial pass
   above.  Each lane carries one trial's own PI sequence; no faults
   are injected (the caller passes an empty plan: stem_site all -1,
   br_count all 0).  Emits per-frame PO lane words and the captured
   next-state words of the observed scan slots -- every frame, the
   Python caller slices by its end masks.  Mirrors FaultSimulator.
   _good_trial_pass word for word. */
void repro_run_good_lane_pass(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    long n_pi, const int* pi_ids,
    long n_po, const int* po_ids,
    long n_ff, const int* ff_ids, const int* ffd_ids,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    long n_frames,
    const u64* pi_zero, const u64* pi_one,
    int observe_po, u64* good_po_z, u64* good_po_o,
    long n_slots, const int* slot_pos,
    u64* good_sc_z, u64* good_sc_o,
    u64* ns_zero, u64* ns_one,
    u64* scr_z, u64* scr_o)
{
    long f, p, i, w;
    for (f = 0; f < n_frames; f++) {
        for (p = 0; p < n_pi; p++) {
            u64* z = zero + (long)pi_ids[p] * W;
            u64* o = one + (long)pi_ids[p] * W;
            const u64* pz = pi_zero + (f * n_pi + p) * W;
            const u64* po = pi_one + (f * n_pi + p) * W;
            for (w = 0; w < W; w++) { z[w] = pz[w]; o[w] = po[w]; }
        }
        repro_eval_gates(zero, one, mask, W, n_gates, g_op, g_out,
                         g_foff, g_fan, stem_site, st_f0, st_f1,
                         st_keep, br_start, br_count, br_pin,
                         br_f0, br_f1, br_keep, scr_z, scr_o);
        if (observe_po) {
            u64* gz = good_po_z + f * n_po * W;
            u64* go = good_po_o + f * n_po * W;
            for (i = 0; i < n_po; i++) {
                const u64* z = zero + (long)po_ids[i] * W;
                const u64* o = one + (long)po_ids[i] * W;
                for (w = 0; w < W; w++) {
                    gz[i * W + w] = z[w];
                    go[i * W + w] = o[w];
                }
            }
        }
        for (i = 0; i < n_ff; i++) {
            const u64* dz = zero + (long)ffd_ids[i] * W;
            const u64* dn = one + (long)ffd_ids[i] * W;
            for (w = 0; w < W; w++) {
                ns_zero[i * W + w] = dz[w];
                ns_one[i * W + w] = dn[w];
            }
        }
        if (n_slots) {
            u64* sz = good_sc_z + f * n_slots * W;
            u64* so = good_sc_o + f * n_slots * W;
            for (i = 0; i < n_slots; i++) {
                long pos = slot_pos[i];
                for (w = 0; w < W; w++) {
                    sz[i * W + w] = ns_zero[pos * W + w];
                    so[i * W + w] = ns_one[pos * W + w];
                }
            }
        }
        for (i = 0; i < n_ff; i++) {
            u64* z = zero + (long)ff_ids[i] * W;
            u64* o = one + (long)ff_ids[i] * W;
            for (w = 0; w < W; w++) {
                z[w] = ns_zero[i * W + w];
                o[w] = ns_one[i * W + w];
            }
        }
    }
}
"""

_KERNEL_CDEF = """
typedef unsigned long long u64;
int repro_run_pass(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    long n_pi, const int* pi_ids,
    long n_po, const int* po_ids,
    long n_ff, const int* ff_ids, const int* ffd_ids,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    long n_src_stem, const int* src_stem_ids, const int* src_stem_site,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    long n_ffbr, const int* ffbr_pos,
    const u64* ffbr_f0, const u64* ffbr_f1, const u64* ffbr_keep,
    const unsigned char* vecs,
    long start_frame, long last_frame,
    int observe_po, int scan_out,
    long n_scan_obs, const int* scan_obs,
    int early_exit, long repack_min_machines,
    long repack_min_frames_left, long n_machines,
    u64* rec_po, u64* rec_scan,
    u64* ns_zero, u64* ns_one,
    u64* scr_z, u64* scr_o,
    u64* caught, long* stop_frame, long* frames_done);
int repro_run_lane_pass(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    long n_pi, const int* pi_ids,
    long n_po, const int* po_ids,
    long n_ff, const int* ff_ids, const int* ffd_ids,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    long n_src_stem, const int* src_stem_ids, const int* src_stem_site,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    long n_ffbr, const int* ffbr_pos,
    const u64* ffbr_f0, const u64* ffbr_f1, const u64* ffbr_keep,
    long n_frames,
    const u64* pi_zero, const u64* pi_one,
    const u64* act, const u64* end_mask,
    int observe_po,
    const u64* good_po_z, const u64* good_po_o,
    long n_slots, const int* slot_pos,
    const u64* good_sc_z, const u64* good_sc_o,
    u64* ns_zero, u64* ns_one,
    u64* scr_z, u64* scr_o,
    u64* caught, long* frames_done);
void repro_run_good_lane_pass(
    u64* zero, u64* one, const u64* mask, long W,
    long n_gates, const int* g_op, const int* g_out,
    const long* g_foff, const int* g_fan,
    long n_pi, const int* pi_ids,
    long n_po, const int* po_ids,
    long n_ff, const int* ff_ids, const int* ffd_ids,
    const int* stem_site,
    const u64* st_f0, const u64* st_f1, const u64* st_keep,
    const int* br_start, const int* br_count,
    const int* br_pin, const u64* br_f0, const u64* br_f1,
    const u64* br_keep,
    long n_frames,
    const u64* pi_zero, const u64* pi_one,
    int observe_po, u64* good_po_z, u64* good_po_o,
    long n_slots, const int* slot_pos,
    u64* good_sc_z, u64* good_sc_o,
    u64* ns_zero, u64* ns_one,
    u64* scr_z, u64* scr_o);
"""

#: Kernel pass-loop return codes.
_STATUS_DONE = 0
_STATUS_SATURATED = 1
_STATUS_REPACK = 2

#: Process-lifetime kernel cache: (ffi, lib) or an unavailability
#: reason string.  Compiled lazily on first backend construction.
_KERNEL: Optional[Tuple[Any, Any]] = None
_KERNEL_ERROR: Optional[str] = None
_KERNEL_TRIED = False


def _find_cc() -> Optional[str]:
    """The C compiler to use: ``$CC``, then ``cc``, then ``gcc``."""
    env = os.environ.get("CC")
    if env:
        return env if os.path.sep in env else shutil.which(env)
    return shutil.which("cc") or shutil.which("gcc")


def _kernel_cache_path() -> Optional[str]:
    """Cross-process kernel cache: ``$REPRO_KERNEL_CACHE/<hash>.so``.

    The filename is keyed on the kernel source *and* its cdef, so a
    restored cache directory (CI persists it across jobs) can never
    dlopen a shared object built from different source -- a source
    change simply misses the cache and recompiles.  Unset env means
    no cache: every process compiles into its own tempdir as before.
    """
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        return None
    digest = hashlib.sha256(
        (_KERNEL_CDEF + _KERNEL_SOURCE).encode()).hexdigest()[:16]
    return os.path.join(root, f"repro_kernel-{digest}.so")


def _load_kernel() -> Optional[Tuple[Any, Any]]:
    """Compile and dlopen the pass kernel once per process.

    Returns ``(ffi, lib)`` or ``None`` (reason in
    :func:`kernel_unavailable_reason`).  Never raises: a missing
    compiler or cffi just disables the fast path.
    """
    global _KERNEL, _KERNEL_ERROR, _KERNEL_TRIED
    if _KERNEL_TRIED:
        return _KERNEL
    _KERNEL_TRIED = True
    try:
        from cffi import FFI
    except ImportError:
        _KERNEL_ERROR = "cffi is not installed"
        return None
    cached = _kernel_cache_path()
    if cached is not None and os.path.exists(cached):
        try:
            ffi = FFI()
            ffi.cdef(_KERNEL_CDEF)
            lib = ffi.dlopen(cached)
            _KERNEL = (ffi, lib)
            return _KERNEL
        except Exception:  # pragma: no cover - corrupt cache entry
            pass  # fall through to a fresh compile
    cc = _find_cc()
    if cc is None:
        _KERNEL_ERROR = "no C compiler found (set $CC)"
        return None
    tmpdir = tempfile.mkdtemp(prefix="repro-np-kernel-")
    c_path = os.path.join(tmpdir, "repro_kernel.c")
    so_path = os.path.join(tmpdir, "repro_kernel.so")
    try:
        with open(c_path, "w") as handle:
            handle.write(_KERNEL_SOURCE)
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", so_path, c_path],
            check=True, capture_output=True, timeout=120)
        ffi = FFI()
        ffi.cdef(_KERNEL_CDEF)
        lib = ffi.dlopen(so_path)
    except Exception as exc:  # pragma: no cover - toolchain-specific
        _KERNEL_ERROR = f"kernel build failed: {exc}"
        return None
    if cached is not None:
        try:
            os.makedirs(os.path.dirname(cached), exist_ok=True)
            # Atomic publish: concurrent processes may race here, but
            # every writer produces an identical file.
            tmp_copy = f"{cached}.tmp-{os.getpid()}"
            shutil.copy(so_path, tmp_copy)
            os.replace(tmp_copy, cached)
        except OSError:  # pragma: no cover - read-only cache dir
            pass
    _KERNEL = (ffi, lib)
    return _KERNEL


def kernel_unavailable_reason() -> Optional[str]:
    """Why the C kernel is unavailable (None when it loaded)."""
    _load_kernel()
    return _KERNEL_ERROR


# ----------------------------------------------------------------------
# Per-chunk injection plan
# ----------------------------------------------------------------------


def _rows_array(np: Any, words: Sequence[int], n_words: int) -> Any:
    """Big-int words as a ``(max(1, len(words)), n_words)`` uint64
    array, in one buffer conversion (a per-row
    :func:`~repro.sim.values.word_to_array` loop is the plan-build
    hot spot on short passes)."""
    if not words:
        return np.zeros((1, n_words), dtype=np.uint64)
    size = n_words * 8
    data = b"".join(w.to_bytes(size, "little") for w in words)
    return np.frombuffer(data, dtype="<u8").reshape(
        len(words), n_words).copy()


class _ChunkPlan:
    """Dense array form of one :class:`_Chunk`'s injection data.

    Blend order mirrors the big-int engine exactly: branch entries
    apply in their list order, flip-flop branch entries likewise, and
    every blend uses its own ``keep = mask & ~(m0 | m1)`` -- so
    repeated sites on one pin compose identically.

    ``n_bits`` is the word width in machine bits; it defaults to the
    :class:`_Chunk` layout (``len(indices) + 1`` for the good bit)
    and must be passed explicitly for :class:`_LaneChunk` layouts
    (``n_groups * n_lanes``, no good bit) -- both chunk flavors carry
    the same ``mask`` / ``stems`` / ``branch`` / ``ff_branch`` /
    ``src_stem_ids`` fields this plan consumes.
    """

    def __init__(self, backend: "ArrayBackend",
                 chunk: "Union[_Chunk, _LaneChunk]",
                 n_bits: Optional[int] = None) -> None:
        np = backend.np
        self.chunk = chunk
        if n_bits is None:
            n_bits = len(chunk.indices) + 1
        self.n_words = (n_bits + 63) // 64
        W = self.n_words
        self.mask = V.word_to_array(chunk.mask, W)
        n_nets = backend.circuit.n_nets

        stems = list(chunk.stems.items())
        self.stem_site = np.full(n_nets, -1, dtype=np.int32)
        for i, (nid, _) in enumerate(stems):
            self.stem_site[nid] = i
        self.st_f0 = _rows_array(np, [m0 for _, (m0, _) in stems], W)
        self.st_f1 = _rows_array(np, [m1 for _, (_, m1) in stems], W)
        self.st_keep = _rows_array(
            np, [chunk.mask & ~(m0 | m1) for _, (m0, m1) in stems], W)
        self.src_stem_ids = np.asarray(chunk.src_stem_ids,
                                       dtype=np.int32)
        self.src_stem_site = np.asarray(
            [int(self.stem_site[nid]) for nid in chunk.src_stem_ids],
            dtype=np.int32)

        self.br_start = np.zeros(n_nets, dtype=np.int32)
        self.br_count = np.zeros(n_nets, dtype=np.int32)
        br_pin: List[int] = []
        br_rows: List[Tuple[int, int]] = []
        for out, entries in chunk.branch.items():
            self.br_start[out] = len(br_pin)
            self.br_count[out] = len(entries)
            for pin, m0, m1 in entries:
                br_pin.append(pin)
                br_rows.append((m0, m1))
        self.br_pin = np.asarray(br_pin or [0], dtype=np.int32)
        self.br_f0 = _rows_array(np, [m0 for m0, _ in br_rows], W)
        self.br_f1 = _rows_array(np, [m1 for _, m1 in br_rows], W)
        self.br_keep = _rows_array(
            np, [chunk.mask & ~(m0 | m1) for m0, m1 in br_rows], W)

        self.n_ffbr = len(chunk.ff_branch)
        self.ffbr_pos = np.asarray(
            [pos for pos, _, _ in chunk.ff_branch] or [0],
            dtype=np.int32)
        self.ffbr_f0 = _rows_array(
            np, [m0 for _, m0, _ in chunk.ff_branch], W)
        self.ffbr_f1 = _rows_array(
            np, [m1 for _, _, m1 in chunk.ff_branch], W)
        self.ffbr_keep = _rows_array(
            np, [chunk.mask & ~(m0 | m1)
                 for _, m0, m1 in chunk.ff_branch], W)
        #: Lazily built cffi casts of this plan's arrays; reset to
        #: ``None`` whenever the arrays are swapped after construction
        #: (see :meth:`ArrayBackend._kernel_segment`).
        self._kptrs: Optional[Tuple[Any, ...]] = None

    # Dict-of-rows view for the pure-numpy evaluator (same shapes the
    # big-int eval_frame contract uses, with array masks).
    def stems_rows(self) -> Dict[int, Tuple[Any, Any]]:
        return {nid: (self.st_f0[int(self.stem_site[nid])],
                      self.st_f1[int(self.stem_site[nid])])
                for nid in self.chunk.stems}

    def branch_rows(self) -> Dict[int, List[Tuple[int, Any, Any]]]:
        out: Dict[int, List[Tuple[int, Any, Any]]] = {}
        for nid, entries in self.chunk.branch.items():
            start = int(self.br_start[nid])
            out[nid] = [
                (int(self.br_pin[start + i]), self.br_f0[start + i],
                 self.br_f1[start + i])
                for i in range(len(entries))]
        return out


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------


class ArrayBackend:
    """numpy array pass executor bound to one compiled circuit.

    Built lazily by :class:`~repro.sim.logicsim.CompiledCircuit` for
    ``engine="numpy"`` / ``"auto"``.  ``use_kernel`` forces the
    executor choice (``None`` = kernel when available, unless the
    ``REPRO_NP_KERNEL=py`` environment override is set).
    """

    def __init__(self, circuit: "CompiledCircuit",
                 use_kernel: Optional[bool] = None) -> None:
        self.np = require_numpy()
        np = self.np
        self.circuit = circuit
        ops = circuit.ops
        self.n_gates = len(ops)
        self.max_arity = max([len(f) for _, _, f in ops] or [1])
        if self.max_arity > 64:  # pragma: no cover - absurd netlists
            raise ValueError(
                "numpy backend supports gates with at most 64 fanins")
        self.g_op = np.asarray([op for op, _, _ in ops] or [0],
                               dtype=np.int32)
        self.g_out = np.asarray([out for _, out, _ in ops] or [0],
                                dtype=np.int32)
        foff = [0]
        fan: List[int] = []
        for _, _, fins in ops:
            fan.extend(fins)
            foff.append(len(fan))
        self.g_foff = np.asarray(foff, dtype=np.int64)
        self.g_fan = np.asarray(fan or [0], dtype=np.int32)
        self.pi_ids = np.asarray(circuit.pi_ids or [0], dtype=np.int32)
        self.po_ids = np.asarray(circuit.po_ids or [0], dtype=np.int32)
        self.ff_ids = np.asarray(circuit.ff_ids or [0], dtype=np.int32)
        self.ffd_ids = np.asarray(circuit.ff_d_ids or [0],
                                  dtype=np.int32)
        if use_kernel is None:
            use_kernel = os.environ.get("REPRO_NP_KERNEL") != "py"
        self._kernel = _load_kernel() if use_kernel else None
        #: Lazily built cffi casts of the circuit-constant arrays
        #: (see :meth:`_kernel_segment`).
        self._const_ptrs: Optional[Tuple[Any, ...]] = None
        self._evaluator: Optional[Any] = None
        # Fault-free injection plans for the good lane pass, keyed by
        # word width (circuit-wide, so safely shared across simulators).
        self._empty_plans: Dict[int, Tuple[Any, ...]] = {}

    #: Plans retained by :meth:`_plan_for`.  Small: pipeline phases
    #: re-simulate a handful of target sets over and over (Phase-2
    #: omission trials alone issue thousands of short passes on the
    #: same set), and one bench1k plan is only a few hundred KB.
    _PLAN_CACHE_SIZE = 8

    def _plan_for(self, sim: "FaultSimulator",
                  chunk: "Union[_Chunk, _LaneChunk]",
                  n_bits: Optional[int] = None) -> _ChunkPlan:
        """The injection plan for ``chunk``, LRU-cached by fault set.

        A chunk's stems/branches/mask are a pure function of its
        fault indices (in order) for a fixed circuit and fault list,
        so an equal index tuple means an identical plan.  Lane-chunk
        plans additionally depend on the lane count (the injection
        masks replicate per lane block), which ``n_bits`` encodes
        into the key.  The cache lives on the simulator (not this
        backend, which is shared per-circuit across simulators whose
        fault lists may differ).  Repacked chunks are per-call
        transients and bypass the cache.
        """
        cache: "OrderedDict[Tuple[Any, ...], _ChunkPlan]" = \
            sim.__dict__.setdefault("_np_plan_cache", OrderedDict())
        if n_bits is None:
            key: Tuple[Any, ...] = tuple(chunk.indices)
        else:
            key = ("lane", n_bits, *chunk.indices)
        plan = cache.get(key)
        if plan is None:
            plan = _ChunkPlan(self, chunk, n_bits)
            cache[key] = plan
            if len(cache) > self._PLAN_CACHE_SIZE:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
            plan.chunk = chunk
        return plan

    # ------------------------------------------------------------------
    @property
    def kernel_available(self) -> bool:
        """True when passes run through the compiled C kernel."""
        return self._kernel is not None

    @property
    def evaluator(self) -> Any:
        """The codegen-emitted numpy evaluator (fallback executor)."""
        if self._evaluator is None:
            from .codegen import build_numpy_evaluator
            self._evaluator = build_numpy_evaluator(self.circuit)
        return self._evaluator

    # ------------------------------------------------------------------
    def _init_state(self, plan: _ChunkPlan,
                    init_state: V.Vector) -> Tuple[Any, Any]:
        """Array state with the flip-flop rows packed from a vector
        (:func:`repro.sim.values.pack_scalar` semantics)."""
        np = self.np
        W = plan.n_words
        zero = np.zeros((self.circuit.n_nets, W), dtype=np.uint64)
        one = np.zeros((self.circuit.n_nets, W), dtype=np.uint64)
        for nid, val in zip(self.circuit.ff_ids, init_state):
            if val == V.ZERO:
                zero[nid] = plan.mask
            elif val == V.ONE:
                one[nid] = plan.mask
        return zero, one

    def _state_from_words(self, plan: _ChunkPlan,
                          zero_words: Sequence[int],
                          one_words: Sequence[int]) -> Tuple[Any, Any]:
        """Array state from full per-net big-int word lists (used to
        resume after an in-pass repack)."""
        np = self.np
        W = plan.n_words
        zero = np.zeros((self.circuit.n_nets, W), dtype=np.uint64)
        one = np.zeros((self.circuit.n_nets, W), dtype=np.uint64)
        for nid in self.circuit.ff_ids:
            if zero_words[nid]:
                zero[nid] = V.word_to_array(zero_words[nid], W)
            if one_words[nid]:
                one[nid] = V.word_to_array(one_words[nid], W)
        return zero, one

    def _vec_array(self, vectors: Sequence[V.Vector]) -> Any:
        """The PI sequence as a ``(n_frames, n_pi)`` uint8 array
        (0 / 1 / X scalars; width-independent)."""
        np = self.np
        arr = np.asarray(vectors, dtype=np.uint8)
        if arr.ndim == 1:  # zero PIs
            arr = arr.reshape(len(vectors), 0)
        return np.ascontiguousarray(arr)

    # ------------------------------------------------------------------
    def _kernel_segment(
        self, plan: _ChunkPlan, zero: Any, one: Any, vec_arr: Any,
        start: int, last: int, observe_po: bool, scan_out: bool,
        scan_observe: Optional[Sequence[int]], early_exit: bool,
        rec_po: Optional[Any], rec_scan: Optional[Any],
        ns_zero: Any, ns_one: Any, caught: Any,
    ) -> Tuple[int, int, int]:
        """One kernel call; returns ``(status, stop_frame, frames)``."""
        from . import fault_sim as FS
        np = self.np
        ffi, lib = self._kernel  # type: ignore[misc]
        W = plan.n_words

        def u64p(arr: Any) -> Any:
            return ffi.cast("u64*", arr.ctypes.data)

        def i32p(arr: Any) -> Any:
            return ffi.cast("int*", arr.ctypes.data)

        if scan_observe is None:
            n_scan_obs = -1
            scan_obs = np.zeros(1, dtype=np.int32)
        else:
            n_scan_obs = len(scan_observe)
            scan_obs = np.asarray(list(scan_observe) or [0],
                                  dtype=np.int32)
        scr_z = np.zeros((self.max_arity, W), dtype=np.uint64)
        scr_o = np.zeros((self.max_arity, W), dtype=np.uint64)
        stop = ffi.new("long*")
        frames = ffi.new("long*")
        # Pointer casts dominate short segments (a TDF capture runs
        # two per launch frame), so the backend-constant and
        # plan-constant casts are built once and reused; the plan
        # cache is invalidated (set to None) by anyone who swaps a
        # plan's arrays after construction.
        if self._const_ptrs is None:
            self._const_ptrs = (
                i32p(self.g_op), i32p(self.g_out),
                ffi.cast("long*", self.g_foff.ctypes.data),
                i32p(self.g_fan), i32p(self.pi_ids),
                i32p(self.po_ids), i32p(self.ff_ids),
                i32p(self.ffd_ids))
        (p_gop, p_gout, p_gfoff, p_gfan, p_pi, p_po, p_ff,
         p_ffd) = self._const_ptrs
        if getattr(plan, "_kptrs", None) is None:
            plan._kptrs = (
                u64p(plan.mask), i32p(plan.stem_site),
                u64p(plan.st_f0), u64p(plan.st_f1),
                u64p(plan.st_keep), i32p(plan.src_stem_ids),
                i32p(plan.src_stem_site), i32p(plan.br_start),
                i32p(plan.br_count), i32p(plan.br_pin),
                u64p(plan.br_f0), u64p(plan.br_f1),
                u64p(plan.br_keep), i32p(plan.ffbr_pos),
                u64p(plan.ffbr_f0), u64p(plan.ffbr_f1),
                u64p(plan.ffbr_keep))
        (p_mask, p_site, p_stf0, p_stf1, p_stkeep, p_srcids,
         p_srcsite, p_brstart, p_brcount, p_brpin, p_brf0, p_brf1,
         p_brkeep, p_ffbrpos, p_ffbrf0, p_ffbrf1,
         p_ffbrkeep) = plan._kptrs
        status = lib.repro_run_pass(
            u64p(zero), u64p(one), p_mask, W,
            self.n_gates, p_gop, p_gout,
            p_gfoff,
            p_gfan,
            len(self.circuit.pi_ids), p_pi,
            len(self.circuit.po_ids), p_po,
            len(self.circuit.ff_ids), p_ff,
            p_ffd,
            p_site,
            p_stf0, p_stf1, p_stkeep,
            len(plan.src_stem_ids),
            p_srcids, p_srcsite,
            p_brstart, p_brcount,
            p_brpin, p_brf0, p_brf1,
            p_brkeep,
            plan.n_ffbr, p_ffbrpos,
            p_ffbrf0, p_ffbrf1,
            p_ffbrkeep,
            ffi.cast("unsigned char*", vec_arr.ctypes.data),
            start, last,
            int(observe_po), int(scan_out), n_scan_obs, i32p(scan_obs),
            int(early_exit), FS._REPACK_MIN_MACHINES,
            FS._REPACK_MIN_FRAMES_LEFT, len(plan.chunk.indices),
            u64p(rec_po) if rec_po is not None else ffi.NULL,
            u64p(rec_scan) if rec_scan is not None else ffi.NULL,
            u64p(ns_zero), u64p(ns_one), u64p(scr_z), u64p(scr_o),
            u64p(caught), stop, frames)
        return int(status), int(stop[0]), int(frames[0])

    # ------------------------------------------------------------------
    def _py_frame(self, plan: _ChunkPlan, zero: Any, one: Any,
                  vector: V.Vector, stems_rows: Dict[int, Any],
                  branch_rows: Dict[int, Any]) -> Tuple[Any, Any]:
        """One fallback frame: load, stems, evaluate; returns the
        next-state rows (with flip-flop branch blends applied)."""
        np = self.np
        for nid, val in zip(self.circuit.pi_ids, vector):
            if val == V.ZERO:
                zero[nid] = plan.mask
                one[nid] = 0
            elif val == V.ONE:
                zero[nid] = 0
                one[nid] = plan.mask
            else:
                zero[nid] = 0
                one[nid] = 0
        for nid in plan.chunk.src_stem_ids:
            site = int(plan.stem_site[nid])
            keep = plan.st_keep[site]
            zero[nid] = (zero[nid] & keep) | plan.st_f0[site]
            one[nid] = (one[nid] & keep) | plan.st_f1[site]
        self.evaluator(zero, one, plan.mask, stems_rows, branch_rows)
        ns_zero = zero[self.ffd_ids].copy()
        ns_one = one[self.ffd_ids].copy()
        for i in range(plan.n_ffbr):
            pos = int(plan.ffbr_pos[i])
            keep = plan.ffbr_keep[i]
            ns_zero[pos] = (ns_zero[pos] & keep) | plan.ffbr_f0[i]
            ns_one[pos] = (ns_one[pos] & keep) | plan.ffbr_f1[i]
        return ns_zero, ns_one

    def _diff_int(self, zero_row: Any, one_row: Any) -> int:
        """:meth:`FaultSimulator._diff_word` over array rows."""
        if int(one_row[0]) & 1:
            return V.array_to_word(zero_row)
        if int(zero_row[0]) & 1:
            return V.array_to_word(one_row)
        return 0

    # ------------------------------------------------------------------
    def run_detect_chunk(
        self, sim: "FaultSimulator", chunk: "_Chunk",
        vectors: Sequence[V.Vector], init_state: V.Vector,
        scan_out: bool, observe_po: bool, early_exit: bool,
        scan_observe: Optional[Sequence[int]], detected: Set[int],
    ) -> int:
        """One chunk of :meth:`FaultSimulator.detect` on arrays.

        Mirrors the big-int chunk loop exactly (saturation break,
        in-pass repack via the parent's :meth:`_repack`, counter
        accounting) and accumulates into ``detected``.  Returns the
        number of frames simulated.
        """
        from . import fault_sim as FS
        np = self.np
        counters = sim.counters
        counters.np_passes += 1
        last = len(vectors) - 1
        if last < 0:
            return 0
        vec_arr = self._vec_array(vectors)
        plan = self._plan_for(sim, chunk)
        zero, one = self._init_state(plan, init_state)
        caught_arr = np.zeros(plan.n_words, dtype=np.uint64)
        ns_zero = np.zeros((max(1, len(self.circuit.ff_ids)),
                            plan.n_words), dtype=np.uint64)
        ns_one = np.zeros_like(ns_zero)
        frames_total = 0
        frame = 0
        if self.kernel_available:
            while frame <= last:
                status, stop, frames = self._kernel_segment(
                    plan, zero, one, vec_arr, frame, last, observe_po,
                    scan_out, scan_observe, early_exit, None, None,
                    ns_zero, ns_one, caught_arr)
                frames_total += frames
                counters.note_words(frames, len(chunk.indices))
                if status != _STATUS_REPACK:
                    break
                caught_int = V.array_to_word(caught_arr)
                n_dropped = 0
                for pos, fid in enumerate(chunk.indices):
                    if caught_int & chunk.bit_of(pos):
                        detected.add(fid)
                        n_dropped += 1
                ns_z_ints = [V.array_to_word(ns_zero[i])
                             for i in range(len(self.circuit.ff_ids))]
                ns_o_ints = [V.array_to_word(ns_one[i])
                             for i in range(len(self.circuit.ff_ids))]
                chunk, zw, ow = sim._repack(chunk, caught_int,
                                            ns_z_ints, ns_o_ints)
                counters.repacks += 1
                counters.faults_dropped += n_dropped
                plan = _ChunkPlan(self, chunk)
                zero, one = self._state_from_words(plan, zw, ow)
                caught_arr = np.zeros(plan.n_words, dtype=np.uint64)
                ns_zero = np.zeros((max(1, len(self.circuit.ff_ids)),
                                    plan.n_words), dtype=np.uint64)
                ns_one = np.zeros_like(ns_zero)
                frame = stop + 1
            caught = V.array_to_word(caught_arr)
        else:
            caught = 0
            stems_rows = plan.stems_rows()
            branch_rows = plan.branch_rows()
            while frame <= last:
                ns_z2, ns_o2 = self._py_frame(plan, zero, one,
                                              vectors[frame],
                                              stems_rows, branch_rows)
                counters.note_words(1, len(chunk.indices))
                frames_total += 1
                if observe_po:
                    for nid in self.circuit.po_ids:
                        caught |= self._diff_int(zero[nid], one[nid])
                if scan_out and frame == last:
                    positions = (range(len(self.circuit.ff_ids))
                                 if scan_observe is None
                                 else scan_observe)
                    for pos in positions:
                        caught |= self._diff_int(ns_z2[pos],
                                                 ns_o2[pos])
                caught &= ~1
                if caught == chunk.mask & ~1:
                    break
                if (early_exit and caught and
                        len(chunk.indices) >= FS._REPACK_MIN_MACHINES
                        and last - frame >= FS._REPACK_MIN_FRAMES_LEFT
                        and 2 * bin(caught).count("1") >=
                        len(chunk.indices)):
                    n_dropped = 0
                    for pos, fid in enumerate(chunk.indices):
                        if caught & chunk.bit_of(pos):
                            detected.add(fid)
                            n_dropped += 1
                    ns_z_ints = [V.array_to_word(row) for row in ns_z2]
                    ns_o_ints = [V.array_to_word(row) for row in ns_o2]
                    chunk, zw, ow = sim._repack(chunk, caught,
                                                ns_z_ints, ns_o_ints)
                    counters.repacks += 1
                    counters.faults_dropped += n_dropped
                    plan = _ChunkPlan(self, chunk)
                    stems_rows = plan.stems_rows()
                    branch_rows = plan.branch_rows()
                    zero, one = self._state_from_words(plan, zw, ow)
                    caught = 0
                    frame += 1
                    continue
                zero[self.ff_ids] = ns_z2
                one[self.ff_ids] = ns_o2
                frame += 1
        for pos, fid in enumerate(chunk.indices):
            if caught & chunk.bit_of(pos):
                detected.add(fid)
        return frames_total

    # ------------------------------------------------------------------
    def run_suffix_chunk(
        self, sim: "FaultSimulator", chunk: "_Chunk",
        vectors: Sequence[V.Vector], ff_zero: Sequence[int],
        ff_one: Sequence[int], caught: int,
        scan_observe: Optional[Sequence[int]],
    ) -> Tuple[int, int]:
        """One chunk of a Phase-2 omission suffix trial on arrays.

        Resumes from a checkpoint (per-flip-flop big-int word pairs
        plus the cumulative PO ``caught`` mask), runs the suffix with
        PO observation every frame and scan-out on the last frame,
        and stops early once every machine is caught -- exactly the
        ``record=False`` big-int loop in
        :meth:`repro.core.omission._CheckpointedRun._run_suffix`,
        with the scan-out diff folded into the returned mask (the
        caller ORs them anyway).  Returns ``(mask, frames_run)``.

        Kernel-only: the caller keeps the big-int path when the
        kernel is unavailable (the pure-numpy fallback is slower
        than the fused big-int loop on these short passes) and for
        ``record=True`` rebuilds, which need per-frame trails.
        """
        np = self.np
        counters = sim.counters
        counters.np_passes += 1
        last = len(vectors) - 1
        if last < 0:
            return caught, 0
        plan = self._plan_for(sim, chunk)
        W = plan.n_words
        zero = np.zeros((self.circuit.n_nets, W), dtype=np.uint64)
        one = np.zeros((self.circuit.n_nets, W), dtype=np.uint64)
        if self.circuit.ff_ids:
            zero[self.ff_ids] = _rows_array(np, list(ff_zero), W)
            one[self.ff_ids] = _rows_array(np, list(ff_one), W)
        caught_arr = V.word_to_array(caught, W)
        ns_zero = np.zeros((max(1, len(self.circuit.ff_ids)), W),
                           dtype=np.uint64)
        ns_one = np.zeros_like(ns_zero)
        vec_arr = self._vec_array(vectors)
        _, _, frames = self._kernel_segment(
            plan, zero, one, vec_arr, 0, last, True, True,
            scan_observe, False, None, None, ns_zero, ns_one,
            caught_arr)
        counters.note_words(frames, len(chunk.indices))
        return V.array_to_word(caught_arr), frames

    # ------------------------------------------------------------------
    def run_lane_chunk(
        self, sim: "FaultSimulator", chunk: "_LaneChunk",
        n_frames: int,
        pi_words: Sequence[Sequence[Tuple[int, int]]],
        acts: Sequence[int], ends: Sequence[int],
        init_words: Sequence[Tuple[int, int]],
        good_po: Sequence[Sequence[Tuple[int, int]]],
        good_scan: Sequence[Optional[Sequence[Tuple[int, int]]]],
        slot_pos: Sequence[int], observe_po: bool,
    ) -> Tuple[int, int]:
        """One lane-transposed pass chunk on the C kernel.

        Serves both :meth:`FaultSimulator.detect_trials` (per-lane PI
        words, ragged ``acts`` / ``ends`` masks) and the kernel route
        of :meth:`FaultSimulator.detect_candidates` (shared PI words,
        all lanes active, scan-out only on the last frame).  All lane
        words arrive *unreplicated* (one block wide); the block
        replication across fault groups happens here, in big-int
        arithmetic, before the one-shot array conversion.  Returns
        ``(caught, frames_done)`` with ``caught`` a big-int over the
        chunk's ``n_groups * n_lanes`` bits.

        Kernel-only: callers keep the big-int lane loops when the
        kernel is unavailable (the pure-numpy fallback loses to the
        fused big-int engine on these passes).
        """
        np = self.np
        counters = sim.counters
        counters.np_passes += 1
        n_bits = chunk.n_groups * chunk.n_lanes
        plan = self._plan_for(sim, chunk, n_bits=n_bits)
        W = plan.n_words
        rep = chunk.replication
        n_nets = self.circuit.n_nets
        aligned = chunk.n_lanes % 64 == 0
        wb = chunk.n_lanes // 64

        def rep_rows(rows: Sequence[int]) -> Any:
            # With lane blocks on 64-bit boundaries the group
            # replication is an exact array tile of the one-block
            # rows, skipping the per-row big-int multiply and bytes
            # round-trip (the top cost of wide trial chunks).
            if aligned:
                return np.tile(_rows_array(np, rows, wb),
                               (1, chunk.n_groups))
            return _rows_array(np, [r * rep for r in rows], W)

        zero = np.zeros((n_nets, W), dtype=np.uint64)
        one = np.zeros((n_nets, W), dtype=np.uint64)
        for (z, o), nid in zip(init_words, self.circuit.ff_ids):
            if z:
                zero[nid] = (np.tile(V.word_to_array(z, wb),
                                     chunk.n_groups) if aligned
                             else V.word_to_array(z * rep, W))
            if o:
                one[nid] = (np.tile(V.word_to_array(o, wb),
                                    chunk.n_groups) if aligned
                            else V.word_to_array(o * rep, W))
        pi_z = rep_rows([pz for frame in pi_words for pz, _ in frame])
        pi_o = rep_rows([po for frame in pi_words for _, po in frame])
        act_arr = rep_rows(acts)
        end_arr = rep_rows(ends)
        if observe_po:
            gp_z = rep_rows(
                [gz for frame in good_po for gz, _ in frame])
            gp_o = rep_rows(
                [go for frame in good_po for _, go in frame])
        else:
            gp_z = np.zeros((1, W), dtype=np.uint64)
            gp_o = np.zeros((1, W), dtype=np.uint64)
        n_slots = (len(slot_pos)
                   if any(s is not None for s in good_scan) else 0)
        if n_slots:
            sc_rows_z: List[int] = []
            sc_rows_o: List[int] = []
            for frame_scan in good_scan:
                if frame_scan is None:
                    sc_rows_z.extend([0] * n_slots)
                    sc_rows_o.extend([0] * n_slots)
                else:
                    for gz, go in frame_scan:
                        sc_rows_z.append(gz)
                        sc_rows_o.append(go)
            sc_z = rep_rows(sc_rows_z)
            sc_o = rep_rows(sc_rows_o)
        else:
            sc_z = np.zeros((1, W), dtype=np.uint64)
            sc_o = np.zeros((1, W), dtype=np.uint64)
        slot_arr = np.asarray(list(slot_pos) or [0], dtype=np.int32)
        ns_zero = np.zeros((max(1, len(self.circuit.ff_ids)), W),
                           dtype=np.uint64)
        ns_one = np.zeros_like(ns_zero)
        scr_z = np.zeros((self.max_arity, W), dtype=np.uint64)
        scr_o = np.zeros_like(scr_z)
        caught_arr = np.zeros(W, dtype=np.uint64)
        ffi, lib = self._kernel  # type: ignore[misc]

        def u64p(arr: Any) -> Any:
            return ffi.cast("u64*", arr.ctypes.data)

        def i32p(arr: Any) -> Any:
            return ffi.cast("int*", arr.ctypes.data)

        frames = ffi.new("long*")
        lib.repro_run_lane_pass(
            u64p(zero), u64p(one), u64p(plan.mask), W,
            self.n_gates, i32p(self.g_op), i32p(self.g_out),
            ffi.cast("long*", self.g_foff.ctypes.data),
            i32p(self.g_fan),
            len(self.circuit.pi_ids), i32p(self.pi_ids),
            len(self.circuit.po_ids), i32p(self.po_ids),
            len(self.circuit.ff_ids), i32p(self.ff_ids),
            i32p(self.ffd_ids),
            i32p(plan.stem_site),
            u64p(plan.st_f0), u64p(plan.st_f1), u64p(plan.st_keep),
            len(plan.src_stem_ids),
            i32p(plan.src_stem_ids), i32p(plan.src_stem_site),
            i32p(plan.br_start), i32p(plan.br_count),
            i32p(plan.br_pin), u64p(plan.br_f0), u64p(plan.br_f1),
            u64p(plan.br_keep),
            plan.n_ffbr, i32p(plan.ffbr_pos),
            u64p(plan.ffbr_f0), u64p(plan.ffbr_f1),
            u64p(plan.ffbr_keep),
            n_frames,
            u64p(pi_z), u64p(pi_o), u64p(act_arr), u64p(end_arr),
            int(observe_po), u64p(gp_z), u64p(gp_o),
            n_slots, i32p(slot_arr), u64p(sc_z), u64p(sc_o),
            u64p(ns_zero), u64p(ns_one), u64p(scr_z), u64p(scr_o),
            u64p(caught_arr), frames)
        frames_done = int(frames[0])
        counters.note_words(frames_done,
                            chunk.n_groups * chunk.n_lanes)
        return V.array_to_word(caught_arr), frames_done

    # ------------------------------------------------------------------
    def _empty_plan_for(self, W: int) -> Tuple[Any, ...]:
        """Cached no-fault plan arrays for the good lane pass."""
        cached = self._empty_plans.get(W)
        if cached is None:
            np = self.np
            n_nets = self.circuit.n_nets
            cached = (
                np.full(n_nets, -1, dtype=np.int32),   # stem_site
                np.zeros((1, W), dtype=np.uint64),     # st_f0
                np.zeros((1, W), dtype=np.uint64),     # st_f1
                np.zeros((1, W), dtype=np.uint64),     # st_keep
                np.zeros(n_nets, dtype=np.int32),      # br_start
                np.zeros(n_nets, dtype=np.int32),      # br_count
                np.zeros(1, dtype=np.int32),           # br_pin
                np.zeros((1, W), dtype=np.uint64),     # br_f0
                np.zeros((1, W), dtype=np.uint64),     # br_f1
                np.zeros((1, W), dtype=np.uint64),     # br_keep
            )
            self._empty_plans[W] = cached
        return cached

    def run_good_lane_pass(
        self, sim: "FaultSimulator", n_lanes: int, n_frames: int,
        pi_words: Sequence[Sequence[Tuple[int, int]]],
        ends: Sequence[int],
        init_words: Sequence[Tuple[int, int]],
        observe_po: bool, slot_pos: Sequence[int], scan_out: bool,
    ) -> Tuple[List[List[Tuple[int, int]]],
               List[Optional[List[Tuple[int, int]]]]]:
        """The fault-free reference pass of
        :meth:`FaultSimulator.detect_trials` on the C kernel.

        Consumes the caller-built per-frame PI lane words and returns
        ``(po_frames, scan_frames)`` in exactly the big-int format of
        :meth:`FaultSimulator._good_trial_pass` -- per-frame per-PO
        good lane word pairs, and captured scan-slot word pairs on
        frames where some trial ends (``None`` elsewhere).  This pass
        dominated batched Phase-4 trials when it ran frame by frame
        in Python; one kernel call replaces the whole loop.

        Kernel-only, like :meth:`run_lane_chunk`.
        """
        np = self.np
        counters = sim.counters
        counters.np_passes += 1
        W = max(1, (n_lanes + 63) // 64)
        mask = V.word_to_array((1 << n_lanes) - 1, W)
        n_nets = self.circuit.n_nets
        zero = np.zeros((n_nets, W), dtype=np.uint64)
        one = np.zeros((n_nets, W), dtype=np.uint64)
        for (z, o), nid in zip(init_words, self.circuit.ff_ids):
            if z:
                zero[nid] = V.word_to_array(z, W)
            if o:
                one[nid] = V.word_to_array(o, W)
        pi_z = _rows_array(
            np, [pz for frame in pi_words for pz, _ in frame], W)
        pi_o = _rows_array(
            np, [po for frame in pi_words for _, po in frame], W)
        n_po = len(self.circuit.po_ids)
        if observe_po:
            gp_z = np.zeros((max(1, n_frames * n_po), W),
                            dtype=np.uint64)
        else:
            gp_z = np.zeros((1, W), dtype=np.uint64)
        gp_o = np.zeros_like(gp_z)
        slots = list(slot_pos) if scan_out else []
        n_slots = len(slots)
        sc_z = np.zeros((max(1, n_frames * n_slots), W),
                        dtype=np.uint64)
        sc_o = np.zeros_like(sc_z)
        slot_arr = np.asarray(slots or [0], dtype=np.int32)
        ns_zero = np.zeros((max(1, len(self.circuit.ff_ids)), W),
                           dtype=np.uint64)
        ns_one = np.zeros_like(ns_zero)
        scr_z = np.zeros((self.max_arity, W), dtype=np.uint64)
        scr_o = np.zeros_like(scr_z)
        (stem_site, st_f0, st_f1, st_keep, br_start, br_count,
         br_pin, br_f0, br_f1, br_keep) = self._empty_plan_for(W)
        ffi, lib = self._kernel  # type: ignore[misc]

        def u64p(arr: Any) -> Any:
            return ffi.cast("u64*", arr.ctypes.data)

        def i32p(arr: Any) -> Any:
            return ffi.cast("int*", arr.ctypes.data)

        lib.repro_run_good_lane_pass(
            u64p(zero), u64p(one), u64p(mask), W,
            self.n_gates, i32p(self.g_op), i32p(self.g_out),
            ffi.cast("long*", self.g_foff.ctypes.data),
            i32p(self.g_fan),
            len(self.circuit.pi_ids), i32p(self.pi_ids),
            n_po, i32p(self.po_ids),
            len(self.circuit.ff_ids), i32p(self.ff_ids),
            i32p(self.ffd_ids),
            i32p(stem_site), u64p(st_f0), u64p(st_f1), u64p(st_keep),
            i32p(br_start), i32p(br_count),
            i32p(br_pin), u64p(br_f0), u64p(br_f1), u64p(br_keep),
            n_frames,
            u64p(pi_z), u64p(pi_o),
            int(observe_po), u64p(gp_z), u64p(gp_o),
            n_slots, i32p(slot_arr), u64p(sc_z), u64p(sc_o),
            u64p(ns_zero), u64p(ns_one), u64p(scr_z), u64p(scr_o))
        counters.note_words(n_frames, n_lanes)

        def _rows_to_words(arr: Any, n_rows: int) -> List[int]:
            if W == 1:
                words: List[int] = arr[:n_rows, 0].tolist()
                return words
            return [V.array_to_word(arr[r]) for r in range(n_rows)]

        po_frames: List[List[Tuple[int, int]]] = []
        if observe_po:
            gz = _rows_to_words(gp_z, n_frames * n_po)
            go = _rows_to_words(gp_o, n_frames * n_po)
            for f in range(n_frames):
                base = f * n_po
                po_frames.append(list(zip(gz[base:base + n_po],
                                          go[base:base + n_po])))
        else:
            po_frames = [[] for _ in range(n_frames)]
        scan_frames: List[Optional[List[Tuple[int, int]]]] = []
        if n_slots:
            sz = _rows_to_words(sc_z, n_frames * n_slots)
            so = _rows_to_words(sc_o, n_frames * n_slots)
            for f in range(n_frames):
                if ends[f]:
                    base = f * n_slots
                    scan_frames.append(
                        list(zip(sz[base:base + n_slots],
                                 so[base:base + n_slots])))
                else:
                    scan_frames.append(None)
        else:
            scan_frames = [None] * n_frames
        return po_frames, scan_frames

    # ------------------------------------------------------------------
    def run_records_chunk(
        self, sim: "FaultSimulator", chunk: "_Chunk",
        vectors: Sequence[V.Vector], init_state: V.Vector,
        scan_observe: Optional[Sequence[int]],
        po_first: Dict[int, int], scan_diff: List[Set[int]],
    ) -> None:
        """One chunk of :meth:`FaultSimulator.run_with_records` on
        arrays (no early exit; per-frame PO / scan-out diff words)."""
        np = self.np
        counters = sim.counters
        counters.np_passes += 1
        n_frames = len(vectors)
        if n_frames == 0:
            return
        plan = self._plan_for(sim, chunk)
        W = plan.n_words
        zero, one = self._init_state(plan, init_state)
        rec_po = np.zeros((n_frames, W), dtype=np.uint64)
        rec_scan = np.zeros((n_frames, W), dtype=np.uint64)
        if self.kernel_available:
            vec_arr = self._vec_array(vectors)
            ns_zero = np.zeros((max(1, len(self.circuit.ff_ids)), W),
                               dtype=np.uint64)
            ns_one = np.zeros_like(ns_zero)
            caught = np.zeros(W, dtype=np.uint64)
            self._kernel_segment(
                plan, zero, one, vec_arr, 0, n_frames - 1, True, True,
                scan_observe, False, rec_po, rec_scan, ns_zero, ns_one,
                caught)
        else:
            stems_rows = plan.stems_rows()
            branch_rows = plan.branch_rows()
            for frame, vector in enumerate(vectors):
                ns_z2, ns_o2 = self._py_frame(plan, zero, one, vector,
                                              stems_rows, branch_rows)
                po_now = 0
                for nid in self.circuit.po_ids:
                    po_now |= self._diff_int(zero[nid], one[nid])
                rec_po[frame] = V.word_to_array(po_now, W)
                sdiff = 0
                positions = (range(len(self.circuit.ff_ids))
                             if scan_observe is None else scan_observe)
                for pos in positions:
                    sdiff |= self._diff_int(ns_z2[pos], ns_o2[pos])
                rec_scan[frame] = V.word_to_array(sdiff, W)
                zero[self.ff_ids] = ns_z2
                one[self.ff_ids] = ns_o2
        counters.note_words(n_frames, len(chunk.indices))
        po_seen = 0
        for frame in range(n_frames):
            po_now = V.array_to_word(rec_po[frame])
            po_new = po_now & ~po_seen & ~1
            if po_new:
                for pos, fid in enumerate(chunk.indices):
                    if po_new & chunk.bit_of(pos):
                        po_first[fid] = frame
                po_seen |= po_new
            sdiff = V.array_to_word(rec_scan[frame]) & ~1
            if sdiff:
                frame_set = scan_diff[frame]
                for pos, fid in enumerate(chunk.indices):
                    if sdiff & chunk.bit_of(pos):
                        frame_set.add(fid)

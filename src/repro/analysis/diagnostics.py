"""Structured findings shared by every analysis pass.

A :class:`Diagnostic` is one finding: a stable machine-readable rule id
(``"struct.comb-cycle"``, ``"xinit.not-synchronizable"``, ...), a
severity, a human message, the nets involved, and an open ``data`` dict
for rule-specific detail (witness sequences, state counts, per-FF
explanations).  A :class:`LintReport` is the ordered collection of
diagnostics one circuit produced, with helpers for the CLI (table and
JSON rendering) and the harness (error/rule-id extraction).

Severity semantics, used consistently across the stack:

* ``error`` -- the circuit is structurally broken; downstream code
  (compile, simulate) would crash or silently misbehave.  The harness
  pre-flight turns these into ``SKIPPED(lint: <rule>)`` rows.
* ``warning`` -- the circuit is well-formed but has a property that
  undermines the experiments (e.g. not initializable from all-X).
  Jobs still run.
* ``info`` -- an analysis was inconclusive (budget exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding."""

    rule: str
    severity: str
    message: str
    nets: Tuple[str, ...] = ()
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_ORDER:
            raise ValueError(f"invalid severity {self.severity!r}")
        object.__setattr__(self, "nets", tuple(self.nets))

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "severity": self.severity,
                "message": self.message, "nets": list(self.nets),
                "data": dict(self.data)}

    def __str__(self) -> str:
        where = f" [{', '.join(self.nets)}]" if self.nets else ""
        return f"{self.severity}: {self.rule}: {self.message}{where}"


def diagnostic_from_dict(data: Mapping[str, Any]) -> Diagnostic:
    """Rebuild a :class:`Diagnostic` from :meth:`Diagnostic.to_dict`."""
    return Diagnostic(rule=str(data["rule"]),
                      severity=str(data["severity"]),
                      message=str(data["message"]),
                      nets=tuple(data.get("nets", ())),
                      data=dict(data.get("data", {})))


@dataclass
class LintReport:
    """All diagnostics one circuit produced, in pass order."""

    circuit: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing at all was found."""
        return not self.diagnostics

    @property
    def rule_ids(self) -> Tuple[str, ...]:
        """Sorted unique rule ids, errors first."""
        seen: Dict[str, int] = {}
        for d in self.diagnostics:
            sev = _SEVERITY_ORDER[d.severity]
            if d.rule not in seen or sev < seen[d.rule]:
                seen[d.rule] = sev
        return tuple(sorted(seen, key=lambda r: (seen[r], r)))

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def to_dict(self) -> Dict[str, Any]:
        return {"circuit": self.circuit,
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        return cls(circuit=str(data["circuit"]),
                   diagnostics=[diagnostic_from_dict(d)
                                for d in data.get("diagnostics", [])])

    def table(self) -> Any:
        """Render as a :class:`repro.experiments.reporting.Table`."""
        from ..experiments.reporting import Table
        table = Table(f"Lint: {self.circuit}",
                      ["severity", "rule", "nets", "message"])
        for d in sorted(self.diagnostics,
                        key=lambda d: (_SEVERITY_ORDER[d.severity], d.rule)):
            nets = ",".join(d.nets) if d.nets else "-"
            table.add_row(d.severity, d.rule, nets, d.message)
        return table

    def render(self) -> str:
        if self.clean:
            return f"Lint: {self.circuit}\n  clean"
        return str(self.table().render())

"""Levelized three-valued logic simulation.

:class:`CompiledCircuit` flattens a compiled :class:`~repro.circuits.netlist.Netlist`
into dense integer-indexed evaluation tables so the per-frame inner loop
touches only lists and ints.  The same compiled form and the same
:meth:`CompiledCircuit.eval_frame` are used by the good-machine
simulator here and by the bit-parallel fault simulator in
:mod:`repro.sim.fault_sim` (which passes fault-injection masks).

The sequential simulation model is the standard one for full-scan work:

* every frame, primary-input values are applied and the combinational
  logic is evaluated;
* primary outputs are sampled;
* every DFF loads the value of its data net (next state).

Unknown values propagate pessimistically (X in, X out unless the gate's
controlling value decides the output).

Width contract: :meth:`CompiledCircuit.eval_frame` (both engines) is
agnostic to the machine word width -- ``mask`` carries the active
bits and every operation is a big-int bitwise op, so the same
evaluator serves a 1-bit good-machine pass, a 128-bit chunk, or a
fused multi-thousand-bit word without any per-width code.  The fused
wide-word fault simulator depends on this: do not introduce
width-sensitive constants here or in :mod:`repro.sim.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from . import values as V

# Opcode table: compact ints for the evaluation loop.
OP_AND, OP_NAND, OP_OR, OP_NOR, OP_XOR, OP_XNOR, OP_NOT, OP_BUF, \
    OP_CONST0, OP_CONST1 = range(10)

_OPCODES = {
    "AND": OP_AND, "NAND": OP_NAND, "OR": OP_OR, "NOR": OP_NOR,
    "XOR": OP_XOR, "XNOR": OP_XNOR, "NOT": OP_NOT, "BUF": OP_BUF,
    "CONST0": OP_CONST0, "CONST1": OP_CONST1,
}

#: Opcodes whose output is the complement of the underlying function.
_INVERTING = {OP_NAND, OP_NOR, OP_XNOR, OP_NOT}

#: Engine names :class:`CompiledCircuit` accepts.  ``"interp"`` is the
#: CLI-facing alias of ``"generic"``; ``"numpy"`` routes fault-sim
#: passes through :mod:`repro.sim.npsim` (requires the optional numpy
#: dependency); ``"auto"`` uses numpy for large passes when available
#: and falls back to the fused big-int path otherwise.
ENGINES = ("generic", "interp", "codegen", "numpy", "auto")


class CompiledCircuit:
    """A netlist compiled for fast frame evaluation.

    Attributes
    ----------
    netlist:
        The source netlist (compiled).
    n_nets:
        Number of nets; net ids index the per-net value arrays.
    pi_ids, ff_ids, po_ids:
        Net ids of primary inputs, flip-flop outputs and primary outputs.
    ff_d_ids:
        Net ids of each flip-flop's data (next state) net, aligned with
        ``ff_ids``.
    ops:
        ``(opcode, out_id, fanin_ids)`` triples in topological order.
    """

    def __init__(self, netlist: Netlist, engine: str = "codegen") -> None:
        """Compile ``netlist`` for simulation.

        ``engine`` selects the evaluation backend (:data:`ENGINES`):

        * ``"codegen"`` (default) generates and compiles a
          circuit-specialized function (see :mod:`repro.sim.codegen`,
          1.5-2.5x faster);
        * ``"generic"`` (alias ``"interp"``) uses the interpreting
          loop below;
        * ``"numpy"`` keeps the codegen evaluator for scalar work but
          routes whole fault-simulation passes through the
          :mod:`repro.sim.npsim` array backend (requires numpy --
          raises here, eagerly and actionably, without it);
        * ``"auto"`` is ``"numpy"`` when numpy is available and its
          executor beats big-int for the pass at hand, silently
          ``"codegen"`` otherwise.

        All engines are exactly equivalent result-wise (enforced by
        the equivalence suite and the ``REPRO_SANITIZE`` shadow
        checks).

        Raises
        ------
        ValueError
            On an unknown engine name.
        ImportError
            On ``engine="numpy"`` without numpy installed.
        """
        if not netlist.is_compiled():
            netlist.compile()
        self.netlist = netlist
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"use one of {ENGINES}")
        if engine == "interp":
            engine = "generic"
        self.engine = engine
        self._array_backend: Optional[object] = None
        if engine == "numpy":
            from .npsim import require_numpy
            require_numpy()
        ids = netlist.net_ids
        self.n_nets = netlist.num_nets
        self.pi_ids: List[int] = [ids[n] for n in netlist.inputs]
        self.ff_ids: List[int] = [ids[n] for n in netlist.flip_flops]
        self.po_ids: List[int] = [ids[n] for n in netlist.outputs]
        self.ff_d_ids: List[int] = [
            ids[netlist.gates[ff].fanins[0]] for ff in netlist.flip_flops]
        self.ops: List[Tuple[int, int, Tuple[int, ...]]] = []
        for gname in netlist.order:
            gate = netlist.gates[gname]
            self.ops.append((
                _OPCODES[gate.gtype],
                ids[gname],
                tuple(ids[f] for f in gate.fanins),
            ))
        if engine != "generic":
            from .codegen import build_evaluator
            # Instance attribute shadows the method: all simulators
            # transparently use the specialized evaluator.  The numpy
            # and auto engines keep this big-int evaluator too -- the
            # good-machine / combinational simulators and the
            # lane-transposed candidate scan stay on big-int words.
            self.eval_frame = build_evaluator(self)

    # ------------------------------------------------------------------
    @property
    def array_backend(self) -> Optional[object]:
        """The :class:`~repro.sim.npsim.ArrayBackend` for this circuit.

        Built lazily on first use.  ``None`` unless the engine is
        ``"numpy"`` or ``"auto"``, or (for ``"auto"``) when numpy is
        unavailable -- callers fall back to the big-int path.
        """
        if self.engine not in ("numpy", "auto"):
            return None
        if self._array_backend is None:
            from .npsim import ArrayBackend, numpy_available
            if self.engine == "auto" and not numpy_available():
                return None
            self._array_backend = ArrayBackend(self)
        return self._array_backend

    # ------------------------------------------------------------------
    def eval_frame(
        self,
        zero: List[int],
        one: List[int],
        mask: int,
        stems: Optional[Dict[int, Tuple[int, int]]] = None,
        branch: Optional[Dict[int, List[Tuple[int, int, int]]]] = None,
    ) -> None:
        """Evaluate the combinational logic in place.

        ``zero`` / ``one`` are per-net word arrays; source nets (PIs and
        FF outputs) must already hold their values.  ``mask`` selects the
        active machine bits.

        The evaluation is strictly bitwise and width-agnostic: machine
        bits never interact, and no bit has special meaning at this
        layer.  This is the contract the lane-transposed candidate
        scan (:meth:`repro.sim.fault_sim.FaultSimulator.
        detect_candidates`) relies on -- it re-purposes the lanes to
        carry one candidate scan-in state each instead of one faulty
        machine each, with no changes here.

        Fault injection (used by the fault simulator):

        * ``stems[nid] = (m0, m1)``: machines whose view of net ``nid``
          (including its fanouts and observation) is forced to 0 (bits
          of ``m0``) or 1 (bits of ``m1``).  Applied to source nets by
          the caller, to gate outputs here.
        * ``branch[out_id]`` is a list of ``(pin, m0, m1)`` entries: when
          evaluating the gate driving ``out_id``, the fanin at position
          ``pin`` is forced to 0 for machines ``m0`` and 1 for machines
          ``m1`` -- for that gate only (a fanout-branch fault).

        This is the inner loop of every simulator in the package; it is
        deliberately written with direct indexing (no temporary lists)
        and a single injection-dict lookup per gate.
        """
        for opcode, out, fins in self.ops:
            if branch and out in branch:
                fz = [zero[f] for f in fins]
                fo = [one[f] for f in fins]
                for pin, m0, m1 in branch[out]:
                    keep = mask & ~(m0 | m1)
                    fz[pin] = (fz[pin] & keep) | m0
                    fo[pin] = (fo[pin] & keep) | m1
                z, o = _eval_lists(opcode, fz, fo, mask)
            elif opcode == OP_AND:
                z = 0
                o = mask
                for f in fins:
                    z |= zero[f]
                    o &= one[f]
            elif opcode == OP_NAND:
                o = 0
                z = mask
                for f in fins:
                    o |= zero[f]
                    z &= one[f]
            elif opcode == OP_OR:
                z = mask
                o = 0
                for f in fins:
                    z &= zero[f]
                    o |= one[f]
            elif opcode == OP_NOR:
                o = mask
                z = 0
                for f in fins:
                    o &= zero[f]
                    z |= one[f]
            elif opcode == OP_NOT:
                f = fins[0]
                z, o = one[f], zero[f]
            elif opcode == OP_BUF:
                f = fins[0]
                z, o = zero[f], one[f]
            elif opcode == OP_XOR or opcode == OP_XNOR:
                f = fins[0]
                z, o = zero[f], one[f]
                for f in fins[1:]:
                    bz, bo = zero[f], one[f]
                    z, o = (z & bz) | (o & bo), (z & bo) | (o & bz)
                if opcode == OP_XNOR:
                    z, o = o, z
            elif opcode == OP_CONST0:
                z, o = mask, 0
            else:  # OP_CONST1
                z, o = 0, mask

            if stems and out in stems:
                m0, m1 = stems[out]
                keep = mask & ~(m0 | m1)
                z = (z & keep) | m0
                o = (o & keep) | m1
            zero[out] = z
            one[out] = o


def _eval_lists(opcode: int, fz: List[int], fo: List[int],
                mask: int) -> Tuple[int, int]:
    """Gate evaluation over explicit fanin word lists (branch-fault
    slow path of :meth:`CompiledCircuit.eval_frame`)."""
    if opcode == OP_AND or opcode == OP_NAND:
        z = 0
        o = mask
        for bz, bo in zip(fz, fo):
            z |= bz
            o &= bo
    elif opcode == OP_OR or opcode == OP_NOR:
        z = mask
        o = 0
        for bz, bo in zip(fz, fo):
            z &= bz
            o |= bo
    elif opcode == OP_XOR or opcode == OP_XNOR:
        z, o = fz[0], fo[0]
        for bz, bo in zip(fz[1:], fo[1:]):
            z, o = (z & bz) | (o & bo), (z & bo) | (o & bz)
    elif opcode == OP_NOT or opcode == OP_BUF:
        z, o = fz[0], fo[0]
    elif opcode == OP_CONST0:
        return mask, 0
    else:
        return 0, mask
    if opcode in _INVERTING:
        z, o = o, z
    return z, o


@dataclass
class SeqSimResult:
    """Result of a good-machine sequential simulation.

    Attributes
    ----------
    po_frames:
        Primary-output vector sampled in each frame.
    state_frames:
        Flip-flop state *after* each frame's clock edge (so
        ``state_frames[i]`` is what a scan-out after frame ``i`` reads).
    """

    po_frames: List[V.Vector]
    state_frames: List[V.Vector]

    @property
    def final_state(self) -> V.Vector:
        """State after the last frame (the scan-out vector)."""
        return self.state_frames[-1]


def simulate_sequence(
    circuit: CompiledCircuit,
    vectors: Sequence[V.Vector],
    init_state: Optional[V.Vector] = None,
) -> SeqSimResult:
    """Simulate the fault-free machine over ``vectors``.

    Parameters
    ----------
    circuit:
        Compiled circuit.
    vectors:
        Primary-input vectors, one per frame.
    init_state:
        Initial flip-flop state; ``None`` means all-X (power-up unknown,
        the non-scan case).

    Raises
    ------
    ValueError
        On vector/state width mismatches or an empty sequence.
    """
    n_pi = len(circuit.pi_ids)
    n_ff = len(circuit.ff_ids)
    if not vectors:
        raise ValueError("empty input sequence")
    if init_state is None:
        init_state = V.all_x(n_ff)
    if len(init_state) != n_ff:
        raise ValueError(
            f"state width {len(init_state)} != {n_ff} flip-flops")

    zero = [0] * circuit.n_nets
    one = [0] * circuit.n_nets
    for nid, val in zip(circuit.ff_ids, init_state):
        zero[nid], one[nid] = V.pack_scalar(val, 1)

    po_frames: List[V.Vector] = []
    state_frames: List[V.Vector] = []
    for vector in vectors:
        if len(vector) != n_pi:
            raise ValueError(
                f"vector width {len(vector)} != {n_pi} primary inputs")
        for nid, val in zip(circuit.pi_ids, vector):
            zero[nid], one[nid] = V.pack_scalar(val, 1)
        circuit.eval_frame(zero, one, 1)
        po_frames.append(tuple(
            V.word_scalar(zero[nid], one[nid]) for nid in circuit.po_ids))
        next_state = tuple(
            V.word_scalar(zero[nid], one[nid]) for nid in circuit.ff_d_ids)
        state_frames.append(next_state)
        for nid, val in zip(circuit.ff_ids, next_state):
            zero[nid], one[nid] = V.pack_scalar(val, 1)
    return SeqSimResult(po_frames, state_frames)


def simulate_comb(
    circuit: CompiledCircuit,
    pi_vector: V.Vector,
    state: V.Vector,
) -> Tuple[V.Vector, V.Vector]:
    """Single-frame (combinational) simulation.

    Returns ``(po_vector, next_state)`` for one application of
    ``pi_vector`` with the flip-flops holding ``state`` -- exactly what a
    scan test with a length-1 sequence does.
    """
    result = simulate_sequence(circuit, [pi_vector], state)
    return result.po_frames[0], result.final_state

"""SCOAP testability measures over a compiled netlist.

The classic Sandia Controllability/Observability Analysis Program
measures (Goldstein 1979), specialized to the full-scan setting the
reproduction targets:

* ``CC0(n)`` / ``CC1(n)`` -- combinational 0-/1-controllability of net
  ``n``: a lower bound on the "effort" (counted in gate traversals) of
  justifying that value from the pattern inputs.  Primary inputs *and*
  flip-flop outputs cost 1: under full scan the flip-flop state is a
  pseudo primary input loaded by the scan-in.
* ``CO`` -- observability of a *line* (a stem net or one fanout
  branch): the effort of propagating a value difference on that line
  to an observation point.  Primary outputs and flip-flop data pins
  cost 0: the captured state is scanned out, so a D reaching a D pin
  is as observed as one reaching a PO.

Constant generators (``CONST0``/``CONST1``) control their own value
for free and the opposite value never (:data:`UNREACHABLE`).  XOR and
XNOR gates of any arity are handled with the standard even/odd parity
dynamic program rather than the two-input textbook formulas.

The per-fault *difficulty* -- ``CC`` of the value that excites the
fault plus ``CO`` of the faulty line -- is the static hardness score
the compaction phases consume as an ordering hint (never to change
results; see DESIGN.md section 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits.netlist import Netlist
from ..sim.faults import Fault

#: Saturation bound for unreachable/unobservable measures.  Any cost at
#: or above this value means "statically impossible" (e.g. setting a
#: CONST0 net to 1); arithmetic saturates so sums never overflow it.
UNREACHABLE = 10 ** 9

#: Controlling input value per gate type (the value that alone fixes
#: the output); gate types absent from the map have no controlling
#: value.
_CONTROLLING = {"AND": 0, "NAND": 0, "OR": 1, "NOR": 1}


def _sat(a: int, b: int) -> int:
    """Saturating add: anything at :data:`UNREACHABLE` stays there."""
    total = a + b
    return total if total < UNREACHABLE else UNREACHABLE


def _sat_sum(values: List[int]) -> int:
    total = 0
    for v in values:
        total = _sat(total, v)
    return total


@dataclass
class ScoapMeasures:
    """SCOAP controllability/observability of one compiled netlist.

    ``cc0``/``cc1`` are keyed by net name; ``co_stem`` by net name (the
    stem line); ``co_pin`` by ``(gate, pin_index)`` (every gate input
    pin, whether or not the feeding net has fanout -- on a fanout-free
    net the stem observability equals its only pin's observability).
    """

    cc0: Dict[str, int]
    cc1: Dict[str, int]
    co_stem: Dict[str, int]
    co_pin: Dict[Tuple[str, int], int]

    # ------------------------------------------------------------------
    def controllability(self, net: str, value: int) -> int:
        """``CC0`` or ``CC1`` of ``net``."""
        return self.cc1[net] if value else self.cc0[net]

    def observability(self, net: str,
                      pin: Optional[Tuple[str, int]]) -> int:
        """``CO`` of a line: the stem of ``net`` or one branch pin."""
        if pin is None:
            return self.co_stem[net]
        return self.co_pin[pin]

    def difficulty(self, fault: Fault) -> int:
        """Static hardness of a stuck-at fault.

        The cost of exciting the fault (controlling the line to the
        complement of the stuck value; a branch line carries its stem
        net's value) plus the cost of observing the line.  Saturates
        at :data:`UNREACHABLE` -- a saturated difficulty is a SCOAP
        hint that the fault *may* be untestable, though only the
        sound proofs of :mod:`repro.analysis.faultspace` may exclude
        it from simulation.
        """
        excite = self.controllability(fault.net, 1 - fault.stuck)
        return _sat(excite, self.observability(fault.net, fault.pin))

    # ------------------------------------------------------------------
    def profile(self, faults: List[Fault]) -> Dict[str, int]:
        """Difficulty distribution summary over ``faults``."""
        diffs = sorted(self.difficulty(f) for f in faults)
        finite = [d for d in diffs if d < UNREACHABLE]
        return {
            "n_faults": len(diffs),
            "n_saturated": len(diffs) - len(finite),
            "min": finite[0] if finite else 0,
            "median": finite[len(finite) // 2] if finite else 0,
            "max": finite[-1] if finite else 0,
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "cc0": dict(self.cc0),
            "cc1": dict(self.cc1),
            "co_stem": dict(self.co_stem),
            "co_pin": [[gate, pin, co]
                       for (gate, pin), co in sorted(self.co_pin.items())],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScoapMeasures":
        co_pin_raw = data["co_pin"]
        assert isinstance(co_pin_raw, list)
        cc0 = data["cc0"]
        cc1 = data["cc1"]
        co_stem = data["co_stem"]
        assert isinstance(cc0, dict) and isinstance(cc1, dict)
        assert isinstance(co_stem, dict)
        return cls(
            cc0={str(k): int(v) for k, v in cc0.items()},
            cc1={str(k): int(v) for k, v in cc1.items()},
            co_stem={str(k): int(v) for k, v in co_stem.items()},
            co_pin={(str(gate), int(pin)): int(co)
                    for gate, pin, co in co_pin_raw},
        )


def _parity_dp(pairs: List[Tuple[int, int]]) -> Tuple[int, int]:
    """Cheapest (even, odd) parity-of-ones cost over XOR inputs.

    ``pairs[i]`` is ``(cc0_i, cc1_i)``; the returned costs are the
    cheapest ways to make the number of 1-inputs even respectively odd.
    """
    even, odd = 0, UNREACHABLE
    for cc0_i, cc1_i in pairs:
        new_even = min(_sat(even, cc0_i), _sat(odd, cc1_i))
        new_odd = min(_sat(even, cc1_i), _sat(odd, cc0_i))
        even, odd = new_even, new_odd
    return even, odd


def compute_scoap(netlist: Netlist) -> ScoapMeasures:
    """Compute full-scan SCOAP measures for every net and input pin.

    The netlist is compiled on demand.  One forward pass over the
    topological order yields the controllabilities, one backward pass
    the observabilities; both are linear in circuit size.
    """
    if not netlist.is_compiled():
        netlist.compile()
    cc0: Dict[str, int] = {}
    cc1: Dict[str, int] = {}
    for gate in netlist.gates.values():
        if gate.gtype == "INPUT" or gate.gtype == "DFF":
            # Pattern inputs: PIs and (full scan) pseudo-PI FF outputs.
            cc0[gate.name] = cc1[gate.name] = 1
    for name in netlist.order:
        gate = netlist.gates[name]
        fins = gate.fanins
        if gate.gtype == "CONST0":
            cc0[name], cc1[name] = 1, UNREACHABLE
        elif gate.gtype == "CONST1":
            cc0[name], cc1[name] = UNREACHABLE, 1
        elif gate.gtype == "BUF":
            cc0[name] = _sat(cc0[fins[0]], 1)
            cc1[name] = _sat(cc1[fins[0]], 1)
        elif gate.gtype == "NOT":
            cc0[name] = _sat(cc1[fins[0]], 1)
            cc1[name] = _sat(cc0[fins[0]], 1)
        elif gate.gtype == "AND":
            cc1[name] = _sat(_sat_sum([cc1[f] for f in fins]), 1)
            cc0[name] = _sat(min(cc0[f] for f in fins), 1)
        elif gate.gtype == "NAND":
            cc0[name] = _sat(_sat_sum([cc1[f] for f in fins]), 1)
            cc1[name] = _sat(min(cc0[f] for f in fins), 1)
        elif gate.gtype == "OR":
            cc0[name] = _sat(_sat_sum([cc0[f] for f in fins]), 1)
            cc1[name] = _sat(min(cc1[f] for f in fins), 1)
        elif gate.gtype == "NOR":
            cc1[name] = _sat(_sat_sum([cc0[f] for f in fins]), 1)
            cc0[name] = _sat(min(cc1[f] for f in fins), 1)
        else:  # XOR / XNOR, any arity
            even, odd = _parity_dp([(cc0[f], cc1[f]) for f in fins])
            if gate.gtype == "XOR":
                cc0[name], cc1[name] = _sat(even, 1), _sat(odd, 1)
            else:
                cc0[name], cc1[name] = _sat(odd, 1), _sat(even, 1)

    # Observability: flip-flop data pins are scan-observed for free;
    # every other pin propagates through its gate to the stem beyond.
    co_pin: Dict[Tuple[str, int], int] = {}
    for q in netlist.flip_flops:
        co_pin[(q, 0)] = 0
    po_set = set(netlist.outputs)

    def stem_co(name: str) -> int:
        best = 0 if name in po_set else UNREACHABLE
        for reader in netlist.fanout[name]:
            rgate = netlist.gates[reader]
            for idx, fin in enumerate(rgate.fanins):
                if fin == name:
                    best = min(best, co_pin[(reader, idx)])
        return best

    co_stem: Dict[str, int] = {}
    # ``order`` ascends by level, so readers (strictly deeper) are
    # processed before their drivers when walking it in reverse.
    for name in reversed(netlist.order):
        gate = netlist.gates[name]
        co = stem_co(name)
        co_stem[name] = co
        fins = gate.fanins
        if gate.gtype in ("BUF", "NOT"):
            co_pin[(name, 0)] = _sat(co, 1)
        elif gate.gtype in ("AND", "NAND"):
            for i in range(len(fins)):
                side = _sat_sum([cc1[f] for j, f in enumerate(fins)
                                 if j != i])
                co_pin[(name, i)] = _sat(co, _sat(side, 1))
        elif gate.gtype in ("OR", "NOR"):
            for i in range(len(fins)):
                side = _sat_sum([cc0[f] for j, f in enumerate(fins)
                                 if j != i])
                co_pin[(name, i)] = _sat(co, _sat(side, 1))
        elif gate.gtype in ("XOR", "XNOR"):
            for i in range(len(fins)):
                side = _sat_sum([min(cc0[f], cc1[f])
                                 for j, f in enumerate(fins) if j != i])
                co_pin[(name, i)] = _sat(co, _sat(side, 1))
        # CONST gates have no pins.
    for gate in netlist.gates.values():
        if gate.gtype in ("INPUT", "DFF"):
            co_stem[gate.name] = stem_co(gate.name)
    return ScoapMeasures(cc0=cc0, cc1=cc1, co_stem=co_stem,
                         co_pin=co_pin)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "s298" in out

    def test_circuit_s27(self, capsys):
        assert main(["circuit", "s27"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 5" in out
        assert "Engine counters" in out

    def test_circuit_engine_width_flags(self, capsys):
        assert main(["circuit", "s27", "--engine", "interp",
                     "--width", "16"]) == 0
        out = capsys.readouterr().out
        assert "Engine counters" in out
        # The chunked run packs at most 15 faulty machines per word.
        assert "Table 1" in out

    def test_width_auto_accepted(self):
        args = build_parser().parse_args(
            ["circuit", "s27", "--width", "auto"])
        assert args.width == "auto"
        args = build_parser().parse_args(
            ["circuit", "s27", "--width", "64"])
        assert args.width == 64

    def test_width_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--width", "huge"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--width", "1"])

    def test_engine_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--engine", "fpga"])

    def test_engine_choices_include_numpy_and_auto(self):
        for engine in ("interp", "codegen", "numpy", "auto"):
            args = build_parser().parse_args(
                ["circuit", "s27", "--engine", engine])
            assert args.engine == engine

    def test_circuit_numpy_engine(self, capsys):
        pytest.importorskip("numpy")
        assert main(["circuit", "s27", "--engine", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "Engine counters" in out
        assert "numpy" in out  # the eng column records the knob

    def test_candidate_scan_flag(self, capsys):
        args = build_parser().parse_args(["circuit", "s27"])
        assert args.candidate_scan == "lanes"
        args = build_parser().parse_args(
            ["circuit", "s27", "--candidate-scan", "scalar"])
        assert args.candidate_scan == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["circuit", "s27", "--candidate-scan", "vectorized"])

    def test_circuit_candidate_scan_scalar_runs(self, capsys):
        assert main(["circuit", "s27", "--candidate-scan",
                     "scalar"]) == 0
        out = capsys.readouterr().out
        assert "Engine counters" in out

    def test_circuit_unknown(self, capsys):
        assert main(["circuit", "sXXX"]) == 2
        err = capsys.readouterr().err
        assert "unknown circuit" in err
        assert "s298" in err  # the valid names are listed

    def test_tables_unknown_circuit(self, capsys):
        assert main(["tables", "--circuits", "s27", "sXXX"]) == 2
        assert "unknown circuit" in capsys.readouterr().err

    def test_resume_requires_run_dir(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["tables", "--resume"])
        assert exc.value.code == 2

    def test_tables_single_circuit_json(self, capsys, tmp_path):
        out_json = tmp_path / "tables.json"
        assert main(["tables", "--circuits", "s27",
                     "--json", str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        titles = [t["title"] for t in data]
        assert any("Table 3" in t for t in titles)

    def test_tables_run_dir_then_resume(self, capsys, tmp_path):
        run_dir = tmp_path / "campaign"
        assert main(["tables", "--circuits", "s27",
                     "--run-dir", str(run_dir)]) == 0
        assert (run_dir / "runs.jsonl").exists()
        capsys.readouterr()
        assert main(["tables", "--circuits", "s27",
                     "--run-dir", str(run_dir), "--resume"]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out
        journal = (run_dir / "journal.jsonl").read_text().splitlines()
        statuses = [json.loads(line)["data"]["status"]
                    for line in journal]
        assert statuses == ["ok", "skipped-resume"]

    def test_failed_job_exits_nonzero(self, capsys, monkeypatch):
        from repro.experiments import harness

        def chaos(spec, attempt):
            return "crash"

        original = harness.HarnessConfig

        def patched(*args, **kwargs):
            config = original(*args, **kwargs)
            config.chaos = chaos
            config.isolate = False
            return config

        monkeypatch.setattr("repro.cli.HarnessConfig", patched)
        assert main(["circuit", "s27"]) == 1
        captured = capsys.readouterr()
        assert "Job summary" in captured.out
        assert "ultimately failed" in captured.err

    def test_bench_info(self, capsys):
        assert main(["bench-info"]) == 0
        assert "pytest" in capsys.readouterr().out

    def test_stall_timeout_flag(self):
        args = build_parser().parse_args(["circuit", "s27"])
        assert args.stall_timeout is None
        args = build_parser().parse_args(
            ["tables", "--stall-timeout", "30"])
        assert args.stall_timeout == 30.0

    def test_partial_command(self, capsys):
        assert main(["partial", "s27"]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "cut" in out

    def test_export_roundtrip(self, capsys, tmp_path):
        from repro.core import testio
        out_file = tmp_path / "s27.rtp"
        assert main(["export", "s27", "-o", str(out_file)]) == 0
        program = testio.load(out_file)
        assert program.n_state_vars == 3
        assert "replay OK" in capsys.readouterr().out


class TestLintCommand:
    _SYNTH_4941 = ["lint", "--synth", "4,3,5,40", "--seed", "4941"]

    def test_suite_circuit_clean(self, capsys):
        assert main(["lint", "s27"]) == 0
        out = capsys.readouterr().out
        assert "Lint: s27" in out
        assert "linted: clean" in out

    def test_bench_file_target(self, capsys, tmp_path):
        p = tmp_path / "mini.bench"
        p.write_text("INPUT(a)\ng1 = NOT(a)\nOUTPUT(g1)\n")
        assert main(["lint", str(p)]) == 0
        assert "mini" in capsys.readouterr().out

    def test_missing_bench_file(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope.bench")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_target(self, capsys):
        assert main(["lint", "definitely-not-real"]) == 2
        err = capsys.readouterr().err
        assert "neither a file nor a suite circuit" in err
        assert "s27" in err  # valid names listed

    def test_synth_seed_4941_expected_rule(self, capsys):
        assert main(self._SYNTH_4941 +
                    ["--expect", "xinit.not-synchronizable"]) == 0
        out = capsys.readouterr().out
        assert "as expected" in out
        assert "ff0" in out and "ff2" in out and "ff4" in out

    def test_synth_seed_4941_strict_fails(self, capsys):
        assert main(self._SYNTH_4941 + ["--strict"]) == 1
        err = capsys.readouterr().err
        assert "synth-4941: xinit.not-synchronizable" in err

    def test_warning_passes_without_strict(self, capsys):
        assert main(self._SYNTH_4941) == 0
        assert "linted: clean" in capsys.readouterr().out

    def test_allow_waives_finding(self, capsys):
        assert main(self._SYNTH_4941 + [
            "--strict",
            "--allow", "synth-4941:xinit.not-synchronizable"]) == 0

    def test_allow_malformed(self, capsys):
        assert main(["lint", "s27", "--allow", "nocolon"]) == 2
        assert "CIRCUIT:RULE" in capsys.readouterr().err

    def test_expect_missing_rule_fails(self, capsys):
        assert main(["lint", "s27", "--expect",
                     "xinit.not-synchronizable"]) == 1
        assert "missing on: s27" in capsys.readouterr().err

    def test_json_output(self, capsys):
        assert main(["lint", "s27", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["circuit"] == "s27"
        assert data[0]["diagnostics"] == []

    def test_sweep_multiplies_reports(self, capsys):
        assert main(["lint", "--synth", "2,2,2,8", "--seed", "7",
                     "--sweep", "3", "--no-xinit", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [r["circuit"] for r in data] == \
            ["synth-7", "synth-8", "synth-9"]

    def test_synth_malformed(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--synth", "4,3"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--synth", "a,b,c,d"])

    def test_sanitize_flag_arms_env(self, capsys, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert main(["circuit", "s27", "--sanitize"]) == 0
        assert os.environ["REPRO_SANITIZE"] == "1"
        assert "Table 1" in capsys.readouterr().out


class TestDoctorCommand:
    def _campaign(self, run_dir, monkeypatch):
        """A cheap one-circuit campaign into ``run_dir`` (inline --
        subprocess spawns are wasted on a CLI test)."""
        from repro.experiments import harness
        original = harness.HarnessConfig

        def patched(*args, **kwargs):
            config = original(*args, **kwargs)
            config.isolate = False
            return config

        monkeypatch.setattr("repro.cli.HarnessConfig", patched)
        assert main(["circuit", "s27", "--run-dir", str(run_dir)]) == 0

    def test_clean_run_dir(self, capsys, tmp_path, monkeypatch):
        self._campaign(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["doctor", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runs.jsonl: 1 record(s)" in out
        assert "verdict: clean" in out

    def test_strict_fails_on_corruption(self, capsys, tmp_path,
                                        monkeypatch):
        self._campaign(tmp_path, monkeypatch)
        runs_path = tmp_path / "runs.jsonl"
        line = runs_path.read_text().splitlines()[0]
        runs_path.write_text(
            line.replace('"seed":1', '"seed":7', 1) + "\n")
        capsys.readouterr()
        # Non-strict repairs and reports, exit 0 ...
        assert main(["doctor", str(tmp_path)]) == 0
        assert "quarantined" in capsys.readouterr().out
        # ... the repair already moved the rot aside, so a second
        # strict pass is clean; corrupt it again for the strict run.
        runs_path.write_text(
            line.replace('"seed":1', '"seed":7', 1) + "\n")
        assert main(["doctor", str(tmp_path), "--strict"]) == 1
        captured = capsys.readouterr()
        assert "corrupt record(s) quarantined" in captured.err

    def test_json_output(self, capsys, tmp_path, monkeypatch):
        self._campaign(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["clean"] is True
        assert {f["name"] for f in data["files"]} == \
            {"runs.jsonl", "journal.jsonl"}

    def test_missing_dir(self, capsys, tmp_path):
        assert main(["doctor", str(tmp_path / "nope")]) == 2
        assert "no such run dir" in capsys.readouterr().err


class TestPowerCommand:
    def test_power_sweep_s27(self, capsys):
        assert main(["power", "s27"]) == 0
        out = capsys.readouterr().out
        assert "X-fill power sweep: s27" in out
        for strategy in ("random", "fill0", "fill1", "adjacent"):
            assert strategy in out
        # The random row is its own baseline.
        assert "yes" in out

    def test_power_unknown_circuit(self, capsys):
        assert main(["power", "nope"]) == 2
        assert "unknown circuit" in capsys.readouterr().err

    def test_power_rejects_bad_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["circuit", "s27",
                                       "--x-fill", "bogus"])

    def test_circuit_power_flags(self, capsys):
        assert main(["circuit", "s27", "--x-fill", "adjacent",
                     "--power-budget", "50"]) == 0
        out = capsys.readouterr().out
        assert "Power: shift WTM" in out
        assert "adjacent (<= 50)" in out
        assert "pw_words" in out

    def test_circuit_default_prints_power_table(self, capsys):
        assert main(["circuit", "s27"]) == 0
        out = capsys.readouterr().out
        assert "Power: shift WTM" in out
        assert "baseline4" in out

"""Power-constrained hooks for the compaction pipeline.

The core pipeline stays power-agnostic: Phase 4
(:func:`repro.core.combine.static_compact`) takes a generic
``merge_filter`` predicate and Phase 3
(:func:`repro.core.topoff.top_off`) a generic ``power_key``; this
module builds both from an
:class:`~repro.power.activity.ActivityEngine`, so the dependency
points power -> core and never the other way.

Budget semantics: the budget is a cap on a test's *peak shift WTM*
(``max(WTM_in, WTM_out)``, see :mod:`repro.power.activity`).  Phase 4
then refuses any merge whose merged test would exceed the cap.
Because merging never touches the surviving tests, a run whose
initial tests all fit the budget emits only tests that fit the
budget; an infinite budget (``None`` -> no filter) reproduces [4]
byte-identically.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..core.scan_test import ScanTest, single_vector_test
from .activity import ActivityEngine


def wtm_budget_filter(engine: ActivityEngine,
                      budget: float) -> Callable[[ScanTest], bool]:
    """A Phase-4 ``merge_filter``: accept a candidate merged test iff
    its peak shift WTM is within ``budget``.

    Measuring a candidate runs only the good machine (one packed
    frame word per vector, cached per test), so a rejection costs no
    fault simulation.  The predicate is deterministic, as
    ``static_compact`` requires.
    """
    def accept(test: ScanTest) -> bool:
        return engine.test_power(test).peak_shift_wtm <= budget
    return accept


def topoff_power_key(engine: ActivityEngine,
                     comb_tests: Sequence) -> Callable[[int], float]:
    """A Phase-3 ``power_key``: candidate index ``j`` -> peak shift
    WTM of the single-vector scan test built from ``comb_tests[j]``.

    Lazily evaluated and cached: Phase 3 only ever scores the
    ``last(f)`` candidates of still-uncovered faults, typically a
    small fraction of the candidate pool.
    """
    cache: Dict[int, float] = {}

    def key(j: int) -> float:
        cost = cache.get(j)
        if cost is None:
            test = comb_tests[j]
            scan = single_vector_test(test.state, test.pi)
            cost = float(engine.test_power(scan).peak_shift_wtm)
            cache[j] = cost
        return cost
    return key

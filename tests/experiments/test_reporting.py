"""Tests for table rendering and JSON export."""

import json

import pytest

from repro.experiments.reporting import Table, dump_json, render_all


class TestTable:
    def test_render_alignment(self):
        t = Table("Demo", ["circuit", "value"])
        t.add_row("s27", 15)
        t.add_row("longer-name", 9)
        lines = t.render().splitlines()
        assert lines[0] == "Demo"
        assert "circuit" in lines[1]
        # All data lines equal width per column (left justified).
        assert lines[3].startswith("s27")
        assert lines[4].startswith("longer-name")

    def test_row_width_checked(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError, match="expected"):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table("Demo", ["x"])
        t.add_row(1.23456)
        assert "1.23" in t.render()

    def test_none_renders_dash(self):
        t = Table("Demo", ["x"])
        t.add_row(None)
        assert "-" in t.render().splitlines()[-1]

    def test_to_dict(self):
        t = Table("Demo", ["x"])
        t.add_row(5)
        assert t.to_dict() == {"title": "Demo", "headers": ["x"],
                               "rows": [[5]]}


class TestExport:
    def test_dump_json(self, tmp_path):
        t = Table("Demo", ["x"])
        t.add_row(5)
        path = tmp_path / "out.json"
        dump_json([t], path)
        data = json.loads(path.read_text())
        assert data[0]["title"] == "Demo"

    def test_dump_json_creates_parents(self, tmp_path):
        t = Table("Demo", ["x"])
        t.add_row(5)
        path = tmp_path / "deep" / "nested" / "out.json"
        dump_json([t], path)
        assert json.loads(path.read_text())[0]["title"] == "Demo"

    def test_dump_json_atomic_no_temp_left(self, tmp_path):
        t = Table("Demo", ["x"])
        t.add_row(5)
        path = tmp_path / "out.json"
        path.write_text("old content")
        dump_json([t], path)
        # Replaced in one step: valid JSON, no temp file left behind.
        assert json.loads(path.read_text())[0]["title"] == "Demo"
        assert list(tmp_path.iterdir()) == [path]

    def test_render_all(self):
        a = Table("A", ["x"])
        b = Table("B", ["y"])
        text = render_all([a, b])
        assert "A" in text and "B" in text

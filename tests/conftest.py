"""Shared fixtures: small circuits and prebuilt simulators."""

from __future__ import annotations

import pytest

from repro import api
from repro.circuits import library, synth
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit


@pytest.fixture(scope="session")
def s27():
    return library.s27()


@pytest.fixture(scope="session")
def s27_bench():
    """Workbench (circuit + faults + sims) for s27."""
    return api.Workbench.for_netlist(library.s27())


@pytest.fixture(scope="session")
def small_synth():
    """A small synthetic circuit: 4 PI, 3 PO, 4 FF (brute-forceable)."""
    return synth.generate("small", 4, 3, 4, 30, seed=5)


@pytest.fixture(scope="session")
def small_bench(small_synth):
    return api.Workbench.for_netlist(small_synth)


@pytest.fixture(scope="session")
def mid_synth():
    """A mid-size synthetic circuit for integration tests."""
    return synth.generate("mid", 3, 5, 10, 80, seed=9)


@pytest.fixture(scope="session")
def mid_bench(mid_synth):
    return api.Workbench.for_netlist(mid_synth)


@pytest.fixture(scope="session")
def mid_comb(mid_bench):
    """Combinational test set for the mid circuit (computed once)."""
    from repro.atpg import comb_set
    return comb_set.generate(mid_bench.circuit, mid_bench.faults, seed=1)


@pytest.fixture(scope="session")
def s27_comb(s27_bench):
    from repro.atpg import comb_set
    return comb_set.generate(s27_bench.circuit, s27_bench.faults, seed=1)

"""Simulation-based sequential test-sequence generation.

A stand-in for STRATEGATE [10] / PROPTEST [12]: both are
simulation-based sequential ATPGs that produce one long input sequence
with high stuck-at coverage starting from the unknown (all-X) state.
The greedy generator here extends the sequence one vector at a time:

* a pool of candidate vectors is drawn each step (uniform random,
  bit-flips of the previous vector, and a hold of the previous vector
  -- sequential circuits often need repeated vectors to march through
  state space);
* each candidate is *previewed* with the incremental parallel-fault
  simulator (one combinational evaluation per fault chunk);
* the candidate detecting the most new faults wins, with the number of
  fault effects latched into flip-flops as tie-break (latched effects
  are future detections);
* generation stops at the length budget, when all target faults are
  detected, or after ``patience`` consecutive stagnant steps.

What Phase 1 of the compaction procedure needs from ``T0`` is exactly
what this provides: a long sequence detecting a large share of the
faults -- see DESIGN.md section 5 for the substitution argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..sim import values as V
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import FaultSet
from ..sim.logicsim import CompiledCircuit


@dataclass
class SeqGenResult:
    """A generated sequence and its no-scan detection record."""

    sequence: List[V.Vector]
    detected: Set[int]           # PO-detected, no scan, from all-X state
    steps_evaluated: int

    @property
    def length(self) -> int:
        return len(self.sequence)


def generate_sequence(
    circuit: CompiledCircuit,
    faults: FaultSet,
    max_length: int = 500,
    seed: int = 0,
    candidates_per_step: int = 8,
    patience: int = 100,
    burst_after: int = 12,
    burst_length: int = 5,
    hints: Optional[Sequence[V.Vector]] = None,
    target: Optional[Sequence[int]] = None,
    targeted: bool = False,
    unroll_depth: int = 4,
    target_attempts: int = 48,
    x_fill: str = "random",
) -> SeqGenResult:
    """Generate a test sequence ``T0`` for the no-scan circuit.

    Parameters
    ----------
    circuit, faults:
        The circuit and target fault set.
    max_length:
        Hard budget on the sequence length.
    seed:
        RNG seed (deterministic output).
    candidates_per_step:
        Size of the candidate-vector pool per step.
    patience:
        Stop after this many consecutive steps with no new detection.
    burst_after:
        After this many stagnant steps, commit a short burst of random
        vectors without previewing -- an escape from greedy plateaus
        (one-step lookahead cannot see multi-cycle detections).
    burst_length:
        Length of each exploration burst.
    hints:
        Extra candidate vectors mixed into every pool (e.g. the
        primary-input parts of a combinational test set, which are
        strong fault activators).
    target:
        Fault indices to pursue; defaults to all.
    targeted:
        After the greedy phase, run the deterministic time-frame
        expansion engine (:mod:`repro.atpg.tfx`) on still-undetected
        faults, appending each successful subsequence.  This is the
        directed phase that lifts the generator above plain random
        sequences.
    unroll_depth:
        Time-frame window for the targeted phase.
    target_attempts:
        Maximum number of faults the targeted phase tries.
    x_fill:
        How the targeted phase fills PODEM don't-cares (see
        :func:`repro.sim.values.fill_x`); the greedy phase draws only
        fully-specified vectors and is unaffected.

    Raises
    ------
    ValueError
        If ``max_length`` is not positive.
    """
    if max_length < 1:
        raise ValueError("max_length must be positive")
    rng = random.Random(seed)
    n_pi = len(circuit.pi_ids)
    sim = FaultSimulator(circuit, faults)
    inc = sim.incremental(init_state=None, target=target)
    hints = list(hints or [])
    sequence: List[V.Vector] = []
    previous: Optional[V.Vector] = None
    stagnant = 0
    steps_evaluated = 0
    n_target = sum(len(c.indices) for c in inc.chunks)

    while len(sequence) < max_length and len(inc.detected) < n_target:
        if stagnant and stagnant % burst_after == 0:
            # Exploration burst: walk a few random steps blind.
            burst_hit = False
            for _ in range(min(burst_length,
                               max_length - len(sequence))):
                vector = V.random_binary_vector(n_pi, rng)
                if inc.apply(vector):
                    burst_hit = True
                sequence.append(vector)
                previous = vector
            if burst_hit:
                stagnant = 0
                continue
            stagnant += 1
            if stagnant >= patience:
                break
            continue
        pool = _candidate_pool(previous, n_pi, candidates_per_step, rng,
                               hints)
        best_vector = None
        best_key = None
        for vector in pool:
            preview = inc.preview(vector)
            steps_evaluated += 1
            key = (preview.new_po_detections, preview.scan_diff_faults,
                   rng.random())
            if best_key is None or key > best_key:
                best_key = key
                best_vector = vector
        newly = inc.apply(best_vector)
        sequence.append(best_vector)
        previous = best_vector
        if newly:
            stagnant = 0
        else:
            stagnant += 1
            if stagnant >= patience:
                break
    if targeted and len(sequence) < max_length:
        steps_evaluated += _targeted_phase(
            circuit, faults, inc, sequence, max_length, unroll_depth,
            target_attempts, seed, x_fill)
    if not sequence:
        # Degenerate target set: still return a usable length-1 sequence.
        sequence.append(V.random_binary_vector(n_pi, rng))
    return SeqGenResult(sequence, set(inc.detected), steps_evaluated)


def _targeted_phase(circuit, faults, inc, sequence, max_length,
                    unroll_depth, target_attempts, seed,
                    x_fill="random") -> int:
    """Append tfx subsequences for still-undetected faults in place."""
    from .tfx import TargetedExtender  # deferred: optional heavy setup

    state = inc.good_state()
    if not V.is_binary(state):
        return 0  # not initialized: nothing deterministic to do
    extender = TargetedExtender(circuit.netlist, depth=unroll_depth,
                                seed=seed, x_fill=x_fill)
    all_target = {fid for chunk in inc.chunks for fid in chunk.indices}
    attempts = 0
    for fid in sorted(all_target - inc.detected):
        if attempts >= target_attempts or len(sequence) >= max_length:
            break
        attempts += 1
        extension = extender.try_fault(faults[fid], inc.good_state())
        if extension is None:
            continue
        budget = max_length - len(sequence)
        for vector in extension.vectors[:budget]:
            inc.apply(vector)
            sequence.append(vector)
    return attempts


def _candidate_pool(previous: Optional[V.Vector], n_pi: int, count: int,
                    rng: random.Random,
                    hints: Sequence[V.Vector]) -> List[V.Vector]:
    """Candidate next vectors: hold, single-bit flip, hints, random."""
    pool: List[V.Vector] = []
    if previous is not None:
        pool.append(previous)  # hold
        flip = rng.randrange(n_pi)
        flipped = list(previous)
        flipped[flip] = 1 - flipped[flip]
        pool.append(tuple(flipped))
    if hints:
        pool.append(hints[rng.randrange(len(hints))])
        pool.append(hints[rng.randrange(len(hints))])
    while len(pool) < count:
        pool.append(V.random_binary_vector(n_pi, rng))
    return pool

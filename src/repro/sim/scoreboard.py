"""Cross-phase fault dropping: the shared detection scoreboard.

Parallel-fault simulators get their second big lever (after machine
packing) from *fault dropping*: once a fault is known detected by the
test set under construction, later simulations need not carry its
machine bit at all, so every subsequent injection word is smaller and
every pass cheaper (HOPE and the PPSFP line of work both lean on
this).

:class:`FaultScoreboard` is that shared ledger for the compaction
pipeline.  The contract is strict so dropping can never change a
result:

* a fault may be retired only when it is **committed-detected** -- a
  test that is part of the final artifact (the post-omission
  ``tau_seq``, a Phase-3 top-off test, a Phase-4 combined set)
  provably detects it;
* consumers may shrink a simulation target only where the dropped
  faults' detection status is *already known* to the caller and the
  dropped faults cannot influence the answer (e.g. re-deriving the
  full detection set of the very test that retired them).

Phases that need exact per-candidate detection *counts* (Phase-1
scan-in selection, Phase-4 essential-fault bookkeeping) must keep
simulating the full target; they use the scoreboard only to retire
what they commit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from ..analysis import sanitizer
from .counters import SimCounters


class FaultScoreboard:
    """Ledger of faults committed-detected by the evolving test set.

    ``enabled=False`` turns the scoreboard into a no-op ledger:
    :meth:`retire` records nothing, so every consumer keeps simulating
    its full target.  This is the ablation/baseline switch -- it
    reproduces the engine's behavior without cross-phase dropping
    while keeping every call site unchanged.
    """

    def __init__(self, n_faults: int,
                 counters: Optional[SimCounters] = None,
                 enabled: bool = True) -> None:
        if n_faults < 0:
            raise ValueError("n_faults must be non-negative")
        self.n_faults = n_faults
        self.counters = counters
        self.enabled = enabled
        self._retired: Set[int] = set()
        #: Accidental Detection Index per fault (Pomeranz & Reddy,
        #: arXiv:0710.4637): how many random-phase patterns detected
        #: the fault *by chance* while it was still undetected.  A low
        #: count marks a random-resistant (hard) fault.  Empty until
        #: :meth:`record_adi`; purely advisory -- consumers may only
        #: use it to *order* work, never to change results.
        self.adi: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def retire(self, fault_ids: Iterable[int]) -> int:
        """Mark ``fault_ids`` committed-detected.

        Returns the number of *newly* retired faults (re-retiring is a
        no-op) and accounts them as dropped in the counters: every
        retired fault is one machine bit absent from all future packed
        words.  A disabled scoreboard retires nothing.
        """
        if not self.enabled:
            return 0
        before = set(self._retired) if sanitizer.enabled() else None
        fresh = set(fault_ids) - self._retired
        for fid in fresh:
            if not 0 <= fid < self.n_faults:
                raise ValueError(f"fault index {fid} out of range")
        self._retired |= fresh
        if before is not None:
            sanitizer.check_monotone(before, self._retired,
                                     "FaultScoreboard.retire")
        if self.counters is not None and fresh:
            self.counters.faults_dropped += len(fresh)
        return len(fresh)

    def restore(self, fault_ids: Iterable[int]) -> None:
        """Reinstate a persisted ledger (phase-boundary salvage).

        Unlike :meth:`retire` this performs no counter accounting --
        the dropped-fault credit was earned (and counted) by the
        original attempt, and the resuming attempt never simulated
        these faults at all.  A disabled scoreboard restores nothing,
        mirroring :meth:`retire`.
        """
        if not self.enabled:
            return
        fresh = set(fault_ids)
        for fid in fresh:
            if not 0 <= fid < self.n_faults:
                raise ValueError(f"fault index {fid} out of range")
        self._retired |= fresh

    def retired_snapshot(self) -> Set[int]:
        """An independent copy of the full ledger, for serialization."""
        return set(self._retired)

    # ------------------------------------------------------------------
    def record_adi(self, scores: Mapping[int, int]) -> None:
        """Persist per-fault accidental-detection counts.

        ``scores`` maps fault index to the number of random-phase
        patterns that detected it by chance (see :attr:`adi`).  Faults
        absent from the mapping keep an implicit ADI of zero --
        exactly the random-resistant faults the ordering heuristics
        want first.  Repeated calls accumulate, so a resumed run may
        re-record without double bookkeeping concerns (the counts stay
        advisory either way).
        """
        for fid, count in scores.items():
            if not 0 <= fid < self.n_faults:
                raise ValueError(f"fault index {fid} out of range")
            if count < 0:
                raise ValueError(f"negative ADI count for fault {fid}")
            self.adi[fid] = self.adi.get(fid, 0) + count

    def adi_of(self, fault_id: int) -> int:
        """The recorded ADI of ``fault_id`` (0 when never recorded)."""
        return self.adi.get(fault_id, 0)

    # ------------------------------------------------------------------
    def is_retired(self, fault_id: int) -> bool:
        return fault_id in self._retired

    @property
    def n_retired(self) -> int:
        return len(self._retired)

    def retired_within(self, target: Iterable[int]) -> Set[int]:
        """The subset of ``target`` already committed-detected."""
        return set(target) & self._retired

    def active(self, target: Iterable[int]) -> List[int]:
        """``target`` minus the retired faults, sorted -- the shrunken
        simulation target later phases rebuild their words from."""
        return sorted(set(target) - self._retired)

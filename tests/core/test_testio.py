"""Tests for tester-program serialization."""

import pytest

from repro.core import tester, testio
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.sim import values as V


@pytest.fixture()
def program(s27_bench):
    wb = s27_bench
    ts = ScanTestSet(3, [
        ScanTest(V.vec("010"), (V.vec("1100"), V.vec("0011"))),
        ScanTest(V.vec("111"), (V.vec("1010"),)),
    ])
    return tester.schedule(ts, wb.circuit)


class TestRoundTrip:
    def test_dumps_loads_identity(self, program):
        again = testio.loads(testio.dumps(program))
        assert again.n_state_vars == program.n_state_vars
        assert len(again) == len(program)
        for a, b in zip(again.cycles, program.cycles):
            assert a == b

    def test_file_roundtrip(self, program, tmp_path):
        path = tmp_path / "prog.rtp"
        testio.dump(program, path)
        again = testio.load(path)
        assert again.cycles == program.cycles

    def test_roundtripped_program_still_executes(self, program,
                                                 s27_bench):
        again = testio.loads(testio.dumps(program))
        assert tester.execute(again, s27_bench.circuit).passed


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(testio.TestProgramFormatError, match="empty"):
            testio.loads("# only a comment\n")

    def test_missing_header(self):
        with pytest.raises(testio.TestProgramFormatError,
                           match="PROGRAM header"):
            testio.loads("SHIFT in=1 out=x\n")

    def test_bad_cycle_kind(self, program):
        text = testio.dumps(program).replace("SHIFT", "SPIN", 1)
        with pytest.raises(testio.TestProgramFormatError,
                           match="unknown cycle kind"):
            testio.loads(text)

    def test_cycle_count_mismatch(self, program):
        text = testio.dumps(program)
        # Drop the last cycle line.
        text = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(testio.TestProgramFormatError,
                           match="cycles"):
            testio.loads(text)

    def test_bad_logic_char(self, program):
        text = testio.dumps(program).replace("in=1", "in=7", 1)
        with pytest.raises(testio.TestProgramFormatError,
                           match="malformed"):
            testio.loads(text)

    def test_line_numbers_in_errors(self, program):
        text = testio.dumps(program).replace("SHIFT", "SPIN", 1)
        with pytest.raises(testio.TestProgramFormatError, match="line 3"):
            testio.loads(text)


def _tests_from_program(program):
    """Reconstruct the scheduled scan tests from a parsed program.

    Each test is ``n_sv`` shift cycles (scan-in fed last-flip-flop
    first) followed by its functional cycles; the trailing ``n_sv``
    shift cycles are the final scan-out only and carry no test.
    """
    n_sv = program.n_state_vars
    cycles = list(program.cycles)
    tests = []
    i = 0
    while i + n_sv < len(cycles):
        shift = cycles[i:i + n_sv]
        assert all(c.kind == tester.SHIFT for c in shift)
        i += n_sv
        vectors = []
        while i < len(cycles) and cycles[i].kind == tester.FUNCTIONAL:
            vectors.append(tuple(cycles[i].pi_vector))
            i += 1
        scan_in = tuple(reversed([c.scan_in_bit for c in shift]))
        tests.append(ScanTest(scan_in, tuple(vectors)))
    return tests


class TestXLadenRoundTrip:
    """X in scan-in states and PI vectors survives serialization."""

    @pytest.fixture()
    def x_set(self):
        return ScanTestSet(3, [
            ScanTest(V.vec("x1x"), (V.vec("1x00"), V.vec("x011"))),
            ScanTest(V.vec("0xx"), (V.vec("xx1x"),)),
            ScanTest(V.vec("111"), (V.vec("10x0"), V.vec("0000"))),
        ])

    def test_x_bits_survive_the_text_format(self, x_set, s27_bench):
        program = tester.schedule(x_set, s27_bench.circuit)
        text = testio.dumps(program)
        assert "x" in text
        again = testio.loads(text)
        assert again.cycles == program.cycles

    def test_detection_sets_identical(self, x_set, s27_bench):
        """serialize -> parse -> rebuilt tests detect the same faults."""
        wb = s27_bench
        program = tester.schedule(x_set, wb.circuit)
        again = testio.loads(testio.dumps(program))
        rebuilt = _tests_from_program(again)
        assert len(rebuilt) == len(x_set)
        for original, parsed in zip(x_set, rebuilt):
            assert parsed.scan_in == original.scan_in
            assert parsed.vectors == original.vectors
            before = wb.sim.detect(list(original.vectors),
                                   original.scan_in, early_exit=False)
            after = wb.sim.detect(list(parsed.vectors),
                                  parsed.scan_in, early_exit=False)
            assert before == after

    def test_file_roundtrip_with_x(self, x_set, s27_bench, tmp_path):
        program = tester.schedule(x_set, s27_bench.circuit)
        path = tmp_path / "xladen.rtp"
        testio.dump(program, path)
        assert testio.load(path).cycles == program.cycles

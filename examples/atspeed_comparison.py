#!/usr/bin/env python3
"""Scenario: quantify the at-speed benefit of long test sequences.

The paper's motivation (Section 1): test sets whose primary-input
sequences run for many consecutive functional cycles exercise the
circuit at speed and catch delay defects that single-vector scan tests
miss.  This example makes that concrete on a synthesized-style
circuit:

1. build the [4]-style compacted test set (short sequences);
2. build the proposed test set (one long sequence + top-off);
3. measure stuck-at AND transition-fault coverage of both;
4. print the launch/capture opportunity counts behind the difference.

Run with::

    python examples/atspeed_comparison.py
"""

from repro import api
from repro.circuits import synth
from repro.delay.transition import TransitionSim


def coverage_report(name, wb, tsim, test_set):
    stuck = set()
    for test in test_set:
        stuck |= wb.sim.detect(list(test.vectors), test.scan_in,
                               early_exit=False)
    trans = tsim.coverage_percent(test_set)
    print(f"{name:>10}: {len(test_set):3d} tests, "
          f"{test_set.clock_cycles():5d} cycles, "
          f"{test_set.at_speed_pairs():4d} at-speed pairs, "
          f"stuck-at {100 * len(stuck) / len(wb.faults):5.1f}%, "
          f"transition {trans:5.1f}%")


def main() -> None:
    netlist = synth.generate("atspeed-demo", 4, 5, 10, 90, seed=17)
    print(f"circuit: {netlist!r}\n")
    wb = api.Workbench.for_netlist(netlist)
    comb = api.generate_comb_set(netlist, seed=1, workbench=wb)
    tsim = TransitionSim(wb.circuit)

    baseline = api.baseline_static(netlist, comb_tests=comb.tests,
                                   workbench=wb)
    proposed = api.compact_tests(netlist, seed=1,
                                 comb_tests=comb.tests, workbench=wb)
    final = proposed.compacted_set or proposed.test_set

    print("test application cost and defect coverage:")
    coverage_report("[4]", wb, tsim, baseline.test_set)
    coverage_report("proposed", wb, tsim, final)

    print("\nwhy: transition faults need two consecutive at-speed "
          "cycles (launch + capture);")
    print("a test with a length-1 sequence contributes zero such "
          "pairs, a length-L test contributes L-1.")


if __name__ == "__main__":
    main()

"""Command-line interface.

Subcommands::

    repro-compact list                         # suite circuits
    repro-compact circuit s298 [--seed N]      # one circuit, all methods
    repro-compact tables [--full] [--delay] [--json OUT]
    repro-compact power s298 [--seed N]        # X-fill power sweep
    repro-compact lint [targets ...]           # static netlist analysis
    repro-compact analyze [targets ...]        # static fault-space pass
    repro-compact doctor DIR [--strict]        # verify/repair a run dir
    repro-compact bench-info                   # how to run the benches

``lint`` runs the static analyzer (:mod:`repro.analysis`) over suite
circuits, ``.bench`` files and/or generated synthetic circuits
(``--synth PI,PO,FF,GATES --seed N [--sweep N]``), printing one report
per circuit (``--json`` for machine-readable output).  Exit code 1 when
any circuit has error-severity findings (``--strict`` promotes
warnings), 0 when clean; ``--allow circuit:rule`` waives a finding and
``--expect RULE`` inverts the contract (succeed only if every target
reports RULE -- the CI regression hook for known-bad circuits).

``analyze`` runs the static *fault-space* analyzer
(:mod:`repro.analysis.faultspace`) over the same target grammar as
``lint``: per circuit it prints the equivalence-class partition,
dominance-edge count, SCOAP difficulty profile and proven-untestable
faults (``--json`` for the full machine-readable report including
per-fault proofs).  ``--strict`` re-verifies every report's internal
invariants (partition, closure, proof consistency) and exits 1 on any
violation -- the CI posture.

``--sanitize`` (on ``circuit`` and ``tables``) arms the engine-
invariant sanitizer by exporting ``REPRO_SANITIZE=1``, which worker
subprocesses inherit; see :mod:`repro.analysis.sanitizer`.

``tables`` regenerates the paper's Tables 1-5 (quick suite by default;
``--full`` runs every reproduced circuit and takes correspondingly
longer).

``circuit`` and ``tables`` also take ``--x-fill`` (don't-care fill
strategy for the ATPG stages; the default ``random`` reproduces the
paper runs byte-identically), ``--power-budget`` (peak shift-WTM
cap enforced during Phase-4 combining; see :mod:`repro.power`), and
``--delay`` (measure at-speed quality of the final test sets:
transition-fault coverage through :mod:`repro.delay` plus the
test-clock cycle budget, rendered as the Delay table).
``power`` runs every X-fill strategy on one circuit in process and
prints the comparative power table.

``circuit`` and ``tables`` run through the resilient harness
(:mod:`repro.experiments.harness`): each circuit job runs in an
isolated worker subprocess, ``--timeout`` bounds a job's wall clock,
``--stall-timeout`` kills a worker whose heartbeat goes quiet,
``--retries`` re-runs failures with backoff, ``--jobs`` runs workers in
parallel, and ``--run-dir``/``--resume`` checkpoint completed circuits
so an interrupted campaign picks up where it left off.  When jobs
ultimately fail, the tables still render for the surviving circuits
(failed rows are annotated; jobs that left phase-boundary salvage
behind render as ``PARTIAL(phase k/4)`` with the coverage columns the
salvage can answer), a job-summary table is printed, and the exit code
is 1.

``doctor`` verifies a ``--run-dir``: every CRC-enveloped line of
``runs.jsonl``/``journal.jsonl`` is checked, corrupt lines are moved
to ``quarantine/`` and the files repaired in place, salvage files are
verified the same way, and salvage orphaned by a completed checkpoint
is removed.  ``--strict`` exits non-zero when anything was quarantined
(the CI posture); ``--json`` prints the report machine-readably.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .circuits import suite as suite_mod
from .experiments import (HarnessConfig, all_tables, dump_json,
                          engine_counters_table, paper_comparison,
                          render_all, run_suite_resilient)
from .sim.values import FILL_STRATEGIES


def _resolve_profiles(names: List[str]):
    """Suite profiles for ``names``, or None (after a message) when a
    name is unknown -- callers turn that into exit code 2."""
    profiles = []
    for name in names:
        try:
            profiles.append(suite_mod.profile(name))
        except KeyError:
            valid = ", ".join(p.name for p in suite_mod.paper_suite())
            print(f"error: unknown circuit {name!r}\n"
                  f"valid circuits: {valid}", file=sys.stderr)
            return None
    return profiles


def _parse_width(text: str):
    """``--width`` value: "auto" or an integer word width >= 2."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"width must be 'auto' or an integer, got {text!r}")
    if value < 2:
        raise argparse.ArgumentTypeError(
            "width must be >= 2 (one good machine + one faulty)")
    return value


def _harness_config(args: argparse.Namespace) -> HarnessConfig:
    return HarnessConfig(timeout=args.timeout,
                         stall_timeout=args.stall_timeout,
                         retries=args.retries,
                         jobs=args.jobs, run_dir=args.run_dir,
                         resume=args.resume)


def _finish_outcome(outcome) -> int:
    """Print the job summary when something failed; pick the exit code."""
    if outcome.ok:
        return 0
    print()
    print(outcome.failure_summary().render())
    n = len(outcome.failed_records)
    print(f"\n{n} job(s) ultimately failed", file=sys.stderr)
    return 1


def _cmd_list(_args: argparse.Namespace) -> int:
    print("suite circuits (quick set marked *):")
    quick = {p.name for p in suite_mod.quick_suite()}
    for profile in suite_mod.paper_suite():
        net = profile.build()
        marker = "*" if profile.name in quick else " "
        print(f" {marker} {profile.name:8s} pi={net.num_inputs:3d} "
              f"po={net.num_outputs:3d} ff={net.num_ffs:4d} "
              f"gates={net.num_gates:4d}")
    return 0


def _cmd_circuit(args: argparse.Namespace) -> int:
    profiles = _resolve_profiles([args.name])
    if profiles is None:
        return 2
    outcome = run_suite_resilient(profiles, seed=args.seed,
                                  delay=args.delay,
                                  engine=args.engine, width=args.width,
                                  candidate_scan=args.candidate_scan,
                                  x_fill=args.x_fill,
                                  power_budget=args.power_budget,
                                  trial_batch=args.trial_batch,
                                  adi=args.adi, scoap=args.scoap,
                                  config=_harness_config(args))
    print(render_all(all_tables(outcome.runs,
                                with_delay=args.delay,
                                failures=outcome.failures,
                                partials=outcome.partials)))
    print()
    print(paper_comparison(outcome.runs, failures=outcome.failures,
                           partials=outcome.partials).render())
    print()
    print(engine_counters_table(outcome.runs).render())
    return _finish_outcome(outcome)


def _cmd_tables(args: argparse.Namespace) -> int:
    profiles = None
    if args.circuits:
        profiles = _resolve_profiles(args.circuits)
        if profiles is None:
            return 2
    outcome = run_suite_resilient(profiles, quick=not args.full,
                                  seed=args.seed,
                                  delay=args.delay,
                                  engine=args.engine, width=args.width,
                                  candidate_scan=args.candidate_scan,
                                  x_fill=args.x_fill,
                                  power_budget=args.power_budget,
                                  trial_batch=args.trial_batch,
                                  adi=args.adi, scoap=args.scoap,
                                  config=_harness_config(args),
                                  verbose=True)
    tables = all_tables(outcome.runs, with_delay=args.delay,
                        failures=outcome.failures,
                        partials=outcome.partials)
    tables.append(paper_comparison(outcome.runs,
                                   failures=outcome.failures,
                                   partials=outcome.partials))
    tables.append(engine_counters_table(outcome.runs))
    print(render_all(tables))
    if args.json:
        dump_json(tables, args.json)
        print(f"\n(wrote {args.json})")
    return _finish_outcome(outcome)


def _cmd_power(args: argparse.Namespace) -> int:
    """Compare the X-fill strategies' power on one circuit.

    Runs the proposed procedure (random ``T0`` arm) once per fill
    strategy, in process, and prints one comparison row each: set
    size, clock cycles, faults detected, peak/average shift WTM, peak
    capture toggles, and whether the detection set matches the
    ``random``-fill run (the paper-reproducing default).
    """
    from . import api
    from .experiments import Table
    from .power.activity import ActivityEngine
    profiles = _resolve_profiles([args.name])
    if profiles is None:
        return 2
    profile = profiles[0]
    title = f"X-fill power sweep: {args.name} (seed {args.seed}"
    if args.power_budget is not None:
        title += f", budget <= {args.power_budget:g}"
    title += ")"
    table = Table(title,
                  ["x-fill", "tests", "cycles", "detected", "peak WTM",
                   "avg WTM", "peak capt", "det=random"])
    random_detected = None
    for strategy in FILL_STRATEGIES:
        netlist = profile.build()
        wb = api.Workbench.for_netlist(netlist)
        result = api.compact_tests(
            netlist, seed=args.seed, t0_source="random",
            t0_length=min(profile.t0_length, 300), workbench=wb,
            x_fill=strategy, power_budget=args.power_budget)
        final = result.compacted_set or result.test_set
        summary = ActivityEngine(wb.circuit,
                                 wb.counters).set_power(final).summary()
        if strategy == "random":
            random_detected = result.final_detected
        same = (None if random_detected is None
                else "yes" if result.final_detected == random_detected
                else "no")
        table.add_row(strategy, len(final), final.clock_cycles(),
                      len(result.final_detected),
                      summary.peak_shift_wtm, summary.avg_shift_wtm,
                      summary.peak_capture, same)
    print(table.render())
    return 0


def _cmd_partial(args: argparse.Namespace) -> int:
    from .core.partial import PartialScanPlan, compact_partial
    profiles = _resolve_profiles([args.name])
    if profiles is None:
        return 2
    profile = profiles[0]
    netlist = profile.build()
    plans = [("full", PartialScanPlan.full(netlist)),
             ("cut", PartialScanPlan.by_cycle_cutting(netlist))]
    if args.extra:
        plans.append((f"cut+{args.extra}",
                      PartialScanPlan.by_cycle_cutting(
                          netlist, extra=args.extra)))
    print(f"{args.name}: {netlist.num_ffs} flip-flops")
    for label, plan in plans:
        result = compact_partial(plan, seed=args.seed,
                                 t0_length=min(profile.t0_length, 300))
        final = result.compacted_set or result.test_set
        print(f"  {label:>8}: chain={plan.n_scanned:3d} "
              f"tests={len(final):3d} cycles={final.clock_cycles():6d} "
              f"detected={len(result.final_detected)}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from . import api
    from .core import tester, testio
    profiles = _resolve_profiles([args.name])
    if profiles is None:
        return 2
    profile = profiles[0]
    netlist = profile.build()
    wb = api.Workbench.for_netlist(netlist)
    result = api.compact_tests(
        netlist, seed=args.seed,
        t0_source="random" if args.random else "seqgen",
        t0_length=min(profile.t0_length, 300), workbench=wb)
    final = result.compacted_set or result.test_set
    program = tester.schedule(final, wb.circuit)
    replay = tester.execute(program, wb.circuit)
    if not replay.passed:  # pragma: no cover - internal consistency
        print("internal error: program fails its own replay")
        return 1
    testio.dump(program, args.output)
    print(f"wrote {args.output}: {len(final)} tests, "
          f"{len(program)} cycles "
          f"({program.n_shift_cycles} shift / "
          f"{program.n_functional_cycles} functional), replay OK")
    return 0


def _parse_synth(text: str) -> Tuple[int, int, int, int]:
    """``--synth`` value: four comma-separated sizes PI,PO,FF,GATES."""
    parts = text.split(",")
    try:
        values = tuple(int(p) for p in parts)
    except ValueError:
        values = ()
    if len(values) != 4:
        raise argparse.ArgumentTypeError(
            f"--synth needs PI,PO,FF,GATES (four integers), got {text!r}")
    return values  # type: ignore[return-value]


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_bench_path, lint_netlist
    from .circuits import synth as synth_mod

    xinit = not args.no_xinit
    reports = []
    for target in args.targets:
        path = Path(target)
        if target.endswith(".bench") or path.exists():
            if not path.exists():
                print(f"error: no such file {target!r}", file=sys.stderr)
                return 2
            reports.append(lint_bench_path(path))
            continue
        try:
            prof = suite_mod.profile(target)
        except KeyError:
            valid = ", ".join(p.name for p in suite_mod.paper_suite())
            print(f"error: {target!r} is neither a file nor a suite "
                  f"circuit\nvalid circuits: {valid}", file=sys.stderr)
            return 2
        report = lint_netlist(prof.build(), xinit=xinit)
        report.circuit = target  # suite name, not the netlist name
        reports.append(report)
    if args.synth:
        n_pi, n_po, n_ff, n_gates = args.synth
        for i in range(max(1, args.sweep)):
            seed = args.seed + i
            net = synth_mod.generate(f"synth-{seed}", n_pi, n_po, n_ff,
                                     n_gates, seed=seed)
            reports.append(lint_netlist(net, xinit=xinit))
    if not args.targets and not args.synth:
        for prof in suite_mod.paper_suite():
            report = lint_netlist(prof.build(), xinit=xinit)
            report.circuit = prof.name
            reports.append(report)

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
            print()

    allow = set()
    for item in args.allow or []:
        circuit, _, rule = item.partition(":")
        if not rule:
            print(f"error: --allow wants CIRCUIT:RULE, got {item!r}",
                  file=sys.stderr)
            return 2
        allow.add((circuit, rule))

    if args.expect:
        missing = [r.circuit for r in reports
                   if args.expect not in r.rule_ids]
        if missing:
            print(f"expected rule {args.expect!r} missing on: "
                  f"{', '.join(missing)}", file=sys.stderr)
            return 1
        if not args.json:
            print(f"{len(reports)} circuit(s) report {args.expect!r} "
                  f"as expected")
        return 0

    severities = ("error", "warning") if args.strict else ("error",)
    failing = []
    for report in reports:
        bad = sorted({d.rule for d in report.diagnostics
                      if d.severity in severities
                      and (report.circuit, d.rule) not in allow})
        if bad:
            failing.append((report.circuit, bad))
    if failing:
        for name, rules in failing:
            print(f"{name}: {', '.join(rules)}", file=sys.stderr)
        print(f"{len(failing)} of {len(reports)} circuit(s) have lint "
              f"findings", file=sys.stderr)
        return 1
    if not args.json:
        print(f"{len(reports)} circuit(s) linted: clean")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static fault-space analysis over lint's target grammar.

    Collects ``(name, netlist)`` pairs from suite names, ``.bench``
    files and ``--synth`` sweeps (default: the whole paper suite),
    runs :func:`repro.analysis.faultspace.analyze_faultspace` on each
    and prints the per-circuit report table.  ``--strict`` re-checks
    every report's internal invariants and fails on any violation.
    """
    from .analysis.faultspace import analyze_faultspace
    from .circuits import bench as bench_mod
    from .circuits import synth as synth_mod

    netlists = []
    for target in args.targets:
        path = Path(target)
        if target.endswith(".bench") or path.exists():
            if not path.exists():
                print(f"error: no such file {target!r}", file=sys.stderr)
                return 2
            try:
                netlists.append((path.stem, bench_mod.load(path)))
            except Exception as exc:
                print(f"error: cannot parse {target!r}: {exc}",
                      file=sys.stderr)
                return 2
            continue
        try:
            prof = suite_mod.profile(target)
        except KeyError:
            valid = ", ".join(p.name for p in suite_mod.paper_suite())
            print(f"error: {target!r} is neither a file nor a suite "
                  f"circuit\nvalid circuits: {valid}", file=sys.stderr)
            return 2
        netlists.append((target, prof.build()))
    if args.synth:
        n_pi, n_po, n_ff, n_gates = args.synth
        for i in range(max(1, args.sweep)):
            seed = args.seed + i
            name = f"synth-{seed}"
            netlists.append((name, synth_mod.generate(
                name, n_pi, n_po, n_ff, n_gates, seed=seed)))
    if not args.targets and not args.synth:
        for prof in suite_mod.paper_suite():
            netlists.append((prof.name, prof.build()))

    reports = [analyze_faultspace(net, name=name)
               for name, net in netlists]
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
            print()

    if args.strict:
        broken = []
        for report in reports:
            problems = report.verify()
            for problem in problems:
                print(f"{report.circuit}: {problem}", file=sys.stderr)
            if problems:
                broken.append(report.circuit)
        if broken:
            print(f"{len(broken)} of {len(reports)} report(s) violate "
                  f"fault-space invariants", file=sys.stderr)
            return 1
    if not args.json:
        total_u = sum(r.n_untestable for r in reports)
        print(f"{len(reports)} circuit(s) analyzed: "
              f"{total_u} fault(s) proven untestable")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from .experiments.salvage import doctor
    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: no such run dir {args.run_dir!r}", file=sys.stderr)
        return 2
    report = doctor(run_dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.strict and not report.clean:
        print(f"{report.n_quarantined} corrupt record(s) quarantined",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench_info(_args: argparse.Namespace) -> int:
    print("Benchmarks live under benchmarks/ -- run them with:\n"
          "  pytest benchmarks/ --benchmark-only\n"
          "Set REPRO_BENCH_FULL=1 for the full (slow) suite.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compact",
        description="Scan test compaction that enhances at-speed "
                    "testing (DAC 2001 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    engine_opts = argparse.ArgumentParser(add_help=False)
    egroup = engine_opts.add_argument_group("simulation engine")
    egroup.add_argument("--engine",
                        choices=("interp", "codegen", "numpy", "auto"),
                        default="codegen",
                        help="evaluation backend: generated per-circuit "
                             "code (codegen, default), the table-"
                             "driven interpreter (interp), the uint64-"
                             "array backend (numpy; needs the optional "
                             "numpy extra), or auto (numpy for large "
                             "passes when available, else codegen)")
    egroup.add_argument("--width", type=_parse_width, default="auto",
                        metavar="{N,auto}",
                        help="fault machines per simulation word: an "
                             "integer chunk width, or 'auto' (default) "
                             "to fuse all targets into one wide word")
    egroup.add_argument("--candidate-scan", choices=("scalar", "lanes"),
                        default="lanes", dest="candidate_scan",
                        help="Phase-1 scan-in selection mode: "
                             "candidate-parallel transposed lanes "
                             "(default) or one pass per candidate "
                             "state (scalar); results are identical")
    egroup.add_argument("--trial-batch", type=int, default=64,
                        dest="trial_batch", metavar="N",
                        help="trial simulations packed per lane-"
                             "batched pass in Phases 3/4 (default: "
                             "64; 1 disables batching; results are "
                             "identical either way)")
    egroup.add_argument("--adi", action="store_true",
                        help="order work by the Accidental Detection "
                             "Index (arXiv:0710.4637): fused-word "
                             "packing, Phase-1 tie-breaks and Phase-3 "
                             "target order follow the random-phase "
                             "accidental-detection census (default: "
                             "off, the byte-exact paper reproduction)")
    egroup.add_argument("--scoap", action="store_true",
                        help="break Phase-1/Phase-3 ordering ties by "
                             "SCOAP testability: statically-hard "
                             "faults (high controllability + "
                             "observability cost) are targeted first "
                             "(default: off, the byte-exact paper "
                             "reproduction)")
    egroup.add_argument("--sanitize", action="store_true",
                        help="arm the engine-invariant sanitizer "
                             "(exports REPRO_SANITIZE=1; worker "
                             "subprocesses inherit it)")

    power_opts = argparse.ArgumentParser(add_help=False)
    pgroup = power_opts.add_argument_group("power")
    pgroup.add_argument("--x-fill", choices=FILL_STRATEGIES,
                        default="random", dest="x_fill",
                        help="don't-care fill strategy for ATPG "
                             "patterns (default: random, which "
                             "reproduces the paper runs exactly)")
    pgroup.add_argument("--power-budget", type=float, default=None,
                        dest="power_budget", metavar="WTM",
                        help="peak shift-WTM cap enforced during "
                             "Phase-4 combining (default: none)")

    resilience = argparse.ArgumentParser(add_help=False)
    group = resilience.add_argument_group("resilience")
    group.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock limit (default: none)")
    group.add_argument("--stall-timeout", type=float, default=None,
                       dest="stall_timeout", metavar="SECONDS",
                       help="kill a worker whose heartbeat goes quiet "
                            "for this long (default: none)")
    group.add_argument("--retries", type=int, default=0,
                       help="extra attempts per failed job (default: 0)")
    group.add_argument("--jobs", type=int, default=1,
                       help="worker subprocesses in parallel (default: 1)")
    group.add_argument("--run-dir", metavar="DIR",
                       help="checkpoint completed circuits to DIR")
    group.add_argument("--resume", action="store_true",
                       help="reuse completed runs found in --run-dir")

    p_list = sub.add_parser("list", help="list suite circuits")
    p_list.set_defaults(func=_cmd_list)

    p_circuit = sub.add_parser("circuit", parents=[resilience,
                                                   engine_opts,
                                                   power_opts],
                               help="run one suite circuit")
    p_circuit.add_argument("name")
    p_circuit.add_argument("--seed", type=int, default=1)
    p_circuit.add_argument("--delay", action="store_true",
                           help="also measure at-speed quality: "
                                "transition-fault coverage plus the "
                                "test-clock cycle budget")
    p_circuit.set_defaults(func=_cmd_circuit)

    p_tables = sub.add_parser("tables", parents=[resilience, engine_opts,
                                                 power_opts],
                              help="regenerate the paper's tables")
    p_tables.add_argument("--full", action="store_true",
                          help="run the full suite (slow)")
    p_tables.add_argument("--seed", type=int, default=1)
    p_tables.add_argument("--delay", action="store_true",
                          help="also measure at-speed quality of the "
                               "final test sets")
    p_tables.add_argument("--json", help="also dump tables as JSON")
    p_tables.add_argument("--circuits", nargs="*",
                          help="explicit circuit names")
    p_tables.set_defaults(func=_cmd_tables)

    p_power = sub.add_parser(
        "power", help="compare X-fill strategies' power on one circuit")
    p_power.add_argument("name")
    p_power.add_argument("--seed", type=int, default=1)
    p_power.add_argument("--power-budget", type=float, default=None,
                         dest="power_budget", metavar="WTM",
                         help="peak shift-WTM cap enforced during "
                              "Phase-4 combining (default: none)")
    p_power.set_defaults(func=_cmd_power)

    p_partial = sub.add_parser(
        "partial", help="full-vs-partial scan trade-off on a circuit")
    p_partial.add_argument("name")
    p_partial.add_argument("--seed", type=int, default=1)
    p_partial.add_argument("--extra", type=int, default=0,
                           help="extra scanned flip-flops beyond "
                                "cycle cutting")
    p_partial.set_defaults(func=_cmd_partial)

    p_export = sub.add_parser(
        "export", help="compact a circuit and export the cycle-"
                       "accurate tester program")
    p_export.add_argument("name")
    p_export.add_argument("-o", "--output", default="program.rtp")
    p_export.add_argument("--seed", type=int, default=1)
    p_export.add_argument("--random", action="store_true",
                          help="use a random T0 (Table-5 arm)")
    p_export.set_defaults(func=_cmd_export)

    p_lint = sub.add_parser(
        "lint", help="static netlist lint + X-initializability analysis")
    p_lint.add_argument("targets", nargs="*",
                        help="suite circuit names and/or .bench files "
                             "(default: the whole paper suite)")
    p_lint.add_argument("--synth", type=_parse_synth,
                        metavar="PI,PO,FF,GATES",
                        help="also lint a generated synthetic circuit")
    p_lint.add_argument("--seed", type=int, default=0,
                        help="seed for --synth (default: 0)")
    p_lint.add_argument("--sweep", type=int, default=1, metavar="N",
                        help="lint N consecutive --synth seeds")
    p_lint.add_argument("--no-xinit", action="store_true",
                        help="structural rules only (skip the "
                             "X-initializability analysis)")
    p_lint.add_argument("--json", action="store_true",
                        help="print the reports as JSON")
    p_lint.add_argument("--strict", action="store_true",
                        help="warnings also fail the lint")
    p_lint.add_argument("--expect", metavar="RULE",
                        help="succeed iff every linted circuit reports "
                             "RULE (CI hook for known-bad circuits)")
    p_lint.add_argument("--allow", action="append",
                        metavar="CIRCUIT:RULE",
                        help="waive RULE on CIRCUIT for the exit code")
    p_lint.set_defaults(func=_cmd_lint)

    p_analyze = sub.add_parser(
        "analyze", help="static fault-space analysis: equivalence "
                        "classes, dominance, SCOAP, untestability "
                        "proofs")
    p_analyze.add_argument("targets", nargs="*",
                           help="suite circuit names and/or .bench "
                                "files (default: the whole paper "
                                "suite)")
    p_analyze.add_argument("--synth", type=_parse_synth,
                           metavar="PI,PO,FF,GATES",
                           help="also analyze a generated synthetic "
                                "circuit")
    p_analyze.add_argument("--seed", type=int, default=0,
                           help="seed for --synth (default: 0)")
    p_analyze.add_argument("--sweep", type=int, default=1, metavar="N",
                           help="analyze N consecutive --synth seeds")
    p_analyze.add_argument("--json", action="store_true",
                           help="print the full reports (including "
                                "per-fault proofs) as JSON")
    p_analyze.add_argument("--strict", action="store_true",
                           help="re-verify every report's internal "
                                "invariants; exit 1 on violations")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_doctor = sub.add_parser(
        "doctor", help="verify and repair a --run-dir (quarantine "
                       "corrupt records, drop orphaned salvage)")
    p_doctor.add_argument("run_dir", metavar="DIR",
                          help="the campaign's --run-dir")
    p_doctor.add_argument("--strict", action="store_true",
                          help="exit non-zero when anything was "
                               "quarantined")
    p_doctor.add_argument("--json", action="store_true",
                          help="print the report as JSON")
    p_doctor.set_defaults(func=_cmd_doctor)

    p_bench = sub.add_parser("bench-info", help="benchmark pointers")
    p_bench.set_defaults(func=_cmd_bench_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "run_dir",
                                                      None):
        parser.error("--resume requires --run-dir")
    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

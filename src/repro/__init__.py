"""repro: scan test compaction that enhances at-speed testing.

A complete reproduction of Pomeranz & Reddy, "An Approach to Test
Compaction for Scan Circuits that Enhances At-Speed Testing"
(DAC 2001), with every substrate implemented from scratch: gate-level
netlists, 3-valued logic simulation, bit-parallel stuck-at fault
simulation, combinational and sequential test generation, static and
dynamic compaction baselines, and the paper's four-phase procedure.

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .version import __version__
from .api import (
    compact_tests,
    generate_comb_set,
    baseline_static,
    baseline_dynamic,
)

__all__ = [
    "__version__",
    "compact_tests",
    "generate_comb_set",
    "baseline_static",
    "baseline_dynamic",
]

"""Benchmark: regenerate the paper's Table 1 (detected faults).

Expected shape (paper Section 4): for every circuit,
``det(T0) <= det(tau_seq) <= det(final)``, with ``tau_seq`` detecting a
large share of the faults and the final set completing the detectable
coverage.
"""

from repro.experiments import tables


def test_table1(benchmark, suite_runs):
    table = benchmark(tables.table1, suite_runs)
    print()
    print(table.render())
    for row in table.rows:
        circuit, ff, ctests, flts, t0, scan, final = row
        assert t0 <= scan <= final <= flts, circuit
        # tau_seq detects "a large percentage of the target faults".
        assert scan >= 0.5 * flts, circuit

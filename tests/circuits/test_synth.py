"""Tests for the synthetic benchmark generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_xinit
from repro.circuits import synth, validate
from repro.sim import values as V
from repro.sim.logicsim import CompiledCircuit, simulate_sequence


class TestInterface:
    def test_requested_sizes(self):
        net = synth.generate("t", 5, 4, 6, 60, seed=1)
        assert net.num_inputs == 5
        assert net.num_outputs == 4
        assert net.num_ffs == 6
        # Gate count within a few of the target (wrappers are exact,
        # tree budgets are exact).
        assert abs(net.num_gates - 60) <= 6

    def test_deterministic(self):
        a = synth.generate("t", 4, 3, 4, 40, seed=7)
        b = synth.generate("t", 4, 3, 4, 40, seed=7)
        assert a.gates.keys() == b.gates.keys()
        for name in a.gates:
            assert a.gates[name].gtype == b.gates[name].gtype
            assert a.gates[name].fanins == b.gates[name].fanins

    def test_different_seeds_differ(self):
        a = synth.generate("t", 4, 3, 4, 40, seed=1)
        b = synth.generate("t", 4, 3, 4, 40, seed=2)
        diffs = sum(1 for n in a.gates
                    if n in b.gates and
                    a.gates[n].fanins != b.gates[n].fanins)
        assert diffs > 0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            synth.generate("t", 0, 1, 1, 20)
        with pytest.raises(ValueError):
            synth.generate("t", 2, 2, 10, 8)  # too few gates
        with pytest.raises(ValueError):
            synth.generate("t", 2, 2, 2, 20, max_fanin=1)
        with pytest.raises(ValueError):
            synth.generate("t", 2, 2, 2, 20, share_p=1.5)


class TestQuality:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_structurally_clean(self, seed):
        net = synth.generate("q", 4, 3, 5, 40, seed=seed)
        issues = validate.check(net)
        # A flip-flop occasionally lands outside every PO cone; that is
        # benign under scan (observable via scan-out) and occurs in
        # real netlists too.  Anything else is a generator bug.
        hard = [i for i in issues if i.code != "ff-outside-po-cone"]
        assert hard == [], [str(i) for i in hard]

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10 ** 5))
    def test_initializable_from_all_x(self, seed):
        """A random sequence must drive every flip-flop to a binary
        value (the sync wrappers guarantee reachability)."""
        import random
        net = synth.generate("i", 4, 3, 5, 40, seed=seed)
        xres = analyze_xinit(net)
        if xres.status == "not-synchronizable":
            # Known generator weakness (e.g. seed 4941): cross-cone
            # rewiring can defeat the sync wrappers, so no input
            # sequence initializes the circuit from all-X.  The static
            # analyzer proves it; fixing the generator is tracked
            # separately.
            rule = xres.to_diagnostics()[0].rule
            pytest.xfail(f"seed {seed}: static analyzer flags {rule} "
                         f"(flagged FFs {list(xres.flagged)})")
        cc = CompiledCircuit(net)
        rng = random.Random(0)
        # Initialization is probabilistic (the sync wrappers fire on
        # ~1/4 of random vectors, and cones are interdependent), so use
        # a sequence comfortably longer than the suite's shortest T0.
        vectors = [V.random_binary_vector(4, rng) for _ in range(150)]
        res = simulate_sequence(cc, vectors)
        assert all(v in (V.ZERO, V.ONE) for v in res.final_state)

    def test_seed_4941_statically_flagged(self):
        """The known-bad seed: the analyzer must prove (statically, no
        simulation) that FFs 0, 2 and 4 never leave X."""
        net = synth.generate("i", 4, 3, 5, 40, seed=4941)
        xres = analyze_xinit(net)
        assert xres.status == "not-synchronizable"
        assert {0, 2, 4} <= set(xres.flagged)
        for f in xres.flagged:
            assert xres.ff_witness(f)  # every flagged FF has a witness

    def test_paper_like_stable_seed(self):
        a = synth.paper_like("s298", 3, 6, 14, 110)
        b = synth.paper_like("s298", 3, 6, 14, 110)
        assert a.gates["g0"].fanins == b.gates["g0"].fanins

    def test_paper_like_distinct_names_distinct_circuits(self):
        a = synth.paper_like("s298", 3, 6, 14, 110)
        b = synth.paper_like("s382", 3, 6, 14, 110)
        diffs = sum(1 for n in a.gates
                    if n in b.gates and
                    a.gates[n].fanins != b.gates[n].fanins)
        assert diffs > 0

    def test_low_redundancy(self):
        """The generator's whole point: realistic redundancy levels."""
        from repro.atpg import comb_set
        from repro.sim.faults import FaultSet
        net = synth.generate("r", 3, 6, 14, 110, seed=11)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        result = comb_set.generate(cc, fs, seed=1)
        assert len(result.redundant) / len(fs) < 0.10

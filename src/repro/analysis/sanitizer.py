"""Engine-invariant sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).

The wide-word fault-simulation engines (DESIGN.md sections 8-9) rest on
invariants that are argued in prose and sampled by the hypothesis
equivalence suites, but never checked in production runs:

* **lane-packing disjointness** -- in candidate-parallel simulation
  every fault group owns a contiguous, non-overlapping block of lanes,
  the good/forced stem masks never claim a machine bit outside their
  chunk, and no stem forces a net to 0 and 1 for the same machine;
* **scoreboard soundness** -- a fault retired by the cross-phase
  scoreboard is never simulated again as a target ("never required by a
  later phase"), and every retired fault is in the final detected set
  ("retired" really means "guaranteed detected");
* **fused/chunked agreement** -- the single fused wide word and the
  classic chunked engine detect identical fault sets (spot-checked on
  the first few ``detect`` calls per simulator, on bounded targets).

With ``REPRO_SANITIZE`` unset (or ``0``) every hook is a cheap boolean
check away from free.  With ``REPRO_SANITIZE=1`` a violated invariant
raises :class:`SanitizerError` at the point of violation.  With
``REPRO_SANITIZE=collect`` violations are recorded but not raised, so a
run can be swept and the violations read back via :func:`violations` /
:func:`to_diagnostics` as structured diagnostics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Set, Tuple

from .diagnostics import ERROR, Diagnostic

ENV_VAR = "REPRO_SANITIZE"


def enabled() -> bool:
    """True when the sanitizer is armed (read from the environment on
    every call, so workers and tests can flip it dynamically)."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def collect_only() -> bool:
    """True in ``REPRO_SANITIZE=collect`` mode (record, don't raise)."""
    return os.environ.get(ENV_VAR, "") == "collect"


@dataclass(frozen=True)
class Violation:
    """One violated invariant."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"sanitize.{self.invariant}: {self.message}"


class SanitizerError(AssertionError):
    """An engine invariant did not hold."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


_violations: List[Violation] = []


def violations() -> List[Violation]:
    """Violations recorded so far (process-local)."""
    return list(_violations)


def reset() -> None:
    _violations.clear()


def to_diagnostics() -> List[Diagnostic]:
    """Recorded violations as error-severity diagnostics."""
    return [Diagnostic(rule=f"sanitize.{v.invariant}", severity=ERROR,
                       message=v.message) for v in _violations]


def report_violation(invariant: str, message: str) -> None:
    """Record a violation; raise unless in collect mode."""
    violation = Violation(invariant, message)
    _violations.append(violation)
    if not collect_only():
        raise SanitizerError(violation)


# ----------------------------------------------------------------------
# invariant checks (callers guard with ``if sanitizer.enabled():``)
# ----------------------------------------------------------------------

def _mask_pair(label: str, key: Any, m0: int, m1: int,
               universe: int, context: str) -> None:
    if m0 & m1:
        report_violation(
            "lane-disjoint",
            f"{context}: {label}[{key!r}] forces the same machine "
            f"bit(s) to both 0 and 1 (overlap {bin(m0 & m1)})")
    if (m0 | m1) & ~universe:
        report_violation(
            "lane-disjoint",
            f"{context}: {label}[{key!r}] claims machine bits "
            f"outside its universe {bin(universe)}")


def _mask_pairs(label: str,
                masks: Mapping[Any, Tuple[int, int]],
                universe: int, context: str) -> None:
    """``masks``: net id -> (force-to-0 mask, force-to-1 mask)."""
    for key, (m0, m1) in masks.items():
        _mask_pair(label, key, m0, m1, universe, context)


def _branch_masks(label: str,
                  branch: Mapping[Any, Iterable[Tuple[int, int, int]]],
                  universe: int, context: str) -> None:
    """``branch``: net id -> [(pin, force-0 mask, force-1 mask), ...]."""
    for key, entries in branch.items():
        for pin, m0, m1 in entries:
            _mask_pair(label, (key, pin), m0, m1, universe, context)


def _ff_branch_masks(entries: Iterable[Tuple[int, int, int]],
                     universe: int, context: str) -> None:
    """``entries``: [(flip-flop position, force-0, force-1), ...]."""
    for pos, m0, m1 in entries:
        _mask_pair("ff_branch", pos, m0, m1, universe, context)


def check_lane_chunk(chunk: Any, context: str = "detect_candidates") -> None:
    """Lane-packing disjointness of one ``_LaneChunk``.

    Group ``g`` must own exactly the contiguous lane block
    ``[g*n_lanes, (g+1)*n_lanes)``; the union of the blocks must be the
    chunk mask; and every injection mask must stay inside the mask with
    no machine bit forced to both values.
    """
    n_lanes = chunk.n_lanes
    n_groups = chunk.n_groups
    block = (1 << n_lanes) - 1
    union = 0
    for g in range(n_groups):
        blk = block << (g * n_lanes)
        if union & blk:
            report_violation(
                "lane-disjoint",
                f"{context}: lane block of group {g} overlaps an "
                f"earlier group")
        union |= blk
    if union != chunk.mask:
        report_violation(
            "lane-disjoint",
            f"{context}: chunk mask {bin(chunk.mask)} is not the union "
            f"of its {n_groups} lane block(s) {bin(union)}")
    _mask_pairs("stem", chunk.stems, chunk.mask, context)
    _branch_masks("branch", chunk.branch, chunk.mask, context)
    _ff_branch_masks(chunk.ff_branch, chunk.mask, context)


def check_chunk(chunk: Any, context: str = "detect") -> None:
    """Packing invariants of one scalar ``_Chunk`` (good bit 0 plus one
    faulty machine per index)."""
    want = (1 << (len(chunk.indices) + 1)) - 1
    if chunk.mask != want:
        report_violation(
            "lane-disjoint",
            f"{context}: chunk mask {bin(chunk.mask)} does not cover "
            f"good bit + {len(chunk.indices)} machines")
    # Bit 0 is the good machine: no injection may claim it (the
    # universe excludes it), and no machine bit may be forced both ways.
    _mask_pairs("stem", chunk.stems, chunk.mask & ~1, context)
    _branch_masks("branch", chunk.branch, chunk.mask & ~1, context)
    _ff_branch_masks(chunk.ff_branch, chunk.mask & ~1, context)


def check_fresh_targets(scoreboard: Any, target: Iterable[int],
                        context: str) -> None:
    """A retired fault must never be simulated as a target again."""
    if scoreboard is None or not scoreboard.enabled:
        return
    stale = sorted(f for f in target if scoreboard.is_retired(f))
    if stale:
        report_violation(
            "scoreboard-reactivation",
            f"{context}: {len(stale)} already-retired fault(s) handed "
            f"back as simulation targets: {stale[:10]}")


def check_retired_subset(retired: Set[int], detected: Set[int],
                         context: str) -> None:
    """Every fault the scoreboard dropped must be in the final detected
    set -- the soundness claim of cross-phase fault dropping."""
    missing = sorted(retired - detected)
    if missing:
        report_violation(
            "scoreboard-soundness",
            f"{context}: {len(missing)} retired fault(s) absent from "
            f"the final detected set: {missing[:10]}")


def check_monotone(before: Set[int], after: Set[int],
                   context: str) -> None:
    """The retired set only grows."""
    lost = sorted(before - after)
    if lost:
        report_violation(
            "scoreboard-monotonic",
            f"{context}: {len(lost)} fault(s) left the retired set: "
            f"{lost[:10]}")


def check_agreement(fused: Set[int], chunked: Set[int],
                    context: str) -> None:
    """Fused-word and chunked-word engines must detect identical sets."""
    if fused != chunked:
        only_f = sorted(fused - chunked)[:10]
        only_c = sorted(chunked - fused)[:10]
        report_violation(
            "fused-chunked-agreement",
            f"{context}: engines disagree "
            f"(fused-only {only_f}, chunked-only {only_c})")

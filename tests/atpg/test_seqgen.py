"""Tests for the sequential sequence generator and random sequences."""

import pytest

from repro.atpg import random_gen, seqgen
from repro.sim import values as V


class TestRandomGen:
    def test_length_and_width(self, s27_bench):
        seq = random_gen.random_sequence(s27_bench.circuit, 37, seed=1)
        assert len(seq) == 37
        assert all(len(v) == 4 and V.is_binary(v) for v in seq)

    def test_deterministic(self, s27_bench):
        a = random_gen.random_sequence(s27_bench.circuit, 10, seed=5)
        b = random_gen.random_sequence(s27_bench.circuit, 10, seed=5)
        assert a == b

    def test_bad_length(self, s27_bench):
        with pytest.raises(ValueError):
            random_gen.random_sequence(s27_bench.circuit, 0)

    def test_weighted_bias(self, s27_bench):
        heavy = random_gen.weighted_sequence(s27_bench.circuit, 200,
                                             one_probability=0.9, seed=1)
        ones = sum(v.count(V.ONE) for v in heavy)
        assert ones > 0.75 * 200 * 4

    def test_weighted_validation(self, s27_bench):
        with pytest.raises(ValueError):
            random_gen.weighted_sequence(s27_bench.circuit, 5,
                                         one_probability=1.5)

    def test_random_state(self, s27_bench):
        state = random_gen.random_state(s27_bench.circuit, seed=2)
        assert len(state) == 3
        assert V.is_binary(state)


class TestSeqGen:
    def test_detected_matches_resimulation(self, s27_bench):
        wb = s27_bench
        result = seqgen.generate_sequence(wb.circuit, wb.faults,
                                          max_length=60, seed=2)
        check = wb.sim.detect(result.sequence, None, scan_out=False,
                              early_exit=False)
        assert check == result.detected

    def test_deterministic(self, s27_bench):
        wb = s27_bench
        a = seqgen.generate_sequence(wb.circuit, wb.faults,
                                     max_length=40, seed=9)
        b = seqgen.generate_sequence(wb.circuit, wb.faults,
                                     max_length=40, seed=9)
        assert a.sequence == b.sequence
        assert a.detected == b.detected

    def test_respects_budget(self, s27_bench):
        wb = s27_bench
        result = seqgen.generate_sequence(wb.circuit, wb.faults,
                                          max_length=15, seed=1)
        assert result.length <= 15

    def test_beats_random_at_same_length(self, mid_bench):
        """The generator should dominate an equal-length random
        sequence (that is its whole purpose)."""
        wb = mid_bench
        gen = seqgen.generate_sequence(wb.circuit, wb.faults,
                                       max_length=120, seed=3)
        rand = random_gen.random_sequence(wb.circuit, gen.length, seed=3)
        rand_det = wb.sim.detect(rand, None, scan_out=False,
                                 early_exit=False)
        assert len(gen.detected) >= len(rand_det)

    def test_bad_budget(self, s27_bench):
        wb = s27_bench
        with pytest.raises(ValueError):
            seqgen.generate_sequence(wb.circuit, wb.faults, max_length=0)

    def test_empty_target_still_returns_sequence(self, s27_bench):
        wb = s27_bench
        result = seqgen.generate_sequence(wb.circuit, wb.faults,
                                          max_length=10, seed=1,
                                          target=[])
        assert result.length >= 1
        assert result.detected == set()

    def test_hints_are_used(self, s27_bench, s27_comb):
        wb = s27_bench
        hints = [t.pi for t in s27_comb.tests]
        result = seqgen.generate_sequence(wb.circuit, wb.faults,
                                          max_length=40, seed=2,
                                          hints=hints)
        assert result.length >= 1  # smoke: hints path exercised

"""Tests for the experiment runner and the paper-table builders.

Everything here runs on s27 only (sub-second) -- the real suite runs
live in ``benchmarks/``.
"""

import pytest

from repro.circuits import suite
from repro.experiments import runner, tables


@pytest.fixture(scope="module")
def s27_run():
    return runner.run_circuit(suite.profile("s27"), seed=1,
                              delay=True)


class TestRunner:
    def test_both_arms_present(self, s27_run):
        assert set(s27_run.arms) == {"seqgen", "random"}

    def test_baselines_present(self, s27_run):
        assert s27_run.baseline4 is not None
        assert s27_run.dynamic is not None

    def test_transition_data(self, s27_run):
        assert "baseline4" in s27_run.transition
        assert "seqgen" in s27_run.transition

    def test_delay_report_present(self, s27_run):
        report = s27_run.delay
        assert report is not None
        assert {"baseline4", "seqgen", "random"} <= set(report.sets)
        for summary in report.sets.values():
            assert summary.at_speed_cycles <= summary.total_cycles
            assert summary.total_cycles <= summary.tester_cycles

    def test_delay_coverage_matches_transition(self, s27_run):
        # The flat transition dict is derived from the delay report.
        for label, cov in s27_run.transition.items():
            assert s27_run.delay.sets[label].coverage == cov

    def test_counts_sane(self, s27_run):
        assert s27_run.n_faults == 32
        assert s27_run.n_detectable == 32
        assert s27_run.n_ffs == 3

    def test_bad_arm_rejected(self):
        with pytest.raises(ValueError, match="unknown arm"):
            runner.run_circuit(suite.profile("s27"), arms=["nope"])

    def test_run_suite_subset(self):
        runs = runner.run_suite([suite.profile("s27")],
                                with_baselines=False,
                                arms=["random"])
        assert len(runs) == 1
        assert runs[0].baseline4 is None


class TestTables:
    def test_table1_shape(self, s27_run):
        t = tables.table1([s27_run])
        assert t.headers[0] == "circuit"
        assert len(t.rows) == 1
        circuit, ff, ctests, flts, untst, t0, scan, final = t.rows[0]
        assert circuit == "s27"
        assert untst >= 0
        assert t0 <= scan <= final <= flts - untst

    def test_table2_shape(self, s27_run):
        t = tables.table2([s27_run])
        _, t0_len, scan_len, added = t.rows[0]
        assert scan_len <= t0_len
        assert added >= 0

    def test_table3_totals(self, s27_run):
        t = tables.table3([s27_run])
        assert t.rows[-1][0] == "total"
        # One circuit: total equals the single row.
        assert t.rows[-1][1:] == t.rows[0][1:]

    def test_table3_orderings(self, s27_run):
        t = tables.table3([s27_run])
        (_, dyn, b4i, b4c, pi, pc, ri, rc) = t.rows[0]
        assert b4c <= b4i          # compaction helps the baseline
        assert pc <= pi            # phase 4 never hurts
        assert rc <= ri

    def test_table4_shape(self, s27_run):
        t = tables.table4([s27_run])
        _, ave4, rng4, avep, rngp, aver, rngr = t.rows[0]
        assert "-" in rng4
        assert avep >= ave4  # long-sequence sets have longer averages

    def test_table5_matches_random_arm(self, s27_run):
        t = tables.table5([s27_run])
        res = s27_run.arms["random"].result
        assert t.rows[0][1] == len(res.t0_detected)
        assert t.rows[0][4] == res.t0_length

    def test_transition_table(self, s27_run):
        t = tables.table_atspeed_coverage([s27_run])
        _, b4, prop, rand = t.rows[0]
        assert prop > b4  # the paper's at-speed claim, quantified

    def test_delay_table(self, s27_run):
        t = tables.table_delay([s27_run])
        rows = {row[3]: row for row in t.rows}
        assert set(rows) == {"seqgen", "random", "baseline4"}
        # The paper's at-speed claim priced in clock cycles: the
        # long-sequence sets buy far more launch/capture pairs.
        assert rows["seqgen"][6] > rows["baseline4"][6]
        for row in t.rows:
            assert 0.0 <= row[8] <= 1.0  # at-speed fraction

    def test_all_tables(self, s27_run):
        ts = tables.all_tables([s27_run])
        # 5 paper tables + at-speed coverage + delay cost (run carries
        # both transition data and a full delay report).
        assert len(ts) >= 7

    def test_paper_comparison_table(self, s27_run):
        t = tables.paper_comparison([s27_run])
        # s27 carries only an ff entry, so few rows; must not crash.
        assert t.headers == ["circuit", "metric", "paper", "measured"]

"""PODEM combinational ATPG on the pseudo-combinational circuit.

Generates a test pattern ``(state, pi)`` for one stuck-at fault of the
full-scan circuit: flip-flop outputs act as pseudo primary inputs and
flip-flop data nets as pseudo primary outputs (observed via scan-out).

The implementation is the classical PODEM loop:

1. *Objective*: activate the fault (fault net to the non-stuck value),
   then advance a D-frontier gate (one X input to its non-controlling
   value).
2. *Backtrace*: map the objective back to an unassigned (pseudo) primary
   input, guided by SCOAP-style controllability estimates.
3. *Imply*: assign the input and run a dual-machine (good / faulty)
   3-valued simulation of the whole cone.
4. *Check*: success when any observed output carries a binary
   good-vs-faulty difference; prune when the fault effect can no longer
   reach an output (empty D-frontier or no X-path).
5. *Backtrack* on failure, flipping or popping decisions, bounded by a
   backtrack limit.

Outcomes are ``TESTABLE`` (with the pattern), ``REDUNDANT`` (search
space exhausted -- the fault is combinationally untestable) or
``ABORTED`` (limit hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim import values as V
from ..sim.faults import FaultSet
from ..sim.logicsim import (CompiledCircuit, OP_AND, OP_BUF, OP_CONST0,
                            OP_CONST1, OP_NAND, OP_NOR, OP_NOT, OP_OR,
                            OP_XNOR, OP_XOR)

TESTABLE = "testable"
REDUNDANT = "redundant"
ABORTED = "aborted"

_GOOD = 1          # machine bit 0
_FAULTY = 2        # machine bit 1
_MASK = 3

#: Controllability cost treated as infinite (unjustifiable).
_INF = 10 ** 9


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    status: str
    pattern: Optional[Tuple[V.Vector, V.Vector]] = None  # (state, pi)
    backtracks: int = 0


class Podem:
    """PODEM engine bound to one circuit and fault set."""

    def __init__(self, circuit: CompiledCircuit, faults: FaultSet,
                 backtrack_limit: int = 256,
                 scan_positions: Optional[Sequence[int]] = None) -> None:
        self.circuit = circuit
        self.faults = faults
        self.backtrack_limit = backtrack_limit
        net = circuit.netlist
        self._ids = net.net_ids
        if scan_positions is None:
            assignable_ffs = list(circuit.ff_ids)
            observed_ppos = list(circuit.ff_d_ids)
            self._observed_ff_pos = set(range(len(circuit.ff_ids)))
        else:
            # Partial scan: only scanned flip-flops are controllable
            # (pseudo primary inputs) and observable (pseudo POs).
            positions = sorted(scan_positions)
            assignable_ffs = [circuit.ff_ids[p] for p in positions]
            observed_ppos = [circuit.ff_d_ids[p] for p in positions]
            self._observed_ff_pos = set(positions)
        self._sources: List[int] = list(circuit.pi_ids) + assignable_ffs
        self._source_set: Set[int] = set(self._sources)
        self._observed: List[int] = list(circuit.po_ids) + observed_ppos
        self._gate_of: Dict[int, Tuple[int, Tuple[int, ...]]] = {
            out: (op, fins) for op, out, fins in circuit.ops}
        self._fanout_ids: Dict[int, List[int]] = {}
        for name, succs in net.fanout.items():
            nid = self._ids[name]
            self._fanout_ids[nid] = [
                self._ids[s] for s in succs
                if net.gates[s].gtype != "DFF"]
        self._cc0, self._cc1 = self._controllability()
        ff_pos = {name: i for i, name in enumerate(net.flip_flops)}
        # Per-fault: (site_net_id, stuck, stems, branch, ff_check)
        self._spec = []
        for fault in faults:
            ids = self._ids
            if fault.pin is None:
                nid = ids[fault.net]
                stems = {nid: (_FAULTY, 0) if fault.stuck == 0
                         else (0, _FAULTY)}
                self._spec.append((nid, fault.stuck, stems, {}, None))
            else:
                gate_name, pin = fault.pin
                gate = net.gates[gate_name]
                nid = ids[fault.net]
                if gate.gtype == "DFF":
                    self._spec.append((nid, fault.stuck, {}, {},
                                       ff_pos[gate_name]))
                else:
                    branch = {ids[gate_name]: [(
                        pin,
                        _FAULTY if fault.stuck == 0 else 0,
                        _FAULTY if fault.stuck == 1 else 0)]}
                    self._spec.append((nid, fault.stuck, {}, branch,
                                       None))

    # ------------------------------------------------------------------
    def _controllability(self) -> Tuple[List[int], List[int]]:
        """SCOAP-style CC0/CC1 per net (lower = easier to justify)."""
        n = self.circuit.n_nets
        cc0 = [_INF] * n
        cc1 = [_INF] * n
        for nid in self._sources:
            cc0[nid] = cc1[nid] = 1
        for op, out, fins in self.circuit.ops:
            f0 = [cc0[f] for f in fins]
            f1 = [cc1[f] for f in fins]
            if op == OP_AND:
                c1, c0 = sum(f1) + 1, min(f0) + 1
            elif op == OP_NAND:
                c0, c1 = sum(f1) + 1, min(f0) + 1
            elif op == OP_OR:
                c0, c1 = sum(f0) + 1, min(f1) + 1
            elif op == OP_NOR:
                c1, c0 = sum(f0) + 1, min(f1) + 1
            elif op == OP_NOT:
                c0, c1 = f1[0] + 1, f0[0] + 1
            elif op == OP_BUF:
                c0, c1 = f0[0] + 1, f1[0] + 1
            elif op in (OP_XOR, OP_XNOR):
                # Fold pairwise over inputs.
                a0, a1 = f0[0], f1[0]
                for b0, b1 in zip(f0[1:], f1[1:]):
                    x1 = min(a0 + b1, a1 + b0) + 1
                    x0 = min(a0 + b0, a1 + b1) + 1
                    a0, a1 = x0, x1
                if op == OP_XNOR:
                    a0, a1 = a1, a0
                c0, c1 = a0, a1
            elif op == OP_CONST0:
                c0, c1 = 1, _INF
            else:  # OP_CONST1
                c0, c1 = _INF, 1
            cc0[out] = min(c0, _INF)
            cc1[out] = min(c1, _INF)
        return cc0, cc1

    # ------------------------------------------------------------------
    def generate(self, fault_index: int) -> PodemResult:
        """Run PODEM for one fault (by index into the fault set)."""
        return self.generate_spec(self._spec[fault_index])

    def generate_spec(self, spec: Tuple,
                      fixed: Optional[Dict[int, int]] = None
                      ) -> PodemResult:
        """Run PODEM for an explicit injection spec.

        ``spec`` is ``(site, stuck, stems, branch, ff_check)`` -- the
        same format the constructor builds, but callers (notably the
        time-frame-expansion extender) may inject multi-site specs.
        ``fixed`` pre-assigns source nets (e.g. a known circuit state);
        fixed sources are never reconsidered during backtracking, so a
        REDUNDANT outcome means "untestable *under these constraints*".
        """
        site, stuck, stems, branch, ff_check = spec
        branch_gate = next(iter(branch), None)
        zero = [0] * self.circuit.n_nets
        one = [0] * self.circuit.n_nets
        assign: Dict[int, int] = dict(fixed or {})
        stack: List[Tuple[int, int, bool]] = []  # (source, value, flipped)
        backtracks = 0

        def imply() -> None:
            for nid in self._sources:
                val = assign.get(nid, V.X)
                zero[nid], one[nid] = V.pack_scalar(val, _MASK)
            for nid, (m0, m1) in stems.items():
                if nid in self._source_set:
                    zero[nid] = (zero[nid] & ~(m0 | m1)) | m0
                    one[nid] = (one[nid] & ~(m0 | m1)) | m1
            self.circuit.eval_frame(zero, one, _MASK, stems, branch)

        imply()
        while True:
            objective = self._objective(zero, one, site, stuck, ff_check,
                                        branch_gate)
            if objective == "detected":
                return PodemResult(TESTABLE, self._extract(zero, one),
                                   backtracks)
            if objective is None:
                source_assign = None
            else:
                source_assign = self._backtrace(zero, one, *objective, assign)
            if source_assign is None:
                # Dead end: backtrack.
                while stack:
                    nid, val, flipped = stack.pop()
                    del assign[nid]
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemResult(ABORTED, None, backtracks)
                        assign[nid] = 1 - val
                        stack.append((nid, 1 - val, True))
                        break
                else:
                    return PodemResult(REDUNDANT, None, backtracks)
                imply()
                continue
            nid, val = source_assign
            assign[nid] = val
            stack.append((nid, val, False))
            imply()

    # ------------------------------------------------------------------
    def _value(self, zero: List[int], one: List[int], nid: int,
               machine: int) -> int:
        if zero[nid] & machine:
            return V.ZERO
        if one[nid] & machine:
            return V.ONE
        return V.X

    def _detected(self, zero: List[int], one: List[int],
                  ff_check: Optional[int], site: int, stuck: int) -> bool:
        if ff_check is not None:
            if ff_check not in self._observed_ff_pos:
                return False
            d_nid = self.circuit.ff_d_ids[ff_check]
            good = self._value(zero, one, d_nid, _GOOD)
            return good in (V.ZERO, V.ONE) and good != stuck
        for nid in self._observed:
            g = self._value(zero, one, nid, _GOOD)
            f = self._value(zero, one, nid, _FAULTY)
            if g in (V.ZERO, V.ONE) and f in (V.ZERO, V.ONE) and g != f:
                return True
        return False

    def _d_nets(self, zero: List[int], one: List[int]) -> List[int]:
        """Nets carrying a binary good/faulty difference."""
        out = []
        for nid in range(self.circuit.n_nets):
            g = self._value(zero, one, nid, _GOOD)
            f = self._value(zero, one, nid, _FAULTY)
            if g != f and g != V.X and f != V.X:
                out.append(nid)
        return out

    def _objective(self, zero, one, site, stuck, ff_check, branch_gate):
        """Next (net, value) objective, or "detected", or None (dead end)."""
        good_site = self._value(zero, one, site, _GOOD)
        if good_site == V.X:
            return (site, 1 - stuck)
        if good_site == stuck:
            return None  # activation impossible under current assignments
        if self._detected(zero, one, ff_check, site, stuck):
            return "detected"
        if ff_check is not None:
            # Site justified but good value equals stuck: impossible here
            # (good_site != stuck already ensured detection).
            return None
        # Advance the D-frontier.
        frontier = self._d_frontier(zero, one, branch_gate)
        if not frontier:
            return None
        if not self._xpath_ok(zero, one, frontier):
            return None
        gate_out = frontier[0]
        op, fins = self._gate_of[gate_out]
        noncontrolling = 1 if op in (OP_AND, OP_NAND) else 0
        for fin in fins:
            if self._value(zero, one, fin, _GOOD) == V.X:
                return (fin, noncontrolling)
        # Frontier gate has no free input left; try the next one.
        for gate_out in frontier[1:]:
            op, fins = self._gate_of[gate_out]
            noncontrolling = 1 if op in (OP_AND, OP_NAND) else 0
            for fin in fins:
                if self._value(zero, one, fin, _GOOD) == V.X:
                    return (fin, noncontrolling)
        return None

    def _d_frontier(self, zero, one, branch_gate=None) -> List[int]:
        """Gates with a D input and an X output, nearest-to-output first.

        For a fanout-branch fault the effect first exists *inside* the
        consuming gate, so that gate joins the frontier while its output
        has not resolved to a difference.
        """
        frontier = []
        levels = self.circuit.netlist.levels
        names = self.circuit.netlist.net_names
        for nid in self._d_nets(zero, one):
            for succ in self._fanout_ids.get(nid, ()):
                if self._value(zero, one, succ, _GOOD) == V.X or \
                        self._value(zero, one, succ, _FAULTY) == V.X:
                    frontier.append(succ)
        if branch_gate is not None:
            g = self._value(zero, one, branch_gate, _GOOD)
            f = self._value(zero, one, branch_gate, _FAULTY)
            if (g == V.X or f == V.X) and not (
                    g != f and g != V.X and f != V.X):
                frontier.append(branch_gate)
        frontier = sorted(set(frontier),
                          key=lambda n: -levels[names[n]])
        return frontier

    def _xpath_ok(self, zero, one, frontier) -> bool:
        """Can the fault effect still reach an observed output through
        X-valued nets?"""
        dnets = set(self._d_nets(zero, one))
        start = list(dnets) + list(frontier)
        seen = set(start)
        stack = list(start)
        observed = set(self._observed)
        while stack:
            nid = stack.pop()
            if nid in observed:
                return True
            for succ in self._fanout_ids.get(nid, ()):
                if succ in seen:
                    continue
                if succ in dnets or \
                        self._value(zero, one, succ, _GOOD) == V.X or \
                        self._value(zero, one, succ, _FAULTY) == V.X:
                    seen.add(succ)
                    stack.append(succ)
        return False

    # ------------------------------------------------------------------
    def _backtrace(self, zero, one, net: int, value: int,
                   assign: Dict[int, int]) -> Optional[Tuple[int, int]]:
        """Walk the objective back to an unassigned source assignment."""
        for _ in range(4 * self.circuit.n_nets + 8):
            if net in self._source_set:
                if net in assign:
                    return None  # already assigned: conflicting objective
                return (net, value)
            if net not in self._gate_of:
                # Uncontrollable source (an unscanned flip-flop under
                # partial scan): the objective cannot be justified.
                return None
            op, fins = self._gate_of[net]
            if op in (OP_CONST0, OP_CONST1):
                return None
            if op == OP_NOT:
                net, value = fins[0], 1 - value
                continue
            if op == OP_BUF:
                net = fins[0]
                continue
            if op in (OP_XOR, OP_XNOR):
                # Choose an X input; target parity assuming other Xs = 0.
                x_fins = [f for f in fins
                          if self._value(zero, one, f, _GOOD) == V.X]
                if not x_fins:
                    return None
                parity = value if op == OP_XOR else 1 - value
                for f in fins:
                    v = self._value(zero, one, f, _GOOD)
                    if v == V.ONE:
                        parity ^= 1
                chosen = min(x_fins, key=lambda f: min(self._cc0[f],
                                                       self._cc1[f]))
                for f in x_fins:
                    if f != chosen:
                        parity ^= 0  # other Xs assumed 0
                net, value = chosen, parity
                continue
            inverted = op in (OP_NAND, OP_NOR)
            base = 1 - value if inverted else value
            all_value = 1 if op in (OP_AND, OP_NAND) else 0
            x_fins = [f for f in fins
                      if self._value(zero, one, f, _GOOD) == V.X]
            if not x_fins:
                return None
            if base == all_value:
                # All inputs must take all_value: hardest X first.
                cc = self._cc1 if all_value == 1 else self._cc0
                net = max(x_fins, key=lambda f: cc[f])
                value = all_value
            else:
                # Any input at the controlling value suffices: easiest X.
                cc = self._cc1 if all_value == 0 else self._cc0
                net = min(x_fins, key=lambda f: cc[f])
                value = 1 - all_value
        return None

    def _extract(self, zero, one) -> Tuple[V.Vector, V.Vector]:
        """Read the (state, pi) pattern off the good machine."""
        state = tuple(self._value(zero, one, nid, _GOOD)
                      for nid in self.circuit.ff_ids)
        pi = tuple(self._value(zero, one, nid, _GOOD)
                   for nid in self.circuit.pi_ids)
        return state, pi

"""Lane-batched trial simulation must be byte-identical to scalar.

The trial engine (:meth:`FaultSimulator.detect_trials`), the Phase-4
prefetch cache (:func:`static_compact` ``trial_batch``), the Phase-3
candidate blocks (:func:`top_off` ``trial_batch``) and the ADI packing
order are pure accelerations: none of them may change a single
detection, selection, or statistic on the equivalence-guaranteed
paths.  These properties drive random circuits, ragged X-laden trial
batches and every engine through the batched and scalar paths and
require exact agreement.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.comb_set import CombTest
from repro.circuits import synth
from repro.core.combine import static_compact
from repro.core.phase1 import select_scan_in
from repro.core.scan_test import ScanTestSet, single_vector_test
from repro.core.topoff import top_off
from repro.sim import values as V
from repro.sim.comb_sim import CombPatternSim
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit

try:
    from repro.sim.npsim import numpy_available
    _HAS_NUMPY = numpy_available()
except ImportError:  # pragma: no cover - numpy present in CI
    _HAS_NUMPY = False

needs_numpy = pytest.mark.skipif(not _HAS_NUMPY,
                                 reason="numpy not installed")

_N_PI = 4

_CACHE = {}


def circuits_for(seed):
    """One compiled circuit per engine, on the same random netlist."""
    if seed not in _CACHE:
        net = synth.generate("trial", _N_PI, 3, 5, 30, seed=seed)
        circuits = [CompiledCircuit(net, engine="codegen"),
                    CompiledCircuit(net.copy(), engine="generic")]
        if _HAS_NUMPY:
            circuits.append(CompiledCircuit(net.copy(), engine="numpy"))
        _CACHE[seed] = (circuits, FaultSet.collapsed(net))
    return _CACHE[seed]


def _vector(rng, binary=False):
    if binary:
        return V.random_binary_vector(_N_PI, rng)
    return tuple(rng.choice((V.ZERO, V.ONE, V.X)) for _ in range(_N_PI))


def _trial(rng, n_ff, max_frames=5):
    """One (scan_in, vectors) trial; X-laden, possibly empty."""
    scan_in = (V.random_binary_vector(n_ff, rng)
               if rng.random() < 0.8 else None)
    vectors = [_vector(rng, binary=rng.random() < 0.5)
               for _ in range(rng.randrange(0, max_frames + 1))]
    return scan_in, vectors


class TestDetectTrials:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 9), data=st.data())
    def test_matches_scalar_detect(self, seed, data):
        """detect_trials == one scalar detect per lane, every engine."""
        circuits, fs = circuits_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n_ff = len(circuits[0].ff_ids)
        n_lanes = data.draw(st.integers(1, 10))
        trials = [_trial(rng, n_ff) for _ in range(n_lanes)]
        scan_out = data.draw(st.booleans())
        target = None
        if data.draw(st.booleans()):
            target = sorted(rng.sample(range(len(fs)),
                                       rng.randrange(0, len(fs))))
        for circuit in circuits:
            sim = FaultSimulator(circuit, fs, width="auto")
            batched = sim.detect_trials(trials, target=target,
                                        scan_out=scan_out)
            scalar = [sim.detect(list(v), s, target=target,
                                 scan_out=scan_out, early_exit=False)
                      for s, v in trials]
            assert batched == scalar

    @pytest.mark.parametrize("n_lanes", [1, 63, 64, 65])
    def test_lane_count_boundaries(self, n_lanes):
        """Exactness at the word-packing boundaries, every engine."""
        circuits, fs = circuits_for(0)
        rng = random.Random(n_lanes)
        n_ff = len(circuits[0].ff_ids)
        trials = [_trial(rng, n_ff, max_frames=3)
                  for _ in range(n_lanes)]
        for circuit in circuits:
            sim = FaultSimulator(circuit, fs, width="auto")
            batched = sim.detect_trials(trials)
            scalar = [sim.detect(list(v), s, early_exit=False)
                      for s, v in trials]
            assert batched == scalar

    def test_counters_and_partial_observe(self):
        circuits, fs = circuits_for(1)
        rng = random.Random(7)
        n_ff = len(circuits[0].ff_ids)
        observe = sorted(rng.sample(range(n_ff), max(1, n_ff // 2)))
        trials = [_trial(rng, n_ff) for _ in range(6)]
        sim = FaultSimulator(circuits[0], fs, width="auto")
        batched = sim.detect_trials(trials, scan_observe=observe)
        scalar = [sim.detect(list(v), s, scan_observe=observe,
                             early_exit=False)
                  for s, v in trials]
        assert batched == scalar
        assert sim.counters.trial_passes == 1
        assert sim.counters.trial_lanes == 6


class TestBatchedCombine:
    def _initial_set(self, circuits, fs, seed, n_tests=10):
        rng = random.Random(seed)
        n_ff = len(circuits[0].ff_ids)
        tests = [single_vector_test(V.random_binary_vector(n_ff, rng),
                                    V.random_binary_vector(_N_PI, rng))
                 for _ in range(n_tests)]
        return ScanTestSet(n_ff, tests)

    @pytest.mark.parametrize("trial_batch", [2, 63, 64, 65])
    def test_prefetch_identical(self, trial_batch):
        """static_compact: batched == scalar down to every stat."""
        circuits, fs = circuits_for(2)
        initial = self._initial_set(circuits, fs, seed=11)
        for circuit in circuits:
            scalar = static_compact(FaultSimulator(circuit, fs),
                                    initial, trial_batch=1)
            batched = static_compact(FaultSimulator(circuit, fs),
                                     initial, trial_batch=trial_batch)
            assert batched.test_set.tests == scalar.test_set.tests
            assert batched.detected == scalar.detected
            assert vars(batched.stats) == vars(scalar.stats)

    def test_prefetch_with_length_cap_and_filter(self):
        """Skip rules (length cap, merge filter) mirror exactly."""
        circuits, fs = circuits_for(3)
        initial = self._initial_set(circuits, fs, seed=5, n_tests=8)
        reject = {initial.tests[0].combined_with(initial.tests[1])}

        def flt(test):
            return test not in reject

        for kwargs in ({"max_sequence_length": 3},
                       {"merge_filter": flt}):
            scalar = static_compact(FaultSimulator(circuits[0], fs),
                                    initial, trial_batch=1, **kwargs)
            batched = static_compact(FaultSimulator(circuits[0], fs),
                                     initial, trial_batch=64, **kwargs)
            assert batched.test_set.tests == scalar.test_set.tests
            assert vars(batched.stats) == vars(scalar.stats)


class TestBatchedTopOff:
    def _comb_tests(self, circuits, seed, n=12):
        rng = random.Random(seed)
        n_ff = len(circuits[0].ff_ids)
        return [CombTest(V.random_binary_vector(n_ff, rng),
                         V.random_binary_vector(_N_PI, rng))
                for _ in range(n)]

    @pytest.mark.parametrize("trial_batch", [2, 63, 64, 65])
    def test_blocks_identical(self, trial_batch):
        circuits, fs = circuits_for(4)
        comb_tests = self._comb_tests(circuits, seed=1)
        undetected = set(range(len(fs)))
        sim = CombPatternSim(circuits[0], fs)
        scalar = top_off(sim, comb_tests, undetected, trial_batch=1)
        batched = top_off(sim, comb_tests, undetected,
                          trial_batch=trial_batch)
        assert batched.tests == scalar.tests
        assert batched.chosen_indices == scalar.chosen_indices
        assert batched.covered == scalar.covered
        assert batched.uncovered == scalar.uncovered

    def test_all_zero_adi_is_identity(self):
        """An empty ADI map ranks every fault equally: the paper's
        min-n(f) selection is unchanged."""
        circuits, fs = circuits_for(4)
        comb_tests = self._comb_tests(circuits, seed=2)
        undetected = set(range(len(fs)))
        sim = CombPatternSim(circuits[0], fs)
        plain = top_off(sim, comb_tests, undetected)
        scored = top_off(sim, comb_tests, undetected, adi={})
        assert scored.chosen_indices == plain.chosen_indices

    def test_adi_covers_the_same_faults(self):
        """ADI may reorder selection, never lose coverage."""
        circuits, fs = circuits_for(4)
        comb_tests = self._comb_tests(circuits, seed=3)
        undetected = set(range(len(fs)))
        sim = CombPatternSim(circuits[0], fs)
        plain = top_off(sim, comb_tests, undetected)
        rng = random.Random(0)
        adi = {f: rng.randrange(0, 5) for f in range(len(fs))}
        scored = top_off(sim, comb_tests, undetected, adi=adi)
        assert scored.covered == plain.covered
        assert scored.uncovered == plain.uncovered


class TestAdiOrdering:
    def test_packing_order_never_changes_detections(self):
        """set_adi_order only regroups machine bits."""
        circuits, fs = circuits_for(5)
        rng = random.Random(3)
        vectors = [_vector(rng) for _ in range(8)]
        init = V.random_binary_vector(len(circuits[0].ff_ids), rng)
        # Force multiple chunks so the ordering actually applies.
        plain_sim = FaultSimulator(circuits[0], fs, width="auto",
                                   fused_cap=max(4, len(fs) // 3))
        plain = plain_sim.detect(vectors, init, early_exit=False)
        adi = {f: rng.randrange(0, 9) for f in range(len(fs))}
        ordered_sim = FaultSimulator(circuits[0], fs, width="auto",
                                     fused_cap=max(4, len(fs) // 3))
        ordered_sim.set_adi_order(adi)
        got = ordered_sim.detect(vectors, init, early_exit=False)
        assert got == plain
        assert ordered_sim.counters.adi_orderings > 0

    def test_phase1_zero_adi_is_identity(self):
        circuits, fs = circuits_for(6)
        rng = random.Random(1)
        n_ff = len(circuits[0].ff_ids)
        comb_tests = [CombTest(V.random_binary_vector(n_ff, rng),
                               V.random_binary_vector(_N_PI, rng))
                      for _ in range(6)]
        t0 = [_vector(rng, binary=True) for _ in range(6)]
        selected = [False] * len(comb_tests)
        sim = FaultSimulator(circuits[0], fs)
        plain = select_scan_in(sim, t0, comb_tests, set(), selected)
        scored = select_scan_in(sim, t0, comb_tests, set(), selected,
                                adi={})
        assert scored == plain


@needs_numpy
class TestPlanCacheEviction:
    def test_lru_bound_and_eviction(self):
        """The per-simulator plan cache stays bounded and evicts LRU."""
        from repro.sim.npsim import ArrayBackend

        net = synth.generate("plancache", 4, 3, 5, 40, seed=2)
        cc = CompiledCircuit(net, engine="numpy")
        fs = FaultSet.collapsed(net)
        sim = FaultSimulator(cc, fs, width="auto")
        backend = cc.array_backend
        assert isinstance(backend, ArrayBackend)
        size = ArrayBackend._PLAN_CACHE_SIZE
        chunks = []
        for start in range(size + 3):
            chunk = sim._build_chunks(range(start, start + 4))[0]
            chunks.append(chunk)
            backend._plan_for(sim, chunk)
        cache = sim._np_plan_cache
        assert len(cache) == size
        # The oldest keys were evicted, the newest survive.
        assert tuple(chunks[0].indices) not in cache
        assert tuple(chunks[-1].indices) in cache
        # A hit refreshes recency: re-touch the oldest survivor, then
        # insert one more plan; the survivor must outlive the
        # next-oldest entry.
        survivor = next(iter(cache))
        backend._plan_for(sim, sim._build_chunks(list(survivor))[0])
        fresh = sim._build_chunks(range(100, 104))[0]
        backend._plan_for(sim, fresh)
        assert survivor in cache
        assert tuple(fresh.indices) in cache
        assert len(cache) == size

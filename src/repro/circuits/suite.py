"""The paper benchmark suite: profiles mirroring the DAC-2001 tables.

The paper evaluates on ISCAS-89 and ITC-99 circuits.  Those netlists
are not redistributed here, so each profile builds a seeded synthetic
stand-in (see :mod:`repro.circuits.synth` and DESIGN.md section 5) with
the *original interface sizes* (PI / PO / FF counts) and a gate count
chosen so the collapsed fault count lands near the paper's.  The s27
entry is the exact ISCAS-89 netlist.

Two suite flavours:

* :func:`paper_suite` -- one profile per paper circuit we reproduce
  (small and mid-size rows of Tables 1-5).
* :func:`quick_suite` -- a fast subset for CI and pytest benchmarks.

The per-profile ``paper`` dict carries the numbers printed in the paper
so the experiment reports can show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from . import library, synth
from .netlist import Netlist


@dataclass
class CircuitProfile:
    """One row of the experimental suite.

    Attributes
    ----------
    name:
        Suite-local circuit name (matches the paper's circuit column).
    builder:
        Zero-argument netlist factory.
    t0_length:
        Length of the random ``T0`` used in the Table-5 arm (the paper
        uses 1000 everywhere; quick profiles shrink it).
    seq_budget:
        Generation budget (max length) for the sequential-ATPG ``T0``.
    paper:
        The paper's published numbers for this circuit, for side-by-side
        reporting (keys: ``ff``, ``comb_tests``, ``faults``,
        ``t0_detected``, ``scan_detected``, ``final_detected``,
        ``t0_len``, ``scan_len``, ``added`` -- all optional).
    """

    name: str
    builder: Callable[[], Netlist]
    t0_length: int = 1000
    seq_budget: int = 500
    paper: Dict[str, int] = field(default_factory=dict)

    def build(self) -> Netlist:
        """Instantiate (and compile) the circuit."""
        return self.builder()


def _syn(paper_name: str, n_pi: int, n_po: int, n_ff: int,
         n_gates: int) -> Callable[[], Netlist]:
    def build() -> Netlist:
        return synth.paper_like(paper_name, n_pi, n_po, n_ff, n_gates)
    return build


# Interface sizes follow the original benchmarks; gate counts are scaled
# to keep pure-Python fault simulation tractable while preserving the
# FF-to-logic proportions that drive the compaction trade-off.
_PROFILES: List[CircuitProfile] = [
    CircuitProfile(
        "s27", library.s27, t0_length=200, seq_budget=120,
        paper={"ff": 3}),
    CircuitProfile(
        "s298", _syn("s298", 3, 6, 14, 110), t0_length=400, seq_budget=160,
        paper={"ff": 14, "comb_tests": 24, "faults": 308,
               "t0_detected": 265, "scan_detected": 279,
               "final_detected": 308, "t0_len": 117, "scan_len": 68,
               "added": 10, "cycles_23": 376, "cycles_4_init": 374,
               "cycles_4_comp": 318, "cycles_prop_init": 246,
               "cycles_prop_comp": 218, "atspeed_ave_4": 1.20,
               "atspeed_ave_prop": 8.67}),
    CircuitProfile(
        "s344", _syn("s344", 9, 11, 15, 130), t0_length=400, seq_budget=160,
        paper={"ff": 15, "comb_tests": 15, "faults": 342,
               "t0_detected": 329, "scan_detected": 339,
               "final_detected": 342, "t0_len": 57, "scan_len": 36,
               "added": 2, "cycles_23": 166, "cycles_4_init": 255,
               "cycles_4_comp": 195, "cycles_prop_init": 98,
               "cycles_prop_comp": 98, "atspeed_ave_4": 1.36,
               "atspeed_ave_prop": 12.67}),
    CircuitProfile(
        "s382", _syn("s382", 3, 6, 21, 120), t0_length=500, seq_budget=200,
        paper={"ff": 21, "comb_tests": 25, "faults": 399,
               "t0_detected": 364, "scan_detected": 379,
               "final_detected": 399, "t0_len": 516, "scan_len": 445,
               "added": 8, "cycles_4_init": 571, "cycles_4_comp": 529,
               "cycles_prop_init": 663, "cycles_prop_comp": 663,
               "atspeed_ave_4": 1.09, "atspeed_ave_prop": 50.33}),
    CircuitProfile(
        "s526", _syn("s526", 3, 6, 21, 160), t0_length=500, seq_budget=220,
        paper={"ff": 21, "comb_tests": 50, "faults": 555,
               "t0_detected": 454, "scan_detected": 480,
               "final_detected": 554, "t0_len": 1006, "scan_len": 694,
               "added": 24, "cycles_4_init": 1121, "cycles_4_comp": 995,
               "cycles_prop_init": 1264, "cycles_prop_comp": 1222,
               "atspeed_ave_4": 1.14, "atspeed_ave_prop": 31.22}),
    CircuitProfile(
        "s641", _syn("s641", 35, 24, 19, 170), t0_length=400, seq_budget=150,
        paper={"ff": 19, "comb_tests": 22, "faults": 467,
               "t0_detected": 404, "scan_detected": 412,
               "final_detected": 467, "t0_len": 101, "scan_len": 81,
               "added": 12, "cycles_4_init": 459, "cycles_4_comp": 326,
               "cycles_prop_init": 359, "cycles_prop_comp": 302,
               "atspeed_ave_4": 1.47, "atspeed_ave_prop": 9.30}),
    CircuitProfile(
        "s820", _syn("s820", 18, 19, 5, 180), t0_length=500, seq_budget=220,
        paper={"ff": 5, "comb_tests": 94, "faults": 850,
               "t0_detected": 814, "scan_detected": 818,
               "final_detected": 850, "t0_len": 491, "scan_len": 339,
               "added": 8, "cycles_23": 617, "cycles_4_init": 569,
               "cycles_4_comp": 309, "cycles_prop_init": 397,
               "cycles_prop_comp": 392, "atspeed_ave_4": 2.24,
               "atspeed_ave_prop": 43.38}),
    CircuitProfile(
        "b01", _syn("b01", 4, 2, 5, 45), t0_length=300, seq_budget=100,
        paper={"ff": 5, "comb_tests": 24, "faults": 135,
               "t0_detected": 133, "scan_detected": 135,
               "final_detected": 135, "t0_len": 66, "scan_len": 51,
               "added": 0, "cycles_4_init": 149, "cycles_4_comp": 54,
               "cycles_prop_init": 61, "cycles_prop_comp": 61,
               "atspeed_ave_4": 4.80, "atspeed_ave_prop": 51.00}),
    CircuitProfile(
        "b02", _syn("b02", 3, 1, 4, 26), t0_length=300, seq_budget=80,
        paper={"ff": 4, "comb_tests": 15, "faults": 70,
               "t0_detected": 68, "scan_detected": 69,
               "final_detected": 70, "t0_len": 45, "scan_len": 22,
               "added": 1, "cycles_4_init": 79, "cycles_4_comp": 41,
               "cycles_prop_init": 35, "cycles_prop_comp": 35,
               "atspeed_ave_4": 2.17, "atspeed_ave_prop": 11.50}),
    CircuitProfile(
        "b06", _syn("b06", 4, 6, 9, 55), t0_length=300, seq_budget=100,
        paper={"ff": 9, "comb_tests": 22, "faults": 202,
               "t0_detected": 186, "scan_detected": 198,
               "final_detected": 202, "t0_len": 37, "scan_len": 26,
               "added": 2, "cycles_4_init": 229, "cycles_4_comp": 101,
               "cycles_prop_init": 64, "cycles_prop_comp": 64,
               "atspeed_ave_4": 2.50, "atspeed_ave_prop": 9.33}),
    CircuitProfile(
        "b09", _syn("b09", 3, 1, 28, 120), t0_length=400, seq_budget=180,
        paper={"ff": 28, "comb_tests": 44, "faults": 420,
               "t0_detected": 339, "scan_detected": 350,
               "final_detected": 420, "t0_len": 279, "scan_len": 196,
               "added": 13, "cycles_4_init": 1304, "cycles_4_comp": 680,
               "cycles_prop_init": 629, "cycles_prop_comp": 573,
               "atspeed_ave_4": 1.64, "atspeed_ave_prop": 17.42}),
    CircuitProfile(
        "b10", _syn("b10", 12, 6, 17, 140), t0_length=400, seq_budget=160,
        paper={"ff": 17, "comb_tests": 82, "faults": 512,
               "t0_detected": 467, "scan_detected": 476,
               "final_detected": 512, "t0_len": 190, "scan_len": 103,
               "added": 18, "cycles_4_init": 1493, "cycles_4_comp": 514,
               "cycles_prop_init": 461, "cycles_prop_comp": 427,
               "atspeed_ave_4": 2.88, "atspeed_ave_prop": 7.12}),
]

_BY_NAME = {p.name: p for p in _PROFILES}

#: Circuits small enough for CI / pytest-benchmark runs.
_QUICK_NAMES = ("s27", "b02", "b01", "b06", "s298")


def paper_suite() -> List[CircuitProfile]:
    """All reproduced paper circuits (copy; safe to mutate)."""
    return list(_PROFILES)


def quick_suite() -> List[CircuitProfile]:
    """The fast subset used by default in benchmarks and CI."""
    return [_BY_NAME[n] for n in _QUICK_NAMES]


def profile(name: str) -> CircuitProfile:
    """Look up one profile by circuit name.

    Raises
    ------
    KeyError
        If ``name`` is not part of the suite.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown suite circuit {name!r}; "
                       f"have {sorted(_BY_NAME)}") from None


def suite(quick: bool = True) -> List[CircuitProfile]:
    """The quick or full suite, by flag."""
    return quick_suite() if quick else paper_suite()

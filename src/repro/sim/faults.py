"""Single stuck-at fault model with structural equivalence collapsing.

Fault sites follow the ISCAS convention: every *line* can be stuck at 0
or stuck at 1.  A line is either

* a **stem** -- the output of a gate (identified by the net it drives), or
* a **branch** -- one fanout connection from a net to a gate input pin.
  Branches exist as distinct lines only where the source net has fanout
  greater than one; on a fanout-free net the gate input pin *is* the
  stem line.

Equivalence collapsing merges faults that are indistinguishable by any
test (classic gate-level rules: an AND output s-a-0 is equivalent to any
of its input s-a-0 faults, NOT/BUF faults collapse across the gate,
etc.).  One representative per class is kept; the collapsed list is what
the experiments report as the number of target faults, matching the
convention of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (AbstractSet, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..circuits.netlist import Netlist


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    Attributes
    ----------
    net:
        The net carrying the faulty line (the driving net).
    pin:
        ``None`` for a stem fault; ``(gate_name, pin_index)`` for a
        fanout-branch fault at that gate input.
    stuck:
        The stuck value, 0 or 1.
    """

    net: str
    pin: Optional[Tuple[str, int]]
    stuck: int

    def __str__(self) -> str:
        if self.pin is None:
            return f"{self.net}/{self.stuck}"
        gate, idx = self.pin
        return f"{self.net}->{gate}.{idx}/{self.stuck}"

    @property
    def is_stem(self) -> bool:
        return self.pin is None

    def sort_key(self):
        """Total order (stems before branches of the same net)."""
        return (self.net, self.pin is not None, self.pin or ("", -1),
                self.stuck)

    def __lt__(self, other: "Fault") -> bool:
        return self.sort_key() < other.sort_key()


def _lines(netlist: Netlist) -> List[Tuple[str, Optional[Tuple[str, int]]]]:
    """Enumerate all distinct lines as ``(net, pin-or-None)`` pairs."""
    lines: List[Tuple[str, Optional[Tuple[str, int]]]] = []
    for net in netlist.gates:
        lines.append((net, None))
    for gate in netlist.gates.values():
        for idx, fin in enumerate(gate.fanins):
            if len(netlist.fanout[fin]) > 1:
                lines.append((fin, (gate.name, idx)))
    return lines


def all_faults(netlist: Netlist) -> List[Fault]:
    """The uncollapsed fault universe: two faults per line."""
    if not netlist.is_compiled():
        netlist.compile()
    faults = []
    for net, pin in _lines(netlist):
        faults.append(Fault(net, pin, 0))
        faults.append(Fault(net, pin, 1))
    return faults


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Fault, Fault] = {}

    def find(self, x: Fault) -> Fault:
        root = x
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(x, x) != x:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: the smaller sort key wins.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def _input_line(netlist: Netlist, gate_name: str, idx: int,
                fin: str) -> Tuple[str, Optional[Tuple[str, int]]]:
    """The line feeding pin ``idx`` of ``gate_name`` (stem if fanout-free)."""
    if len(netlist.fanout[fin]) > 1:
        return (fin, (gate_name, idx))
    return (fin, None)


def _equivalence_pairs(netlist: Netlist):
    """Yield ``(a, b)`` fault pairs that are structurally equivalent.

    The rules applied per combinational gate:

    * AND:  output s-a-0 == every input s-a-0
    * NAND: output s-a-1 == every input s-a-0
    * OR:   output s-a-1 == every input s-a-1
    * NOR:  output s-a-0 == every input s-a-1
    * BUF:  output s-a-v == input s-a-v
    * NOT:  output s-a-v == input s-a-(1-v)

    XOR/XNOR gates and DFFs introduce no equivalences.

    A *stem* input line that is itself a primary output is excluded:
    its fault is observable at the PO directly, while the gate-output
    fault is not, so their detection sets can differ (a branch line
    into the gate stays equivalent -- the branch fault never reaches
    the PO).
    """
    observed = set(netlist.outputs)
    for gate in netlist.gates.values():
        out0 = Fault(gate.name, None, 0)
        out1 = Fault(gate.name, None, 1)
        ins = [_input_line(netlist, gate.name, i, fin)
               for i, fin in enumerate(gate.fanins)]
        ins = [(net, pin) for net, pin in ins
               if pin is not None or net not in observed]
        if gate.gtype == "AND":
            for net, pin in ins:
                yield out0, Fault(net, pin, 0)
        elif gate.gtype == "NAND":
            for net, pin in ins:
                yield out1, Fault(net, pin, 0)
        elif gate.gtype == "OR":
            for net, pin in ins:
                yield out1, Fault(net, pin, 1)
        elif gate.gtype == "NOR":
            for net, pin in ins:
                yield out0, Fault(net, pin, 1)
        elif gate.gtype == "BUF" and ins:
            net, pin = ins[0]
            yield out0, Fault(net, pin, 0)
            yield out1, Fault(net, pin, 1)
        elif gate.gtype == "NOT" and ins:
            net, pin = ins[0]
            yield out0, Fault(net, pin, 1)
            yield out1, Fault(net, pin, 0)


def _collapsed_union_find(netlist: Netlist) -> _UnionFind:
    uf = _UnionFind()
    for a, b in _equivalence_pairs(netlist):
        uf.union(a, b)
    return uf


def collapse(netlist: Netlist) -> List[Fault]:
    """Equivalence-collapsed fault list (one representative per class).

    See :func:`_equivalence_pairs` for the rules.  The result is sorted
    for reproducibility.
    """
    if not netlist.is_compiled():
        netlist.compile()
    uf = _collapsed_union_find(netlist)
    return sorted({uf.find(f) for f in all_faults(netlist)})


def fault_classes(netlist: Netlist) -> Dict[Fault, List[Fault]]:
    """Map each collapsed representative to its full equivalence class."""
    if not netlist.is_compiled():
        netlist.compile()
    uf = _collapsed_union_find(netlist)
    classes: Dict[Fault, List[Fault]] = {}
    for fault in all_faults(netlist):
        classes.setdefault(uf.find(fault), []).append(fault)
    return classes


class FaultSet:
    """An indexed, ordered collection of target faults.

    Provides stable integer indices (used as compact fault handles by
    the simulators and the compaction procedures) plus subset helpers.

    ``rep_of`` optionally attaches the equivalence structure: index
    ``i``'s class representative is index ``rep_of[i]`` (a fixed point
    of the map).  When present, the simulators use
    :meth:`collapse_target` to simulate representatives only and
    re-inflate detection sets to the members -- byte-identical because
    class members share detection sets exactly (DESIGN.md section 15).
    The default (``None``) is the identity: every fault is its own
    class, i.e. an already-collapsed or deliberately-uncollapsed set.
    """

    def __init__(self, faults: Sequence[Fault],
                 rep_of: Optional[Sequence[int]] = None) -> None:
        self.faults: List[Fault] = list(faults)
        self.index: Dict[Fault, int] = {
            f: i for i, f in enumerate(self.faults)}
        if len(self.index) != len(self.faults):
            raise ValueError("duplicate faults in fault set")
        if rep_of is None:
            self.rep_of: List[int] = list(range(len(self.faults)))
        else:
            self.rep_of = list(rep_of)
            if len(self.rep_of) != len(self.faults):
                raise ValueError("rep_of does not match the fault list")
        self._members: Dict[int, List[int]] = {}
        for i, rep in enumerate(self.rep_of):
            if not self.rep_of[rep] == rep:
                raise ValueError(
                    f"representative {rep} is not a fixed point")
            self._members.setdefault(rep, []).append(i)
        # Identity structure: rep translation is a no-op and every
        # simulator entry point takes its zero-overhead fast path.
        self._identity = len(self._members) == len(self.faults)

    @classmethod
    def collapsed(cls, netlist: Netlist) -> "FaultSet":
        """The collapsed fault set of ``netlist`` (the usual target set)."""
        return cls(collapse(netlist))

    @classmethod
    def uncollapsed(cls, netlist: Netlist,
                    collapse: bool = True) -> "FaultSet":
        """The full fault universe, rep-aware by default.

        With ``collapse=True`` the set carries the equivalence
        structure, so simulators run one representative per class and
        re-inflate -- same reported results, less work.
        ``collapse=False`` drops the structure and really simulates
        every fault (the benchmark baseline arm).
        """
        faults = all_faults(netlist)
        if not collapse:
            return cls(faults)
        uf = _collapsed_union_find(netlist)
        index = {f: i for i, f in enumerate(faults)}
        rep_of = [index[uf.find(f)] for f in faults]
        return cls(faults, rep_of=rep_of)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __getitem__(self, i: int) -> Fault:
        return self.faults[i]

    def indices(self, faults: Sequence[Fault]) -> List[int]:
        """Indices of the given faults within this set."""
        return [self.index[f] for f in faults]

    def subset(self, indices: AbstractSet[int]) -> List[Fault]:
        """The faults at the given indices, in index order."""
        return [self.faults[i] for i in sorted(indices)]

    # -- equivalence structure -----------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of equivalence classes (== ``len`` when identity)."""
        return len(self._members)

    @property
    def has_classes(self) -> bool:
        """True when at least one class has more than one member."""
        return not self._identity

    def members_of(self, rep: int) -> List[int]:
        """All member indices of the class represented by ``rep``."""
        return list(self._members[rep])

    def collapse_target(
        self,
        target: Sequence[int],
        drop: Optional[AbstractSet[int]] = None,
    ) -> Tuple[Sequence[int], Optional[Dict[int, List[int]]]]:
        """Translate a target fault list for representative simulation.

        Returns ``(sim_target, expand)``: the (sorted, deduplicated)
        representative indices actually worth simulating, and the map
        from each representative back to the *requested* members its
        results must be copied to.  ``expand`` is ``None`` when no
        translation happened (identity structure), so callers can keep
        a zero-overhead fast path.  ``drop`` removes whole classes --
        proven-untestable representatives -- from the simulated set;
        sound because a proven-untestable fault appears in no
        detection set, ever.
        """
        if self._identity:
            if not drop:
                return target, None
            return [f for f in target if f not in drop], None
        rep_of = self.rep_of
        expand: Dict[int, List[int]] = {}
        for f in target:
            rep = rep_of[f]
            if drop and rep in drop:
                continue
            expand.setdefault(rep, []).append(f)
        return sorted(expand), expand

    def untestable_reps(self, indices: AbstractSet[int]) -> "frozenset[int]":
        """Representative indices of the given (untestable) faults.

        The untestability closure of :mod:`repro.analysis.faultspace`
        covers whole classes, so dropping by representative drops
        exactly the proven faults.
        """
        return frozenset(self.rep_of[i] for i in indices)

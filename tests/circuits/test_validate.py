"""Tests for netlist validation checks."""

import pytest

from repro.circuits import validate
from repro.circuits.netlist import Netlist
from repro.circuits.validate import ERROR, WARNING


def codes(net):
    return {i.code for i in validate.check(net)}


class TestChecks:
    def test_clean_circuit(self, s27):
        assert validate.check(s27) == []

    def test_dangling_net(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("used", "NOT", ["a"])
        net.add_gate("dead", "NOT", ["a"])
        net.add_output("used")
        assert "dangling-net" in codes(net)

    def test_unused_input(self):
        net = Netlist()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("n", "NOT", ["a"])
        net.add_output("n")
        assert "unused-input" in codes(net)

    def test_no_outputs(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "NOT", ["a"])
        issues = validate.check(net)
        assert any(i.code == "no-outputs" and i.severity == ERROR
                   for i in issues)

    def test_duplicate_fanin(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "AND", ["a", "a"])
        net.add_output("n")
        assert "duplicate-fanin" in codes(net)

    def test_ff_outside_po_cone(self):
        net = Netlist()
        net.add_input("a")
        net.add_dff("q", "d")          # q feeds only its own D logic
        net.add_gate("d", "XOR", ["a", "q"])
        net.add_gate("o", "NOT", ["a"])
        net.add_output("o")
        assert "ff-outside-po-cone" in codes(net)


class TestAssertClean:
    def test_raises_on_error(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "NOT", ["a"])
        with pytest.raises(ValueError, match="no-outputs"):
            validate.assert_clean(net)

    def test_warnings_tolerated_by_default(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "AND", ["a", "a"])
        net.add_output("n")
        validate.assert_clean(net)  # warning only: no raise

    def test_warnings_rejected_when_strict(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "AND", ["a", "a"])
        net.add_output("n")
        with pytest.raises(ValueError, match="duplicate-fanin"):
            validate.assert_clean(net, allow_warnings=False)

    def test_issue_str(self):
        net = Netlist()
        net.add_input("a")
        net.add_gate("n", "AND", ["a", "a"])
        net.add_output("n")
        issue = validate.check(net)[0]
        assert "duplicate-fanin" in str(issue)
        assert issue.severity == WARNING
